//! The toolkit-level error type: every CLI surface funnels failures into
//! [`GtgdError`], which carries a described message and a **stable exit
//! code** per failure class. Scripts and CI can branch on the code; the
//! message is for humans. No code path panics on user input.

use gtgd_ingest::IngestError;

/// Exit codes, one per failure class. Stable across releases:
///
/// | code | class | meaning |
/// |------|-------|---------|
/// | 0 | — | success |
/// | 1 | [`GtgdError::Eval`] | evaluation failed (chase budget, query, maintenance) |
/// | 2 | [`GtgdError::Usage`] | bad command line (unknown flag, missing argument) |
/// | 3 | [`GtgdError::Script`] | script file did not parse |
/// | 4 | [`GtgdError::Ingest`] | ingestion input rejected (RDF/OWL/CSV/fragment) |
/// | 5 | [`GtgdError::Storage`] | snapshot save/load failed |
/// | 6 | [`GtgdError::Serve`] | server startup or protocol failure |
/// | 7 | [`GtgdError::Io`] | file I/O outside the classes above |
#[derive(Debug)]
pub enum GtgdError {
    /// Bad command line: unknown flag, missing value, wrong arity.
    Usage(String),
    /// Evaluation failed: budget exhausted where exactness was required,
    /// bad query against the schema, maintenance misuse.
    Eval(String),
    /// A `.gtgd` script failed to parse.
    Script(String),
    /// An ingestion frontend rejected its input.
    Ingest(IngestError),
    /// Snapshot persistence failed (save, load, verify).
    Storage(String),
    /// The server failed to start or run.
    Serve(String),
    /// File I/O failure not attributable to a more specific class.
    Io {
        /// The path involved.
        path: String,
        /// The rendered OS error.
        message: String,
    },
}

impl GtgdError {
    /// The stable process exit code for this failure class.
    pub fn exit_code(&self) -> i32 {
        match self {
            GtgdError::Eval(_) => 1,
            GtgdError::Usage(_) => 2,
            GtgdError::Script(_) => 3,
            GtgdError::Ingest(_) => 4,
            GtgdError::Storage(_) => 5,
            GtgdError::Serve(_) => 6,
            GtgdError::Io { .. } => 7,
        }
    }
}

impl std::fmt::Display for GtgdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GtgdError::Usage(m) => write!(f, "usage: {m}"),
            GtgdError::Eval(m) => write!(f, "{m}"),
            GtgdError::Script(m) => write!(f, "script: {m}"),
            GtgdError::Ingest(e) => write!(f, "ingest: {e}"),
            GtgdError::Storage(m) => write!(f, "storage: {m}"),
            GtgdError::Serve(m) => write!(f, "serve: {m}"),
            GtgdError::Io { path, message } => write!(f, "io: {path}: {message}"),
        }
    }
}

impl std::error::Error for GtgdError {}

impl From<IngestError> for GtgdError {
    fn from(e: IngestError) -> GtgdError {
        // I/O failures inside a frontend keep the ingest class: the
        // actionable context (which manifest referenced the file) lives
        // in the ingest error.
        GtgdError::Ingest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable_and_distinct() {
        let all = [
            GtgdError::Eval("e".into()),
            GtgdError::Usage("u".into()),
            GtgdError::Script("s".into()),
            GtgdError::Ingest(IngestError::Schema {
                message: "m".into(),
            }),
            GtgdError::Storage("st".into()),
            GtgdError::Serve("sv".into()),
            GtgdError::Io {
                path: "p".into(),
                message: "m".into(),
            },
        ];
        let codes: Vec<i32> = all.iter().map(GtgdError::exit_code).collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 5, 6, 7]);
        for e in &all {
            assert!(!e.to_string().is_empty());
        }
    }
}
