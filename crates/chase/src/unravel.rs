//! Guarded unraveling of a database at a guarded set (Appendix D.1).
//!
//! `Dᵃ̄`, the guarded unraveling of `D` at `ā`, is the (potentially
//! infinite) tree-shaped database whose nodes are sequences `ā₀ ā₁ … āₙ` of
//! guarded sets of `D` with `ā₀ = ā` and consecutive overlaps, each node
//! carrying a fresh copy of `D|āᵢ` that shares constants with its parent
//! exactly on the overlap. We materialize it to a finite depth.

use gtgd_data::{Instance, Value};
use std::collections::{HashMap, HashSet};

/// Materializes the guarded unraveling of `db` at the guarded set `start`
/// down to `depth` levels (level 0 is the root copy of `D|start`).
///
/// Panics if `start` is not guarded in `db`.
pub fn guarded_unraveling(db: &Instance, start: &[Value], depth: usize) -> Instance {
    assert!(db.is_guarded(start), "start set must be guarded in db");
    let guarded_sets: Vec<Vec<Value>> = db.maximal_guarded_sets();
    let mut out = Instance::new();
    // Node: (guarded set of D, mapping from D-constants of the set to copies).
    struct Node {
        set: Vec<Value>,
        copy: HashMap<Value, Value>,
        level: usize,
    }
    let root_copy: HashMap<Value, Value> = start.iter().map(|&v| (v, v)).collect();
    let mut queue = vec![Node {
        set: start.to_vec(),
        copy: root_copy,
        level: 0,
    }];
    let mut qi = 0;
    while qi < queue.len() {
        let node_idx = qi;
        qi += 1;
        // Emit this node's copy of D restricted to its guarded set.
        let keep: HashSet<Value> = queue[node_idx].set.iter().copied().collect();
        let restricted = db.restrict_to(&keep);
        let copy = queue[node_idx].copy.clone();
        out.extend_from(&restricted.map_values(|v| copy[&v]));
        let level = queue[node_idx].level;
        if level >= depth {
            continue;
        }
        // Children: guarded sets overlapping this one.
        for b in &guarded_sets {
            let overlap: Vec<Value> = b
                .iter()
                .copied()
                .filter(|v| queue[node_idx].set.contains(v))
                .collect();
            if overlap.is_empty() {
                continue;
            }
            if b == &queue[node_idx].set {
                // A child equal to its parent adds an isomorphic copy glued
                // on the full set — nothing new up to homomorphic
                // equivalence; skip to keep the materialization lean.
                continue;
            }
            let parent_copy = &queue[node_idx].copy;
            let mut child_copy: HashMap<Value, Value> = HashMap::new();
            for &v in b {
                if overlap.contains(&v) {
                    child_copy.insert(v, parent_copy[&v]);
                } else {
                    child_copy.insert(v, Value::fresh_null());
                }
            }
            queue.push(Node {
                set: b.clone(),
                copy: child_copy,
                level: level + 1,
            });
        }
    }
    out
}

/// The `k`-unraveling `D^k_c̄` of a database up to a tuple (Appendix C.3):
/// a treewidth-`≤ k`-up-to-`c̄` database that maps homomorphically onto `D`
/// fixing `c̄`, materialized to `depth` levels of the bag tree.
///
/// Nodes are sequences of overlapping bags (subsets of `dom(D)` of size
/// `≤ k + 1`); the anchor constants `c̄` are global (shared by every copy),
/// which realizes "treewidth `k` **up to** `c̄`". The full unraveling is
/// infinite; `depth` controls the finite prefix. Property (3) of the paper
/// (`c̄ ∈ Q(D)` implies `c̄ ∈ Q(D^k_c̄)` for `Q ∈ (G, UCQ_k)`) holds for
/// matches within the materialized depth.
pub fn k_unraveling(db: &Instance, anchor: &[Value], k: usize, depth: usize) -> Instance {
    // Bags: every subset of size min(k+1, n) of the non-anchor domain.
    let non_anchor: Vec<Value> = db
        .dom()
        .iter()
        .copied()
        .filter(|v| !anchor.contains(v))
        .collect();
    let bag_size = (k + 1).min(non_anchor.len());
    let mut bags: Vec<Vec<Value>> = Vec::new();
    fn combos(
        items: &[Value],
        size: usize,
        start: usize,
        current: &mut Vec<Value>,
        out: &mut Vec<Vec<Value>>,
    ) {
        if current.len() == size {
            out.push(current.clone());
            assert!(
                out.len() <= 100_000,
                "k-unraveling bag count exploded; use a smaller database"
            );
            return;
        }
        for i in start..items.len() {
            current.push(items[i]);
            combos(items, size, i + 1, current, out);
            current.pop();
        }
    }
    if bag_size > 0 {
        combos(&non_anchor, bag_size, 0, &mut Vec::new(), &mut bags);
    }
    let mut out = Instance::new();
    struct Node {
        bag: Vec<Value>,
        copy: HashMap<Value, Value>,
        level: usize,
    }
    let mut queue: Vec<Node> = Vec::new();
    for b in &bags {
        let copy: HashMap<Value, Value> = b.iter().map(|&v| (v, Value::fresh_null())).collect();
        queue.push(Node {
            bag: b.clone(),
            copy,
            level: 0,
        });
    }
    let mut qi = 0;
    while qi < queue.len() {
        let idx = qi;
        qi += 1;
        // Emit the atoms over bag ∪ anchor under this node's copy.
        let mut keep: HashSet<Value> = queue[idx].bag.iter().copied().collect();
        keep.extend(anchor.iter().copied());
        let restricted = db.restrict_to(&keep);
        let copy = queue[idx].copy.clone();
        out.extend_from(&restricted.map_values(|v| *copy.get(&v).unwrap_or(&v)));
        let level = queue[idx].level;
        if level >= depth {
            continue;
        }
        for b in &bags {
            let overlap: Vec<Value> = b
                .iter()
                .copied()
                .filter(|v| queue[idx].bag.contains(v))
                .collect();
            if overlap.is_empty() || b == &queue[idx].bag {
                continue;
            }
            let parent_copy = &queue[idx].copy;
            let child_copy: HashMap<Value, Value> = b
                .iter()
                .map(|&v| {
                    if overlap.contains(&v) {
                        (v, parent_copy[&v])
                    } else {
                        (v, Value::fresh_null())
                    }
                })
                .collect();
            queue.push(Node {
                bag: b.clone(),
                copy: child_copy,
                level: level + 1,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtgd_data::{GroundAtom, Valuation};
    use gtgd_query::{holds_boolean, instance_homomorphism_fixing, parse_cq};

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    fn triangle_db() -> Instance {
        Instance::from_atoms([
            GroundAtom::named("E", &["a", "b"]),
            GroundAtom::named("E", &["b", "c"]),
            GroundAtom::named("E", &["c", "a"]),
        ])
    }

    #[test]
    fn unraveling_is_acyclic() {
        let d = triangle_db();
        let u = guarded_unraveling(&d, &[v("a"), v("b")], 4);
        // The unraveled triangle loses its cycle: no triangle CQ match.
        let tri = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        assert!(holds_boolean(&tri, &d));
        assert!(!holds_boolean(&tri, &u));
        // But paths of any materialized length survive.
        let path = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,W)").unwrap();
        assert!(holds_boolean(&path, &u));
    }

    #[test]
    fn unraveling_maps_home_identically_on_root() {
        let d = triangle_db();
        let root = [v("a"), v("b")];
        let u = guarded_unraveling(&d, &root, 3);
        let fixed: Valuation = root.iter().map(|&x| (x, x)).collect();
        let h = instance_homomorphism_fixing(&u, &d, &fixed)
            .expect("unraveling maps homomorphically back to D, fixing the root");
        assert_eq!(h[&v("a")], v("a"));
    }

    #[test]
    fn depth_zero_is_root_restriction() {
        let d = triangle_db();
        let u = guarded_unraveling(&d, &[v("a"), v("b")], 0);
        assert_eq!(u.len(), 1);
        assert!(u.contains(&GroundAtom::named("E", &["a", "b"])));
    }

    #[test]
    fn growth_with_depth() {
        let d = triangle_db();
        let u2 = guarded_unraveling(&d, &[v("a"), v("b")], 2);
        let u4 = guarded_unraveling(&d, &[v("a"), v("b")], 4);
        assert!(u4.len() > u2.len());
    }

    #[test]
    #[should_panic(expected = "guarded")]
    fn unguarded_start_rejected() {
        let d = triangle_db();
        guarded_unraveling(&d, &[v("a"), v("z")], 1);
    }

    #[test]
    fn k_unraveling_breaks_cycles() {
        let d = triangle_db();
        let u = k_unraveling(&d, &[], 1, 4);
        let tri = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        assert!(!holds_boolean(&tri, &u), "tw-1 unraveling has no triangle");
        let path = parse_cq("Q() :- E(X,Y), E(Y,Z)").unwrap();
        assert!(holds_boolean(&path, &u), "paths survive");
    }

    #[test]
    fn k_unraveling_maps_home() {
        let d = triangle_db();
        let u = k_unraveling(&d, &[], 1, 3);
        assert!(
            gtgd_query::instance_homomorphism(&u, &d).is_some(),
            "unraveling maps homomorphically onto D"
        );
    }

    #[test]
    fn anchored_unraveling_keeps_anchor_constants() {
        let d = triangle_db();
        let u = k_unraveling(&d, &[v("a")], 1, 3);
        assert!(u.dom_contains(v("a")), "anchor constants are global");
        // And the anchor-fixing homomorphism home exists.
        let fixed: Valuation = [(v("a"), v("a"))].into_iter().collect();
        assert!(instance_homomorphism_fixing(&u, &d, &fixed).is_some());
    }

    #[test]
    fn k2_unraveling_preserves_triangle() {
        // With k = 2 the whole triangle fits in one bag: the triangle match
        // survives unraveling, as Lemma C.7(2) requires.
        let d = triangle_db();
        let u = k_unraveling(&d, &[], 2, 2);
        let tri = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        assert!(holds_boolean(&tri, &u));
    }
}
