//! The one error type every frontend speaks: typed variants with precise
//! locations, so the CLI can print a described rejection and exit with a
//! stable code — malformed input is **never** a panic.

use gtgd_chase::FragmentError;

/// An ingestion failure. Every variant carries enough location detail
/// (file, line, construct) to point at the offending input directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// Malformed RDF (N-Triples / Turtle subset) input.
    Rdf {
        /// 1-based line in the RDF document.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Malformed OWL functional-syntax input.
    Owl {
        /// 1-based line in the OWL document.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A well-formed OWL construct that is not expressible in the guarded
    /// fragment this toolkit evaluates (e.g. `ObjectUnionOf`,
    /// cardinalities, `⊤` on a left-hand side).
    Fragment {
        /// 1-based line of the axiom, when known (0 = lowering stage).
        line: usize,
        /// The rejected construct or axiom.
        construct: String,
        /// Why it falls outside the fragment.
        reason: String,
    },
    /// Malformed table manifest.
    Manifest {
        /// 1-based line in the manifest.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Malformed CSV data.
    Csv {
        /// The CSV file (as named in the manifest).
        file: String,
        /// 1-based line in that file.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A declared key violated by the data: two rows agree on the key
    /// columns but differ elsewhere — the EGD `P(x̄,ȳ), P(x̄,ȳ′) → ȳ = ȳ′`
    /// fails on named constants, which is unrepairable.
    KeyViolation {
        /// The table whose key failed.
        table: String,
        /// The key columns.
        key: Vec<String>,
        /// The shared key values, comma-joined.
        key_values: String,
        /// 1-based line of the first row.
        first_line: usize,
        /// 1-based line of the conflicting row.
        second_line: usize,
    },
    /// A fact contradicting the declared schema (wrong arity, undeclared
    /// predicate under a strict source).
    Schema {
        /// What went wrong.
        message: String,
    },
    /// An I/O failure reading source files.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying error, rendered.
        message: String,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Rdf { line, message } => write!(f, "rdf: line {line}: {message}"),
            IngestError::Owl { line, message } => write!(f, "owl: line {line}: {message}"),
            IngestError::Fragment {
                line,
                construct,
                reason,
            } => {
                if *line > 0 {
                    write!(
                        f,
                        "owl: line {line}: `{construct}` is outside the guarded fragment: {reason}"
                    )
                } else {
                    write!(
                        f,
                        "owl: `{construct}` is outside the guarded fragment: {reason}"
                    )
                }
            }
            IngestError::Manifest { line, message } => {
                write!(f, "manifest: line {line}: {message}")
            }
            IngestError::Csv {
                file,
                line,
                message,
            } => write!(f, "csv: {file}: line {line}: {message}"),
            IngestError::KeyViolation {
                table,
                key,
                key_values,
                first_line,
                second_line,
            } => write!(
                f,
                "csv: key ({}) of table {table} violated: rows at lines {first_line} and \
                 {second_line} share key ({key_values}) but differ elsewhere",
                key.join(", ")
            ),
            IngestError::Schema { message } => write!(f, "schema: {message}"),
            IngestError::Io { path, message } => write!(f, "io: {path}: {message}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<FragmentError> for IngestError {
    fn from(e: FragmentError) -> IngestError {
        IngestError::Fragment {
            line: 0,
            construct: e.axiom,
            reason: e.reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_locations() {
        let e = IngestError::Csv {
            file: "emp.csv".into(),
            line: 7,
            message: "expected 3 fields, found 2".into(),
        };
        assert_eq!(e.to_string(), "csv: emp.csv: line 7: expected 3 fields, found 2");
        let e = IngestError::KeyViolation {
            table: "Emp".into(),
            key: vec!["id".into()],
            key_values: "e1".into(),
            first_line: 2,
            second_line: 5,
        };
        let s = e.to_string();
        assert!(s.contains("Emp") && s.contains("lines 2 and 5"), "{s}");
    }
}
