#![warn(missing_docs)]

//! Ingestion frontends for the guarded-TGD toolkit: one [`Source`] API,
//! three frontends, one output shape.
//!
//! The paper's algorithms take a database `D` and a set of guarded TGDs
//! `Σ`; real inputs arrive as RDF graphs with OWL ontologies, as CSV
//! exports with relational constraints, or as synthetic benchmarks. This
//! crate redesigns ingestion around a single contract:
//!
//! * [`Source`] — `schema()` declares predicates and lowers the format's
//!   axioms/constraints to guarded TGDs; `facts(&mut sink)` streams every
//!   ground atom. Malformed or out-of-fragment input is a described
//!   [`IngestError`], never a panic.
//! * [`ingest`] — drives any source through a batching [`InstanceSink`]
//!   (backed by `Instance::insert_batch`) into a [`Program`]: name,
//!   schema, TGDs, facts. Everything downstream — chase, query
//!   evaluation, maintenance, snapshots, the server — consumes programs.
//!
//! Frontends:
//!
//! * [`RdfSource`] — N-Triples / Turtle subset; `rdf:type` → unary atoms,
//!   other triples → binary atoms.
//! * [`OwlSource`] — OWL 2 functional-syntax reader for the DL-Lite/ELHI⊥
//!   overlap, lowered via [`gtgd_chase::try_tbox_to_tgds`]; rejects
//!   out-of-fragment constructs with line-precise errors.
//! * [`CsvSource`] — CSV files under a manifest declaring tables, keys
//!   (EGD-checked during streaming), and inclusion dependencies (lowered
//!   to linear, hence guarded, TGDs).
//! * [`LubmSource`] — a deterministic seeded LUBM-style generator scaling
//!   from ~10³ to beyond 10⁶ atoms, for the E18 scaling experiments.
//!
//! ```
//! use gtgd_ingest::{ingest, RdfSource};
//! use gtgd_chase::ChaseBudget;
//!
//! let mut src = RdfSource::from_str(
//!     "inline",
//!     "@prefix ex: <http://ex.org/> .\n ex:ann a ex:Emp ; ex:worksIn ex:sales .",
//! );
//! let program = ingest(&mut src)?;
//! assert_eq!(program.facts.len(), 2);
//! let chased = program.chase(ChaseBudget::unbounded());
//! assert!(chased.complete);
//! # Ok::<(), gtgd_ingest::IngestError>(())
//! ```

pub mod csv;
pub mod error;
pub mod lubm;
pub mod owl;
pub mod rdf;
pub mod source;

pub use csv::CsvSource;
pub use error::IngestError;
pub use lubm::{LubmConfig, LubmSource, LUBM_NS, ONTOLOGY_OWL, ONTOLOGY_TGDS};
pub use owl::OwlSource;
pub use rdf::RdfSource;
pub use source::{ingest, FactSink, InstanceSink, Program, Source, SourceSchema, DEFAULT_BATCH};
