//! `gtgd` — evaluate query scripts, ingest external data, generate
//! workloads, snapshot, and serve. Every subcommand routes through the
//! shared [`gtgd::cli`] machinery (per-subcommand `--help`, unknown-flag
//! rejection) and fails with the stable exit codes of
//! [`gtgd::error::GtgdError`].
//!
//! ```text
//! gtgd script.gtgd                # evaluate a script file (or - for stdin)
//! gtgd --trace script.gtgd        # also print the probe report (JSON, stderr)
//! gtgd --certify script.gtgd      # print answer certificates (JSON, stdout)
//! gtgd maintain script.gtgd       # apply +atom / -atom ops incrementally
//! gtgd snapshot script.gtgd o.gsnap         # chase once, persist the fixpoint
//! gtgd serve o.gsnap [--addr HOST:PORT]     # serve a snapshot
//! gtgd serve o.gsnap --ingest --lubm 2      # build the snapshot by ingestion, then serve
//! gtgd ingest --rdf data.nt --owl onto.ofn --query 'Ans(X) :- Person(X)'
//! gtgd ingest --csv manifest.txt --chase
//! gtgd gen lubm --univ 100 --out bench/     # deterministic LUBM-style workload
//! ```
//!
//! `gtgd <subcommand> --help` documents each surface. See `gtgd::script`
//! for the script format and `gtgd_ingest` for the frontends.

use gtgd::chase::{certificates_to_json, ChaseBudget, ChaseRunner};
use gtgd::cli::{Command, Flag, Invocation, Parsed};
use gtgd::data::obs;
use gtgd::error::GtgdError;
use gtgd::ingest::{
    ingest, CsvSource, LubmConfig, LubmSource, OwlSource, Program, RdfSource, Source,
    ONTOLOGY_OWL, ONTOLOGY_TGDS,
};
use gtgd::query::Engine;
use gtgd::script::{certify_script, eval_script, parse_script, run_maintained, MaintOp, Mode};
use gtgd::storage::{save_snapshot, Server};
use std::io::Read;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------- commands

const EVAL: Command = Command {
    name: "",
    args: "<script-file | ->",
    about: "Evaluate a query script open- or closed-world.",
    flags: &[
        Flag {
            name: "--trace",
            value: None,
            help: "print the probe report (JSON, stderr)",
        },
        Flag {
            name: "--certify",
            value: None,
            help: "print answer certificates (JSON, stdout); summary moves to stderr",
        },
        Flag {
            name: "--maintain",
            value: None,
            help: "apply +atom / -atom ops incrementally (same as `gtgd maintain`)",
        },
    ],
    min_args: 1,
    max_args: 1,
};

const MAINTAIN: Command = Command {
    name: "maintain",
    args: "<script-file | ->",
    about: "Chase a script's base once, then apply its +atom / -atom ops \
            incrementally (delta chase / DRed), answering over the final instance.",
    flags: &[Flag {
        name: "--trace",
        value: None,
        help: "print the probe report (JSON, stderr)",
    }],
    min_args: 1,
    max_args: 1,
};

const SNAPSHOT: Command = Command {
    name: "snapshot",
    args: "<script-file | -> <out.gsnap>",
    about: "Chase an open-world script once (applying any maintenance ops) and \
            persist the maintained fixpoint as a binary snapshot.",
    flags: &[BUDGET_FLAG],
    min_args: 2,
    max_args: 2,
};

const BUDGET_FLAG: Flag = Flag {
    name: "--budget",
    value: Some("ATOMS"),
    help: "chase atom budget (0 = unbounded; default 10000000)",
};

// The ingestion source flags, shared verbatim by `ingest` and
// `serve --ingest` so the two surfaces never drift.
const RDF_FLAG: Flag = Flag {
    name: "--rdf",
    value: Some("FILE"),
    help: "RDF data (N-Triples / Turtle subset)",
};
const OWL_FLAG: Flag = Flag {
    name: "--owl",
    value: Some("FILE"),
    help: "OWL 2 functional-syntax ontology (DL-Lite/ELHI\u{2293} fragment)",
};
const CSV_FLAG: Flag = Flag {
    name: "--csv",
    value: Some("MANIFEST"),
    help: "CSV manifest declaring tables, keys, inclusion dependencies",
};
const LUBM_FLAG: Flag = Flag {
    name: "--lubm",
    value: Some("UNIV"),
    help: "generate a LUBM-style workload with UNIV universities",
};
const SEED_FLAG: Flag = Flag {
    name: "--seed",
    value: Some("N"),
    help: "generator seed (with --lubm)",
};
const FULL_IRIS_FLAG: Flag = Flag {
    name: "--full-iris",
    value: None,
    help: "keep absolute IRIs instead of shortening to local names",
};

const INGEST: Command = Command {
    name: "ingest",
    args: "",
    about: "Ingest external data through one of the frontends into a program \
            (facts + guarded TGDs), then optionally chase, query, or snapshot it.\n\
            Sources: --rdf (optionally with --owl), --csv, or --lubm.",
    flags: &[
        RDF_FLAG,
        OWL_FLAG,
        CSV_FLAG,
        LUBM_FLAG,
        SEED_FLAG,
        FULL_IRIS_FLAG,
        BUDGET_FLAG,
        Flag {
            name: "--chase",
            value: None,
            help: "chase to the fixpoint and report its size",
        },
        Flag {
            name: "--query",
            value: Some("CQ"),
            help: "chase, then answer this conjunctive query (Ans(X) :- Body)",
        },
        Flag {
            name: "--snapshot",
            value: Some("OUT"),
            help: "chase into a maintained fixpoint and persist it as a snapshot",
        },
    ],
    min_args: 0,
    max_args: 0,
};

const SERVE: Command = Command {
    name: "serve",
    args: "<snapshot.gsnap>",
    about: "Serve a snapshot over line-delimited JSON/TCP. With --ingest, build \
            the snapshot first from the given source flags, then serve it.",
    flags: &[
        Flag {
            name: "--addr",
            value: Some("HOST:PORT"),
            help: "bind address (default 127.0.0.1:7411)",
        },
        Flag {
            name: "--ingest",
            value: None,
            help: "build the snapshot from --rdf/--owl/--csv/--lubm before serving",
        },
        RDF_FLAG,
        OWL_FLAG,
        CSV_FLAG,
        LUBM_FLAG,
        SEED_FLAG,
        FULL_IRIS_FLAG,
        BUDGET_FLAG,
    ],
    min_args: 1,
    max_args: 1,
};

const GEN: Command = Command {
    name: "gen",
    args: "<workload>",
    about: "Generate a deterministic benchmark workload. Workloads: lubm \
            (university domain; ~1.3k atoms per university). Same --univ and \
            --seed produce byte-identical output.",
    flags: &[
        Flag {
            name: "--univ",
            value: Some("N"),
            help: "number of universities (default 1)",
        },
        SEED_FLAG,
        Flag {
            name: "--format",
            value: Some("FMT"),
            help: "ntriples (default) or facts (datalog text)",
        },
        Flag {
            name: "--out",
            value: Some("DIR"),
            help: "write data + ontology into DIR instead of stdout",
        },
    ],
    min_args: 1,
    max_args: 1,
};

// ------------------------------------------------------------------ helpers

fn read_source(arg: &str) -> Result<String, GtgdError> {
    if arg == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| GtgdError::Io {
                path: "<stdin>".to_string(),
                message: e.to_string(),
            })?;
        Ok(buf)
    } else {
        std::fs::read_to_string(arg).map_err(|e| GtgdError::Io {
            path: arg.to_string(),
            message: e.to_string(),
        })
    }
}

fn budget_from(p: &Parsed) -> Result<ChaseBudget, GtgdError> {
    Ok(match p.int_value("--budget")? {
        Some(0) => ChaseBudget::unbounded(),
        Some(n) => ChaseBudget::atoms(n as usize),
        None => ChaseBudget::atoms(10_000_000),
    })
}

/// Builds the ingestion source the shared `--rdf/--owl/--csv/--lubm`
/// flags describe. Exactly one source family must be selected.
fn source_from(p: &Parsed) -> Result<Box<dyn Source>, GtgdError> {
    let rdf = p.value("--rdf");
    let owl = p.value("--owl");
    let csv = p.value("--csv");
    let lubm = p.int_value("--lubm")?;
    let seed = p.int_value("--seed")?;
    let families =
        usize::from(rdf.is_some() || owl.is_some()) + usize::from(csv.is_some()) + usize::from(lubm.is_some());
    if families != 1 {
        return Err(GtgdError::Usage(
            "select exactly one source: --rdf [--owl], --csv, or --lubm".to_string(),
        ));
    }
    if seed.is_some() && lubm.is_none() {
        return Err(GtgdError::Usage("--seed only applies to --lubm".to_string()));
    }
    if p.has("--full-iris") && rdf.is_none() {
        return Err(GtgdError::Usage("--full-iris only applies to --rdf".to_string()));
    }
    if let Some(univ) = lubm {
        let mut cfg = LubmConfig::default();
        cfg.universities = univ as usize;
        if let Some(s) = seed {
            cfg.seed = s;
        }
        return Ok(Box::new(LubmSource::new(cfg)));
    }
    if let Some(manifest) = csv {
        return Ok(Box::new(CsvSource::from_path(Path::new(manifest))?));
    }
    let rdf_source = match rdf {
        Some(f) => Some(RdfSource::from_path(Path::new(f))?.full_iris(p.has("--full-iris"))),
        None => None,
    };
    match (owl, rdf_source) {
        (Some(f), abox) => {
            let mut s = OwlSource::from_path(Path::new(f))?;
            if let Some(abox) = abox {
                s = s.with_abox(abox);
            }
            Ok(Box::new(s))
        }
        (None, Some(r)) => Ok(Box::new(r)),
        (None, None) => unreachable!("families == 1 guarantees a source"),
    }
}

fn ingest_program(p: &Parsed) -> Result<Program, GtgdError> {
    let mut source = source_from(p)?;
    let program = ingest(&mut *source)?;
    println!(
        "ingested {}: {} fact(s), {} tgd(s), {} predicate(s)",
        program.name,
        program.facts.len(),
        program.tgds.len(),
        program.schema.iter().count()
    );
    Ok(program)
}

// -------------------------------------------------------------- subcommands

fn cmd_eval(p: &Parsed, maintain: bool) -> Result<(), GtgdError> {
    let src = read_source(&p.args[0])?;
    let trace = p.has("--trace");
    // Parse first so syntax failures classify as Script (exit 3), not Eval.
    let script = parse_script(&src).map_err(|e| GtgdError::Script(e.to_string()))?;
    if maintain || p.has("--maintain") {
        let run = || run_maintained(&script);
        let (result, report) = if trace {
            let (r, rep) = obs::trace_run(run);
            (r, Some(rep))
        } else {
            (run(), None)
        };
        let out = result.map_err(|e| GtgdError::Eval(e.to_string()))?;
        for step in &out.steps {
            println!("{step}");
        }
        println!(
            "maintained (open-world); {} answer(s); exact = {}",
            out.answers.len(),
            out.exact
        );
        for a in &out.answers {
            println!("  ({a})");
        }
        if let Some(rep) = report {
            eprintln!("{}", rep.to_json());
        }
        return Ok(());
    }
    let (result, report) = if trace {
        let (r, rep) = obs::trace_run(|| eval_script(&src));
        (r, Some(rep))
    } else {
        (eval_script(&src), None)
    };
    let out = result.map_err(|e| GtgdError::Eval(e.to_string()))?;
    let mode = match out.mode {
        Mode::Open => "open-world (OMQ)",
        Mode::Closed => "closed-world (CQS)",
    };
    let mut summary = format!(
        "{mode}; {} answer(s); exact = {}",
        out.answers.len(),
        out.exact
    );
    for a in &out.answers {
        summary.push_str(&format!("\n  ({a})"));
    }
    if p.has("--certify") {
        // Certificates own stdout; everything human goes to stderr.
        eprintln!("{summary}");
        let certs = certify_script(&script).map_err(|e| GtgdError::Eval(e.to_string()))?;
        eprintln!("{} certificate(s)", certs.len());
        println!("{}", certificates_to_json(&certs));
    } else {
        println!("{summary}");
    }
    if let Some(rep) = report {
        // The report goes to stderr so piped answer output stays clean.
        eprintln!("{}", rep.to_json());
    }
    Ok(())
}

fn cmd_snapshot(p: &Parsed) -> Result<(), GtgdError> {
    let src = read_source(&p.args[0])?;
    let out = &p.args[1];
    let script = parse_script(&src).map_err(|e| GtgdError::Script(e.to_string()))?;
    if script.mode == Mode::Closed {
        return Err(GtgdError::Eval(
            "snapshots are open-world only (closed mode has no chase to persist)".to_string(),
        ));
    }
    // Same budget discipline as `maintain`: an atom cap, never levels.
    let budget = budget_from(p)?;
    let mut m = ChaseRunner::new(&script.tgds)
        .budget(budget)
        .maintain(&script.facts);
    for op in &script.ops {
        match op {
            MaintOp::Insert(a) => {
                m.insert([a.clone()]);
            }
            MaintOp::Retract(a) => {
                m.retract([a.clone()]);
            }
        }
    }
    save_snapshot(out.as_ref(), &script.tgds, &m).map_err(|e| GtgdError::Storage(e.to_string()))?;
    println!(
        "snapshot {out}: {} atom(s), {} rule(s), complete = {}",
        m.instance().len(),
        script.tgds.len(),
        m.complete()
    );
    Ok(())
}

fn cmd_serve(p: &Parsed) -> Result<(), GtgdError> {
    let snap = &p.args[0];
    if p.has("--ingest") {
        let program = ingest_program(p)?;
        let m = program.maintain(budget_from(p)?);
        save_snapshot(snap.as_ref(), &program.tgds, &m)
            .map_err(|e| GtgdError::Storage(e.to_string()))?;
        println!(
            "snapshot {snap}: {} atom(s), complete = {}",
            m.instance().len(),
            m.complete()
        );
    }
    let addr = p.value("--addr").unwrap_or("127.0.0.1:7411");
    let server =
        Server::start(PathBuf::from(snap), addr).map_err(|e| GtgdError::Serve(e.to_string()))?;
    println!("serving {snap} on {}", server.local_addr());
    server.run().map_err(|e| GtgdError::Serve(e.to_string()))
}

fn cmd_ingest(p: &Parsed) -> Result<(), GtgdError> {
    let program = ingest_program(p)?;
    let budget = budget_from(p)?;
    if let Some(out) = p.value("--snapshot") {
        let m = program.maintain(budget);
        save_snapshot(out.as_ref(), &program.tgds, &m)
            .map_err(|e| GtgdError::Storage(e.to_string()))?;
        println!(
            "snapshot {out}: {} atom(s), complete = {}",
            m.instance().len(),
            m.complete()
        );
        return Ok(());
    }
    if let Some(q) = p.value("--query") {
        let q = gtgd::query::parse_cq(q).map_err(|e| GtgdError::Eval(e.to_string()))?;
        let out = program.chase(budget);
        println!(
            "chase: {} atom(s), complete = {}",
            out.instance.len(),
            out.complete
        );
        let mut answers: Vec<String> = Engine::prepare(&q)
            .answers(&out.instance)
            .into_iter()
            .map(|row| {
                row.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        answers.sort();
        println!("{} answer(s)", answers.len());
        for a in answers {
            println!("  ({a})");
        }
        return Ok(());
    }
    if p.has("--chase") {
        let out = program.chase(budget);
        println!(
            "chase: {} atom(s), complete = {}",
            out.instance.len(),
            out.complete
        );
    }
    Ok(())
}

fn cmd_gen(p: &Parsed) -> Result<(), GtgdError> {
    let workload = p.args[0].as_str();
    if workload != "lubm" {
        return Err(GtgdError::Usage(format!(
            "unknown workload `{workload}` (available: lubm)"
        )));
    }
    let mut cfg = LubmConfig::default();
    if let Some(n) = p.int_value("--univ")? {
        cfg.universities = n as usize;
    }
    if let Some(s) = p.int_value("--seed")? {
        cfg.seed = s;
    }
    let format = p.value("--format").unwrap_or("ntriples");
    let src = LubmSource::new(cfg);
    let write = |path: &Path, content: &str| -> Result<(), GtgdError> {
        std::fs::write(path, content).map_err(|e| GtgdError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    };
    match (format, p.value("--out")) {
        ("ntriples", None) => {
            print!("{}", src.ntriples());
            eprintln!(
                "lubm: {} universities, seed {}, {} atom(s)",
                cfg.universities,
                cfg.seed,
                src.atom_count()
            );
        }
        ("facts", None) => {
            print!("{}", src.datalog_facts());
            eprintln!(
                "lubm: {} universities, seed {}, {} atom(s)",
                cfg.universities,
                cfg.seed,
                src.atom_count()
            );
        }
        (fmt @ ("ntriples" | "facts"), Some(dir)) => {
            let dir = PathBuf::from(dir);
            std::fs::create_dir_all(&dir).map_err(|e| GtgdError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })?;
            let (data_file, onto_file) = if fmt == "ntriples" {
                let d = dir.join("data.nt");
                let o = dir.join("ontology.ofn");
                write(&d, &src.ntriples())?;
                write(&o, ONTOLOGY_OWL)?;
                (d, o)
            } else {
                let d = dir.join("data.gtgd");
                let o = dir.join("ontology.tgds");
                write(&d, &src.datalog_facts())?;
                write(&o, ONTOLOGY_TGDS)?;
                (d, o)
            };
            println!(
                "lubm: {} universities, seed {}, {} atom(s) -> {} + {}",
                cfg.universities,
                cfg.seed,
                src.atom_count(),
                data_file.display(),
                onto_file.display()
            );
        }
        (other, _) => {
            return Err(GtgdError::Usage(format!(
                "--format must be ntriples or facts, got `{other}`"
            )))
        }
    }
    Ok(())
}

// --------------------------------------------------------------------- main

fn top_help() -> String {
    let mut out = String::from(
        "gtgd — open- and closed-world query evaluation under guarded TGDs\n\n\
         usage:\n",
    );
    for c in [&EVAL, &MAINTAIN, &SNAPSHOT, &SERVE, &INGEST, &GEN] {
        out.push_str(&format!("  {}\n", c.usage()));
    }
    out.push_str("\n`gtgd <subcommand> --help` documents each surface.\n");
    out
}

fn dispatch(args: &[String]) -> Result<(), GtgdError> {
    let (cmd, rest): (&Command, &[String]) = match args.first().map(String::as_str) {
        None => return Err(GtgdError::Usage(top_help())),
        Some("--help") | Some("-h") if args.len() == 1 => {
            print!("{}", top_help());
            return Ok(());
        }
        Some("maintain") => (&MAINTAIN, &args[1..]),
        Some("snapshot") => (&SNAPSHOT, &args[1..]),
        Some("serve") => (&SERVE, &args[1..]),
        Some("ingest") => (&INGEST, &args[1..]),
        Some("gen") => (&GEN, &args[1..]),
        Some(_) => (&EVAL, args),
    };
    let parsed = match cmd.parse(rest)? {
        Invocation::Help(page) => {
            print!("{page}");
            return Ok(());
        }
        Invocation::Run(p) => p,
    };
    match cmd.name {
        "" => cmd_eval(&parsed, false),
        "maintain" => cmd_eval(&parsed, true),
        "snapshot" => cmd_snapshot(&parsed),
        "serve" => cmd_serve(&parsed),
        "ingest" => cmd_ingest(&parsed),
        "gen" => cmd_gen(&parsed),
        other => unreachable!("unrouted subcommand {other}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = dispatch(&args) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}
