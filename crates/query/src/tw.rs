//! Treewidth of conjunctive queries, under the paper's liberal convention
//! (Section 2): the treewidth of `q(x̄) = ∃ȳ ϕ(x̄, ȳ)` is the treewidth of
//! `G^q_{|ȳ}`, the subgraph of the query's Gaifman graph induced by the
//! **existentially quantified** variables only.

use crate::cq::{Cq, Ucq, Var};
use gtgd_treewidth::{is_treewidth_at_most, treewidth_exact, Graph};

/// The Gaifman graph of a CQ over **all** its variables. Returns the graph
/// and the vertex-id → variable mapping.
pub fn cq_gaifman(q: &Cq) -> (Graph, Vec<Var>) {
    let vars = q.all_vars();
    gaifman_over(q, &vars)
}

/// The subgraph of the Gaifman graph induced by the existential variables
/// (`G^q_{|ȳ}`), used for the paper's treewidth measure.
pub fn existential_gaifman(q: &Cq) -> (Graph, Vec<Var>) {
    let vars = q.existential_vars();
    gaifman_over(q, &vars)
}

fn gaifman_over(q: &Cq, vars: &[Var]) -> (Graph, Vec<Var>) {
    let mut g = Graph::new(vars.len());
    let id = |v: Var| vars.iter().position(|&u| u == v);
    for a in &q.atoms {
        let vs = a.vars();
        for (i, &u) in vs.iter().enumerate() {
            for &w in &vs[i + 1..] {
                if let (Some(ui), Some(wi)) = (id(u), id(w)) {
                    g.add_edge(ui, wi);
                }
            }
        }
    }
    (g, vars.to_vec())
}

/// The treewidth of a CQ per the paper's definition: the treewidth of
/// `G^q_{|ȳ}` — and 1 when that subgraph has no edges.
pub fn cq_treewidth(q: &Cq) -> usize {
    let (g, _) = existential_gaifman(q);
    if g.edge_count() == 0 {
        return 1;
    }
    treewidth_exact(&g).0
}

/// Whether the CQ is in `CQ_k` (treewidth at most `k`, `k ≥ 1`).
pub fn is_cq_treewidth_at_most(q: &Cq, k: usize) -> bool {
    assert!(k >= 1, "the classes CQ_k are defined for k ≥ 1");
    let (g, _) = existential_gaifman(q);
    if g.edge_count() == 0 {
        return true;
    }
    is_treewidth_at_most(&g, k).is_some()
}

/// The treewidth of a UCQ: the maximum over its disjuncts.
pub fn ucq_treewidth(q: &Ucq) -> usize {
    q.disjuncts.iter().map(cq_treewidth).max().unwrap_or(1)
}

/// Whether the UCQ is in `UCQ_k`.
pub fn is_ucq_treewidth_at_most(q: &Ucq, k: usize) -> bool {
    q.disjuncts.iter().all(|d| is_cq_treewidth_at_most(d, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_cq, parse_ucq};

    #[test]
    fn path_query_has_treewidth_one() {
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,W)").unwrap();
        assert_eq!(cq_treewidth(&q), 1);
        assert!(is_cq_treewidth_at_most(&q, 1));
    }

    #[test]
    fn triangle_query_has_treewidth_two() {
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        assert_eq!(cq_treewidth(&q), 2);
        assert!(!is_cq_treewidth_at_most(&q, 1));
        assert!(is_cq_treewidth_at_most(&q, 2));
    }

    #[test]
    fn clique4_query_has_treewidth_three() {
        let q = parse_cq("Q() :- E(A,B), E(A,C), E(A,D), E(B,C), E(B,D), E(C,D)").unwrap();
        assert_eq!(cq_treewidth(&q), 3);
    }

    #[test]
    fn answer_variables_do_not_count() {
        // The triangle is over X,Y,Z but X and Y are free: the induced
        // subgraph on existential variables is a single vertex Z — width 1
        // under the paper's convention.
        let q = parse_cq("Q(X,Y) :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        assert_eq!(cq_treewidth(&q), 1);
    }

    #[test]
    fn edgeless_existential_graph_is_width_one() {
        let q = parse_cq("Q(X) :- E(X,Y), E(X,Z)").unwrap();
        // Y and Z never co-occur without X.
        assert_eq!(cq_treewidth(&q), 1);
    }

    #[test]
    fn grid_query_width() {
        // 3x3 grid as a Boolean CQ: treewidth 3.
        let mut atoms = Vec::new();
        for i in 1..=3 {
            for j in 1..=3 {
                if j < 3 {
                    atoms.push(format!("H(V{i}{j}, V{i}{})", j + 1));
                }
                if i < 3 {
                    atoms.push(format!("V(V{i}{j}, V{}{j})", i + 1));
                }
            }
        }
        let q = parse_cq(&format!("Q() :- {}", atoms.join(", "))).unwrap();
        assert_eq!(cq_treewidth(&q), 3);
    }

    #[test]
    fn ucq_treewidth_is_max() {
        let u = parse_ucq("Q() :- E(X,Y), E(Y,Z), E(Z,X). Q() :- E(X,Y)").unwrap();
        assert_eq!(ucq_treewidth(&u), 2);
        assert!(!is_ucq_treewidth_at_most(&u, 1));
        assert!(is_ucq_treewidth_at_most(&u, 2));
    }

    #[test]
    fn gaifman_structure() {
        let q = parse_cq("Q() :- R(X,Y,Z)").unwrap();
        let (g, vars) = cq_gaifman(&q);
        assert_eq!(vars.len(), 3);
        assert_eq!(g.edge_count(), 3); // ternary atom = triangle
    }
}
