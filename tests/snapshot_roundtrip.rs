//! Snapshot round-trip properties (seeded, many instances): a maintained
//! fixpoint saved and loaded back must be isomorphic to the original,
//! answer prepared queries identically under both join strategies, and
//! re-serve its persisted indexes from cache instead of rebuilding them.
//! Damaged files must fail closed with the precise error for the damage.

use gtgd::chase::{parse_tgds, ChaseBudget, ChaseRunner, MaintainedInstance, Tgd};
use gtgd::data::{GroundAtom, Predicate, Rng, Symbol, Value};
use gtgd::query::{instance_isomorphic, parse_cq, Engine, Strategy};
use gtgd::storage::{load_snapshot, save_snapshot, SnapshotError, SNAPSHOT_VERSION};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "gtgd-roundtrip-{}-{}-{tag}.gsnap",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// An org-style workload: guarded rules with one existential, a seeded
/// base, and a seeded burst of inserts and retractions so the persisted
/// state includes DRed-compacted fired sets, not just a fresh chase.
fn seeded_fixture(seed: u64) -> (Vec<Tgd>, MaintainedInstance) {
    // Terminating rules: the existentials bottom out (nulls never
    // re-trigger `Emp`), so the fixpoint stays small and retraction fast.
    let tgds =
        parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> HasHead(D,H)")
            .unwrap();
    let mut rng = Rng::seed(seed);
    let n = rng.range(4, 12);
    let mut atoms = Vec::new();
    for i in 0..n {
        atoms.push(GroundAtom::named("Emp", &[&format!("rt{seed}_e{i}")]));
        if rng.chance(0.5) {
            atoms.push(GroundAtom::named(
                "WorksIn",
                &[&format!("rt{seed}_e{i}"), &format!("rt{seed}_d{}", i % 3)],
            ));
        }
    }
    let mut m = ChaseRunner::new(&tgds)
        .budget(ChaseBudget::atoms(100_000))
        .maintain(&gtgd::data::Instance::from_atoms(atoms));
    // Mutate: some inserts, some retractions of existing base facts.
    for i in 0..rng.range(2, 6) {
        m.insert([GroundAtom::named("Emp", &[&format!("rt{seed}_x{i}")])]);
    }
    for i in 0..rng.range(1, 4) {
        m.retract([GroundAtom::named("Emp", &[&format!("rt{seed}_e{i}")])]);
    }
    (tgds, m)
}

/// Saves, loads back, and checks every round-trip property for one
/// fixture. Queries are evaluated with *both* join strategies on both
/// sides; in-process ids are stable, so answers must be bit-identical.
fn assert_round_trips(tag: &str, tgds: &[Tgd], m: &MaintainedInstance) {
    let queries = [
        "Q(X) :- Emp(X)",
        "Q(X, D) :- Emp(X), WorksIn(X, D)",
        "Q(D, H) :- Dept(D), HasHead(D, H)",
    ];
    // Warm a sorted index so the snapshot has a permutation section.
    let worksin = Predicate(Symbol::new("WorksIn"));
    m.instance().sorted_permutation(worksin, 2, &[1, 0]);
    let stats_before = m.instance().index_stats();

    let path = temp_path(tag);
    save_snapshot(&path, tgds, m).unwrap();
    let loaded = load_snapshot(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert!(
        instance_isomorphic(m.instance(), loaded.instance()),
        "{tag}: loaded instance must be isomorphic"
    );
    for q in queries {
        let cq = parse_cq(q).unwrap();
        for s in [Strategy::Backtrack, Strategy::Wcoj] {
            let orig = Engine::prepare(&cq).strategy(s).answers(m.instance());
            let back = Engine::prepare(&cq).strategy(s).answers(loaded.instance());
            assert_eq!(orig, back, "{tag}: answers differ for {q} under {s:?}");
        }
    }
    // Index rebuild behavior: every persisted permutation installed (same
    // process → same interning order → validation passes), and demanding
    // the persisted order again is a cache hit, not a rebuild.
    assert_eq!(
        loaded.indexes_installed, stats_before.indexes,
        "{tag}: all persisted indexes install"
    );
    let after_load = loaded.instance().index_stats();
    assert_eq!(after_load.full_builds, loaded.indexes_installed);
    loaded.instance().sorted_permutation(worksin, 2, &[1, 0]);
    let after_demand = loaded.instance().index_stats();
    assert_eq!(
        after_demand.full_builds, after_load.full_builds,
        "{tag}: re-demanding a persisted index must not rebuild it"
    );
    assert_eq!(after_demand.merge_extends, after_load.merge_extends);
    // Thawing for writes validates the persisted fired set and yields the
    // same (isomorphic) maintainable state.
    let thawed = loaded.into_maintained().unwrap();
    assert!(
        instance_isomorphic(m.instance(), thawed.instance()),
        "{tag}: thawed instance must be isomorphic"
    );
}

#[test]
fn seeded_fixtures_round_trip() {
    for seed in [1, 2, 3, 4, 5] {
        let (tgds, m) = seeded_fixture(seed);
        assert_round_trips(&format!("seed{seed}"), &tgds, &m);
    }
}

#[test]
fn post_remap_dense_state_round_trips() {
    // Force an order-preserving dictionary remap: intern a symbol *early*
    // (low id), build the dense dictionary without it, then insert a fact
    // mentioning it — the fresh dict entry sorts before existing ones.
    let early = Value::named("remap_aa_early");
    let tgds = parse_tgds("Edge(X,Y) -> Node(X), Node(Y)").unwrap();
    let mut m = ChaseRunner::new(&tgds)
        .budget(ChaseBudget::atoms(100_000))
        .maintain(&gtgd::data::Instance::from_atoms([GroundAtom::named(
            "Edge",
            &["remap_zz1", "remap_zz2"],
        )]));
    let edge = Predicate(Symbol::new("Edge"));
    m.instance().dense_snapshot(&[(edge, 2, &[0, 1])]);
    assert_eq!(m.instance().dense_stats().remaps, 0);
    m.insert([GroundAtom::new(
        edge,
        vec![early, Value::named("remap_zz3")],
    )]);
    m.instance().dense_snapshot(&[(edge, 2, &[0, 1])]);
    let stats = m.instance().dense_stats();
    assert!(stats.remaps >= 1, "fixture must actually remap");

    let path = temp_path("remap");
    save_snapshot(&path, &tgds, &m).unwrap();
    let loaded = load_snapshot(&path).unwrap();
    std::fs::remove_file(&path).ok();
    // The remapped dense state is still strictly ascending, so it
    // installs, counters included.
    assert!(loaded.dense_tables_installed >= 1);
    assert_eq!(loaded.dense_tries_installed, 1);
    assert_eq!(loaded.instance().dense_stats().remaps, stats.remaps);
    assert!(instance_isomorphic(m.instance(), loaded.instance()));
}

#[test]
fn damaged_files_fail_closed_with_precise_errors() {
    let (tgds, m) = seeded_fixture(99);
    let path = temp_path("damage");
    save_snapshot(&path, &tgds, &m).unwrap();
    let good = std::fs::read(&path).unwrap();

    // Truncated: cut the file mid-payload.
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    assert!(matches!(
        load_snapshot(&path),
        Err(SnapshotError::Truncated)
    ));

    // Corrupt: flip one payload byte; the checksum catches it.
    let mut corrupt = good.clone();
    let mid = 28 + (corrupt.len() - 28) / 2;
    corrupt[mid] ^= 0x40;
    std::fs::write(&path, &corrupt).unwrap();
    assert!(matches!(
        load_snapshot(&path),
        Err(SnapshotError::ChecksumMismatch)
    ));

    // Version bump: reported as unsupported, not as corruption.
    let mut bumped = good.clone();
    bumped[8] = bumped[8].wrapping_add(3);
    std::fs::write(&path, &bumped).unwrap();
    assert!(matches!(
        load_snapshot(&path),
        Err(SnapshotError::UnsupportedVersion(v)) if v == SNAPSHOT_VERSION + 3
    ));

    // Not a snapshot at all.
    std::fs::write(&path, b"mode open.\nfact Emp(ann).\n").unwrap();
    assert!(matches!(load_snapshot(&path), Err(SnapshotError::BadMagic)));

    // Missing file surfaces the io error.
    std::fs::remove_file(&path).ok();
    assert!(matches!(load_snapshot(&path), Err(SnapshotError::Io(_))));
}
