//! SQL-style CSV frontend: a plain-text **manifest** declares tables,
//! keys, and inclusion dependencies; the data rides in ordinary CSV
//! files (or inline blocks for tests). The constraint story mirrors the
//! paper's database setting:
//!
//! * `key Emp(id)` — a primary key, enforced as the EGD
//!   `Emp(x̄,ȳ) ∧ Emp(x̄,ȳ′) → ȳ = ȳ′` *during streaming*: two rows that
//!   agree on the key but differ elsewhere are an unrepairable violation
//!   (the EGD equates distinct named constants), reported with both line
//!   numbers. Exact duplicate rows are fine — they dedup in the instance.
//! * `include Emp(dept) -> Dept(id)` — an inclusion dependency, lowered
//!   to the linear (hence guarded) TGD
//!   `Emp(x₁..xₙ) → ∃z̄ Dept(..)` where head positions not covered by the
//!   mapping become existential variables.
//!
//! Manifest grammar (one declaration per line, `#` comments):
//!
//! ```text
//! table Emp(id, name, dept) from emp.csv with header
//! key   Emp(id)
//! include Emp(dept) -> Dept(id)
//! ```

use crate::error::IngestError;
use crate::source::{FactSink, Source, SourceSchema};
use gtgd_chase::Tgd;
use gtgd_data::{GroundAtom, Predicate, Schema, Value};
use gtgd_query::{QAtom, Term, Var};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// One declared table.
#[derive(Debug, Clone)]
struct Table {
    name: String,
    columns: Vec<String>,
    /// The CSV file the rows come from (resolved against the manifest's
    /// directory unless shadowed by an inline block).
    file: String,
    /// Whether the first data line is a header to validate and skip.
    header: bool,
    /// Key column indices (empty = no key declared).
    key: Vec<usize>,
}

/// An inclusion dependency `Src(cols) -> Dst(cols)`.
#[derive(Debug, Clone)]
struct Inclusion {
    src: String,
    src_cols: Vec<String>,
    dst: String,
    dst_cols: Vec<String>,
    line: usize,
}

/// A CSV-with-manifest dataset as an ingestion source.
pub struct CsvSource {
    name: String,
    manifest: String,
    /// Directory `from` paths resolve against.
    base: PathBuf,
    /// Inline data blocks keyed by file name (tests, generators).
    inline: HashMap<String, String>,
}

impl CsvSource {
    /// A source over in-memory manifest text. File references resolve
    /// against `base` unless shadowed by [`CsvSource::with_inline`].
    pub fn from_manifest_str(name: &str, manifest: &str) -> CsvSource {
        CsvSource {
            name: name.to_string(),
            manifest: manifest.to_string(),
            base: PathBuf::from("."),
            inline: HashMap::new(),
        }
    }

    /// A source reading the manifest at `path`; CSV files resolve
    /// relative to its directory.
    pub fn from_path(path: &Path) -> Result<CsvSource, IngestError> {
        let manifest = std::fs::read_to_string(path).map_err(|e| IngestError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(CsvSource {
            name: path.display().to_string(),
            manifest,
            base: path.parent().unwrap_or(Path::new(".")).to_path_buf(),
            inline: HashMap::new(),
        })
    }

    /// Shadows `file` with inline CSV text (no disk access).
    pub fn with_inline(mut self, file: &str, csv: &str) -> CsvSource {
        self.inline.insert(file.to_string(), csv.to_string());
        self
    }

    fn parse_manifest(&self) -> Result<(Vec<Table>, Vec<Inclusion>), IngestError> {
        let mut tables: Vec<Table> = Vec::new();
        let mut inclusions: Vec<Inclusion> = Vec::new();
        for (i, raw) in self.manifest.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| IngestError::Manifest {
                line: lineno,
                message,
            };
            if let Some(rest) = line.strip_prefix("table ") {
                let (name, cols, rest) = parse_sig(rest).map_err(&err)?;
                let rest = rest.trim();
                let Some(rest) = rest.strip_prefix("from ") else {
                    return Err(err(format!(
                        "expected `from <file>` after table {name}(...)"
                    )));
                };
                let (file, header) = match rest.trim().strip_suffix("with header") {
                    Some(f) => (f.trim(), true),
                    None => (rest.trim(), false),
                };
                if file.is_empty() {
                    return Err(err("missing file name after `from`".to_string()));
                }
                if tables.iter().any(|t| t.name == name) {
                    return Err(err(format!("table {name} declared twice")));
                }
                let mut seen = std::collections::HashSet::new();
                for c in &cols {
                    if !seen.insert(c.clone()) {
                        return Err(err(format!("duplicate column `{c}` in table {name}")));
                    }
                }
                tables.push(Table {
                    name,
                    columns: cols,
                    file: file.to_string(),
                    header,
                    key: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix("key ") {
                let (name, cols, rest) = parse_sig(rest).map_err(&err)?;
                if !rest.trim().is_empty() {
                    return Err(err(format!("unexpected trailing `{}`", rest.trim())));
                }
                let Some(table) = tables.iter_mut().find(|t| t.name == name) else {
                    return Err(err(format!(
                        "key declared for unknown table {name} (declare the table first)"
                    )));
                };
                if !table.key.is_empty() {
                    return Err(err(format!("table {name} already has a key")));
                }
                let mut key = Vec::new();
                for c in &cols {
                    match table.columns.iter().position(|tc| tc == c) {
                        Some(idx) => key.push(idx),
                        None => {
                            return Err(err(format!("key column `{c}` is not a column of {name}")))
                        }
                    }
                }
                if key.is_empty() {
                    return Err(err(format!("key of {name} needs at least one column")));
                }
                table.key = key;
            } else if let Some(rest) = line.strip_prefix("include ") {
                let Some((src_part, dst_part)) = rest.split_once("->") else {
                    return Err(err(
                        "expected `include Src(cols) -> Dst(cols)`".to_string()
                    ));
                };
                let (src, src_cols, tail) = parse_sig(src_part).map_err(&err)?;
                if !tail.trim().is_empty() {
                    return Err(err(format!("unexpected `{}` before ->", tail.trim())));
                }
                let (dst, dst_cols, tail) = parse_sig(dst_part).map_err(&err)?;
                if !tail.trim().is_empty() {
                    return Err(err(format!("unexpected trailing `{}`", tail.trim())));
                }
                if src_cols.len() != dst_cols.len() {
                    return Err(err(format!(
                        "inclusion maps {} source columns to {} target columns",
                        src_cols.len(),
                        dst_cols.len()
                    )));
                }
                if src_cols.is_empty() {
                    return Err(err("inclusion needs at least one column".to_string()));
                }
                inclusions.push(Inclusion {
                    src,
                    src_cols,
                    dst,
                    dst_cols,
                    line: lineno,
                });
            } else {
                return Err(err(format!(
                    "unrecognized declaration `{}` (expected table/key/include)",
                    line.split_whitespace().next().unwrap_or(line)
                )));
            }
        }
        if tables.is_empty() {
            return Err(IngestError::Manifest {
                line: 1,
                message: "manifest declares no tables".to_string(),
            });
        }
        Ok((tables, inclusions))
    }

    /// Lowers an inclusion dependency to a linear TGD. Unmapped head
    /// positions become existential variables.
    fn lower_inclusion(
        inc: &Inclusion,
        tables: &[Table],
    ) -> Result<Tgd, IngestError> {
        let err = |message: String| IngestError::Manifest {
            line: inc.line,
            message,
        };
        let src = tables
            .iter()
            .find(|t| t.name == inc.src)
            .ok_or_else(|| err(format!("inclusion source {} is not a declared table", inc.src)))?;
        let dst = tables
            .iter()
            .find(|t| t.name == inc.dst)
            .ok_or_else(|| err(format!("inclusion target {} is not a declared table", inc.dst)))?;
        // Body: Src(x0..xn) with one universal variable per column.
        let mut names: Vec<String> = src.columns.iter().map(|c| format!("x_{c}")).collect();
        let body = vec![QAtom::new(
            Predicate::new(&src.name),
            (0..src.columns.len())
                .map(|i| Term::Var(Var(i as u32)))
                .collect(),
        )];
        // Head: Dst(...) — mapped positions reuse body variables, the
        // rest are fresh existentials.
        let mut head_terms: Vec<Option<Term>> = vec![None; dst.columns.len()];
        for (sc, dc) in inc.src_cols.iter().zip(&inc.dst_cols) {
            let si = src
                .columns
                .iter()
                .position(|c| c == sc)
                .ok_or_else(|| err(format!("`{sc}` is not a column of {}", src.name)))?;
            let di = dst
                .columns
                .iter()
                .position(|c| c == dc)
                .ok_or_else(|| err(format!("`{dc}` is not a column of {}", dst.name)))?;
            if head_terms[di].is_some() {
                return Err(err(format!("target column `{dc}` mapped twice")));
            }
            head_terms[di] = Some(Term::Var(Var(si as u32)));
        }
        let head_terms: Vec<Term> = head_terms
            .into_iter()
            .enumerate()
            .map(|(di, t)| {
                t.unwrap_or_else(|| {
                    let v = Var(names.len() as u32);
                    names.push(format!("z_{}", dst.columns[di]));
                    Term::Var(v)
                })
            })
            .collect();
        let head = vec![QAtom::new(Predicate::new(&dst.name), head_terms)];
        Ok(Tgd::new(names, body, head))
    }

    fn stream_table(
        &self,
        table: &Table,
        sink: &mut dyn FactSink,
    ) -> Result<(), IngestError> {
        let file = table.file.clone();
        let text: String = match self.inline.get(&file) {
            Some(t) => t.clone(),
            None => {
                let path = self.base.join(&file);
                std::fs::read_to_string(&path).map_err(|e| IngestError::Io {
                    path: path.display().to_string(),
                    message: format!("{e} (referenced by table {} in the manifest)", table.name),
                })?
            }
        };
        let pred = Predicate::new(&table.name);
        let arity = table.columns.len();
        // Key enforcement: key values -> (first line, non-key values).
        let mut key_index: HashMap<Vec<String>, (usize, Vec<String>)> = HashMap::new();
        let mut lines = text.lines().enumerate();
        if table.header {
            match lines.next() {
                Some((_, h)) => {
                    let fields = split_csv_line(h, &file, 1)?;
                    if fields != table.columns {
                        return Err(IngestError::Csv {
                            file,
                            line: 1,
                            message: format!(
                                "header ({}) does not match declared columns ({})",
                                fields.join(", "),
                                table.columns.join(", ")
                            ),
                        });
                    }
                }
                None => {
                    return Err(IngestError::Csv {
                        file,
                        line: 1,
                        message: "file is empty but `with header` was declared".to_string(),
                    })
                }
            }
        }
        for (i, raw) in lines {
            let lineno = i + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let fields = split_csv_line(raw, &file, lineno)?;
            if fields.len() != arity {
                return Err(IngestError::Csv {
                    file,
                    line: lineno,
                    message: format!(
                        "table {} declares {arity} columns but row has {} fields",
                        table.name,
                        fields.len()
                    ),
                });
            }
            if !table.key.is_empty() {
                let key_vals: Vec<String> =
                    table.key.iter().map(|&k| fields[k].clone()).collect();
                let rest: Vec<String> = (0..arity)
                    .filter(|i| !table.key.contains(i))
                    .map(|i| fields[i].clone())
                    .collect();
                match key_index.get(&key_vals) {
                    Some((first_line, prev_rest)) if *prev_rest != rest => {
                        return Err(IngestError::KeyViolation {
                            table: table.name.clone(),
                            key: table.key.iter().map(|&k| table.columns[k].clone()).collect(),
                            key_values: key_vals.join(", "),
                            first_line: *first_line,
                            second_line: lineno,
                        });
                    }
                    Some(_) => {} // exact duplicate row: dedups downstream
                    None => {
                        key_index.insert(key_vals, (lineno, rest));
                    }
                }
            }
            sink.push(GroundAtom {
                predicate: pred,
                args: fields.iter().map(|f| Value::named(f)).collect(),
            })?;
        }
        Ok(())
    }
}

impl Source for CsvSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&mut self) -> Result<SourceSchema, IngestError> {
        let (tables, inclusions) = self.parse_manifest()?;
        let mut schema = Schema::new();
        for t in &tables {
            schema.add(Predicate::new(&t.name), t.columns.len());
        }
        let mut tgds = Vec::new();
        for inc in &inclusions {
            tgds.push(Self::lower_inclusion(inc, &tables)?);
        }
        Ok(SourceSchema { schema, tgds })
    }

    fn facts(&mut self, sink: &mut dyn FactSink) -> Result<(), IngestError> {
        let (tables, _) = self.parse_manifest()?;
        for t in &tables {
            self.stream_table(t, sink)?;
        }
        Ok(())
    }
}

/// Parses `Name(c1, c2, ...)` returning the name, columns, and the
/// remainder of the line.
fn parse_sig(src: &str) -> Result<(String, Vec<String>, &str), String> {
    let src = src.trim_start();
    let open = src
        .find('(')
        .ok_or_else(|| format!("expected `Name(columns...)`, found `{src}`"))?;
    let name = src[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(format!("bad table name `{name}`"));
    }
    let rest = &src[open + 1..];
    let close = rest
        .find(')')
        .ok_or_else(|| format!("unclosed `(` after {name}"))?;
    let cols: Vec<String> = rest[..close]
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();
    if cols.is_empty() {
        return Err(format!("table {name} needs at least one column"));
    }
    for c in &cols {
        if !c.chars().all(|ch| ch.is_alphanumeric() || ch == '_') {
            return Err(format!("bad column name `{c}`"));
        }
    }
    Ok((name.to_string(), cols, &rest[close + 1..]))
}

/// Splits one CSV line: commas separate fields, double quotes protect
/// commas and quotes (RFC 4180's `""` escape), surrounding whitespace of
/// unquoted fields is trimmed.
fn split_csv_line(line: &str, file: &str, lineno: usize) -> Result<Vec<String>, IngestError> {
    let err = |message: String| IngestError::Csv {
        file: file.to_string(),
        line: lineno,
        message,
    };
    let bytes = line.as_bytes();
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut i = 0usize;
    loop {
        // One field: quoted or bare.
        if bytes.get(i) == Some(&b'"') {
            i += 1;
            loop {
                match bytes.get(i) {
                    Some(b'"') if bytes.get(i + 1) == Some(&b'"') => {
                        field.push('"');
                        i += 2;
                    }
                    Some(b'"') => {
                        i += 1;
                        break;
                    }
                    Some(_) => {
                        // Copy the full UTF-8 character.
                        let ch = line[i..].chars().next().expect("in bounds");
                        field.push(ch);
                        i += ch.len_utf8();
                    }
                    None => return Err(err("unterminated quoted field".to_string())),
                }
            }
            // Only a separator or end may follow a closing quote.
            match bytes.get(i) {
                None | Some(b',') => {}
                Some(_) => {
                    return Err(err(
                        "unexpected text after closing quote (missing comma?)".to_string()
                    ))
                }
            }
        } else {
            let start = i;
            while i < bytes.len() && bytes[i] != b',' {
                if bytes[i] == b'"' {
                    return Err(err(
                        "bare `\"` inside unquoted field (quote the whole field)".to_string(),
                    ));
                }
                i += 1;
            }
            field.push_str(line[start..i].trim());
        }
        fields.push(std::mem::take(&mut field));
        match bytes.get(i) {
            Some(b',') => i += 1,
            None => return Ok(fields),
            Some(_) => unreachable!("field parser stops at `,` or end"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ingest;
    use gtgd_chase::ChaseBudget;

    const MANIFEST: &str = "\
# a two-table schema with a key and an inclusion dependency\n\
table Emp(id, name, dept) from emp.csv with header\n\
key   Emp(id)\n\
table Dept(id, city) from dept.csv\n\
key   Dept(id)\n\
include Emp(dept) -> Dept(id)\n";

    fn source(emp: &str, dept: &str) -> CsvSource {
        CsvSource::from_manifest_str("test", MANIFEST)
            .with_inline("emp.csv", emp)
            .with_inline("dept.csv", dept)
    }

    #[test]
    fn tables_keys_and_inclusions_ingest() {
        let mut s = source(
            "id,name,dept\ne1,Ann,sales\ne2,Bob,hr\n",
            "sales,Paris\n",
        );
        let p = ingest(&mut s).unwrap();
        assert_eq!(p.facts.len(), 3);
        assert_eq!(p.tgds.len(), 1);
        // The inclusion dep invents the missing hr department (with a
        // null city) when chased. The default oblivious chase also fires
        // for sales, so Dept holds the base row plus two null-witnessed
        // rows; what matters is that hr now appears.
        let out = p.chase(ChaseBudget::unbounded());
        assert!(out.complete);
        let dept_keys: Vec<String> = out
            .instance
            .iter()
            .filter(|a| a.predicate == Predicate::new("Dept"))
            .map(|a| a.args[0].to_string())
            .collect();
        assert!(dept_keys.iter().any(|k| k == "hr"), "{dept_keys:?}");
        assert!(dept_keys.iter().any(|k| k == "sales"), "{dept_keys:?}");
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let mut s = CsvSource::from_manifest_str(
            "t",
            "table T(a, b) from t.csv\n",
        )
        .with_inline("t.csv", "\"x, y\",\"he said \"\"hi\"\"\"\nplain , trimmed\n");
        let p = ingest(&mut s).unwrap();
        let rows: Vec<String> = p.facts.iter().map(|a| a.to_string()).collect();
        assert!(rows.contains(&"T(x, y,he said \"hi\")".to_string()), "{rows:?}");
        assert!(rows.contains(&"T(plain,trimmed)".to_string()), "{rows:?}");
    }

    #[test]
    fn key_violation_reports_both_lines() {
        let mut s = source(
            "id,name,dept\ne1,Ann,sales\ne1,Ann,hr\n",
            "sales,Paris\n",
        );
        let e = ingest(&mut s).unwrap_err();
        match &e {
            IngestError::KeyViolation {
                table,
                first_line,
                second_line,
                ..
            } => {
                assert_eq!(table, "Emp");
                assert_eq!((*first_line, *second_line), (2, 3), "{e}");
            }
            other => panic!("expected KeyViolation, got {other}"),
        }
        // Exact duplicates are not violations.
        let mut s = source(
            "id,name,dept\ne1,Ann,sales\ne1,Ann,sales\n",
            "sales,Paris\n",
        );
        let p = ingest(&mut s).unwrap();
        assert_eq!(p.facts.len(), 2);
    }

    #[test]
    fn malformed_manifests_are_line_precise() {
        for (manifest, line, needle) in [
            ("tabel Emp(id) from e.csv", 1, "unrecognized declaration"),
            ("table Emp(id)", 1, "expected `from"),
            ("table Emp() from e.csv", 1, "at least one column"),
            ("table Emp(id) from e.csv\nkey Emp(nope)", 2, "not a column"),
            ("key Emp(id)", 1, "unknown table"),
            (
                "table Emp(id) from e.csv\ninclude Emp(id) -> Dept(id)",
                2,
                "not a declared table",
            ),
            (
                "table Emp(id) from e.csv\ntable Dept(a,b) from d.csv\ninclude Emp(id) -> Dept(a,b)",
                3,
                "1 source columns to 2",
            ),
            ("", 1, "no tables"),
        ] {
            let e = ingest(&mut CsvSource::from_manifest_str("t", manifest)).unwrap_err();
            match &e {
                IngestError::Manifest { line: l, message } => {
                    assert_eq!(*l, line, "{manifest}: {e}");
                    assert!(message.contains(needle), "{manifest}: {e}");
                }
                other => panic!("{manifest}: expected Manifest error, got {other}"),
            }
        }
    }

    #[test]
    fn malformed_csv_is_file_and_line_precise() {
        // Arity mismatch.
        let mut s = source("id,name,dept\ne1,Ann\n", "sales,Paris\n");
        let e = ingest(&mut s).unwrap_err();
        match &e {
            IngestError::Csv { file, line, message } => {
                assert_eq!((file.as_str(), *line), ("emp.csv", 2), "{e}");
                assert!(message.contains("3 columns"), "{e}");
            }
            other => panic!("expected Csv error, got {other}"),
        }
        // Header mismatch.
        let mut s = source("id,nom,dept\n", "sales,Paris\n");
        let e = ingest(&mut s).unwrap_err();
        assert!(e.to_string().contains("header"), "{e}");
        // Unterminated quote.
        let mut s = source("id,name,dept\ne1,\"Ann,sales\n", "sales,Paris\n");
        let e = ingest(&mut s).unwrap_err();
        assert!(e.to_string().contains("unterminated quoted field"), "{e}");
        // Missing data file.
        let mut s = CsvSource::from_manifest_str("t", "table T(a) from missing.csv\n");
        let e = ingest(&mut s).unwrap_err();
        assert!(matches!(e, IngestError::Io { .. }), "{e}");
    }

    #[test]
    fn inclusion_head_existentials_are_fresh_per_head_position() {
        // Dept has 2 columns, only id is mapped; the TGD head must use an
        // existential for city.
        let s = CsvSource::from_manifest_str("t", MANIFEST);
        let mut s = s
            .with_inline("emp.csv", "id,name,dept\ne1,Ann,sales\n")
            .with_inline("dept.csv", "");
        let p = ingest(&mut s).unwrap();
        let tgd = &p.tgds[0];
        let s = tgd.to_string();
        assert!(s.contains("Emp(") && s.contains("Dept("), "{s}");
    }
}
