//! E3 — Prop 3.3(3): FPT OMQ evaluation in `(G, UCQ_1)` — polynomial in
//! `|D|` for a fixed OMQ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtgd_bench::workloads::{org_db, org_ontology, val};
use gtgd_core::{check_omq_fpt, EvalConfig, Omq};
use gtgd_query::parse_ucq;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_omq_fpt");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let q = Omq::full_schema(
        org_ontology(),
        parse_ucq("Q(X) :- Emp(X), WorksIn(X,D), HasMgr(D,M)").unwrap(),
    );
    let cfg = EvalConfig::default();
    for &n in &[25usize, 100, 400] {
        let db = org_db(n);
        group.bench_with_input(BenchmarkId::new("check_fpt", n), &db, |b, db| {
            b.iter(|| check_omq_fpt(&q, db, &[val("e0")], &cfg))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
