//! Property testing of `Instance` index invariants under random
//! interleavings of `insert` / `extend_from` / `restrict_to` /
//! `map_values` (a seeded loop over [`Rng`]; the build is offline, so no
//! proptest):
//!
//! * every `(predicate, position, value)` index entry round-trips to the
//!   atoms it names, and every atom is reachable through each of its
//!   argument positions;
//! * `dom()` is exactly the set of argument values, deduplicated in
//!   first-occurrence order;
//! * the columnar arena mirrors per-predicate insertion order;
//! * sorted permutation indexes agree with a naive argsort of the columns
//!   and are maintained *incrementally* — a chase run never full-re-sorts
//!   an index whose predicate only received insert deltas (asserted by the
//!   `full_builds` / `merge_extends` counter tests at the bottom).

use gtgd::chase::{chase, parse_tgds, ChaseBudget};
use gtgd::data::{GroundAtom, Instance, Predicate, Rng, Value};
use std::collections::{HashMap, HashSet};

fn dom_pool() -> Vec<Value> {
    ["a", "b", "c", "d", "e", "f"]
        .iter()
        .map(|s| Value::named(s))
        .collect()
}

fn preds() -> Vec<(Predicate, usize)> {
    vec![
        (Predicate::new("U"), 1),
        (Predicate::new("E"), 2),
        (Predicate::new("T"), 3),
    ]
}

fn arb_atom(rng: &mut Rng) -> GroundAtom {
    let d = dom_pool();
    let ps = preds();
    let (p, k) = ps[rng.below(ps.len() as u64) as usize];
    let args: Vec<Value> = (0..k).map(|_| d[rng.below(6) as usize]).collect();
    GroundAtom::new(p, args)
}

/// Reference model: the deduplicated atom sequence in insertion order.
/// Every instance operation is mirrored here with the obvious O(n²)
/// implementation, and the real `Instance` must agree on everything.
fn model_insert(model: &mut Vec<GroundAtom>, a: GroundAtom) {
    if !model.contains(&a) {
        model.push(a);
    }
}

/// Naive argsort of a predicate's columns under a column order: sort row
/// ids by the key tuple, ties broken by row id (the contract documented on
/// `SortedPermutation`).
fn naive_perm(inst: &Instance, p: Predicate, arity: usize, order: &[u16]) -> Vec<u32> {
    let Some(pc) = inst.columns(p, arity) else {
        return Vec::new();
    };
    let mut ids: Vec<u32> = (0..pc.rows() as u32).collect();
    ids.sort_by_key(|&r| {
        let key: Vec<Value> = order
            .iter()
            .map(|&j| pc.col(j as usize)[r as usize])
            .collect();
        (key, r)
    });
    ids
}

fn check_invariants(inst: &Instance, model: &[GroundAtom], ctx: &str) {
    // The atom store is the model, exactly and in order.
    assert_eq!(inst.len(), model.len(), "len {ctx}");
    for (i, a) in model.iter().enumerate() {
        assert_eq!(inst.atom(i), a, "atom {i} {ctx}");
        assert!(inst.contains(a), "contains {ctx}");
    }

    // dom(): exact value set, first-occurrence order, no duplicates.
    let mut expected_dom: Vec<Value> = Vec::new();
    for a in model {
        for &v in &a.args {
            if !expected_dom.contains(&v) {
                expected_dom.push(v);
            }
        }
    }
    assert_eq!(inst.dom(), expected_dom.as_slice(), "dom {ctx}");
    for &v in &expected_dom {
        assert!(inst.dom_contains(v), "dom_contains {ctx}");
    }

    // (predicate, position, value) round-trip, both directions, and the
    // count accessor agrees with the id list.
    let mut expected_ids: HashMap<(Predicate, usize, Value), Vec<usize>> = HashMap::new();
    for (i, a) in model.iter().enumerate() {
        for (pos, &v) in a.args.iter().enumerate() {
            expected_ids
                .entry((a.predicate, pos, v))
                .or_default()
                .push(i);
        }
    }
    for ((p, pos, v), ids) in &expected_ids {
        assert_eq!(
            inst.atoms_matching(*p, *pos, *v),
            ids.as_slice(),
            "ids {ctx}"
        );
        assert_eq!(inst.index_count(*p, *pos, *v), ids.len(), "count {ctx}");
    }
    // Absent keys report empty (a value in dom but never at this slot).
    let ghost = Value::named("never-inserted");
    for (p, k) in preds() {
        for pos in 0..k {
            if !expected_ids.contains_key(&(p, pos, ghost)) {
                assert!(inst.atoms_matching(p, pos, ghost).is_empty(), "ghost {ctx}");
                assert_eq!(inst.index_count(p, pos, ghost), 0, "ghost count {ctx}");
            }
        }
    }

    // Columnar arena mirrors per-predicate insertion order, and the sorted
    // permutations agree with a naive argsort under several column orders.
    for (p, k) in preds() {
        let expected_rows: Vec<&GroundAtom> = model
            .iter()
            .filter(|a| a.predicate == p && a.args.len() == k)
            .collect();
        match inst.columns(p, k) {
            None => assert!(expected_rows.is_empty(), "missing columns {ctx}"),
            Some(pc) => {
                assert_eq!(pc.rows(), expected_rows.len(), "rows {ctx}");
                for j in 0..k {
                    for (r, a) in expected_rows.iter().enumerate() {
                        assert_eq!(pc.col(j)[r], a.args[j], "col {j} row {r} {ctx}");
                    }
                }
            }
        }
        let forward: Vec<u16> = (0..k as u16).collect();
        let reverse: Vec<u16> = (0..k as u16).rev().collect();
        for order in [forward, reverse] {
            let perm = inst.sorted_permutation(p, k, &order);
            assert_eq!(perm.perm(), naive_perm(inst, p, k, &order), "perm {ctx}");
            // A permutation is a bijection on row ids.
            let distinct: HashSet<u32> = perm.perm().iter().copied().collect();
            assert_eq!(distinct.len(), perm.len(), "perm bijection {ctx}");
        }
    }
}

#[test]
fn instance_invariants_under_random_interleavings() {
    let mut rng = Rng::seed(0xbeef_f00d);
    let d = dom_pool();
    for round in 0..24u32 {
        let mut inst = Instance::new();
        let mut model: Vec<GroundAtom> = Vec::new();
        let n_ops = 6 + rng.below(14);
        for op in 0..n_ops {
            let ctx = format!("round {round} op {op}");
            match rng.below(10) {
                // insert: the common case, weighted accordingly.
                0..=5 => {
                    let a = arb_atom(&mut rng);
                    let expected_new = !model.contains(&a);
                    assert_eq!(inst.insert(a.clone()), expected_new, "insert {ctx}");
                    model_insert(&mut model, a);
                }
                // extend_from a small random instance.
                6 | 7 => {
                    let mut other = Instance::new();
                    for _ in 0..rng.below(6) {
                        other.insert(arb_atom(&mut rng));
                    }
                    inst.extend_from(&other);
                    for a in other.iter() {
                        model_insert(&mut model, a.clone());
                    }
                }
                // restrict_to a random keep-set of values.
                8 => {
                    let keep: HashSet<Value> =
                        d.iter().copied().filter(|_| rng.chance(0.6)).collect();
                    inst = inst.restrict_to(&keep);
                    model.retain(|a| a.args.iter().all(|v| keep.contains(v)));
                }
                // map_values: collapse one random value onto another.
                _ => {
                    let from = d[rng.below(6) as usize];
                    let to = d[rng.below(6) as usize];
                    inst = inst.map_values(|v| if v == from { to } else { v });
                    let mapped: Vec<GroundAtom> = model
                        .iter()
                        .map(|a| {
                            GroundAtom::new(
                                a.predicate,
                                a.args
                                    .iter()
                                    .map(|&v| if v == from { to } else { v })
                                    .collect::<Vec<_>>(),
                            )
                        })
                        .collect();
                    model.clear();
                    for a in mapped {
                        model_insert(&mut model, a);
                    }
                }
            }
            check_invariants(&inst, &model, &ctx);
        }
    }
}

/// The dense dictionary/trie view decodes to exactly the model's rows —
/// sorted, deduplicated — for every predicate. After a retraction the
/// touched tries are rebuilt from the shrunk arena while the dictionary
/// keeps stale entries (harmless: absent values still probe to nothing).
fn check_dense(inst: &Instance, model: &[GroundAtom], ctx: &str) {
    for (p, k) in preds() {
        let order: Vec<u16> = (0..k as u16).collect();
        let reqs: [(Predicate, usize, &[u16]); 1] = [(p, k, order.as_slice())];
        let (dict, tries) = inst.dense_snapshot(&reqs);
        let mut expected: Vec<Vec<Value>> = model
            .iter()
            .filter(|a| a.predicate == p && a.args.len() == k)
            .map(|a| a.args.clone())
            .collect();
        expected.sort();
        match &tries[0] {
            None => assert!(expected.is_empty(), "dense trie missing {ctx}"),
            Some(t) => {
                let rows: Vec<Vec<Value>> = (0..t.rows())
                    .map(|i| (0..k).map(|j| dict.decode(t.level(j)[i])).collect())
                    .collect();
                assert_eq!(rows, expected, "dense rows {ctx}");
            }
        }
    }
}

/// Random insert/retract interleavings: after every operation the whole
/// invariant battery must hold — index round-trip in both directions,
/// `dom()` exactness (a retraction that removes a value's last occurrence
/// must remove it from `dom()`), columnar arena order, sorted-permutation
/// agreement with a naive argsort, and dense dictionary/trie consistency.
/// Batches mix present atoms, duplicates, and absent ghosts, and the
/// reported removal count must equal the distinct present victims.
#[test]
fn instance_invariants_under_insert_retract_interleavings() {
    let mut rng = Rng::seed(0xde1e_7e57);
    for round in 0..24u32 {
        let mut inst = Instance::new();
        let mut model: Vec<GroundAtom> = Vec::new();
        let n_ops = 8 + rng.below(14);
        for op in 0..n_ops {
            let ctx = format!("retract-round {round} op {op}");
            if model.is_empty() || rng.chance(0.55) {
                for _ in 0..rng.range(1, 4) {
                    let a = arb_atom(&mut rng);
                    inst.insert(a.clone());
                    model_insert(&mut model, a);
                }
            } else {
                let n = rng.range(1, 3.min(model.len()) + 1);
                let mut victims: Vec<GroundAtom> = (0..n)
                    .map(|_| model.remove(rng.range(0, model.len())))
                    .collect();
                let distinct = victims.len();
                if rng.chance(0.4) {
                    // A ghost never inserted: must not affect the count.
                    victims.push(GroundAtom::new(
                        Predicate::new("U"),
                        vec![Value::named("ghost-victim")],
                    ));
                }
                if rng.chance(0.3) {
                    // A duplicate victim: counted once.
                    victims.push(victims[0].clone());
                }
                assert_eq!(
                    inst.retract_atoms(&victims),
                    distinct,
                    "removal count {ctx}"
                );
            }
            check_invariants(&inst, &model, &ctx);
            check_dense(&inst, &model, &ctx);
        }
    }
}

/// Retracting every atom of a predicate and re-inserting fresh ones must
/// leave no stale index entries: the emptied sorted indexes are dropped,
/// the rebuilt ones agree with a naive argsort, and `dom()` forgets the
/// values that left with the atoms.
#[test]
fn retract_all_then_reinsert_rebuilds_clean_indexes() {
    let d = dom_pool();
    let e = Predicate::new("E");
    let mut inst = Instance::new();
    for (x, y) in [(0, 1), (1, 2), (2, 0)] {
        inst.insert(GroundAtom::new(e, vec![d[x], d[y]]));
    }
    // Warm both column orders, then delete everything.
    inst.sorted_permutation(e, 2, &[0, 1]);
    inst.sorted_permutation(e, 2, &[1, 0]);
    let all: Vec<GroundAtom> = inst.iter().cloned().collect();
    assert_eq!(inst.retract_atoms(&all), 3);
    assert_eq!(inst.len(), 0);
    assert!(inst.dom().is_empty(), "dom forgets retracted values");
    assert_eq!(inst.index_stats().indexes, 0, "emptied indexes are dropped");

    let mut model = Vec::new();
    for (x, y) in [(3, 4), (4, 5)] {
        let a = GroundAtom::new(e, vec![d[x], d[y]]);
        inst.insert(a.clone());
        model_insert(&mut model, a);
    }
    check_invariants(&inst, &model, "post-reinsert");
    check_dense(&inst, &model, "post-reinsert");
}

/// Requesting the same index twice without an intervening insert is a
/// cache hit: neither counter moves. An insert followed by a request is a
/// merge-extend, never a rebuild.
#[test]
fn sorted_index_maintenance_is_incremental() {
    let d = dom_pool();
    let e = Predicate::new("E");
    let mut inst = Instance::new();
    for (x, y) in [(0, 1), (1, 2), (2, 0)] {
        inst.insert(GroundAtom::new(e, vec![d[x], d[y]]));
    }
    let naive = |inst: &Instance, order: &[u16]| naive_perm(inst, e, 2, order);

    assert_eq!(inst.index_stats().indexes, 0);
    let p0 = inst.sorted_permutation(e, 2, &[0, 1]);
    assert_eq!(p0.perm(), naive(&inst, &[0, 1]));
    let s1 = inst.index_stats();
    assert_eq!((s1.indexes, s1.full_builds, s1.merge_extends), (1, 1, 0));

    // Cache hit: same index, no growth.
    inst.sorted_permutation(e, 2, &[0, 1]);
    assert_eq!(inst.index_stats().full_builds, 1);
    assert_eq!(inst.index_stats().merge_extends, 0);

    // A second column order is a second index (one more full build).
    inst.sorted_permutation(e, 2, &[1, 0]);
    let s2 = inst.index_stats();
    assert_eq!((s2.indexes, s2.full_builds, s2.merge_extends), (2, 2, 0));

    // Insert deltas + re-request: extended by merge, never re-sorted.
    for (x, y) in [(3, 4), (0, 3), (4, 1)] {
        inst.insert(GroundAtom::new(e, vec![d[x], d[y]]));
    }
    let p0 = inst.sorted_permutation(e, 2, &[0, 1]);
    assert_eq!(p0.perm(), naive(&inst, &[0, 1]));
    let s3 = inst.index_stats();
    assert_eq!(s3.full_builds, 2, "delta must merge, not rebuild");
    assert_eq!(s3.merge_extends, 1);
}

/// The acceptance counter test: a chase whose rounds keep inserting into a
/// predicate that the WCOJ executor scans. The executor's default (dense)
/// representation maintains the dictionary and tries incrementally: over
/// the whole run the dictionary encodes each distinct value exactly once
/// (every further sighting is a hit) and — because this workload's domain
/// is fixed from round 0 — never remaps a code.
#[test]
fn chase_extends_wcoj_indexes_incrementally() {
    // Transitive closure grows E every round; the cyclic triangle body
    // routes through the WCOJ executor, whose dense tries over E must be
    // extended as E grows.
    let tgds = parse_tgds(
        "E(X,Y), E(Y,Z) -> E(X,Z). \
         E(X,Y), E(Y,Z), E(Z,X) -> Tri(X,Y,Z)",
    )
    .unwrap();
    let d = dom_pool();
    let e = Predicate::new("E");
    let mut db = Instance::new();
    for (x, y) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)] {
        db.insert(GroundAtom::new(e, vec![d[x], d[y]]));
    }
    let result = chase(&db, &tgds, &ChaseBudget::unbounded());
    assert!(result.complete, "the full-TGD chase reaches a fixpoint");
    assert!(
        result.instance.pred_count(Predicate::new("Tri")) > 0,
        "the 5-cycle closure contains triangles"
    );
    let stats = result.instance.dense_stats();
    assert!(stats.tries > 0, "the WCOJ path built dense tries");
    assert_eq!(
        stats.dict_size, 5,
        "the dictionary holds exactly the five cycle vertices"
    );
    assert_eq!(
        stats.dict_misses, stats.dict_size,
        "each distinct value is encoded exactly once over the whole chase"
    );
    assert!(
        stats.dict_hits > 0,
        "later rounds re-encode known values as dictionary hits"
    );
    assert_eq!(
        stats.remaps, 0,
        "a fixed-domain chase never disturbs existing codes"
    );
}

/// Dictionary growth that introduces a value sorting *before* existing
/// entries must remap — and the remap is invisible to prior snapshots:
/// an old `(Dict, DenseTrie)` pair keeps decoding consistently
/// (copy-on-write), while the new pair is order-preserving over the grown
/// value set.
#[test]
fn dense_dictionary_remap_keeps_snapshots_consistent() {
    let e = Predicate::new("E");
    let mut inst = Instance::new();
    inst.insert(GroundAtom::named("E", &["m", "x"]));
    let order: [u16; 2] = [0, 1];
    let reqs: [(Predicate, usize, &[u16]); 1] = [(e, 2, &order)];
    let (dict1, tries1) = inst.dense_snapshot(&reqs);
    let t1 = tries1[0].clone().expect("nonempty relation has a trie");
    assert_eq!(inst.dense_stats().remaps, 0);
    assert_eq!(dict1.decode(t1.level(0)[0]), Value::named("m"));
    assert_eq!(dict1.decode(t1.level(1)[0]), Value::named("x"));

    // "a" sorts before every existing entry: growth must remap, not append.
    inst.insert(GroundAtom::named("E", &["a", "m"]));
    let (dict2, tries2) = inst.dense_snapshot(&reqs);
    let t2 = tries2[0].clone().expect("nonempty relation has a trie");
    assert!(
        inst.dense_stats().remaps >= 1,
        "prepended value forces a remap"
    );

    // The new dictionary is order-preserving and round-trips every value.
    let vals = ["a", "m", "x"].map(Value::named);
    let codes = vals.map(|v| dict2.code(v).expect("value is encoded"));
    assert!(
        codes.windows(2).all(|w| w[0] < w[1]),
        "codes follow value order"
    );
    for v in vals {
        assert_eq!(dict2.decode(dict2.code(v).unwrap()), v);
    }
    // The new trie decodes to the sorted row set.
    let rows: Vec<(Value, Value)> = (0..t2.rows())
        .map(|i| (dict2.decode(t2.level(0)[i]), dict2.decode(t2.level(1)[i])))
        .collect();
    assert_eq!(
        rows,
        vec![
            (Value::named("a"), Value::named("m")),
            (Value::named("m"), Value::named("x")),
        ]
    );
    // The *old* snapshot still decodes with its own dictionary: the remap
    // copied rather than mutated what readers hold.
    assert_eq!(dict1.decode(t1.level(0)[0]), Value::named("m"));
    assert_eq!(dict1.decode(t1.level(1)[0]), Value::named("x"));
}

/// Labelled nulls sort after every named constant, so a chase that keeps
/// inventing nulls grows the dictionary by pure appends: codes of existing
/// values are never disturbed.
#[test]
fn chase_nulls_append_to_dense_dictionary_without_remaps() {
    let tgds = parse_tgds("E(X,Y), E(Y,Z), E(Z,X) -> E(X,W)").unwrap();
    let e = Predicate::new("E");
    let d = dom_pool();
    let mut db = Instance::new();
    for (x, y) in [(0, 1), (1, 2), (2, 0)] {
        db.insert(GroundAtom::new(e, vec![d[x], d[y]]));
    }
    let result = chase(&db, &tgds, &ChaseBudget::unbounded());
    assert!(result.complete);
    let stats = result.instance.dense_stats();
    assert!(stats.tries > 0, "the cyclic body ran the dense WCOJ path");
    assert!(
        stats.dict_size > 3,
        "invented nulls joined the dictionary (size {})",
        stats.dict_size
    );
    assert_eq!(stats.remaps, 0, "null growth is append-only");
}
