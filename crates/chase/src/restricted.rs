//! The *restricted* (standard) chase: fires a trigger only when its head is
//! not already satisfied.
//!
//! The paper works with the oblivious chase (every chase sequence yields the
//! same result, levels are canonical). The restricted chase produces smaller
//! results — often finite where the oblivious chase is infinite — at the
//! cost of order dependence. Both compute universal models, so certain
//! answers agree wherever both terminate; the ablation experiment E9 and
//! several tests cross-check the two engines.

use crate::engine::ChaseBudget;
use crate::tgd::Tgd;
use gtgd_data::{Instance, Value};
use gtgd_query::{HomSearch, Var};
use std::collections::HashMap;
use std::ops::ControlFlow;

/// Result of a restricted chase run.
#[derive(Debug, Clone)]
pub struct RestrictedChaseResult {
    /// The materialized instance.
    pub instance: Instance,
    /// Whether a fixpoint was reached within budget.
    pub complete: bool,
    /// Number of triggers fired.
    pub fired: usize,
}

/// Runs the restricted chase: repeatedly pick an *active* trigger (a body
/// homomorphism with no head extension) and fire it. Deterministic: scans
/// TGDs and homomorphisms in a fixed order.
pub fn restricted_chase(
    db: &Instance,
    tgds: &[Tgd],
    budget: &ChaseBudget,
) -> RestrictedChaseResult {
    let mut instance = db.clone();
    let mut fired = 0usize;
    let mut complete = true;
    'outer: loop {
        if let Some(max) = budget.max_atoms {
            if instance.len() >= max {
                complete = false;
                break;
            }
        }
        if let Some(max) = budget.max_level {
            // Level is not canonical for the restricted chase; interpret the
            // level budget as a trigger budget scaled by the rule count.
            if fired >= max * tgds.len().max(1) * instance.len().max(1) {
                complete = false;
                break;
            }
        }
        for tgd in tgds {
            let frontier = tgd.frontier();
            let exist = tgd.existential_vars();
            // Find one active trigger for this TGD.
            let mut active: Option<HashMap<Var, Value>> = None;
            HomSearch::new(&tgd.body, &instance).for_each(|h| {
                let fixed: Vec<(Var, Value)> = frontier.iter().map(|&v| (v, h[&v])).collect();
                if HomSearch::new(&tgd.head, &instance).fix(fixed).exists() {
                    ControlFlow::Continue(())
                } else {
                    active = Some(h.clone());
                    ControlFlow::Break(())
                }
            });
            if let Some(h) = active {
                let mut assignment = h;
                for &z in &exist {
                    assignment.insert(z, Value::fresh_null());
                }
                for atom in &tgd.head {
                    instance.insert(atom.ground(&assignment));
                }
                fired += 1;
                continue 'outer;
            }
        }
        break;
    }
    RestrictedChaseResult {
        instance,
        complete,
        fired,
    }
}

/// Whether the restricted chase result is a model (sanity hook for tests).
pub fn is_model(result: &RestrictedChaseResult, tgds: &[Tgd]) -> bool {
    result.complete && crate::tgd::satisfies_all(&result.instance, tgds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::chase;
    use crate::tgd::parse_tgds;
    use gtgd_data::GroundAtom;
    use gtgd_query::{evaluate_cq, parse_cq};

    fn db(atoms: &[(&str, &[&str])]) -> Instance {
        Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
    }

    #[test]
    fn restricted_skips_satisfied_triggers() {
        // D already satisfies the TGD: restricted fires nothing, oblivious
        // invents a null anyway.
        let tgds = parse_tgds("P(X) -> R(X,Y)").unwrap();
        let d = db(&[("P", &["a"]), ("R", &["a", "b"])]);
        let r = restricted_chase(&d, &tgds, &ChaseBudget::unbounded());
        assert!(r.complete);
        assert_eq!(r.fired, 0);
        assert_eq!(r.instance.len(), 2);
        let o = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert_eq!(o.instance.len(), 3);
    }

    #[test]
    fn restricted_terminates_where_oblivious_does_not() {
        // Person(x) → ∃y Parent(x,y), Person(y): with a pre-existing
        // parent loop the restricted chase is finite.
        let tgds = parse_tgds("Person(X) -> Parent(X,Y), Person(Y)").unwrap();
        let d = db(&[("Person", &["eve"]), ("Parent", &["eve", "eve"])]);
        let r = restricted_chase(&d, &tgds, &ChaseBudget::atoms(100));
        assert!(r.complete, "the loop satisfies the TGD");
        assert!(is_model(&r, &tgds));
        let o = chase(&d, &tgds, &ChaseBudget::atoms(100));
        assert!(!o.complete, "the oblivious chase keeps inventing parents");
    }

    #[test]
    fn certain_answers_agree_when_both_terminate() {
        let tgds = parse_tgds("A(X) -> R(X,Y). R(X,Y) -> B(Y)").unwrap();
        let d = db(&[("A", &["a"]), ("A", &["b"])]);
        let r = restricted_chase(&d, &tgds, &ChaseBudget::unbounded());
        let o = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert!(r.complete && o.complete);
        let q = parse_cq("Q(X) :- A(X), R(X,Y), B(Y)").unwrap();
        // Answers over dom(D) agree (both are universal models).
        let ans_r: std::collections::HashSet<_> = evaluate_cq(&q, &r.instance)
            .into_iter()
            .filter(|t| t.iter().all(|v| d.dom_contains(*v)))
            .collect();
        let ans_o: std::collections::HashSet<_> = evaluate_cq(&q, &o.instance)
            .into_iter()
            .filter(|t| t.iter().all(|v| d.dom_contains(*v)))
            .collect();
        assert_eq!(ans_r, ans_o);
        assert!(r.instance.len() <= o.instance.len());
    }

    #[test]
    fn budget_respected() {
        let tgds = parse_tgds("P(X) -> Q(X,Y). Q(X,Y) -> P(Y)").unwrap();
        let d = db(&[("P", &["a"])]);
        let r = restricted_chase(&d, &tgds, &ChaseBudget::atoms(30));
        assert!(!r.complete);
        assert!(r.instance.len() >= 30);
    }

    #[test]
    fn full_tgds_fixpoint_matches_oblivious() {
        let tgds = parse_tgds("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let d = db(&[("E", &["a", "b"]), ("E", &["b", "c"]), ("E", &["c", "d"])]);
        let r = restricted_chase(&d, &tgds, &ChaseBudget::unbounded());
        let o = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert_eq!(r.instance, o.instance);
    }
}
