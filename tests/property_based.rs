//! Randomized property tests on the toolkit's core invariants.
//!
//! The build is offline, so instead of proptest these are seeded loops over
//! a deterministic [`Rng`] (SplitMix64): every case is reproducible by its
//! printed seed, and the case count per property matches what the proptest
//! configuration used to run.

use gtgd::chase::{chase, parse_tgds, satisfies_all, ChaseBudget};
use gtgd::data::{GroundAtom, Instance, Rng, Value};
use gtgd::query::{
    check_answer, contractions, core_of, cq_contained, cq_equivalent,
    decomp_eval::check_answer_decomposed, evaluate_cq, Cq, QAtom, Term, Var,
};
use gtgd::treewidth::{treewidth_exact, Graph};

/// A random small graph over `2..8` vertices with up to 16 edge attempts.
fn arb_graph(rng: &mut Rng) -> Graph {
    let n = rng.range(2, 8);
    let mut g = Graph::new(n);
    for _ in 0..rng.range(0, 16) {
        let (u, v) = (rng.range(0, 8), rng.range(0, 8));
        if u < n && v < n && u != v {
            g.add_edge(u, v);
        }
    }
    g
}

/// A random binary-relation database over a 5-element domain.
fn arb_db(rng: &mut Rng) -> Instance {
    let k = rng.range(1, 10);
    Instance::from_atoms((0..k).map(|_| {
        let (a, b) = (rng.range(0, 5), rng.range(0, 5));
        GroundAtom::named("E", &[&format!("d{a}"), &format!("d{b}")])
    }))
}

/// A random connected-ish Boolean CQ over `E` with ≤ 5 variables.
fn arb_cq(rng: &mut Rng) -> Cq {
    let k = rng.range(1, 6);
    let pairs: Vec<(u32, u32)> = (0..k)
        .map(|_| (rng.below(5) as u32, rng.below(5) as u32))
        .collect();
    let max = pairs.iter().map(|&(a, b)| a.max(b)).max().unwrap_or(0);
    let names: Vec<String> = (0..=max).map(|i| format!("V{i}")).collect();
    let atoms = pairs
        .into_iter()
        .map(|(a, b)| {
            QAtom::new(
                gtgd::data::Predicate::new("E"),
                vec![Term::Var(Var(a)), Term::Var(Var(b))],
            )
        })
        .collect();
    Cq::new(names, atoms, vec![])
}

/// Runs `body` for `cases` seeds derived from a fixed master seed; the
/// per-case seed is passed through so failures identify their case.
fn for_cases(cases: u64, mut body: impl FnMut(u64, &mut Rng)) {
    for case in 0..cases {
        let seed = 0xC0FFEE ^ (case.wrapping_mul(0x9E3779B97F4A7C15));
        body(seed, &mut Rng::seed(seed));
    }
}

/// Exact treewidth is sandwiched by the degeneracy lower bound and both
/// greedy upper bounds, and its decomposition validates.
#[test]
fn treewidth_bounds_consistent() {
    use gtgd::treewidth::{degeneracy_lower_bound, treewidth_upper_bound, Heuristic};
    for_cases(64, |seed, rng| {
        let g = arb_graph(rng);
        let (w, d) = treewidth_exact(&g);
        assert!(d.validate(&g).is_ok(), "seed {seed}");
        assert_eq!(d.width(), w, "seed {seed}");
        assert!(degeneracy_lower_bound(&g) <= w, "seed {seed}");
        for h in [Heuristic::MinDegree, Heuristic::MinFill] {
            assert!(treewidth_upper_bound(&g, h).0 >= w, "seed {seed}");
        }
    });
}

/// The core is equivalent to the original query and is itself a fixed point
/// of core computation.
#[test]
fn core_is_equivalent_retract() {
    for_cases(64, |seed, rng| {
        let q = arb_cq(rng);
        let c = core_of(&q);
        assert!(cq_equivalent(&q, &c), "seed {seed}");
        let cc = core_of(&c);
        assert_eq!(cc.atom_count(), c.atom_count(), "seed {seed}");
        assert!(c.atom_count() <= q.atom_count(), "seed {seed}");
    });
}

/// Every contraction of a CQ is contained in it.
#[test]
fn contractions_are_contained() {
    for_cases(64, |seed, rng| {
        let q = arb_cq(rng);
        for c in contractions(&q) {
            assert!(cq_contained(&c, &q), "seed {seed}: contraction {c} ⊄ {q}");
        }
    });
}

/// The Prop 2.1 DP agrees with backtracking on Boolean queries over random
/// databases.
#[test]
fn dp_agrees_with_backtracking() {
    for_cases(64, |seed, rng| {
        let q = arb_cq(rng);
        let d = arb_db(rng);
        assert_eq!(
            check_answer_decomposed(&q, &d, &[]),
            check_answer(&q, &d, &[]),
            "seed {seed}"
        );
    });
}

/// The chase of a full TGD set reaches a model, and evaluation over it is
/// monotone in the database.
#[test]
fn full_chase_reaches_model() {
    let sigma = parse_tgds("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
    let q = gtgd::query::parse_cq("Q(X) :- E(X,Y)").unwrap();
    for_cases(64, |seed, rng| {
        let d = arb_db(rng);
        let r = chase(&d, &sigma, &ChaseBudget::unbounded());
        assert!(r.complete, "seed {seed}");
        assert!(satisfies_all(&r.instance, &sigma), "seed {seed}");
        // Monotonicity: answers over D are preserved over chase(D).
        let before = evaluate_cq(&q, &d);
        let after = evaluate_cq(&q, &r.instance);
        assert!(before.is_subset(&after), "seed {seed}");
    });
}

/// Guarded ground saturation contains the database and only named constants.
#[test]
fn ground_saturation_sound() {
    let sigma = parse_tgds("E(X,Y) -> Reach(X,Z). Reach(X,Z) -> Mark(X)").unwrap();
    for_cases(64, |seed, rng| {
        let d = arb_db(rng);
        let sat = gtgd::chase::ground_saturation(&d, &sigma);
        for a in d.iter() {
            assert!(sat.contains(a), "seed {seed}");
        }
        for v in sat.dom() {
            assert!(v.is_named(), "seed {seed}");
        }
        // Mark(x) holds exactly for constants with outgoing edges.
        for v in d.dom() {
            let has_out = d.iter().any(|a| a.args[0] == *v);
            let marked = sat.contains(&GroundAtom::new(
                gtgd::data::Predicate::new("Mark"),
                vec![*v],
            ));
            assert_eq!(has_out, marked, "seed {seed}");
        }
    });
}

/// The Grohe reduction verdict always matches brute force (k = 2).
#[test]
fn grohe_reduction_correct_k2() {
    use gtgd::omq::grohe::has_clique;
    use gtgd::omq::reduction::{decide_clique_via_cqs, grid_cqs_family};
    let fam = grid_cqs_family(2);
    for_cases(32, |seed, rng| {
        let g = arb_graph(rng);
        assert_eq!(
            decide_clique_via_cqs(&g, 2, &fam),
            has_clique(&g, 2),
            "seed {seed}"
        );
    });
}

/// OMQ evaluation is monotone under database extension (certain answers only
/// grow).
#[test]
fn omq_monotone() {
    use gtgd::omq::{evaluate_omq, EvalConfig, Omq};
    let sigma = parse_tgds("E(X,Y) -> Conn(X)").unwrap();
    let q = Omq::full_schema(sigma, gtgd::query::parse_ucq("Q(X) :- Conn(X)").unwrap());
    for_cases(32, |seed, rng| {
        let d = arb_db(rng);
        let small = evaluate_omq(&q, &d, &EvalConfig::default());
        let mut bigger = d.clone();
        bigger.insert(GroundAtom::named("E", &["extra1", "extra2"]));
        let big = evaluate_omq(&q, &bigger, &EvalConfig::default());
        assert!(small.answers.is_subset(&big.answers), "seed {seed}");
    });
}

/// Specializations are syntactically well formed: V always contains the
/// answer variables and the contraction part is a genuine contraction.
#[test]
fn specializations_well_formed() {
    for_cases(64, |seed, rng| {
        let q = arb_cq(rng);
        for s in gtgd::query::specializations(&q) {
            for v in &s.cq.answer_vars {
                assert!(s.v.contains(v), "seed {seed}");
            }
            assert!(s.cq.atom_count() <= q.atom_count(), "seed {seed}");
            assert!(cq_contained(&s.cq, &q), "seed {seed}");
        }
    });
}

/// The CQ parser never panics on arbitrary input — it returns a result.
#[test]
fn parser_never_panics() {
    // A byte soup biased toward the grammar's own alphabet so deeper parse
    // paths are exercised, not just lexer rejections.
    const ALPHABET: &[u8] = b"QXYZabc01(),.:-> \t_";
    for_cases(128, |_, rng| {
        let len = rng.range(0, 80);
        let input: String = (0..len)
            .map(|_| {
                if rng.chance(0.9) {
                    ALPHABET[rng.range(0, ALPHABET.len())] as char
                } else {
                    char::from_u32(rng.below(0xD7FF) as u32).unwrap_or('?')
                }
            })
            .collect();
        let _ = gtgd::query::parse_cq(&input);
        let _ = gtgd::query::parse_ucq(&input);
        let _ = gtgd::chase::parse_tgd(&input);
    });
}

/// Parsing round-trips through Display for well-formed CQs.
#[test]
fn parser_display_roundtrip() {
    for_cases(128, |seed, rng| {
        let q = arb_cq(rng);
        let printed = q.to_string();
        let reparsed = gtgd::query::parse_cq(&printed).expect("display output parses");
        assert!(cq_equivalent(&q, &reparsed), "seed {seed}");
    });
}

/// Prop D.2 as a property: the linear rewriting agrees with chase-based
/// evaluation on random databases.
#[test]
fn linear_rewriting_agrees_with_chase() {
    use gtgd::chase::linear_rewrite;
    let sigma = parse_tgds("E(X,Y) -> R(Y,Z). R(Y,Z) -> M(Y)").unwrap();
    let q = gtgd::query::parse_ucq("Q(X) :- E(X,Y), M(Y)").unwrap();
    let rewritten = linear_rewrite(&q, &sigma);
    for_cases(24, |seed, rng| {
        let d = arb_db(rng);
        let via_rewrite: std::collections::HashSet<Vec<Value>> =
            gtgd::query::evaluate_ucq(&rewritten, &d)
                .into_iter()
                .filter(|t| t.iter().all(|v| d.dom_contains(*v)))
                .collect();
        let reference = chase(&d, &sigma, &ChaseBudget::levels(4));
        let via_chase: std::collections::HashSet<Vec<Value>> =
            gtgd::query::evaluate_ucq(&q, &reference.instance)
                .into_iter()
                .filter(|t| t.iter().all(|v| d.dom_contains(*v)))
                .collect();
        assert_eq!(via_rewrite, via_chase, "seed {seed}");
    });
}

/// Yannakakis agrees with backtracking on acyclic queries over random
/// databases.
#[test]
fn yannakakis_agrees() {
    use gtgd::query::check_answer_yannakakis;
    let q = gtgd::query::parse_cq("Q(X) :- E(X,Y), E(Y,Z)").unwrap();
    for_cases(24, |seed, rng| {
        let d = arb_db(rng);
        for v in d.dom().to_vec() {
            let expected = check_answer(&q, &d, &[v]);
            assert_eq!(
                check_answer_yannakakis(&q, &d, &[v]),
                Some(expected),
                "seed {seed}"
            );
        }
    });
}

/// Non-randomized sanity: instance equality is set semantics, used
/// throughout the properties above.
#[test]
fn instance_set_semantics() {
    let a = Instance::from_atoms([
        GroundAtom::named("E", &["x", "y"]),
        GroundAtom::named("E", &["y", "z"]),
    ]);
    let b = Instance::from_atoms([
        GroundAtom::named("E", &["y", "z"]),
        GroundAtom::named("E", &["x", "y"]),
        GroundAtom::named("E", &["x", "y"]),
    ]);
    assert_eq!(a, b);
    assert_eq!(a.dom().len(), 3);
    let _ = Value::named("x");
}
