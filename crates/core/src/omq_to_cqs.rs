//! The OMQ → CQS fpt-reduction (Proposition 5.8 / Lemma 6.8 / Appendix F):
//! from an `S`-database `D` and a guarded OMQ `Q = (S, Σ, q)` with full data
//! schema, build a database `D^*` with `D^* |= Σ` and
//! `c̄ ∈ Q(D) ⟺ c̄ ∈ q(D^*)` — evaluation of the OMQ **open-world** reduces
//! to plain **closed-world** evaluation over a constraint-satisfying
//! database.
//!
//! `D^* = D⁺ ∪ ⋃_{ā ∈ A} M(D⁺|ā, Σ, n)` where `D⁺` is the ground saturation
//! (`chase↓`), `A` ranges over the maximal guarded tuples of `D⁺`, and each
//! `M` is a finite model of `(D⁺|ā, Σ)` preserving chase answers. Finite
//! models are realized through [`gtgd_chase::finite_witness`] (terminating
//! chases — see DESIGN.md §3 for the substitution).

use crate::omq::Omq;
use gtgd_chase::{finite_witness, ground_saturation, ChaseBudget, TgdClass, WitnessError};
use gtgd_data::{Instance, Value};
use std::collections::HashSet;

/// Builds the reduction database `D^*`.
///
/// Requires a guarded ontology; fails with [`WitnessError`] when a local
/// finite model cannot be materialized within `budget`.
pub fn omq_to_cqs_database(
    q: &Omq,
    db: &Instance,
    budget: &ChaseBudget,
) -> Result<Instance, WitnessError> {
    assert!(
        q.sigma_in(TgdClass::Guarded),
        "the OMQ→CQS reduction is for guarded ontologies (Prop 5.8)"
    );
    // D⁺: the database completed with every entailed ground atom.
    let d_plus = ground_saturation(db, &q.sigma);
    // A: the maximal guarded tuples of D⁺.
    let guarded_sets = d_plus.maximal_guarded_sets();
    let mut d_star = d_plus.clone();
    for a_bar in guarded_sets {
        let keep: HashSet<Value> = a_bar.iter().copied().collect();
        let local = d_plus.restrict_to(&keep);
        // M(D⁺|ā, Σ, n): chase nulls are globally fresh, so the models'
        // domains intersect only inside dom(D), as the construction demands.
        let m = finite_witness(&local, &q.sigma, budget)?;
        d_star.extend_from(&m);
    }
    Ok(d_star)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{check_omq, evaluate_omq, EvalConfig};
    use gtgd_chase::{parse_tgds, satisfies_all};
    use gtgd_data::GroundAtom;
    use gtgd_query::{evaluate_ucq, parse_ucq};

    fn db(atoms: &[(&str, &[&str])]) -> Instance {
        Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
    }

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    /// Lemma 6.8 items (1) and (2) on a weakly acyclic guarded ontology
    /// with existential heads.
    #[test]
    fn reduction_preserves_answers_and_satisfies_sigma() {
        let sigma =
            parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> Audited(D)")
                .unwrap();
        let q = Omq::full_schema(
            sigma.clone(),
            parse_ucq("Q(X) :- Emp(X), WorksIn(X,D), Audited(D)").unwrap(),
        );
        let d = db(&[("Emp", &["ann"]), ("Emp", &["bob"]), ("Dept", &["hr"])]);
        let d_star = omq_to_cqs_database(&q, &d, &ChaseBudget::unbounded()).unwrap();
        // (1) D* |= Σ.
        assert!(satisfies_all(&d_star, &sigma));
        // (2) answers agree (restricted to dom(D), as certain answers are).
        let open = evaluate_omq(&q, &d, &EvalConfig::default());
        assert!(open.exact);
        let closed: HashSet<Vec<Value>> = evaluate_ucq(&q.query, &d_star)
            .into_iter()
            .filter(|t| t.iter().all(|x| d.dom_contains(*x)))
            .collect();
        assert_eq!(open.answers, closed);
        assert!(closed.contains(&vec![v("ann")]));
    }

    #[test]
    fn negative_answers_stay_negative() {
        // The witness models must not invent matches the chase lacks.
        let sigma = parse_tgds("A(X) -> R(X,Y)").unwrap();
        let q = Omq::full_schema(sigma.clone(), parse_ucq("Q() :- R(X,Y), B(Y)").unwrap());
        let d = db(&[("A", &["a"])]);
        let d_star = omq_to_cqs_database(&q, &d, &ChaseBudget::unbounded()).unwrap();
        assert!(satisfies_all(&d_star, &sigma));
        let (holds, exact) = check_omq(&q, &d, &[], &EvalConfig::default());
        assert!(!holds && exact);
        assert!(!gtgd_query::ucq_holds_boolean(&q.query, &d_star));
    }

    #[test]
    fn ground_part_completed() {
        // S(b,z) → T(b) style round trips must appear in D*.
        let sigma = parse_tgds("R(X,Y) -> S(Y,Z). S(Y,Z) -> T(Y)").unwrap();
        let q = Omq::full_schema(sigma, parse_ucq("Q(Y) :- T(Y)").unwrap());
        let d = db(&[("R", &["a", "b"])]);
        let d_star = omq_to_cqs_database(&q, &d, &ChaseBudget::unbounded()).unwrap();
        assert!(d_star.contains(&GroundAtom::named("T", &["b"])));
    }

    #[test]
    fn non_terminating_local_chase_reports() {
        let sigma = parse_tgds("Person(X) -> Parent(X,Y), Person(Y)").unwrap();
        let q = Omq::full_schema(sigma, parse_ucq("Q(X) :- Person(X)").unwrap());
        let d = db(&[("Person", &["eve"])]);
        let r = omq_to_cqs_database(&q, &d, &ChaseBudget::atoms(50));
        assert!(r.is_err());
    }
}
