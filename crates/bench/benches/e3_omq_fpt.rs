//! E3 — Prop 3.3(3): FPT OMQ evaluation in `(G, UCQ_1)` — polynomial in
//! `|D|` for a fixed OMQ.

use gtgd_bench::harness;
use gtgd_bench::workloads::{org_db, org_ontology, val};
use gtgd_core::{check_omq_fpt, EvalConfig, Omq};
use gtgd_query::parse_ucq;

fn main() {
    harness::group("e3_omq_fpt");
    let q = Omq::full_schema(
        org_ontology(),
        parse_ucq("Q(X) :- Emp(X), WorksIn(X,D), HasMgr(D,M)").unwrap(),
    );
    let cfg = EvalConfig::default();
    for &n in &[25usize, 100, 400] {
        let db = org_db(n);
        harness::case(&format!("check_fpt/{n}"), || {
            check_omq_fpt(&q, &db, &[val("e0")], &cfg)
        });
    }
}
