//! Parallel chase and ground saturation on the std-only worker pool.
//!
//! Both entry points are *deterministic for any worker count* and agree with
//! their sequential counterparts:
//!
//! * [`par_chase`] runs the oblivious semi-naive chase of
//!   [`crate::engine::chase`] with each round's delta-pinned trigger search
//!   partitioned across workers. Workers only *discover* triggers — they
//!   never allocate nulls — and the collected triggers are fired
//!   sequentially in canonical (TGD, pin, delta) order, so null naming is
//!   exactly as reproducible as in a sequential run. Results agree with the
//!   sequential chase up to isomorphism (null identities come from a global
//!   counter, so absolute labels differ across runs of either engine; see
//!   `gtgd_query::instance_isomorphic`).
//!
//! * [`par_ground_saturation`] computes `chase↓(D, Σ)` with the closure
//!   work of a Kleene round distributed across workers, each owning its own
//!   memoizing [`Saturator`]. The output contains only named constants, so
//!   it is *equal* (as a set) to the sequential
//!   [`crate::types::ground_saturation`]. On top of the thread-level
//!   parallelism the round itself is restructured: (1) bag restrictions are
//!   assembled from a value → atom index built once per round instead of a
//!   per-bag `restrict_to` scan of the whole instance; (2) only *dirty*
//!   bags — those whose restriction grew since they were last closed — are
//!   reconsidered; (3) dirty bags are canonicalized first and grouped by
//!   [`CanonType`], so the expensive closure computation runs once per
//!   *type* and every same-type bag just decodes the canonical closure
//!   through its own constant ordering (the caller-side analogue of the
//!   saturator's stable-key fast path, but it also covers keys on recursive
//!   type cycles, which the saturator must otherwise recompute every call).
//!   These changes make the parallel path much faster even at one worker.

use crate::engine::{ChaseBudget, ChaseResult};
use crate::plan::TriggerPlan;
use crate::tgd::Tgd;
use crate::types::{canonicalize, decode, CanonType, Saturator, TAtom};
use gtgd_data::{obs, GroundAtom, Instance, Pool, Value};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::ops::ControlFlow;
use std::time::Instant;

/// A discovered trigger: which TGD, its canonical key (the body-variable
/// images, for once-only firing), and the full body row (slot order of the
/// TGD's compiled body plan).
type Trigger = (usize, Vec<Value>, Vec<Value>);

/// Runs the oblivious chase of `db` under `tgds` within `budget`, searching
/// each round's triggers on `workers` worker threads. Agrees with
/// [`crate::engine::chase`] up to null renaming (isomorphism), with
/// identical levels, completeness, and atom counts.
pub fn par_chase(db: &Instance, tgds: &[Tgd], budget: &ChaseBudget, workers: usize) -> ChaseResult {
    crate::runner::ChaseRunner::new(tgds)
        .budget(*budget)
        .workers(workers)
        .run(db)
        .into_chase_result()
}

/// The pool-parallel oblivious engine behind [`par_chase`] and
/// [`crate::runner::ChaseRunner`].
pub(crate) fn par_chase_impl(
    db: &Instance,
    tgds: &[Tgd],
    budget: &ChaseBudget,
    workers: usize,
) -> ChaseResult {
    let _span = obs::span("chase.parallel");
    let pool = Pool::with_workers(workers);
    let mut instance = db.clone();
    let mut levels = vec![0usize; instance.len()];
    let mut fired: HashSet<(usize, Vec<Value>)> = HashSet::new();
    let mut complete = true;
    let mut max_level = 0usize;

    // Per-TGD trigger plans, compiled once and shared (read-only) across
    // workers.
    let plans = TriggerPlan::compile_all(tgds);

    let mut delta: Vec<GroundAtom> = instance.iter().cloned().collect();
    let mut level = 0usize;
    loop {
        if let Some(max) = budget.max_level {
            if level >= max {
                complete = false;
                break;
            }
        }
        if budget.atoms_exhausted(instance.len()) {
            complete = false;
            break;
        }
        let round_t = obs::enabled().then(Instant::now);
        let mut new_atoms: Vec<GroundAtom> = Vec::new();
        let mut hit_cap = false;
        for (ti, tgd) in tgds.iter().enumerate() {
            if tgd.body.is_empty() && level == 0 && fired.insert((ti, Vec::new())) {
                obs::count(obs::Metric::TriggerFirings, 1);
                plans[ti].fire_row(&[], &mut new_atoms);
            }
        }
        // One task per (TGD, pinned body atom, delta atom). The task order
        // is exactly the sequential engine's loop nest order, so firing the
        // merged trigger list in task order reproduces the sequential
        // engine's trigger sequence.
        let tasks: Vec<(usize, usize, usize)> = tgds
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.body.is_empty())
            .flat_map(|(ti, t)| {
                let nd = delta.len();
                (0..t.body.len()).flat_map(move |pin| (0..nd).map(move |di| (ti, pin, di)))
            })
            .collect();
        let found: Vec<Vec<Trigger>> = pool.map_chunks(&tasks, |_, chunk| {
            let mut out: Vec<Trigger> = Vec::new();
            for &(ti, pin, di) in chunk {
                let plan = &plans[ti];
                let Some(seed) = plan.body.unify_atom(pin, &delta[di]) else {
                    continue;
                };
                plan.body
                    .search(&instance)
                    .fix_slots(seed)
                    .skip_atom(pin)
                    .for_each_row(|row| {
                        out.push((ti, plan.trigger_key(row), row.to_vec()));
                        ControlFlow::Continue(())
                    });
            }
            out
        });
        // Sequential merge: dedup against `fired` and fire in canonical
        // order. Null allocation happens only here, on one thread.
        'merge: for chunk in found {
            for (ti, key, row) in chunk {
                if budget.atoms_exhausted(instance.len() + new_atoms.len()) {
                    hit_cap = true;
                    break 'merge;
                }
                if fired.insert((ti, key)) {
                    obs::count(obs::Metric::TriggerFirings, 1);
                    plans[ti].fire_row(&row, &mut new_atoms);
                }
            }
        }
        obs::count(obs::Metric::ChaseRounds, 1);
        if let Some(t0) = round_t {
            obs::observe(obs::Hist::ChaseRoundNs, t0.elapsed().as_nanos() as u64);
        }
        if new_atoms.is_empty() {
            if hit_cap {
                complete = false;
            }
            break;
        }
        level += 1;
        max_level = level;
        delta = Vec::new();
        instance.reserve_additional(new_atoms.len());
        for a in new_atoms {
            if instance.insert(a.clone()) {
                levels.push(level);
                delta.push(a);
            }
        }
        if delta.is_empty() {
            max_level = level - 1;
            if hit_cap {
                complete = false;
            }
            break;
        }
        if hit_cap {
            complete = false;
            break;
        }
    }
    ChaseResult {
        instance,
        levels,
        complete,
        max_level,
    }
}

/// `chase↓(D, Σ)` with closure work distributed over `workers` worker
/// threads (one memoizing [`Saturator`] each), dirty-bag tracking, and
/// one closure computation per canonical bag type per round. Returns the
/// same instance (as a set) as [`crate::types::ground_saturation`].
pub fn par_ground_saturation(db: &Instance, tgds: &[Tgd], workers: usize) -> Instance {
    let _span = obs::span("chase.saturation");
    let pool = Pool::with_workers(workers);
    let mut saturators: Vec<Saturator> =
        (0..pool.workers()).map(|_| Saturator::new(tgds)).collect();
    let mut ground = db.clone();
    // Atom count of each bag's restriction when it was last closed. The
    // instance only grows, so a count match means the restriction is
    // unchanged and the bag's last closure is still exact.
    let mut closed_sizes: HashMap<Vec<Value>, usize> = HashMap::new();
    // When any worker's memo grew, previously-closed bags may have been
    // under-approximated (recursive type cycles), so the next round must
    // re-close everything, matching the sequential Kleene iteration.
    let mut refine_all = true;
    loop {
        // Per-atom bags in first-appearance order (as in the sequential
        // version: every guarded set of D is dom(α) for some atom α).
        let mut seen_bags: HashSet<Vec<Value>> = HashSet::new();
        let mut bags: Vec<Vec<Value>> = Vec::new();
        for a in ground.iter() {
            let mut d = a.dom();
            d.sort_unstable();
            if seen_bags.insert(d.clone()) {
                bags.push(d);
            }
        }
        // Value → atom-id index, built once per round. Bag restrictions are
        // assembled from it instead of scanning the whole instance per bag.
        let mut atoms_of: HashMap<Value, Vec<usize>> = HashMap::new();
        for (i, a) in ground.iter().enumerate() {
            let mut vals = a.args.clone();
            vals.sort_unstable();
            vals.dedup();
            for v in vals {
                atoms_of.entry(v).or_default().push(i);
            }
        }
        let mut work: Vec<(Vec<Value>, Instance)> = Vec::new();
        for consts in bags {
            let keep: HashSet<Value> = consts.iter().copied().collect();
            let mut ids: Vec<usize> = Vec::new();
            let mut seen: HashSet<usize> = HashSet::new();
            for v in &consts {
                if let Some(list) = atoms_of.get(v) {
                    for &i in list {
                        if seen.insert(i) && ground.atom(i).args.iter().all(|x| keep.contains(x)) {
                            ids.push(i);
                        }
                    }
                }
            }
            if refine_all || closed_sizes.get(&consts) != Some(&ids.len()) {
                closed_sizes.insert(consts.clone(), ids.len());
                ids.sort_unstable();
                let restriction = Instance::from_atoms(ids.iter().map(|&i| ground.atom(i).clone()));
                work.push((consts, restriction));
            }
        }
        if work.is_empty() {
            // Every bag was closed against its current restriction with no
            // memo growth since: fixpoint.
            return ground;
        }
        // Canonicalize the dirty bags (parallel), then group them by type:
        // two bags of the same canonical type have, by guardedness, the same
        // closure up to the renaming their orderings realize, so only one
        // representative per type needs the (expensive) closure computation.
        let canons: Vec<(CanonType, Vec<Value>)> = pool
            .map_chunks(&work, |_, chunk| {
                chunk
                    .iter()
                    .map(|(consts, bag)| canonicalize(bag, consts))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        let mut type_index: HashMap<&CanonType, usize> = HashMap::new();
        let mut distinct: Vec<(CanonType, Vec<Value>)> = Vec::new();
        let mut bag_type: Vec<usize> = Vec::with_capacity(canons.len());
        for (key, perm) in &canons {
            let next = distinct.len();
            let idx = *type_index.entry(key).or_insert(next);
            if idx == next {
                distinct.push((key.clone(), perm.clone()));
            }
            bag_type.push(idx);
        }
        // Close each distinct type once, distributed over the per-worker
        // saturators; collect the closures in canonical coordinates.
        let closures: Vec<BTreeSet<TAtom>> = pool
            .map_with_state(&distinct, &mut saturators, |sat, _, chunk| {
                chunk
                    .iter()
                    .map(|(key, perm)| {
                        sat.close_canonical(key, perm);
                        sat.encoded_closure(key).expect("closed above").clone()
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        // Translate each bag's type closure through the bag's own ordering
        // and merge. All atoms are over the bag's constants, hence ground.
        let mut added = false;
        for (ti, (_, perm)) in bag_type.iter().zip(&canons) {
            let bag_closure = decode(&closures[*ti], perm);
            for a in bag_closure.iter() {
                added |= ground.insert(a.clone());
            }
        }
        let mut memo_changed = false;
        for s in &mut saturators {
            memo_changed |= s.take_changed();
        }
        refine_all = memo_changed;
        if !added && !memo_changed {
            return ground;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::chase;
    use crate::tgd::parse_tgds;
    use crate::types::ground_saturation;
    use gtgd_query::instance_isomorphic;

    fn db(atoms: &[(&str, &[&str])]) -> Instance {
        Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
    }

    #[test]
    fn par_chase_matches_sequential_full_tgds() {
        let tgds = parse_tgds("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let d = db(&[("E", &["a", "b"]), ("E", &["b", "c"]), ("E", &["c", "d"])]);
        let seq = chase(&d, &tgds, &ChaseBudget::unbounded());
        for w in [1, 2, 4] {
            let par = par_chase(&d, &tgds, &ChaseBudget::unbounded(), w);
            assert!(par.complete);
            // Full TGDs create no nulls, so the instances are equal.
            assert_eq!(par.instance, seq.instance, "workers {w}");
            assert_eq!(par.max_level, seq.max_level);
            assert_eq!(par.levels, seq.levels);
        }
    }

    #[test]
    fn par_chase_isomorphic_with_existentials() {
        let tgds =
            parse_tgds("Emp(X) -> WorksIn(X,D), Dept(D). Dept(D) -> HasMgr(D,M), Emp(M)").unwrap();
        let d = db(&[("Emp", &["ann"]), ("Emp", &["bob"])]);
        let seq = chase(&d, &tgds, &ChaseBudget::levels(4));
        for w in [1, 2, 4] {
            let par = par_chase(&d, &tgds, &ChaseBudget::levels(4), w);
            assert_eq!(par.instance.len(), seq.instance.len(), "workers {w}");
            assert_eq!(par.levels, seq.levels);
            assert_eq!(par.complete, seq.complete);
            assert!(instance_isomorphic(&par.instance, &seq.instance));
        }
    }

    #[test]
    fn par_chase_respects_atom_budget() {
        let tgds = parse_tgds("P(X) -> Q(X,Y). Q(X,Y) -> P(Y)").unwrap();
        let d = db(&[("P", &["a"])]);
        for w in [1, 3] {
            let r = par_chase(&d, &tgds, &ChaseBudget::atoms(20), w);
            assert!(!r.complete);
            assert_eq!(r.instance.len(), 20);
        }
    }

    #[test]
    fn par_chase_budget_edges_match_sequential() {
        // Both budget dimensions at their edges (mid-round exact hit,
        // already-exhausted, multi-atom-head overshoot, level cap at and
        // past the fixpoint): the cached trigger plans must stop exactly
        // where the sequential engine does, at every width.
        let single = parse_tgds("P(X) -> Q(X)").unwrap();
        let multi = parse_tgds("P(X) -> A(X,Y), B(Y), C(Y)").unwrap();
        let chain = parse_tgds("A(X) -> B(X). B(X) -> C(X).").unwrap();
        let names: Vec<String> = (0..30).map(|i| format!("c{i}")).collect();
        let wide =
            Instance::from_atoms(names.iter().map(|n| GroundAtom::named("P", &[n.as_str()])));
        let small = db(&[("A", &["a"])]);
        let cases: [(&Instance, &[Tgd], ChaseBudget); 6] = [
            (&wide, &single, ChaseBudget::atoms(35)),
            (&wide, &single, ChaseBudget::atoms(30)),
            (&wide, &multi, ChaseBudget::atoms(34)),
            (&small, &chain, ChaseBudget::levels(0)),
            (&small, &chain, ChaseBudget::levels(2)),
            (&small, &chain, ChaseBudget::levels(3)),
        ];
        for (d, tgds, budget) in cases {
            let seq = chase(d, tgds, &budget);
            for w in [1, 2, 4] {
                let par = par_chase(d, tgds, &budget, w);
                assert_eq!(par.complete, seq.complete, "{budget:?} at width {w}");
                assert_eq!(par.instance.len(), seq.instance.len(), "{budget:?} at {w}");
                assert_eq!(par.max_level, seq.max_level, "{budget:?} at {w}");
                assert_eq!(par.levels, seq.levels, "{budget:?} at {w}");
            }
        }
    }

    #[test]
    fn par_chase_empty_body_and_empty_db() {
        let tgds = parse_tgds("-> R(X,X)").unwrap();
        let r = par_chase(&Instance::new(), &tgds, &ChaseBudget::unbounded(), 4);
        assert!(r.complete);
        assert_eq!(r.instance.len(), 1);
    }

    #[test]
    fn par_saturation_equals_sequential() {
        let tgds = parse_tgds(
            "Emp(X) -> WorksIn(X,D), Dept(D). \
             WorksIn(X,D), Dept(D) -> Super(D,X). \
             Super(D,X) -> Emp(X)",
        )
        .unwrap();
        let d = db(&[("Emp", &["a"]), ("Emp", &["b"]), ("WorksIn", &["a", "d0"])]);
        let seq = ground_saturation(&d, &tgds);
        for w in [1, 2, 4] {
            assert_eq!(par_ground_saturation(&d, &tgds, w), seq, "workers {w}");
        }
    }

    #[test]
    fn par_saturation_recursive_types() {
        // A recursive linear TGD set whose closure cycles through types.
        let tgds = parse_tgds("A(X) -> R(X,Y), B(Y). B(X) -> R(X,Y), A(Y). R(X,Y), R(Y,X) -> S(X)")
            .unwrap();
        let d = db(&[("A", &["a"]), ("R", &["a", "b"]), ("R", &["b", "a"])]);
        let seq = ground_saturation(&d, &tgds);
        for w in [1, 2, 4] {
            assert_eq!(par_ground_saturation(&d, &tgds, w), seq, "workers {w}");
        }
    }
}
