//! The *typed chase*: a level-bounded materialization of `chase(D, Σ)` for
//! guarded Σ in which every bag carries its complete closed type, mirroring
//! the `(D*, Σ*)` linearization of Lemma A.3.
//!
//! Plain level-bounded chasing is not enough for query evaluation: an atom
//! over shallow constants may only be derivable via a deep detour, so a
//! prefix can miss query matches. Here every materialized bag is *closed*
//! (contains every atom over its constants entailed below it, via the
//! memoized [`Saturator`]), so evaluating a UCQ over the materialized
//! instance is complete for matches confined to the materialized levels.
//!
//! Depth control ([`DepthPolicy`]): either a fixed level bound (the paper's
//! computable bound `g(‖Σ‖+‖q‖)` exists but is exponential; callers may pass
//! any bound), or *adaptive* blocking: expansion below a bag stops
//! `extra_levels` levels after the bag's blocking signature repeats along
//! its ancestor path. A signature is the closed type canonicalized with
//! named constants rigid and inherited nulls marked (but anonymized), so two
//! bags with equal signatures root isomorphic subtrees; matches of queries
//! with at most `extra_levels` variables can then be relocated above the
//! blocking frontier. See DESIGN.md §3 for the substitution argument.
//!
//! Trigger firing is globally deduplicated by `(TGD, body image)`, matching
//! the oblivious chase: the same trigger reachable from two bags fires once.

use crate::tgd::Tgd;
use crate::types::{canonicalize_rigid, CanonType, Saturator};
use gtgd_data::{Instance, Value};
use gtgd_query::{HomSearch, Var};
use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

/// How deep to materialize the typed chase.
#[derive(Debug, Clone, Copy)]
pub enum DepthPolicy {
    /// Materialize exactly the bags up to this level.
    Fixed(usize),
    /// Expand until each path blocks (signature repeats), then `extra_levels`
    /// more; `max_level` is a hard safety stop.
    Adaptive {
        /// Extra levels to expand below a blocking point (choose ≥ the
        /// number of variables of the queries to be evaluated).
        extra_levels: usize,
        /// Hard cap on the level regardless of blocking.
        max_level: usize,
    },
}

/// The result of a typed chase materialization.
#[derive(Debug, Clone)]
pub struct TypedChaseResult {
    /// The materialized, per-bag-closed prefix of the chase.
    pub instance: Instance,
    /// Highest bag level materialized.
    pub max_level: usize,
    /// `true` when expansion ceased because every frontier bag was blocked
    /// (adaptive mode) or the chase reached a fixpoint — i.e. deep enough
    /// for the configured policy; `false` when the hard level cap hit first.
    pub saturated: bool,
    /// Number of bags materialized.
    pub bag_count: usize,
}

struct Bag {
    consts: Vec<Value>,
    atoms: Instance,
    level: usize,
    /// Blocking signatures along the ancestor path.
    ancestry: Vec<CanonType>,
    /// Levels since this path first blocked, if blocked.
    blocked_for: Option<usize>,
}

/// The blocking signature of a bag: its closed atoms plus `__inherited`
/// marker atoms on the constants shared with the parent, canonicalized with
/// named constants rigid and nulls anonymized. Equal signatures mean the
/// bags root isomorphic chase subtrees (named constants fixed pointwise).
fn blocking_signature(atoms: &Instance, consts: &[Value], inherited: &[Value]) -> CanonType {
    let marker = gtgd_data::Predicate::new("__inherited");
    let mut sig = atoms.clone();
    for &v in inherited {
        sig.insert(gtgd_data::GroundAtom::new(marker, vec![v]));
    }
    let rigid: Vec<Value> = consts.iter().copied().filter(|v| v.is_named()).collect();
    let flexible: Vec<Value> = consts.iter().copied().filter(|v| v.is_null()).collect();
    let (key, _) = canonicalize_rigid(&sig, &rigid, &flexible);
    key
}

/// Materializes the typed chase of `db` under guarded `tgds`.
pub fn typed_chase(db: &Instance, tgds: &[Tgd], policy: DepthPolicy) -> TypedChaseResult {
    let mut sat = Saturator::new(tgds);
    typed_chase_with(db, tgds, policy, &mut sat)
}

/// [`typed_chase`] reusing a caller-owned [`Saturator`] (so repeated calls —
/// e.g. one per candidate answer tuple — share the type memo).
pub fn typed_chase_with(
    db: &Instance,
    tgds: &[Tgd],
    policy: DepthPolicy,
    sat: &mut Saturator<'_>,
) -> TypedChaseResult {
    let ground = sat.ground_saturation(db);
    let mut instance = ground.clone();
    let mut queue: Vec<Bag> = Vec::new();
    // Root bags: one per guarded set of the saturated ground part.
    {
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        for a in ground.iter() {
            let mut d = a.dom();
            d.sort_unstable();
            if !seen.insert(d.clone()) {
                continue;
            }
            let keep: HashSet<Value> = d.iter().copied().collect();
            let atoms = ground.restrict_to(&keep);
            queue.push(Bag {
                consts: d,
                atoms,
                level: 0,
                ancestry: Vec::new(),
                blocked_for: None,
            });
        }
    }
    let (hard_cap, extra) = match policy {
        DepthPolicy::Fixed(l) => (l, None),
        DepthPolicy::Adaptive {
            extra_levels,
            max_level,
        } => (max_level, Some(extra_levels)),
    };
    let mut max_level = 0usize;
    let mut saturated = true;
    let mut bag_count = queue.len();
    // Oblivious-chase trigger dedup: (tgd index, body-variable images).
    let mut fired: HashSet<(usize, Vec<Value>)> = HashSet::new();
    let mut qi = 0;
    while qi < queue.len() {
        let bag_idx = qi;
        qi += 1;
        let level = queue[bag_idx].level;
        max_level = max_level.max(level);
        if level >= hard_cap {
            saturated = false;
            continue;
        }
        if let (Some(extra), Some(b)) = (extra, queue[bag_idx].blocked_for) {
            if b >= extra {
                continue; // blocked long enough; subtree repeats above
            }
        }
        // Expand: every existential trigger creates a closed child bag.
        let mut children: Vec<(Bag, Vec<Value>)> = Vec::new();
        {
            let bag = &queue[bag_idx];
            for (ti, tgd) in tgds.iter().enumerate() {
                let exist = tgd.existential_vars();
                if exist.is_empty() {
                    continue; // full consequences are already in the closure
                }
                let frontier = tgd.frontier();
                let body_vars = tgd.body_vars();
                let homs: Vec<HashMap<Var, Value>> = {
                    let mut out = Vec::new();
                    HomSearch::new(&tgd.body, &bag.atoms).for_each(|h| {
                        out.push(h.clone());
                        ControlFlow::Continue(())
                    });
                    out
                };
                for h in homs {
                    let trigger: Vec<Value> = body_vars.iter().map(|v| h[v]).collect();
                    if !fired.insert((ti, trigger)) {
                        continue;
                    }
                    let mut assignment = h.clone();
                    let mut inherited: Vec<Value> = Vec::new();
                    for &v in &frontier {
                        let img = assignment[&v];
                        if !inherited.contains(&img) {
                            inherited.push(img);
                        }
                    }
                    let mut child_consts = inherited.clone();
                    for &z in &exist {
                        let n = Value::fresh_null();
                        assignment.insert(z, n);
                        child_consts.push(n);
                    }
                    let mut child = Instance::new();
                    for head in &tgd.head {
                        child.insert(head.ground(&assignment));
                    }
                    let keep: HashSet<Value> = child_consts.iter().copied().collect();
                    child.extend_from(&bag.atoms.restrict_to(&keep));
                    children.push((
                        Bag {
                            consts: child_consts,
                            atoms: child,
                            level: level + 1,
                            ancestry: Vec::new(), // filled below
                            blocked_for: None,
                        },
                        inherited,
                    ));
                }
            }
        }
        for (mut child, inherited) in children {
            // Close the child and compute its blocking signature.
            let closed = sat.close_bag(&child.atoms, &child.consts);
            child.atoms = closed;
            let signature = blocking_signature(&child.atoms, &child.consts, &inherited);
            let mut ancestry = queue[bag_idx].ancestry.clone();
            let blocked_now = ancestry.contains(&signature);
            child.blocked_for = match (queue[bag_idx].blocked_for, blocked_now) {
                (Some(b), _) => Some(b + 1),
                (None, true) => Some(0),
                (None, false) => None,
            };
            ancestry.push(signature);
            child.ancestry = ancestry;
            instance.extend_from(&child.atoms);
            bag_count += 1;
            queue.push(child);
        }
    }
    TypedChaseResult {
        instance,
        max_level,
        saturated,
        bag_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{chase, ChaseBudget};
    use crate::tgd::parse_tgds;
    use gtgd_data::GroundAtom;
    use gtgd_query::{holds_boolean, parse_cq};

    fn db(atoms: &[(&str, &[&str])]) -> Instance {
        Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
    }

    #[test]
    fn matches_plain_chase_on_terminating_sets() {
        let tgds = parse_tgds("A(X) -> R(X,Y). R(X,Y) -> B(Y)").unwrap();
        let d = db(&[("A", &["a"])]);
        let t = typed_chase(&d, &tgds, DepthPolicy::Fixed(5));
        let q = parse_cq("Q() :- A(X), R(X,Y), B(Y)").unwrap();
        assert!(holds_boolean(&q, &t.instance));
        let reference = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert!(holds_boolean(&q, &reference.instance));
    }

    #[test]
    fn infinite_chase_blocks_adaptively() {
        let tgds = parse_tgds("Person(X) -> Parent(X,Y), Person(Y)").unwrap();
        let d = db(&[("Person", &["eve"])]);
        let t = typed_chase(
            &d,
            &tgds,
            DepthPolicy::Adaptive {
                extra_levels: 3,
                max_level: 50,
            },
        );
        assert!(t.saturated, "blocking should stop expansion well before 50");
        assert!(t.max_level < 10, "max level {}", t.max_level);
        // Query matches that fit in the materialized depth are found.
        let q = parse_cq("Q() :- Parent(X,Y), Parent(Y,Z), Parent(Z,W)").unwrap();
        assert!(holds_boolean(&q, &t.instance));
    }

    #[test]
    fn fixed_cap_reports_unsaturated() {
        let tgds = parse_tgds("Person(X) -> Parent(X,Y), Person(Y)").unwrap();
        let d = db(&[("Person", &["eve"])]);
        let t = typed_chase(&d, &tgds, DepthPolicy::Fixed(2));
        assert!(!t.saturated);
        assert_eq!(t.max_level, 2);
    }

    #[test]
    fn deep_detour_atoms_present_at_low_levels() {
        // T(b) needs a child bag round trip; the typed chase has it in the
        // ground part immediately, unlike a level-1 plain chase prefix.
        let tgds = parse_tgds("R(X,Y) -> S(Y,Z). S(Y,Z) -> T(Y)").unwrap();
        let d = db(&[("R", &["a", "b"])]);
        let t = typed_chase(&d, &tgds, DepthPolicy::Fixed(0));
        assert!(t.instance.contains(&GroundAtom::named("T", &["b"])));
    }

    #[test]
    fn queries_over_infinite_chase_guarded_ontology() {
        // Every department's manager works in some department, recursively.
        let tgds =
            parse_tgds("Dept(D) -> HasMgr(D,M), Emp(M). Emp(M) -> WorksIn(M,D), Dept(D)").unwrap();
        let d = db(&[("Dept", &["sales"])]);
        let t = typed_chase(
            &d,
            &tgds,
            DepthPolicy::Adaptive {
                extra_levels: 4,
                max_level: 30,
            },
        );
        assert!(t.saturated);
        let q = parse_cq("Q() :- HasMgr(D1,M1), WorksIn(M1,D2), HasMgr(D2,M2), WorksIn(M2,D3)")
            .unwrap();
        assert!(holds_boolean(&q, &t.instance));
    }

    #[test]
    fn bag_count_grows_with_database() {
        let tgds = parse_tgds("A(X) -> R(X,Y)").unwrap();
        let small = typed_chase(&db(&[("A", &["a"])]), &tgds, DepthPolicy::Fixed(3));
        let large = typed_chase(
            &db(&[("A", &["a"]), ("A", &["b"]), ("A", &["c"])]),
            &tgds,
            DepthPolicy::Fixed(3),
        );
        assert!(large.bag_count > small.bag_count);
    }
}
