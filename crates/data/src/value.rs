//! Domain elements of instances: named constants and labelled nulls.

use crate::symbols::Symbol;
use std::sync::atomic::{AtomicU64, Ordering};

/// A constant of an instance: either a *named* constant from the input
/// database / query, or a labelled *null* invented by the chase to witness an
/// existential quantifier.
///
/// The paper works with a single countably infinite set `C` of constants and
/// lets the chase pick "fresh distinct constants"; distinguishing nulls here
/// is an implementation convenience (it makes freshness trivially checkable)
/// and does not change semantics — nulls are ordinary constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A named constant.
    Named(Symbol),
    /// A labelled null with a process-unique label.
    Null(u64),
}

static NEXT_NULL: AtomicU64 = AtomicU64::new(0);

impl Value {
    /// A named constant.
    pub fn named(name: &str) -> Value {
        Value::Named(Symbol::new(name))
    }

    /// A fresh labelled null, distinct from every previously created value.
    pub fn fresh_null() -> Value {
        Value::Null(NEXT_NULL.fetch_add(1, Ordering::Relaxed))
    }

    /// Advances the fresh-null counter so that every future
    /// [`Value::fresh_null`] gets a label strictly greater than `max_label`.
    ///
    /// Snapshot loading calls this with the largest null label appearing in
    /// the persisted instance: labels are only process-unique, so an instance
    /// deserialized into a fresh process must fence off the labels it carries
    /// before the chase invents new ones. Monotone (`fetch_max`), so calling
    /// with a stale bound is harmless.
    pub fn reserve_null_labels(max_label: u64) {
        NEXT_NULL.fetch_max(max_label.saturating_add(1), Ordering::Relaxed);
    }

    /// Whether this is a labelled null.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Whether this is a named constant.
    pub fn is_named(self) -> bool {
        matches!(self, Value::Named(_))
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Named(s) => write!(f, "{s}"),
            Value::Null(n) => write!(f, "⊥{n}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::named(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_constants_compare_by_name() {
        assert_eq!(Value::named("a"), Value::named("a"));
        assert_ne!(Value::named("a"), Value::named("b"));
    }

    #[test]
    fn fresh_nulls_are_distinct() {
        let a = Value::fresh_null();
        let b = Value::fresh_null();
        assert_ne!(a, b);
        assert!(a.is_null() && !a.is_named());
    }

    #[test]
    fn nulls_never_equal_named() {
        assert_ne!(Value::fresh_null(), Value::named("x"));
    }

    #[test]
    fn reserved_labels_are_never_reissued() {
        Value::reserve_null_labels(1_000_000);
        match Value::fresh_null() {
            Value::Null(n) => assert!(n > 1_000_000),
            v => panic!("fresh_null returned {v:?}"),
        }
        // Stale (smaller) reservations must not rewind the counter.
        Value::reserve_null_labels(10);
        match Value::fresh_null() {
            Value::Null(n) => assert!(n > 1_000_000),
            v => panic!("fresh_null returned {v:?}"),
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::named("c").to_string(), "c");
        assert!(Value::Null(7).to_string().contains('7'));
    }
}
