//! The homomorphism search engine.
//!
//! Finds mappings from a set of query atoms into an [`Instance`], with
//! optional pre-bound variables, injectivity, and image restriction. This
//! single engine backs CQ evaluation, chase trigger matching, core
//! computation, instance-to-instance homomorphisms, and the `|=io`
//! (injectively-only) checks of Appendix D.
//!
//! The search is backtracking with dynamic atom ordering: at each step it
//! matches the pending atom with the most selective candidate list, where
//! candidates come from the instance's `(predicate, position, value)`
//! indexes.
//!
//! Since the compiled kernel landed ([`crate::compile`]), this type is a
//! thin compatibility wrapper: it compiles the atoms once per call and runs
//! the slot-based [`KernelSearch`], translating rows back into the
//! `HashMap<Var, Value>` shape at the boundary. The answer *set* is
//! identical to the historical implementation (see
//! `tests/differential_kernel.rs`).

use crate::compile::{CompiledQuery, KernelSearch};
use crate::cq::{QAtom, Term, Var};
use gtgd_data::{Instance, Valuation, Value};
use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

/// A configured homomorphism search. Build one, then call
/// [`HomSearch::first`], [`HomSearch::exists`], [`HomSearch::all`], or
/// [`HomSearch::for_each`].
///
/// **Deprecated surface**: for query evaluation, prefer
/// [`crate::engine::Engine::prepare`] — the documented facade with the
/// same options (parallel width, injectivity, image restriction, strategy)
/// plus tracing. `HomSearch` remains for callers that need raw
/// `HashMap<Var, Value>` valuations over ad-hoc atom lists.
pub struct HomSearch<'a> {
    atoms: &'a [QAtom],
    target: &'a Instance,
    fixed: HashMap<Var, Value>,
    injective: bool,
    allowed: Option<HashSet<Value>>,
}

impl<'a> HomSearch<'a> {
    /// A search for homomorphisms from `atoms` into `target`.
    pub fn new(atoms: &'a [QAtom], target: &'a Instance) -> Self {
        HomSearch {
            atoms,
            target,
            fixed: HashMap::new(),
            injective: false,
            allowed: None,
        }
    }

    /// Pre-binds variables (e.g. answer variables to a candidate tuple).
    pub fn fix(mut self, bindings: impl IntoIterator<Item = (Var, Value)>) -> Self {
        self.fixed.extend(bindings);
        self
    }

    /// Requires the homomorphism to be injective on variables.
    pub fn injective(mut self) -> Self {
        self.injective = true;
        self
    }

    /// Restricts variable images to the given set.
    pub fn restrict_images(mut self, allowed: HashSet<Value>) -> Self {
        self.allowed = Some(allowed);
        self
    }

    /// Compiles the atoms, also interning fixed-only (ghost) variables so
    /// they survive into the output maps.
    fn compiled(&self) -> CompiledQuery {
        CompiledQuery::compile_with_extra(self.atoms, self.fixed.keys().copied())
    }

    /// Configures a kernel search over `plan` mirroring this wrapper's
    /// fixed bindings and modes.
    fn kernel<'s>(&'s self, plan: &'s CompiledQuery) -> KernelSearch<'s> {
        let mut k = plan.search(self.target).fix_slots(
            self.fixed
                .iter()
                .map(|(&v, &x)| (plan.slot_of(v).expect("fixed vars are interned"), x)),
        );
        if self.injective {
            k = k.injective();
        }
        if let Some(allowed) = &self.allowed {
            k = k.restrict_images(allowed);
        }
        k
    }

    /// Visits every homomorphism; the callback may stop enumeration by
    /// returning [`ControlFlow::Break`]. Returns `true` if enumeration was
    /// stopped early. The map passed to the callback is reused between
    /// calls — clone it to keep it.
    pub fn for_each(&self, mut f: impl FnMut(&HashMap<Var, Value>) -> ControlFlow<()>) -> bool {
        let plan = self.compiled();
        let vars = plan.vars().to_vec();
        let mut map: HashMap<Var, Value> = HashMap::with_capacity(vars.len());
        self.kernel(&plan).for_each_row(|row| {
            map.clear();
            for (i, &v) in vars.iter().enumerate() {
                map.insert(v, row[i]);
            }
            f(&map)
        })
    }

    /// The first homomorphism found, if any. Short-circuits inside the
    /// kernel: exactly one map is built, only on success.
    pub fn first(&self) -> Option<HashMap<Var, Value>> {
        let plan = self.compiled();
        let row = self.kernel(&plan).first_row()?;
        Some(plan.vars().iter().copied().zip(row).collect())
    }

    /// Whether any homomorphism exists. Short-circuits without
    /// materializing any assignment.
    pub fn exists(&self) -> bool {
        let plan = self.compiled();
        self.kernel(&plan).exists()
    }

    /// All homomorphisms (deduplicated by construction).
    pub fn all(&self) -> Vec<HashMap<Var, Value>> {
        let plan = self.compiled();
        self.kernel(&plan).table().to_maps()
    }

    /// All homomorphisms, enumerated on a `workers`-wide pool.
    ///
    /// The top-level candidate list of the most selective atom is split
    /// across workers; each worker runs the sequential backtracking search
    /// on its share. Returns the same *set* as [`HomSearch::all`] (the
    /// enumeration order differs: it follows the split atom's candidate
    /// order), and the output is deterministic for any worker count because
    /// per-chunk results are concatenated in chunk order.
    pub fn par_all(&self, workers: usize) -> Vec<HashMap<Var, Value>> {
        let plan = self.compiled();
        self.kernel(&plan).par_table(workers).to_maps()
    }

    /// Number of homomorphisms (without materializing them).
    pub fn count(&self) -> usize {
        let plan = self.compiled();
        self.kernel(&plan).count()
    }
}

/// Finds a homomorphism from `atoms` into `target` extending `fixed`.
pub fn find_homomorphism(
    atoms: &[QAtom],
    target: &Instance,
    fixed: impl IntoIterator<Item = (Var, Value)>,
) -> Option<HashMap<Var, Value>> {
    HomSearch::new(atoms, target).fix(fixed).first()
}

/// Whether a homomorphism from `atoms` into `target` exists.
pub fn exists_homomorphism(atoms: &[QAtom], target: &Instance) -> bool {
    HomSearch::new(atoms, target).exists()
}

/// All homomorphisms from `atoms` into `target`.
pub fn all_homomorphisms(atoms: &[QAtom], target: &Instance) -> Vec<HashMap<Var, Value>> {
    HomSearch::new(atoms, target).all()
}

/// Views an instance as a set of query atoms: every domain value becomes a
/// variable. Returns the atoms and the value → variable mapping. This
/// implements the paper's notion of instance homomorphism, where constants
/// are *not* fixed.
pub fn instance_as_atoms(i: &Instance) -> (Vec<QAtom>, HashMap<Value, Var>) {
    let mut var_of: HashMap<Value, Var> = HashMap::new();
    for (idx, &v) in i.dom().iter().enumerate() {
        var_of.insert(v, Var(idx as u32));
    }
    let atoms = i
        .iter()
        .map(|a| {
            QAtom::new(
                a.predicate,
                a.args.iter().map(|&v| Term::Var(var_of[&v])).collect(),
            )
        })
        .collect();
    (atoms, var_of)
}

/// Finds a homomorphism (paper semantics: any function on the domain) from
/// instance `from` to instance `to`.
pub fn instance_homomorphism(from: &Instance, to: &Instance) -> Option<Valuation> {
    instance_homomorphism_fixing(from, to, &Valuation::new())
}

/// Like [`instance_homomorphism`], with some domain values pre-mapped (e.g.
/// the identity on `dom(D)` for Proposition 2.2-style checks).
pub fn instance_homomorphism_fixing(
    from: &Instance,
    to: &Instance,
    fixed: &Valuation,
) -> Option<Valuation> {
    let (atoms, var_of) = instance_as_atoms(from);
    let fixed_vars: Vec<(Var, Value)> = fixed
        .iter()
        .filter_map(|(&v, &img)| var_of.get(&v).map(|&x| (x, img)))
        .collect();
    let h = HomSearch::new(&atoms, to).fix(fixed_vars).first()?;
    let mut val = Valuation::new();
    for (&value, &var) in &var_of {
        if let Some(&img) = h.get(&var) {
            val.insert(value, img);
        }
    }
    // Domain values not occurring in any atom cannot exist (instances store
    // only atom-borne values), so `val` is total on dom(from).
    Some(val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;
    use gtgd_data::GroundAtom;

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    fn path_db(n: usize) -> Instance {
        let names: Vec<String> = (0..=n).map(|i| format!("n{i}")).collect();
        Instance::from_atoms(
            (0..n).map(|i| GroundAtom::named("E", &[names[i].as_str(), names[i + 1].as_str()])),
        )
    }

    #[test]
    fn finds_path_homomorphism() {
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z)").unwrap();
        let db = path_db(2);
        assert!(exists_homomorphism(&q.atoms, &db));
        let h = find_homomorphism(&q.atoms, &db, []).unwrap();
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn respects_fixed_bindings() {
        let q = parse_cq("Q(X) :- E(X,Y)").unwrap();
        let db = path_db(2);
        let x = q.answer_vars[0];
        assert!(find_homomorphism(&q.atoms, &db, [(x, v("n0"))]).is_some());
        assert!(find_homomorphism(&q.atoms, &db, [(x, v("n2"))]).is_none());
    }

    #[test]
    fn all_homs_counts_paths() {
        let q = parse_cq("Q() :- E(X,Y)").unwrap();
        let db = path_db(3);
        assert_eq!(all_homomorphisms(&q.atoms, &db).len(), 3);
        assert_eq!(HomSearch::new(&q.atoms, &db).count(), 3);
    }

    #[test]
    fn injective_mode_excludes_collapses() {
        // A reflexive loop satisfies E(X,Y),E(Y,X) non-injectively only.
        let db = Instance::from_atoms([GroundAtom::named("E", &["a", "a"])]);
        let q = parse_cq("Q() :- E(X,Y), E(Y,X)").unwrap();
        assert!(exists_homomorphism(&q.atoms, &db));
        assert!(!HomSearch::new(&q.atoms, &db).injective().exists());
        // A genuine 2-cycle satisfies it injectively.
        let db2 = Instance::from_atoms([
            GroundAtom::named("E", &["a", "b"]),
            GroundAtom::named("E", &["b", "a"]),
        ]);
        assert!(HomSearch::new(&q.atoms, &db2).injective().exists());
    }

    #[test]
    fn image_restriction() {
        let q = parse_cq("Q() :- E(X,Y)").unwrap();
        let db = path_db(3);
        let allowed: HashSet<Value> = [v("n0"), v("n1")].into_iter().collect();
        let homs = HomSearch::new(&q.atoms, &db).restrict_images(allowed).all();
        assert_eq!(homs.len(), 1); // only E(n0,n1)
    }

    #[test]
    fn constants_in_query_must_match() {
        let q = parse_cq("Q() :- E(n0, Y)").unwrap();
        let db = path_db(2);
        assert!(exists_homomorphism(&q.atoms, &db));
        let q2 = parse_cq("Q() :- E(n2, Y)").unwrap();
        assert!(!exists_homomorphism(&q2.atoms, &db));
    }

    #[test]
    fn instance_homomorphism_not_constant_preserving() {
        // R(a,b) → R(c,c): legal under the paper's definition.
        let from = Instance::from_atoms([GroundAtom::named("R", &["a", "b"])]);
        let to = Instance::from_atoms([GroundAtom::named("R", &["c", "c"])]);
        let h = instance_homomorphism(&from, &to).unwrap();
        assert_eq!(h[&v("a")], v("c"));
        assert_eq!(h[&v("b")], v("c"));
        assert!(gtgd_data::is_homomorphism(&h, &from, &to));
    }

    #[test]
    fn instance_homomorphism_fixing_identity() {
        let from = Instance::from_atoms([GroundAtom::named("R", &["a", "b"])]);
        let to = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("R", &["x", "y"]),
        ]);
        let fixed: Valuation = [(v("a"), v("a")), (v("b"), v("b"))].into_iter().collect();
        let h = instance_homomorphism_fixing(&from, &to, &fixed).unwrap();
        assert_eq!(h[&v("a")], v("a"));
        // Fixing to something impossible fails.
        let bad: Valuation = [(v("a"), v("y"))].into_iter().collect();
        assert!(instance_homomorphism_fixing(&from, &to, &bad).is_none());
    }

    #[test]
    fn early_stop_enumeration() {
        let q = parse_cq("Q() :- E(X,Y)").unwrap();
        let db = path_db(5);
        let mut count = 0;
        let stopped = HomSearch::new(&q.atoms, &db).for_each(|_| {
            count += 1;
            if count == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(stopped);
        assert_eq!(count, 2);
    }

    #[test]
    fn empty_atom_list_yields_exactly_the_fixed_assignment() {
        let db = path_db(2);
        let atoms: Vec<QAtom> = Vec::new();
        // No atoms, no fixed bindings: one empty homomorphism.
        let homs = HomSearch::new(&atoms, &db).all();
        assert_eq!(homs.len(), 1);
        assert!(homs[0].is_empty());
        // No atoms with fixed bindings: the fixed assignment itself.
        let homs = HomSearch::new(&atoms, &db).fix([(Var(0), v("n0"))]).all();
        assert_eq!(homs, vec![HashMap::from([(Var(0), v("n0"))])]);
        assert_eq!(HomSearch::new(&atoms, &db).count(), 1);
        assert_eq!(HomSearch::new(&atoms, &db).par_all(4).len(), 1);
    }

    #[test]
    fn fixing_a_variable_absent_from_atoms_is_kept() {
        let q = parse_cq("Q() :- E(X,Y)").unwrap();
        let db = path_db(2);
        let ghost = Var(99);
        let homs = HomSearch::new(&q.atoms, &db).fix([(ghost, v("n0"))]).all();
        assert_eq!(homs.len(), 2);
        assert!(homs.iter().all(|h| h[&ghost] == v("n0")));
        // Injectivity counts the ghost binding's value as used.
        let inj = HomSearch::new(&q.atoms, &db)
            .fix([(ghost, v("n0"))])
            .injective()
            .all();
        assert_eq!(inj.len(), 1); // E(n0,n1) would reuse n0
                                  // And an image restriction excluding the ghost's value kills all.
        let allowed: HashSet<Value> = [v("n1"), v("n2")].into_iter().collect();
        assert!(HomSearch::new(&q.atoms, &db)
            .fix([(ghost, v("n0"))])
            .restrict_images(allowed)
            .all()
            .is_empty());
    }

    #[test]
    fn restrict_images_combined_with_injective() {
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z)").unwrap();
        let db = path_db(3);
        let allowed: HashSet<Value> = [v("n0"), v("n1"), v("n2")].into_iter().collect();
        let homs = HomSearch::new(&q.atoms, &db)
            .restrict_images(allowed.clone())
            .injective()
            .all();
        // Only the walk n0→n1→n2 stays inside the allowed set injectively.
        assert_eq!(homs.len(), 1);
        let h = &homs[0];
        let imgs: HashSet<Value> = h.values().copied().collect();
        assert_eq!(imgs, allowed);
    }

    #[test]
    fn duplicate_fixed_values_fail_injective_search() {
        let q = parse_cq("Q(X,Y) :- E(X,Y)").unwrap();
        let db = path_db(2);
        let fixed = [(q.answer_vars[0], v("n0")), (q.answer_vars[1], v("n0"))];
        assert!(HomSearch::new(&q.atoms, &db)
            .fix(fixed)
            .injective()
            .all()
            .is_empty());
        assert!(HomSearch::new(&q.atoms, &db)
            .fix(fixed)
            .injective()
            .par_all(3)
            .is_empty());
    }

    #[test]
    fn par_all_matches_all_as_a_set() {
        fn key(h: &HashMap<Var, Value>) -> Vec<(Var, Value)> {
            let mut kv: Vec<(Var, Value)> = h.iter().map(|(&k, &x)| (k, x)).collect();
            kv.sort_unstable();
            kv
        }
        let db = path_db(6);
        for q in [
            "Q() :- E(X,Y)",
            "Q() :- E(X,Y), E(Y,Z)",
            "Q() :- E(X,Y), E(Y,Z), E(Z,W)",
            "Q() :- E(X,X)",
            "Q() :- E(n0, Y)",
        ] {
            let q = parse_cq(q).unwrap();
            let mut seq: Vec<_> = HomSearch::new(&q.atoms, &db)
                .all()
                .iter()
                .map(key)
                .collect();
            seq.sort();
            for w in [1usize, 2, 4, 7] {
                let mut par: Vec<_> = HomSearch::new(&q.atoms, &db)
                    .par_all(w)
                    .iter()
                    .map(key)
                    .collect();
                par.sort();
                assert_eq!(par, seq, "query {:?} workers {w}", q.atoms.len());
            }
        }
    }

    #[test]
    fn par_all_respects_modes() {
        let db = Instance::from_atoms([
            GroundAtom::named("E", &["a", "b"]),
            GroundAtom::named("E", &["b", "a"]),
            GroundAtom::named("E", &["a", "a"]),
        ]);
        let q = parse_cq("Q() :- E(X,Y), E(Y,X)").unwrap();
        let seq = HomSearch::new(&q.atoms, &db).injective().all().len();
        assert_eq!(
            HomSearch::new(&q.atoms, &db).injective().par_all(4).len(),
            seq
        );
        let allowed: HashSet<Value> = [v("a")].into_iter().collect();
        let seq = HomSearch::new(&q.atoms, &db)
            .restrict_images(allowed.clone())
            .all()
            .len();
        assert_eq!(
            HomSearch::new(&q.atoms, &db)
                .restrict_images(allowed)
                .par_all(4)
                .len(),
            seq
        );
    }

    #[test]
    fn zero_ary_atom_matching() {
        let db = Instance::from_atoms([GroundAtom::named("Goal", &[])]);
        let q = parse_cq("Q() :- Goal()").unwrap();
        assert!(exists_homomorphism(&q.atoms, &db));
        let q2 = parse_cq("Q() :- Start()").unwrap();
        assert!(!exists_homomorphism(&q2.atoms, &db));
    }

    #[test]
    fn repeated_variable_positions() {
        let db = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("R", &["c", "c"]),
        ]);
        let q = parse_cq("Q() :- R(X,X)").unwrap();
        let homs = all_homomorphisms(&q.atoms, &db);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].values().next(), Some(&v("c")));
    }
}
