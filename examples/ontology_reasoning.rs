//! Open-world ontology-mediated querying in depth: the chase, data-schema
//! restrictions, and the difference between open- and closed-world reading
//! of the same query.
//!
//! Run with: `cargo run --example ontology_reasoning`

use gtgd::chase::{parse_tgds, ChaseBudget, ChaseRunner, DepthPolicy};
use gtgd::data::{GroundAtom, Instance, Schema};
use gtgd::omq::{evaluate_omq, EvalConfig, Omq};
use gtgd::query::{parse_cq, parse_ucq, Engine};

fn main() {
    // A publication ontology: every paper has an author who is a person;
    // every person works at an institution; co-authorship is symmetric.
    let sigma = parse_tgds(
        "Paper(P) -> AuthorOf(A,P), Person(A). \
         Person(A) -> AffiliatedWith(A,I), Inst(I). \
         CoAuthor(A,B) -> CoAuthor(B,A)",
    )
    .expect("ontology parses");

    let db = Instance::from_atoms([
        GroundAtom::named("Paper", &["pods20"]),
        GroundAtom::named("AuthorOf", &["barcelo", "pods20"]),
        GroundAtom::named("Person", &["barcelo"]),
        GroundAtom::named("CoAuthor", &["barcelo", "lutz"]),
    ]);

    // Closed-world: evaluate directly over the database through the
    // `Engine` facade. Nothing says lutz co-authors barcelo (the symmetric
    // fact is missing), and no affiliation exists at all.
    let q_sym_cq = parse_cq("Q(X) :- CoAuthor(lutz, X)").unwrap();
    let closed = Engine::prepare(&q_sym_cq).answers(&db);
    let q_sym = parse_ucq("Q(X) :- CoAuthor(lutz, X)").unwrap();
    println!("closed-world CoAuthor(lutz, ·): {} answers", closed.len());
    assert!(closed.is_empty());

    // Open-world: the OMQ derives the symmetric fact.
    let omq_sym = Omq::full_schema(sigma.clone(), q_sym);
    let open = evaluate_omq(&omq_sym, &db, &EvalConfig::default());
    println!(
        "open-world   CoAuthor(lutz, ·): {} answers (exact = {})",
        open.answers.len(),
        open.exact
    );
    assert_eq!(open.answers.len(), 1);

    // The ontology also invents unnamed affiliations: a query *about* them
    // has certain answers even though Inst is empty in the data.
    let q_aff = parse_ucq("Q(A) :- Person(A), AffiliatedWith(A,I), Inst(I)").unwrap();
    let omq_aff = Omq::full_schema(sigma.clone(), q_aff.clone());
    let open_aff = evaluate_omq(&omq_aff, &db, &EvalConfig::default());
    println!(
        "open-world   affiliated persons: {} answers",
        open_aff.answers.len()
    );
    assert_eq!(open_aff.answers.len(), 1); // barcelo (lutz is not asserted Person)

    // Peek at the chase: the universal model the answers come from
    // (Prop 3.1: Q(D) = q(chase(D, Σ))). `ChaseRunner` is the facade over
    // the chase engines.
    let prefix = ChaseRunner::new(&sigma)
        .budget(ChaseBudget::levels(2))
        .run(&db);
    println!(
        "chase prefix to level 2: {} atoms (complete = {})",
        prefix.instance.len(),
        prefix.complete
    );

    // A restricted data schema: inputs may only mention Paper/AuthorOf —
    // the ontology vocabulary stays available for querying.
    let data_schema = Schema::from_pairs([("Paper", 1), ("AuthorOf", 2)]);
    let omq_restricted = Omq::new(
        data_schema,
        sigma,
        parse_ucq("Q(P) :- AuthorOf(A,P), AffiliatedWith(A,I)").unwrap(),
    )
    .expect("schema-consistent OMQ");
    let db_s = Instance::from_atoms([GroundAtom::named("Paper", &["pods20"])]);
    let r = evaluate_omq(&omq_restricted, &db_s, &EvalConfig::default());
    let shown: Vec<String> = r
        .answers
        .iter()
        .map(|t| {
            t.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    println!("restricted-schema OMQ answers: {shown:?}");
    assert_eq!(r.answers.len(), 1);

    // Depth policies are explicit: a typed chase with adaptive blocking is
    // what makes the infinite chase above answerable exactly.
    let t = gtgd::chase::typed_chase(
        &db_s,
        &omq_restricted.sigma,
        DepthPolicy::Adaptive {
            extra_levels: 4,
            max_level: 40,
        },
    );
    println!(
        "typed chase: {} atoms across {} bags, saturated = {}",
        t.instance.len(),
        t.bag_count,
        t.saturated
    );
    assert!(t.saturated);
}
