//! E8 — Grohe's baseline: CQ core computation (semantic treewidth of plain
//! CQs, Theorem 4.1's decidability footnote).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtgd_query::{core_of, parse_cq};

fn redundant_query(pendant: usize) -> gtgd_query::Cq {
    let mut atoms = vec![
        "E(Y0,Y1)".to_string(),
        "E(Y1,Y2)".to_string(),
        "E(Y2,Y0)".to_string(),
    ];
    for i in 0..pendant {
        atoms.push(format!("E(Z{i},Z{})", i + 1));
    }
    parse_cq(&format!("Q() :- {}", atoms.join(", "))).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_cq_core");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &pendant in &[4usize, 8, 12] {
        let q = redundant_query(pendant);
        group.bench_with_input(BenchmarkId::new("core_of", pendant), &q, |b, q| {
            b.iter(|| core_of(q))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
