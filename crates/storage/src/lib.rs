#![warn(missing_docs)]

//! Persistence and serving for the guarded-TGD toolkit: a versioned,
//! checksummed binary snapshot of a maintained chase fixpoint
//! ([`snapshot`]), and a long-lived daemon that loads one snapshot and
//! answers queries with zero chase, index-build, or plan-compilation work
//! on the hot path ([`serve`]).
//!
//! The division of labor with the rest of the workspace: `gtgd-data` and
//! `gtgd-chase` own the *state* (and validate persisted index sections at
//! install time); this crate owns the *bytes* and the *wire protocol*.
//! Everything is std-only, like the rest of the workspace.
//!
//! ```no_run
//! use gtgd_storage::{load_snapshot, save_snapshot};
//! use gtgd_chase::{parse_tgds, ChaseBudget, ChaseRunner};
//! use gtgd_data::{GroundAtom, Instance};
//!
//! let tgds = parse_tgds("Emp(X) -> WorksIn(X,D)")?;
//! let db = Instance::from_atoms([GroundAtom::named("Emp", &["ann"])]);
//! let m = ChaseRunner::new(&tgds).budget(ChaseBudget::atoms(1_000)).maintain(&db);
//! save_snapshot("org.gsnap".as_ref(), &tgds, &m).unwrap();
//! let back = load_snapshot("org.gsnap".as_ref()).unwrap();
//! assert_eq!(back.instance().len(), m.instance().len());
//! # Ok::<(), gtgd_query::ParseError>(())
//! ```

pub mod bytes;
pub mod serve;
pub mod snapshot;

pub use serve::{Client, Server};
pub use snapshot::{
    load_snapshot, load_snapshot_bytes, save_snapshot, snapshot_bytes, LoadedSnapshot,
    SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
