//! Treewidth via elimination orders: greedy heuristics, a degeneracy lower
//! bound, and an exact memoized branch-and-bound decision procedure.
//!
//! All algorithms work on the *fill graph* induced by eliminating a set `S`:
//! two remaining vertices are adjacent iff the original graph connects them
//! by a path whose internal vertices all lie in `S`. This avoids ever
//! materializing filled graphs during the search.

use crate::decomposition::TreeDecomposition;
use crate::graph::Graph;
use std::collections::{BTreeSet, HashSet, VecDeque};

/// An elimination order of all vertices of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminationOrder(pub Vec<usize>);

/// Greedy vertex-selection rule for [`treewidth_upper_bound`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Heuristic {
    /// Eliminate a vertex of minimum current degree.
    MinDegree,
    /// Eliminate a vertex whose elimination adds the fewest fill edges.
    MinFill,
}

/// Compact bitset keyed by vertex id; used to memoize search states.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BitSet(Vec<u64>);

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet(vec![0; n.div_ceil(64)])
    }
    fn insert(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn remove(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }
    fn contains(&self, i: usize) -> bool {
        self.0[i / 64] >> (i % 64) & 1 == 1
    }
}

/// Neighbors of `v` in the fill graph after eliminating `elim`:
/// vertices `u ∉ elim` reachable from `v` via paths internal to `elim`.
fn fill_neighbors(g: &Graph, elim: &BitSet, v: usize) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    let mut seen = vec![false; g.vertex_count()];
    seen[v] = true;
    let mut queue = VecDeque::from([v]);
    while let Some(u) = queue.pop_front() {
        for w in g.neighbors(u) {
            if seen[w] {
                continue;
            }
            seen[w] = true;
            if elim.contains(w) {
                queue.push_back(w);
            } else if w != v {
                out.insert(w);
            }
        }
    }
    out
}

/// Degeneracy of `g`; a lower bound on treewidth.
pub fn degeneracy_lower_bound(g: &Graph) -> usize {
    let n = g.vertex_count();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut best = 0;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| deg[v])
            .expect("vertex remains");
        best = best.max(deg[v]);
        removed[v] = true;
        for u in g.neighbors(v) {
            if !removed[u] {
                deg[u] -= 1;
            }
        }
    }
    best
}

/// Greedy upper bound: returns `(width, order)` for the chosen heuristic.
pub fn treewidth_upper_bound(g: &Graph, h: Heuristic) -> (usize, EliminationOrder) {
    let n = g.vertex_count();
    let mut elim = BitSet::new(n);
    let mut order = Vec::with_capacity(n);
    let mut width = 0usize;
    // Cache fill neighborhoods; recompute lazily for dirtied vertices.
    let mut nbrs: Vec<BTreeSet<usize>> = (0..n).map(|v| g.neighbor_set(v).clone()).collect();
    let mut alive: BTreeSet<usize> = (0..n).collect();
    while let Some(&v) = {
        let pick = match h {
            Heuristic::MinDegree => alive.iter().min_by_key(|&&v| (nbrs[v].len(), v)),
            Heuristic::MinFill => alive.iter().min_by_key(|&&v| {
                let ns: Vec<usize> = nbrs[v].iter().copied().collect();
                let mut fill = 0usize;
                for (i, &a) in ns.iter().enumerate() {
                    for &b in &ns[i + 1..] {
                        if !nbrs[a].contains(&b) {
                            fill += 1;
                        }
                    }
                }
                (fill, v)
            }),
        };
        pick
    } {
        alive.remove(&v);
        elim.insert(v);
        let ns: Vec<usize> = nbrs[v].iter().copied().collect();
        width = width.max(ns.len());
        // Clique the neighborhood in the working adjacency and drop v.
        for (i, &a) in ns.iter().enumerate() {
            nbrs[a].remove(&v);
            for &b in &ns[i + 1..] {
                nbrs[a].insert(b);
                nbrs[b].insert(a);
            }
        }
        order.push(v);
    }
    (width, EliminationOrder(order))
}

/// Decides whether `tw(g) ≤ k` (standard convention: edgeless graphs have
/// treewidth 0 here; the paper's `= 1` convention is applied by
/// [`crate::treewidth`]). Returns a witnessing elimination order on success.
pub fn is_treewidth_at_most(g: &Graph, k: usize) -> Option<EliminationOrder> {
    let n = g.vertex_count();
    if n == 0 {
        return Some(EliminationOrder(Vec::new()));
    }
    if degeneracy_lower_bound(g) > k {
        return None;
    }
    let mut elim = BitSet::new(n);
    let mut order = Vec::with_capacity(n);
    let mut dead: HashSet<BitSet> = HashSet::new();
    if search(g, k, &mut elim, &mut order, &mut dead, n) {
        Some(EliminationOrder(order))
    } else {
        None
    }
}

fn search(
    g: &Graph,
    k: usize,
    elim: &mut BitSet,
    order: &mut Vec<usize>,
    dead: &mut HashSet<BitSet>,
    remaining: usize,
) -> bool {
    if remaining <= k + 1 {
        // All remaining vertices fit in one bag.
        for v in 0..g.vertex_count() {
            if !elim.contains(v) {
                order.push(v);
            }
        }
        return true;
    }
    if dead.contains(elim) {
        return false;
    }
    // Candidate order: prefer vertices with small fill degree. Eliminating a
    // simplicial vertex of degree ≤ k is always safe, so try it first and do
    // not backtrack over it.
    let mut candidates: Vec<(usize, usize, bool)> = Vec::new();
    for v in 0..g.vertex_count() {
        if elim.contains(v) {
            continue;
        }
        let ns = fill_neighbors(g, elim, v);
        if ns.len() <= k {
            let simplicial = {
                let nv: Vec<usize> = ns.iter().copied().collect();
                nv.iter().enumerate().all(|(i, &a)| {
                    nv[i + 1..]
                        .iter()
                        .all(|&b| fill_neighbors(g, elim, a).contains(&b) || g.has_edge(a, b))
                })
            };
            candidates.push((ns.len(), v, simplicial));
        }
    }
    candidates.sort_unstable();
    if let Some(&(_, v, _)) = candidates.iter().find(|&&(_, _, s)| s) {
        // Safe greedy move.
        elim.insert(v);
        order.push(v);
        if search(g, k, elim, order, dead, remaining - 1) {
            return true;
        }
        order.pop();
        elim.remove(v);
        dead.insert(elim.clone());
        return false;
    }
    for (_, v, _) in candidates {
        elim.insert(v);
        order.push(v);
        if search(g, k, elim, order, dead, remaining - 1) {
            return true;
        }
        order.pop();
        elim.remove(v);
    }
    dead.insert(elim.clone());
    false
}

/// Exact treewidth (standard convention) with a witnessing decomposition.
pub fn treewidth_exact(g: &Graph) -> (usize, TreeDecomposition) {
    let lb = degeneracy_lower_bound(g);
    let (ub, ub_order) = {
        let (w1, o1) = treewidth_upper_bound(g, Heuristic::MinFill);
        let (w2, o2) = treewidth_upper_bound(g, Heuristic::MinDegree);
        if w1 <= w2 {
            (w1, o1)
        } else {
            (w2, o2)
        }
    };
    if lb == ub {
        return (ub, decomposition_from_order(g, &ub_order));
    }
    for k in lb..ub {
        if let Some(order) = is_treewidth_at_most(g, k) {
            return (k, decomposition_from_order(g, &order));
        }
    }
    (ub, decomposition_from_order(g, &ub_order))
}

/// Builds a tree decomposition from an elimination order. The width of the
/// result equals the width of the order.
pub fn decomposition_from_order(g: &Graph, order: &EliminationOrder) -> TreeDecomposition {
    let n = g.vertex_count();
    assert_eq!(order.0.len(), n, "order must cover every vertex");
    if n == 0 {
        return TreeDecomposition::new(Vec::new(), Vec::new());
    }
    let mut pos = vec![0usize; n];
    for (i, &v) in order.0.iter().enumerate() {
        pos[v] = i;
    }
    let mut elim = BitSet::new(n);
    let mut bags: Vec<BTreeSet<usize>> = Vec::with_capacity(n);
    // later_nbrs[i]: fill neighbors of order[i] at its elimination time.
    let mut later_nbrs: Vec<BTreeSet<usize>> = Vec::with_capacity(n);
    for &v in &order.0 {
        let ns = fill_neighbors(g, &elim, v);
        let mut bag = ns.clone();
        bag.insert(v);
        bags.push(bag);
        later_nbrs.push(ns);
        elim.insert(v);
    }
    let mut edges = Vec::new();
    let mut roots = Vec::new();
    for (i, nbrs) in later_nbrs.iter().enumerate() {
        // Connect bag i to the bag of the earliest-eliminated later neighbor.
        match nbrs.iter().map(|&u| pos[u]).min() {
            Some(j) => edges.push((i, j)),
            None => roots.push(i),
        }
    }
    // Chain any forest roots so the result is a single tree.
    for w in roots.windows(2) {
        edges.push((w[0], w[1]));
    }
    TreeDecomposition::new(bags, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::grid;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    fn cycle(n: usize) -> Graph {
        let mut g = path(n);
        g.add_edge(0, n - 1);
        g
    }

    fn clique(n: usize) -> Graph {
        let mut g = Graph::new(n);
        g.make_clique(&(0..n).collect::<Vec<_>>());
        g
    }

    #[test]
    fn exact_widths_of_standard_graphs() {
        assert_eq!(treewidth_exact(&path(6)).0, 1);
        assert_eq!(treewidth_exact(&cycle(5)).0, 2);
        assert_eq!(treewidth_exact(&clique(5)).0, 4);
        assert_eq!(treewidth_exact(&grid(3, 3)).0, 3);
        assert_eq!(treewidth_exact(&grid(2, 5)).0, 2);
        assert_eq!(treewidth_exact(&Graph::new(3)).0, 0);
    }

    #[test]
    fn exact_decompositions_validate() {
        for g in [path(5), cycle(6), clique(4), grid(3, 4)] {
            let (w, d) = treewidth_exact(&g);
            d.validate(&g).unwrap();
            assert_eq!(d.width(), w);
        }
    }

    #[test]
    fn decision_procedure_agrees_with_exact() {
        let g = grid(3, 3);
        assert!(is_treewidth_at_most(&g, 3).is_some());
        assert!(is_treewidth_at_most(&g, 2).is_none());
        assert!(is_treewidth_at_most(&g, 8).is_some());
    }

    #[test]
    fn heuristics_upper_bound_exact() {
        for g in [path(8), cycle(7), clique(5), grid(3, 5), grid(4, 4)] {
            let exact = treewidth_exact(&g).0;
            for h in [Heuristic::MinDegree, Heuristic::MinFill] {
                let (w, order) = treewidth_upper_bound(&g, h);
                assert!(w >= exact, "heuristic below exact width");
                let d = decomposition_from_order(&g, &order);
                d.validate(&g).unwrap();
                assert_eq!(d.width(), w);
            }
        }
    }

    #[test]
    fn degeneracy_is_lower_bound() {
        for g in [path(8), cycle(7), clique(5), grid(3, 5)] {
            assert!(degeneracy_lower_bound(&g) <= treewidth_exact(&g).0);
        }
    }

    #[test]
    fn disconnected_graphs_handled() {
        let mut g = path(3);
        g.disjoint_union(&cycle(4));
        let (w, d) = treewidth_exact(&g);
        assert_eq!(w, 2);
        d.validate(&g).unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        let (w, d) = treewidth_exact(&g);
        assert_eq!(w, 0);
        assert_eq!(d.bag_count(), 0);
    }

    #[test]
    fn min_fill_is_optimal_on_chordal_graph() {
        // A chordal graph: two triangles sharing an edge. Min-fill finds the
        // perfect elimination order, giving exact width 2.
        let mut g = Graph::new(4);
        g.make_clique(&[0, 1, 2]);
        g.make_clique(&[1, 2, 3]);
        let (w, _) = treewidth_upper_bound(&g, Heuristic::MinFill);
        assert_eq!(w, 2);
    }
}
