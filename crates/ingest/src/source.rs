//! The unified ingestion API: a [`Source`] yields a schema-plus-TGDs
//! header and then streams facts into a [`FactSink`]; [`ingest`] drives
//! any source into a [`Program`] — the one value the rest of the toolkit
//! consumes (`ChaseRunner::new(&program.tgds).run(&program.facts)`).
//!
//! The streaming contract matters at scale: sources never build a giant
//! intermediate `Vec` of atoms. They push facts one at a time; the
//! [`InstanceSink`] buffers a batch (default [`DEFAULT_BATCH`]) and lands
//! it with [`Instance::insert_batch`], so the dedup map, candidate lists,
//! and columnar arenas grow amortized-once per batch and the lazy sorted /
//! dense indexes extend once per *demand*, not once per row.

use crate::error::IngestError;
use gtgd_chase::{ChaseBudget, ChaseOutcome, ChaseRunner, MaintainedInstance, Tgd};
use gtgd_data::{GroundAtom, Instance, Schema};

/// What a source declares up front: the relations it will emit facts over
/// and the dependencies (ontology / constraints-as-TGDs) it compiles to.
#[derive(Debug, Clone, Default)]
pub struct SourceSchema {
    /// Declared predicates with arities. May undercover the data for
    /// schema-free formats (plain RDF); the sink still enforces that any
    /// predicate it *does* declare is used at the declared arity.
    pub schema: Schema,
    /// The lowered dependencies: DL/OWL axioms, inclusion dependencies.
    pub tgds: Vec<Tgd>,
}

/// Receives the fact stream of a [`Source`]. Implementations decide where
/// atoms land (an [`Instance`], a counter, a file); sources just push.
pub trait FactSink {
    /// Accepts one fact. Errors propagate out of [`Source::facts`].
    fn push(&mut self, atom: GroundAtom) -> Result<(), IngestError>;

    /// Lands any buffered facts. Called once by the driver after the
    /// source finishes; batching sinks must not lose the tail without it.
    fn flush(&mut self) -> Result<(), IngestError> {
        Ok(())
    }
}

/// An ingestion frontend: anything that can compile an external format
/// into the toolkit's schema/TGD substrate and stream its facts.
///
/// The contract: `schema()` is called first and returns the declared
/// relations and lowered dependencies; `facts(sink)` then pushes every
/// ground atom. Both may fail with a described [`IngestError`]; neither
/// may panic on malformed input.
pub trait Source {
    /// A human-readable name for reports (usually the input path).
    fn name(&self) -> &str;

    /// Declares predicates and lowers the format's axioms/constraints to
    /// TGDs. Rejections (out-of-fragment axioms, bad manifests) happen
    /// here, before any data is read.
    fn schema(&mut self) -> Result<SourceSchema, IngestError>;

    /// Streams every fact into `sink`, in a deterministic order.
    fn facts(&mut self, sink: &mut dyn FactSink) -> Result<(), IngestError>;
}

/// An ingested program: the unified output of every frontend, ready for
/// the chase (`ChaseRunner::new(&p.tgds)`), query evaluation, snapshotting
/// ([`gtgd_storage::save_snapshot`] over [`Program::maintain`]'s result),
/// or serving.
///
/// [`gtgd_storage::save_snapshot`]: ../gtgd_storage/fn.save_snapshot.html
#[derive(Debug, Clone)]
pub struct Program {
    /// Where the program came from ([`Source::name`]).
    pub name: String,
    /// Declared predicates, unioned with the arities realized by the data.
    pub schema: Schema,
    /// The lowered dependencies.
    pub tgds: Vec<Tgd>,
    /// The fact base.
    pub facts: Instance,
}

impl Program {
    /// A chase runner over this program's TGDs (configure and then
    /// `run(&program.facts)`, or use the [`Program::chase`] shortcut).
    pub fn runner(&self) -> ChaseRunner<'_> {
        ChaseRunner::new(&self.tgds)
    }

    /// Chases the fact base under the program's TGDs within `budget`.
    pub fn chase(&self, budget: ChaseBudget) -> ChaseOutcome {
        self.runner().budget(budget).run(&self.facts)
    }

    /// Chases once into a maintained (incrementally updatable) fixpoint —
    /// the value `gtgd_storage::save_snapshot` persists and `gtgd serve`
    /// serves. `budget` may cap atoms; level caps are rejected there.
    pub fn maintain(&self, budget: ChaseBudget) -> MaintainedInstance {
        self.runner().budget(budget).maintain(&self.facts)
    }

    /// Chases within `budget`, then answers a conjunctive query (usual
    /// `Ans(X) :- Body(...)` syntax) over the saturated instance — the
    /// certain answers when the chase completed within budget.
    pub fn answers(
        &self,
        cq: &str,
        budget: ChaseBudget,
    ) -> Result<std::collections::HashSet<Vec<gtgd_data::Value>>, gtgd_query::ParseError> {
        let q = gtgd_query::parse_cq(cq)?;
        let out = self.chase(budget);
        Ok(gtgd_query::Engine::prepare(&q).answers(&out.instance))
    }
}

/// Default sink batch size: big enough to amortize map growth, small
/// enough that a batch stays cache-resident while deduplicating.
pub const DEFAULT_BATCH: usize = 8192;

/// The standard sink: validates each atom against the declared schema
/// (arity mismatches are described errors, not index corruption) and lands
/// atoms in an [`Instance`] through [`Instance::insert_batch`].
pub struct InstanceSink<'a> {
    instance: &'a mut Instance,
    declared: &'a Schema,
    buf: Vec<GroundAtom>,
    batch: usize,
    pushed: usize,
}

impl<'a> InstanceSink<'a> {
    /// A sink writing into `instance`, checking arities against
    /// `declared` (predicates absent from `declared` are accepted — plain
    /// RDF declares nothing).
    pub fn new(instance: &'a mut Instance, declared: &'a Schema) -> InstanceSink<'a> {
        InstanceSink {
            instance,
            declared,
            buf: Vec::with_capacity(DEFAULT_BATCH),
            batch: DEFAULT_BATCH,
            pushed: 0,
        }
    }

    /// Overrides the batch size (mainly for tests).
    pub fn with_batch(mut self, batch: usize) -> InstanceSink<'a> {
        self.batch = batch.max(1);
        self
    }

    /// Total facts pushed (before deduplication).
    pub fn pushed(&self) -> usize {
        self.pushed
    }
}

impl FactSink for InstanceSink<'_> {
    fn push(&mut self, atom: GroundAtom) -> Result<(), IngestError> {
        if let Some(declared) = self.declared.arity(atom.predicate) {
            if declared != atom.arity() {
                return Err(IngestError::Schema {
                    message: format!(
                        "predicate {} declared with arity {declared} but fact {atom} has arity {}",
                        atom.predicate,
                        atom.arity()
                    ),
                });
            }
        }
        self.pushed += 1;
        self.buf.push(atom);
        if self.buf.len() >= self.batch {
            self.instance.insert_batch(self.buf.drain(..));
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), IngestError> {
        if !self.buf.is_empty() {
            self.instance.insert_batch(self.buf.drain(..));
        }
        Ok(())
    }
}

/// Drives a source end to end: schema first, then the fact stream through
/// a batching [`InstanceSink`]. The returned program's schema is the
/// declared schema unioned with the arities the data realized.
pub fn ingest(source: &mut dyn Source) -> Result<Program, IngestError> {
    let header = source.schema()?;
    let mut facts = Instance::new();
    {
        let mut sink = InstanceSink::new(&mut facts, &header.schema);
        source.facts(&mut sink)?;
        sink.flush()?;
    }
    // The sink enforced declared arities, so the union cannot clash.
    let schema = header.schema.union(&facts.schema());
    Ok(Program {
        name: source.name().to_string(),
        schema,
        tgds: header.tgds,
        facts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ToySource {
        n: usize,
    }

    impl Source for ToySource {
        fn name(&self) -> &str {
            "toy"
        }

        fn schema(&mut self) -> Result<SourceSchema, IngestError> {
            Ok(SourceSchema {
                schema: Schema::from_pairs([("E", 2)]),
                tgds: gtgd_chase::parse_tgds("E(X,Y) -> V(X)").unwrap(),
            })
        }

        fn facts(&mut self, sink: &mut dyn FactSink) -> Result<(), IngestError> {
            for i in 0..self.n {
                sink.push(GroundAtom::named("E", &[&format!("a{i}"), &format!("a{}", i + 1)]))?;
            }
            Ok(())
        }
    }

    #[test]
    fn ingest_drives_schema_then_facts() {
        let p = ingest(&mut ToySource { n: 10 }).unwrap();
        assert_eq!(p.facts.len(), 10);
        assert_eq!(p.schema.arity(gtgd_data::Predicate::new("E")), Some(2));
        assert_eq!(p.tgds.len(), 1);
        let out = p.chase(ChaseBudget::unbounded());
        assert!(out.complete);
        assert_eq!(out.instance.len(), 20); // every edge endpoint gets V
    }

    #[test]
    fn sink_batches_and_dedups() {
        let mut i = Instance::new();
        let declared = Schema::from_pairs([("R", 2)]);
        let mut sink = InstanceSink::new(&mut i, &declared).with_batch(3);
        for _ in 0..2 {
            for k in 0..5 {
                sink.push(GroundAtom::named("R", &["a", &format!("b{k}")]))
                    .unwrap();
            }
        }
        sink.flush().unwrap();
        assert_eq!(sink.pushed(), 10);
        assert_eq!(i.len(), 5);
    }

    #[test]
    fn sink_rejects_arity_mismatch() {
        let mut i = Instance::new();
        let declared = Schema::from_pairs([("R", 2)]);
        let mut sink = InstanceSink::new(&mut i, &declared);
        let e = sink.push(GroundAtom::named("R", &["a"])).unwrap_err();
        assert!(matches!(e, IngestError::Schema { .. }), "{e}");
        // Undeclared predicates pass through.
        sink.push(GroundAtom::named("S", &["a"])).unwrap();
    }
}
