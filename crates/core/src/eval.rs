//! Open-world OMQ evaluation (Section 3.1).
//!
//! By Prop 3.1, `Q(D) = q(chase(D, Σ))`. For guarded, constant-free Σ the
//! evaluator materializes the *typed chase* (the Lemma A.3 linearization:
//! every bag closed, adaptive blocking depth) and evaluates the UCQ over the
//! prefix — this is the FPT algorithm of Prop 3.3(3) when `q ∈ UCQ_k`,
//! where the per-candidate check runs through the tree-decomposition DP of
//! Prop 2.1. For other TGD classes it falls back to a budgeted oblivious
//! chase and reports whether the result is exact.

use crate::omq::Omq;
use gtgd_chase::{chase, typed_chase, ChaseBudget, DepthPolicy, TgdClass};
use gtgd_data::{Instance, Value};
use gtgd_query::decomp_eval::check_answer_ucq_decomposed;
use gtgd_query::{evaluate_ucq, Term};
use std::collections::HashSet;

/// Evaluation configuration.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Extra blocked levels for the adaptive typed chase; defaults to the
    /// query's variable count (enough for any single-disjunct match to fit
    /// under the blocking frontier).
    pub extra_levels: Option<usize>,
    /// Hard level cap for the typed chase.
    pub max_level: usize,
    /// Budget for the fallback oblivious chase (non-guarded Σ).
    pub fallback_budget: ChaseBudget,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            extra_levels: None,
            max_level: 64,
            fallback_budget: ChaseBudget {
                max_level: Some(16),
                max_atoms: Some(200_000),
            },
        }
    }
}

/// Certain answers, with an exactness flag: when `exact` is `false` the
/// materialization budget ran out before saturation and the answer set is a
/// (sound) under-approximation of `Q(D)`.
#[derive(Debug, Clone)]
pub struct OmqAnswers {
    /// The certain answers found (always sound).
    pub answers: HashSet<Vec<Value>>,
    /// Whether the set is provably complete.
    pub exact: bool,
}

fn sigma_constant_free(q: &Omq) -> bool {
    q.sigma.iter().all(|t| {
        t.body
            .iter()
            .chain(t.head.iter())
            .all(|a| a.args.iter().all(|arg| matches!(arg, Term::Var(_))))
    })
}

/// Materializes a chase prefix suitable for evaluating `q.query`, returning
/// the instance and whether it is exact (deep enough for completeness).
pub fn materialize_chase(q: &Omq, db: &Instance, cfg: &EvalConfig) -> (Instance, bool) {
    if q.sigma.is_empty() {
        return (db.clone(), true);
    }
    if q.sigma_in(TgdClass::Guarded) && sigma_constant_free(q) {
        let extra = cfg
            .extra_levels
            .unwrap_or_else(|| q.query.max_vars().max(1));
        let t = typed_chase(
            db,
            &q.sigma,
            DepthPolicy::Adaptive {
                extra_levels: extra,
                max_level: cfg.max_level,
            },
        );
        (t.instance, t.saturated)
    } else {
        let r = chase(db, &q.sigma, &cfg.fallback_budget);
        (r.instance, r.complete)
    }
}

/// `Q(D)`: the certain answers of the OMQ over an `S`-database (Prop 3.1).
/// Only tuples over `dom(D)` qualify as answers.
pub fn evaluate_omq(q: &Omq, db: &Instance, cfg: &EvalConfig) -> OmqAnswers {
    let (instance, exact) = materialize_chase(q, db, cfg);
    let answers = evaluate_ucq(&q.query, &instance)
        .into_iter()
        .filter(|t| t.iter().all(|v| db.dom_contains(*v)))
        .collect();
    OmqAnswers { answers, exact }
}

/// Decision form: `c̄ ∈ Q(D)`, by generic backtracking over the chase
/// prefix. Returns `(holds, exact)`.
pub fn check_omq(q: &Omq, db: &Instance, answer: &[Value], cfg: &EvalConfig) -> (bool, bool) {
    let (instance, exact) = materialize_chase(q, db, cfg);
    (
        gtgd_query::eval::check_answer_ucq(&q.query, &instance, answer),
        exact,
    )
}

/// The FPT evaluation pipeline of Prop 3.3(3) for `(G, UCQ_k)`: typed chase
/// materialization followed by the tree-decomposition DP of Prop 2.1 for the
/// candidate check. Returns `(holds, exact)`.
pub fn check_omq_fpt(q: &Omq, db: &Instance, answer: &[Value], cfg: &EvalConfig) -> (bool, bool) {
    let (instance, exact) = materialize_chase(q, db, cfg);
    (
        check_answer_ucq_decomposed(&q.query, &instance, answer),
        exact,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtgd_chase::parse_tgds;
    use gtgd_data::GroundAtom;
    use gtgd_query::parse_ucq;

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    fn db(atoms: &[(&str, &[&str])]) -> Instance {
        Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
    }

    #[test]
    fn ontology_derives_answers() {
        // Example 4.4's Σ: R2(x) → R4(x).
        let q = Omq::full_schema(
            parse_tgds("R2(X) -> R4(X)").unwrap(),
            parse_ucq("Q(X) :- R4(X)").unwrap(),
        );
        let d = db(&[("R2", &["a"]), ("R4", &["b"])]);
        let ans = evaluate_omq(&q, &d, &EvalConfig::default());
        assert!(ans.exact);
        assert_eq!(ans.answers.len(), 2);
        assert!(ans.answers.contains(&vec![v("a")]));
    }

    #[test]
    fn infinite_chase_answers_via_blocking() {
        let q = Omq::full_schema(
            parse_tgds("Person(X) -> Parent(X,Y), Person(Y)").unwrap(),
            parse_ucq("Q(X) :- Person(X), Parent(X,Y), Parent(Y,Z)").unwrap(),
        );
        let d = db(&[("Person", &["eve"])]);
        let ans = evaluate_omq(&q, &d, &EvalConfig::default());
        assert!(ans.exact, "adaptive blocking should saturate");
        assert_eq!(ans.answers, HashSet::from([vec![v("eve")]]));
    }

    #[test]
    fn answers_restricted_to_database_domain() {
        // The chase invents parents, but only eve is in dom(D).
        let q = Omq::full_schema(
            parse_tgds("Person(X) -> Parent(X,Y), Person(Y)").unwrap(),
            parse_ucq("Q(X) :- Person(X)").unwrap(),
        );
        let d = db(&[("Person", &["eve"])]);
        let ans = evaluate_omq(&q, &d, &EvalConfig::default());
        assert_eq!(ans.answers.len(), 1);
    }

    #[test]
    fn fpt_and_generic_checks_agree() {
        let q = Omq::full_schema(
            parse_tgds("Dept(D) -> HasMgr(D,M), Emp(M). Emp(M) -> WorksIn(M,D2), Dept(D2)")
                .unwrap(),
            parse_ucq("Q(D) :- HasMgr(D,M), WorksIn(M,D2), HasMgr(D2,M2)").unwrap(),
        );
        let d = db(&[("Dept", &["sales"])]);
        let cfg = EvalConfig::default();
        let (a, ea) = check_omq(&q, &d, &[v("sales")], &cfg);
        let (b, eb) = check_omq_fpt(&q, &d, &[v("sales")], &cfg);
        assert_eq!(a, b);
        assert!(ea && eb);
        assert!(a, "the guarded ontology entails the 2-hop pattern");
    }

    #[test]
    fn non_guarded_fallback_reports_exactness() {
        // A frontier-guarded, weakly acyclic set: fallback chase terminates.
        let q = Omq::full_schema(
            parse_tgds("R(X,Y), S(Y,Z) -> T(X)").unwrap(),
            parse_ucq("Q(X) :- T(X)").unwrap(),
        );
        let d = db(&[("R", &["a", "b"]), ("S", &["b", "c"])]);
        let ans = evaluate_omq(&q, &d, &EvalConfig::default());
        assert!(ans.exact);
        assert_eq!(ans.answers, HashSet::from([vec![v("a")]]));
    }

    #[test]
    fn empty_sigma_is_plain_evaluation() {
        let q = Omq::full_schema(vec![], parse_ucq("Q(X) :- E(X,Y)").unwrap());
        let d = db(&[("E", &["a", "b"])]);
        let ans = evaluate_omq(&q, &d, &EvalConfig::default());
        assert!(ans.exact);
        assert_eq!(ans.answers.len(), 1);
    }

    #[test]
    fn boolean_omq() {
        let q = Omq::full_schema(
            parse_tgds("A(X) -> B(X)").unwrap(),
            parse_ucq("Q() :- B(X)").unwrap(),
        );
        let (holds, exact) = check_omq(&q, &db(&[("A", &["a"])]), &[], &EvalConfig::default());
        assert!(holds && exact);
        let (holds, _) = check_omq(&q, &db(&[("C", &["a"])]), &[], &EvalConfig::default());
        assert!(!holds);
    }
}
