//! Nice tree decompositions: the normalized form used by textbook
//! treewidth dynamic programming (leaf / introduce / forget / join nodes).
//!
//! Every tree decomposition of width `w` converts into a nice one of the
//! same width with `O(w · n)` nodes. The toolkit's own DP (Prop 2.1) works
//! on raw decompositions, but nice decompositions are part of any complete
//! treewidth library and are exercised as an independent validation layer.

use crate::decomposition::TreeDecomposition;
use crate::graph::Graph;
use std::collections::BTreeSet;

/// A node of a nice tree decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NiceNode {
    /// A leaf with an empty bag.
    Leaf,
    /// Introduces vertex `v` over the child's bag.
    Introduce(usize),
    /// Forgets vertex `v` from the child's bag.
    Forget(usize),
    /// Joins two children with identical bags.
    Join,
}

/// A nice tree decomposition: a rooted binary tree whose bags change by one
/// vertex at a time.
#[derive(Debug, Clone)]
pub struct NiceDecomposition {
    /// The bag of each node.
    pub bags: Vec<BTreeSet<usize>>,
    /// The kind of each node.
    pub kinds: Vec<NiceNode>,
    /// Children of each node (0, 1, or 2).
    pub children: Vec<Vec<usize>>,
    /// The root node (its bag is empty).
    pub root: usize,
}

impl NiceDecomposition {
    /// Width: `max |bag| − 1`.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.bags.len()
    }

    /// Validates the nice-decomposition invariants and that the underlying
    /// decomposition is valid for `g`.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        // Structural invariants per node kind.
        for (i, kind) in self.kinds.iter().enumerate() {
            let kids = &self.children[i];
            match kind {
                NiceNode::Leaf => {
                    if !kids.is_empty() || !self.bags[i].is_empty() {
                        return Err(format!("leaf {i} malformed"));
                    }
                }
                NiceNode::Introduce(v) => {
                    if kids.len() != 1 {
                        return Err(format!("introduce {i} needs one child"));
                    }
                    let mut expect = self.bags[kids[0]].clone();
                    if !expect.insert(*v) {
                        return Err(format!("introduce {i} re-adds {v}"));
                    }
                    if expect != self.bags[i] {
                        return Err(format!("introduce {i} bag mismatch"));
                    }
                }
                NiceNode::Forget(v) => {
                    if kids.len() != 1 {
                        return Err(format!("forget {i} needs one child"));
                    }
                    let mut expect = self.bags[kids[0]].clone();
                    if !expect.remove(v) {
                        return Err(format!("forget {i} drops absent {v}"));
                    }
                    if expect != self.bags[i] {
                        return Err(format!("forget {i} bag mismatch"));
                    }
                }
                NiceNode::Join => {
                    if kids.len() != 2 {
                        return Err(format!("join {i} needs two children"));
                    }
                    if self.bags[kids[0]] != self.bags[i] || self.bags[kids[1]] != self.bags[i] {
                        return Err(format!("join {i} bag mismatch"));
                    }
                }
            }
        }
        if !self.bags[self.root].is_empty() {
            return Err("root bag must be empty".into());
        }
        // Underlying decomposition validity: rebuild edges parent→child.
        let mut edges = Vec::new();
        for (i, kids) in self.children.iter().enumerate() {
            for &c in kids {
                edges.push((i, c));
            }
        }
        let td = TreeDecomposition::new(self.bags.to_vec(), edges);
        td.validate(g).map_err(|e| e.to_string())
    }
}

/// Converts a (valid) tree decomposition into a nice one of the same width.
pub fn make_nice(td: &TreeDecomposition, g: &Graph) -> NiceDecomposition {
    assert!(td.validate(g).is_ok(), "input decomposition must be valid");
    let mut nice = NiceDecomposition {
        bags: Vec::new(),
        kinds: Vec::new(),
        children: Vec::new(),
        root: 0,
    };
    if td.bag_count() == 0 {
        let leaf = push(&mut nice, BTreeSet::new(), NiceNode::Leaf, vec![]);
        nice.root = leaf;
        return nice;
    }
    // Build adjacency and root the original tree at 0.
    let n = td.bag_count();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in td.tree_edges() {
        adj[a].push(b);
        adj[b].push(a);
    }
    // Recursive construction (explicit stack-free recursion is fine: bags
    // are few).
    fn build(
        node: usize,
        parent: Option<usize>,
        td: &TreeDecomposition,
        adj: &[Vec<usize>],
        nice: &mut NiceDecomposition,
    ) -> usize {
        let bag = td.bags()[node].clone();
        let kids: Vec<usize> = adj[node]
            .iter()
            .copied()
            .filter(|&c| Some(c) != parent)
            .collect();
        // Each child subtree is morphed from the child's bag to this bag.
        let mut child_roots: Vec<usize> = kids
            .iter()
            .map(|&c| {
                let sub = build(c, Some(node), td, adj, nice);
                morph(sub, &td.bags()[c].clone(), &bag, nice)
            })
            .collect();
        // No children: build the bag from a leaf.
        if child_roots.is_empty() {
            let leaf = push(nice, BTreeSet::new(), NiceNode::Leaf, vec![]);
            child_roots.push(morph(leaf, &BTreeSet::new(), &bag, nice));
        }
        // Join children pairwise.
        let mut current = child_roots[0];
        for &other in &child_roots[1..] {
            current = push(nice, bag.clone(), NiceNode::Join, vec![current, other]);
        }
        current
    }
    /// Chain of forget/introduce nodes transforming bag `from` into `to`,
    /// on top of node `below`.
    fn morph(
        mut below: usize,
        from: &BTreeSet<usize>,
        to: &BTreeSet<usize>,
        nice: &mut NiceDecomposition,
    ) -> usize {
        let mut current = from.clone();
        for &v in from.difference(to) {
            let mut bag = current.clone();
            bag.remove(&v);
            below = push(nice, bag.clone(), NiceNode::Forget(v), vec![below]);
            current = bag;
        }
        for &v in to.difference(from) {
            let mut bag = current.clone();
            bag.insert(v);
            below = push(nice, bag.clone(), NiceNode::Introduce(v), vec![below]);
            current = bag;
        }
        below
    }
    fn push(
        nice: &mut NiceDecomposition,
        bag: BTreeSet<usize>,
        kind: NiceNode,
        children: Vec<usize>,
    ) -> usize {
        nice.bags.push(bag);
        nice.kinds.push(kind);
        nice.children.push(children);
        nice.bags.len() - 1
    }
    let top = build(0, None, td, &adj, &mut nice);
    // Forget everything down to an empty root.
    let top_bag = nice.bags[top].clone();
    nice.root = morph(top, &top_bag, &BTreeSet::new(), &mut nice);
    nice
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::treewidth_exact;
    use crate::grid::grid;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    #[test]
    fn nice_form_preserves_width() {
        for g in [path(6), grid(2, 4), grid(3, 3)] {
            let (w, td) = treewidth_exact(&g);
            let nice = make_nice(&td, &g);
            nice.validate(&g).unwrap();
            assert_eq!(nice.width(), w, "width preserved");
        }
    }

    #[test]
    fn node_kinds_partition() {
        let g = grid(2, 3);
        let (_, td) = treewidth_exact(&g);
        let nice = make_nice(&td, &g);
        nice.validate(&g).unwrap();
        // Every vertex is introduced at least once and forgotten exactly as
        // many times as introduced.
        let mut introduced = vec![0usize; g.vertex_count()];
        let mut forgotten = vec![0usize; g.vertex_count()];
        for k in &nice.kinds {
            match k {
                NiceNode::Introduce(v) => introduced[*v] += 1,
                NiceNode::Forget(v) => forgotten[*v] += 1,
                _ => {}
            }
        }
        for v in 0..g.vertex_count() {
            assert!(introduced[v] >= 1, "vertex {v} never introduced");
            assert_eq!(introduced[v], forgotten[v], "vertex {v} balance");
        }
    }

    #[test]
    fn single_bag_decomposition() {
        let mut g = Graph::new(3);
        g.make_clique(&[0, 1, 2]);
        let td = TreeDecomposition::single_bag(0..3);
        let nice = make_nice(&td, &g);
        nice.validate(&g).unwrap();
        assert_eq!(nice.width(), 2);
    }

    #[test]
    fn root_is_empty() {
        let g = path(4);
        let (_, td) = treewidth_exact(&g);
        let nice = make_nice(&td, &g);
        assert!(nice.bags[nice.root].is_empty());
    }
}
