//! Cross-crate checks of the paper's propositions on concrete workloads.

use gtgd::chase::{chase, parse_tgds, satisfies_all, ChaseBudget};
use gtgd::data::{GroundAtom, Instance, Valuation, Value};
use gtgd::omq::approx::cqs_uniformly_ucqk_equivalent;
use gtgd::omq::containment::ucq_contained_under;
use gtgd::omq::{evaluate_omq, Cqs, EvalConfig, Omq};
use gtgd::query::{
    check_answer, decomp_eval::check_answer_decomposed, evaluate_cq, evaluate_ucq,
    instance_homomorphism_fixing, parse_cq, parse_ucq,
};

fn cfg() -> EvalConfig {
    EvalConfig::default()
}

fn db(atoms: &[(&str, &[&str])]) -> Instance {
    Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
}

/// Prop 2.1: the tree-decomposition DP agrees with backtracking on every
/// candidate answer, across a workload sweep.
#[test]
fn prop_2_1_dp_agrees_with_backtracking() {
    let queries = [
        parse_cq("Q(X) :- E(X,Y), E(Y,Z)").unwrap(),
        parse_cq("Q(X,W) :- E(X,Y), E(Y,Z), E(Z,W)").unwrap(),
        parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap(),
    ];
    // Databases: cycles of several lengths plus a loop-bearing instance.
    let mut dbs = Vec::new();
    for n in [3usize, 4, 6] {
        let names: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
        dbs.push(Instance::from_atoms((0..n).map(|i| {
            GroundAtom::named("E", &[names[i].as_str(), names[(i + 1) % n].as_str()])
        })));
    }
    let mut with_loop = dbs[0].clone();
    with_loop.insert(GroundAtom::named("E", &["c0", "c0"]));
    dbs.push(with_loop);
    for q in &queries {
        for d in &dbs {
            let dom: Vec<Value> = d.dom().to_vec();
            let tuples: Vec<Vec<Value>> = match q.arity() {
                0 => vec![vec![]],
                1 => dom.iter().map(|&v| vec![v]).collect(),
                2 => dom
                    .iter()
                    .flat_map(|&a| dom.iter().map(move |&b| vec![a, b]))
                    .collect(),
                _ => unreachable!(),
            };
            for t in tuples {
                assert_eq!(
                    check_answer_decomposed(q, d, &t),
                    check_answer(q, d, &t),
                    "query {q} tuple {t:?}"
                );
            }
        }
    }
}

/// Prop 2.2 (chase universality): the chase maps homomorphically, fixing
/// `dom(D)`, into every model of `D` and Σ.
#[test]
fn prop_2_2_chase_universality() {
    let sigma = parse_tgds("A(X) -> R(X,Y). R(X,Y) -> B(Y)").unwrap();
    let d = db(&[("A", &["a"]), ("A", &["b"])]);
    let result = chase(&d, &sigma, &ChaseBudget::unbounded());
    assert!(result.complete);
    // A hand-built model: both a and b point at a shared witness w.
    let model = db(&[
        ("A", &["a"]),
        ("A", &["b"]),
        ("R", &["a", "w"]),
        ("R", &["b", "w"]),
        ("B", &["w"]),
    ]);
    assert!(satisfies_all(&model, &sigma));
    let fixed: Valuation = d.dom().iter().map(|&v| (v, v)).collect();
    let h = instance_homomorphism_fixing(&result.instance, &model, &fixed)
        .expect("chase(D,Σ) → M fixing dom(D)");
    assert_eq!(h[&Value::named("a")], Value::named("a"));
}

/// Prop 3.1: OMQ evaluation equals UCQ evaluation over the chase.
#[test]
fn prop_3_1_omq_equals_chase_evaluation() {
    let sigma = parse_tgds("P(X) -> R(X,Y). R(X,Y) -> S(Y)").unwrap();
    let q = parse_ucq("Q(X) :- P(X), R(X,Y), S(Y)").unwrap();
    let omq = Omq::full_schema(sigma.clone(), q.clone());
    let d = db(&[("P", &["a"]), ("P", &["b"])]);
    let open = evaluate_omq(&omq, &d, &cfg());
    assert!(open.exact);
    // Reference: materialize the (terminating) chase and evaluate directly.
    let reference = chase(&d, &sigma, &ChaseBudget::unbounded());
    assert!(reference.complete);
    let direct: std::collections::HashSet<Vec<Value>> = evaluate_ucq(&q, &reference.instance)
        .into_iter()
        .filter(|t| t.iter().all(|v| d.dom_contains(*v)))
        .collect();
    assert_eq!(open.answers, direct);
    assert_eq!(open.answers.len(), 2);
}

/// Prop 4.5: chase-based containment matches semantic containment, checked
/// against direct evaluation on a database family.
#[test]
fn prop_4_5_containment_is_semantic() {
    let sigma = parse_tgds("Cat(X) -> Animal(X)").unwrap();
    let q1 = parse_ucq("Q(X) :- Cat(X)").unwrap();
    let q2 = parse_ucq("Q(X) :- Animal(X)").unwrap();
    let c = ucq_contained_under(&sigma, &q1, &q2, &cfg());
    assert!(c.holds && c.exact);
    // Spot-check the semantics on Σ-satisfying databases.
    for n in 1..4usize {
        let mut atoms = Vec::new();
        for i in 0..n {
            atoms.push(GroundAtom::named("Cat", &[&format!("c{i}")]));
            atoms.push(GroundAtom::named("Animal", &[&format!("c{i}")]));
            atoms.push(GroundAtom::named("Animal", &[&format!("dog{i}")]));
        }
        let d = Instance::from_atoms(atoms);
        assert!(satisfies_all(&d, &sigma));
        let a1 = evaluate_cq(&q1.disjuncts[0], &d);
        let a2 = evaluate_cq(&q2.disjuncts[0], &d);
        assert!(a1.is_subset(&a2));
    }
}

/// Prop 5.5: a CQS is uniformly UCQ_k-equivalent iff its companion OMQ
/// (full data schema) is UCQ_k-equivalent — checked on both a positive and
/// a negative instance.
#[test]
fn prop_5_5_cqs_omq_equivalence_transfer() {
    use gtgd::omq::approx::{omq_ucqk_equivalent, GroundingPolicy};
    let sigma = parse_tgds("R2(X) -> R4(X)").unwrap();
    let q =
        parse_ucq("Q() :- P(X2,X1), P(X4,X1), P(X2,X3), P(X4,X3), R1(X1), R2(X2), R3(X3), R4(X4)")
            .unwrap();
    for (sig, expected) in [(sigma.clone(), true), (vec![], false)] {
        let s = Cqs::new(sig, q.clone());
        let (cqs_v, _) = cqs_uniformly_ucqk_equivalent(&s, 1, &cfg());
        let (omq_v, _) = omq_ucqk_equivalent(&s.omq(), 1, &GroundingPolicy::default(), &cfg());
        assert_eq!(cqs_v.holds, expected);
        assert_eq!(
            cqs_v.holds, omq_v.holds,
            "Prop 5.5: CQS and omq(S) agree on UCQ_1-equivalence"
        );
    }
}

/// Prop 3.3(2)'s observation: a Boolean CQ becomes a frontier-guarded TGD
/// with empty frontier, and OMQ evaluation then simulates CQ evaluation.
#[test]
fn boolean_cq_as_fg_tgd() {
    let sigma = parse_tgds("E(X,Y), E(Y,Z), E(Z,X) -> Ans()").unwrap();
    assert!(sigma[0].is_in(gtgd::chase::TgdClass::FrontierGuarded));
    let omq = Omq::full_schema(sigma, parse_ucq("Q() :- Ans()").unwrap());
    let tri = db(&[("E", &["a", "b"]), ("E", &["b", "c"]), ("E", &["c", "a"])]);
    let (holds, exact) = gtgd::omq::check_omq(&omq, &tri, &[], &cfg());
    assert!(holds && exact);
    let path = db(&[("E", &["a", "b"]), ("E", &["b", "c"])]);
    let (holds, _) = gtgd::omq::check_omq(&omq, &path, &[], &cfg());
    assert!(!holds);
}

/// App. C.3's unraveling property (3): for `Q ∈ (G, UCQ_k)`,
/// `c̄ ∈ Q(D)` implies `c̄ ∈ Q(D^k_c̄)` — matches of low-treewidth OMQs
/// survive the k-unraveling.
#[test]
fn k_unraveling_preserves_low_treewidth_omq_answers() {
    use gtgd::chase::k_unraveling;
    let sigma = parse_tgds("E(X,Y) -> Conn(X)").unwrap();
    let q = parse_ucq("Q(X) :- Conn(X), E(X,Y), E(Y,Z)").unwrap();
    assert!(gtgd::query::tw::is_ucq_treewidth_at_most(&q, 1));
    let omq = Omq::full_schema(sigma, q);
    // A triangle database.
    let d = db(&[("E", &["a", "b"]), ("E", &["b", "c"]), ("E", &["c", "a"])]);
    let open = evaluate_omq(&omq, &d, &cfg());
    assert!(open.exact);
    assert_eq!(open.answers.len(), 3);
    for t in &open.answers {
        let anchor = vec![t[0]];
        let unraveled = k_unraveling(&d, &anchor, 1, 4);
        let (holds, exact) = gtgd::omq::check_omq(&omq, &unraveled, &t[..], &cfg());
        assert!(exact);
        assert!(holds, "answer {t:?} must survive the 1-unraveling");
    }
    // Contrast: a treewidth-2 query (the triangle) does NOT survive.
    let tri = Omq::full_schema(vec![], parse_ucq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap());
    let unraveled = k_unraveling(&d, &[], 1, 4);
    let (holds, _) = gtgd::omq::check_omq(&tri, &unraveled, &[], &cfg());
    assert!(!holds, "the cyclic match breaks at treewidth 1");
}

/// Section 7's key structural fact: chasing a bounded-treewidth database
/// with FG_m TGDs over arity-r schemas keeps treewidth ≤ max(k, r·m − 1).
#[test]
fn fgm_chase_preserves_bounded_treewidth() {
    // r = 3, m = 1: chased treewidth stays ≤ 2.
    let sigma = parse_tgds("E(X,Y) -> F(X,Y,Z)").unwrap();
    assert!(sigma[0].is_in(gtgd::chase::TgdClass::FrontierGuarded));
    let d = db(&[("E", &["a", "b"]), ("E", &["b", "c"]), ("E", &["c", "d"])]); // tw 1
    let r = chase(&d, &sigma, &ChaseBudget::unbounded());
    assert!(r.complete);
    let (g, _) = r.instance.gaifman();
    let tw = gtgd::treewidth::treewidth(&g);
    assert!(tw <= 2, "treewidth {tw} exceeds r·m − 1 = 2");
}

/// Lemma D.3: a satisfied CQ always has a contraction satisfied
/// injectively-only.
#[test]
fn lemma_d3_injective_contraction() {
    use gtgd::query::{eval::holds_injectively_only, injective_contraction, parse_cq};
    // A loop database: the 2-path query only matches by collapsing.
    let d = db(&[("E", &["a", "a"])]);
    let q = parse_cq("Q() :- E(X,Y), E(Y,Z)").unwrap();
    let qc = injective_contraction(&q, &d, &[]).expect("D |= q");
    assert!(holds_injectively_only(&qc, &d, &[]));
    assert!(qc.all_vars().len() < q.all_vars().len());
    // On a genuine 2-path no contraction is needed.
    let d2 = db(&[("E", &["a", "b"]), ("E", &["b", "c"])]);
    let qc2 = injective_contraction(&q, &d2, &[]).expect("D2 |= q");
    assert_eq!(qc2.all_vars().len(), 3);
    // And an unsatisfied query yields None.
    assert!(injective_contraction(&q, &db(&[("P", &["x"])]), &[]).is_none());
}

/// Lemma D.7: guarded unraveling preserves atomic-query entailment over
/// the root tuple.
#[test]
fn lemma_d7_unraveling_preserves_atomic_queries() {
    use gtgd::chase::guarded_unraveling;
    use gtgd::data::Value;
    let sigma = parse_tgds("E(X,Y) -> Mark(X). Mark(X) -> Tagged(X)").unwrap();
    let d = db(&[("E", &["a", "b"]), ("E", &["b", "c"]), ("E", &["c", "a"])]);
    let root = [Value::named("a"), Value::named("b")];
    let unraveled = guarded_unraveling(&d, &root, 4);
    // Atomic queries over the root constants agree between D and D^ā.
    for aq in ["Q(X) :- Mark(X)", "Q(X) :- Tagged(X)"] {
        let omq = Omq::full_schema(sigma.clone(), parse_ucq(aq).unwrap());
        for &c in &root {
            let (on_d, e1) = gtgd::omq::check_omq(&omq, &d, &[c], &cfg());
            let (on_u, e2) = gtgd::omq::check_omq(&omq, &unraveled, &[c], &cfg());
            assert!(e1 && e2);
            assert_eq!(on_d, on_u, "AQ {aq} on {c}");
        }
    }
}

/// Finite controllability in action (Lemma E.1's practical face): the
/// CQS-level equivalence `≡_Σ` agrees with evaluation over finite
/// Σ-satisfying databases.
#[test]
fn finite_controllability_spot_check() {
    let sigma = parse_tgds("Emp(X,D) -> Dept(D)").unwrap();
    let q1 = parse_ucq("Q(X) :- Emp(X,D), Dept(D)").unwrap();
    let q2 = parse_ucq("Q(X) :- Emp(X,D)").unwrap();
    // Under Σ every Emp's department exists: q1 ≡_Σ q2.
    let c12 = ucq_contained_under(&sigma, &q1, &q2, &cfg());
    let c21 = ucq_contained_under(&sigma, &q2, &q1, &cfg());
    assert!(c12.holds && c21.holds);
    // And indeed they agree on any Σ-satisfying database.
    let d = db(&[("Emp", &["ann", "hr"]), ("Dept", &["hr"])]);
    assert!(satisfies_all(&d, &sigma));
    assert_eq!(evaluate_ucq(&q1, &d), evaluate_ucq(&q2, &d));
}
