//! Bounded-treewidth CQ evaluation (Proposition 2.1 / \[18\]):
//! given `q ∈ CQ_k`, a database `D`, and a candidate answer `c̄`, decide
//! `c̄ ∈ q(D)` in time `O(‖D‖^{k+1} · ‖q‖)` by dynamic programming over a
//! tree decomposition of the existential Gaifman graph.
//!
//! This is the engine behind the tractable sides of the paper's
//! characterizations (Prop 3.3(3) uses it after reducing OMQ evaluation to
//! plain evaluation over a chase prefix; CQS evaluation in `(FG, UCQ_k)`
//! uses it directly).

use crate::compile::CompiledQuery;
use crate::cq::{Cq, QAtom, Term, Ucq, Var};
use crate::tw::existential_gaifman;
use gtgd_data::{Instance, Value};
use gtgd_treewidth::{treewidth_upper_bound, Heuristic, TreeDecomposition};
use std::collections::{HashMap, HashSet};

/// A relation over a fixed variable schema; the DP's intermediate result.
#[derive(Debug, Clone)]
struct Relation {
    vars: Vec<Var>,
    tuples: HashSet<Vec<Value>>,
}

impl Relation {
    /// The neutral relation: empty schema, one (empty) tuple.
    fn unit() -> Relation {
        Relation {
            vars: Vec::new(),
            tuples: HashSet::from([Vec::new()]),
        }
    }

    fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Natural join.
    fn join(&self, other: &Relation) -> Relation {
        let common: Vec<Var> = self
            .vars
            .iter()
            .copied()
            .filter(|v| other.vars.contains(v))
            .collect();
        let extra: Vec<Var> = other
            .vars
            .iter()
            .copied()
            .filter(|v| !self.vars.contains(v))
            .collect();
        let out_vars: Vec<Var> = self
            .vars
            .iter()
            .copied()
            .chain(extra.iter().copied())
            .collect();
        // Index `other` by its common-column values.
        let key_positions_other: Vec<usize> = common
            .iter()
            .map(|v| other.vars.iter().position(|u| u == v).expect("common var"))
            .collect();
        let extra_positions: Vec<usize> = extra
            .iter()
            .map(|v| other.vars.iter().position(|u| u == v).expect("extra var"))
            .collect();
        let mut index: HashMap<Vec<Value>, Vec<&Vec<Value>>> = HashMap::new();
        for t in &other.tuples {
            let key: Vec<Value> = key_positions_other.iter().map(|&p| t[p]).collect();
            index.entry(key).or_default().push(t);
        }
        let key_positions_self: Vec<usize> = common
            .iter()
            .map(|v| self.vars.iter().position(|u| u == v).expect("common var"))
            .collect();
        let mut tuples = HashSet::new();
        for t in &self.tuples {
            let key: Vec<Value> = key_positions_self.iter().map(|&p| t[p]).collect();
            if let Some(matches) = index.get(&key) {
                for m in matches {
                    let mut row = t.clone();
                    row.extend(extra_positions.iter().map(|&p| m[p]));
                    tuples.insert(row);
                }
            }
        }
        Relation {
            vars: out_vars,
            tuples,
        }
    }

    /// Projection onto `keep ∩ self.vars`.
    fn project(&self, keep: &HashSet<Var>) -> Relation {
        let positions: Vec<usize> = (0..self.vars.len())
            .filter(|&i| keep.contains(&self.vars[i]))
            .collect();
        Relation {
            vars: positions.iter().map(|&i| self.vars[i]).collect(),
            tuples: self
                .tuples
                .iter()
                .map(|t| positions.iter().map(|&i| t[i]).collect())
                .collect(),
        }
    }
}

/// The match relation of one bag's atoms over `i`: the whole bag is
/// compiled as a *single* multiway join instead of a fold of binary joins,
/// so a cyclic bag (exactly what a width-`k` bag of a cyclic query holds)
/// is routed through the kernel's worst-case-optimal path by the planner
/// gate. Columns follow the compiled slot order (first-occurrence variable
/// order across the bag's atoms); repeated variables and constants are
/// enforced by the kernel.
fn bag_relation(atoms: &[&QAtom], i: &Instance) -> Relation {
    gtgd_data::obs::count(gtgd_data::obs::Metric::DecompBagChecks, 1);
    let owned: Vec<QAtom> = atoms.iter().map(|&a| a.clone()).collect();
    let plan = CompiledQuery::compile(&owned);
    let vars = plan.vars().to_vec();
    let mut tuples = HashSet::new();
    plan.search(i).for_each_row(|row| {
        tuples.insert(row.to_vec());
        std::ops::ControlFlow::Continue(())
    });
    Relation { vars, tuples }
}

/// Decides `c̄ ∈ q(D)` via tree-decomposition DP. A decomposition of the
/// existential Gaifman graph is computed with the min-fill heuristic (exact
/// on the tree-like queries this routine is meant for; a wider heuristic
/// decomposition affects only running time, never correctness).
pub fn check_answer_decomposed(q: &Cq, i: &Instance, answer: &[Value]) -> bool {
    assert_eq!(answer.len(), q.arity(), "candidate answer has wrong arity");
    let (g, vars) = existential_gaifman(q);
    let (_, order) = treewidth_upper_bound(&g, Heuristic::MinFill);
    let td = gtgd_treewidth::elimination::decomposition_from_order(&g, &order);
    check_answer_with_decomposition(q, i, answer, &td, &vars)
}

/// Like [`check_answer_decomposed`], but with a caller-supplied tree
/// decomposition of the existential Gaifman graph (`var_ids[vertex]` is the
/// query variable of each decomposition vertex). Used by benchmarks to pin
/// the width.
pub fn check_answer_with_decomposition(
    q: &Cq,
    i: &Instance,
    answer: &[Value],
    td: &TreeDecomposition,
    var_ids: &[Var],
) -> bool {
    // Substitute the candidate answer for the answer variables.
    let binding: HashMap<Var, Value> = q
        .answer_vars
        .iter()
        .copied()
        .zip(answer.iter().copied())
        .collect();
    let atoms: Vec<QAtom> = q
        .atoms
        .iter()
        .map(|a| QAtom {
            predicate: a.predicate,
            args: a
                .args
                .iter()
                .map(|t| match *t {
                    Term::Var(v) => match binding.get(&v) {
                        Some(&c) => Term::Const(c),
                        None => Term::Var(v),
                    },
                    c => c,
                })
                .collect(),
        })
        .collect();
    // Ground atoms (no variables left) are checked directly.
    let mut var_atoms: Vec<&QAtom> = Vec::new();
    for a in &atoms {
        if a.vars().is_empty() {
            let ground = a.ground(&HashMap::new());
            if !i.contains(&ground) {
                return false;
            }
        } else {
            var_atoms.push(a);
        }
    }
    if var_atoms.is_empty() {
        return true;
    }
    if td.bag_count() == 0 {
        // No existential variables but atoms with variables: impossible if
        // the decomposition really covers the existential graph.
        panic!("decomposition does not cover the query's existential variables");
    }
    // Assign each atom to a bag containing all its variables (exists: an
    // atom's variables form a clique in the existential Gaifman graph).
    let vertex_of: HashMap<Var, usize> = var_ids.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut bag_atoms: Vec<Vec<&QAtom>> = vec![Vec::new(); td.bag_count()];
    for a in var_atoms {
        let vs: Vec<usize> = a.vars().iter().map(|v| vertex_of[v]).collect();
        let bag = td
            .bag_containing(&vs)
            .expect("atom variables form a clique; some bag contains them");
        bag_atoms[bag].push(a);
    }
    // Build the bag tree (rooted at 0) and run Yannakakis bottom-up.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); td.bag_count()];
    let mut parent: Vec<Option<usize>> = vec![None; td.bag_count()];
    {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); td.bag_count()];
        for &(a, b) in td.tree_edges() {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut stack = vec![0usize];
        let mut seen = vec![false; td.bag_count()];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &w in &adj[u] {
                if !seen[w] {
                    seen[w] = true;
                    parent[w] = Some(u);
                    children[u].push(w);
                    stack.push(w);
                }
            }
        }
    }
    // Post-order without recursion.
    let mut order = Vec::with_capacity(td.bag_count());
    let mut stack = vec![(0usize, false)];
    while let Some((u, expanded)) = stack.pop() {
        if expanded {
            order.push(u);
        } else {
            stack.push((u, true));
            for &c in &children[u] {
                stack.push((c, false));
            }
        }
    }
    let mut results: Vec<Option<Relation>> = vec![None; td.bag_count()];
    for &u in &order {
        let mut rel = if bag_atoms[u].is_empty() {
            Relation::unit()
        } else {
            bag_relation(&bag_atoms[u], i)
        };
        if rel.is_empty() {
            return false;
        }
        for &c in &children[u] {
            let child_rel = results[c].take().expect("post-order");
            // Project the child onto the separator with u.
            let sep: HashSet<Var> = td.bags()[u]
                .intersection(&td.bags()[c])
                .map(|&vertex| var_ids[vertex])
                .collect();
            rel = rel.join(&child_rel.project(&sep));
            if rel.is_empty() {
                return false;
            }
        }
        results[u] = Some(rel);
    }
    !results[0].as_ref().expect("root computed").is_empty()
}

/// UCQ variant: `c̄ ∈ q(D)` iff some disjunct accepts.
pub fn check_answer_ucq_decomposed(q: &Ucq, i: &Instance, answer: &[Value]) -> bool {
    q.disjuncts
        .iter()
        .any(|d| check_answer_decomposed(d, i, answer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::check_answer;
    use crate::parser::parse_cq;
    use gtgd_data::GroundAtom;

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    fn grid_db(rows: usize, cols: usize) -> Instance {
        // H: horizontal edges, V: vertical edges on an rows x cols grid.
        let name = |r: usize, c: usize| format!("g{r}_{c}");
        let mut atoms = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    atoms.push(GroundAtom::named("H", &[&name(r, c), &name(r, c + 1)]));
                }
                if r + 1 < rows {
                    atoms.push(GroundAtom::named("V", &[&name(r, c), &name(r + 1, c)]));
                }
            }
        }
        Instance::from_atoms(atoms)
    }

    #[test]
    fn agrees_with_backtracking_on_path_queries() {
        let db = grid_db(3, 4);
        let q = parse_cq("Q(X) :- H(X,Y), H(Y,Z)").unwrap();
        for cand in ["g0_0", "g0_1", "g2_3"] {
            assert_eq!(
                check_answer_decomposed(&q, &db, &[v(cand)]),
                check_answer(&q, &db, &[v(cand)]),
                "mismatch on {cand}"
            );
        }
    }

    #[test]
    fn boolean_tree_query() {
        let db = grid_db(2, 3);
        let q = parse_cq("Q() :- H(X,Y), V(X,Z)").unwrap();
        assert!(check_answer_decomposed(&q, &db, &[]));
        let q2 = parse_cq("Q() :- H(X,X)").unwrap();
        assert!(!check_answer_decomposed(&q2, &db, &[]));
    }

    #[test]
    fn ladder_query_treewidth_two() {
        let db = grid_db(2, 4);
        // A 2x2 sub-grid pattern (treewidth 2 existential graph).
        let q = parse_cq("Q() :- H(A,B), H(C,D), V(A,C), V(B,D)").unwrap();
        assert!(check_answer_decomposed(&q, &db, &[]));
        // Same but on a 1-row grid: no vertical edges.
        let db2 = grid_db(1, 5);
        assert!(!check_answer_decomposed(&q, &db2, &[]));
    }

    #[test]
    fn repeated_vars_and_constants() {
        let db = Instance::from_atoms([
            GroundAtom::named("R", &["a", "a", "b"]),
            GroundAtom::named("R", &["a", "b", "b"]),
        ]);
        let q = parse_cq("Q() :- R(X,X,Y)").unwrap();
        assert!(check_answer_decomposed(&q, &db, &[]));
        let q2 = parse_cq("Q() :- R(X,X,X)").unwrap();
        assert!(!check_answer_decomposed(&q2, &db, &[]));
        let q3 = parse_cq("Q() :- R(a,b,Y)").unwrap();
        assert!(check_answer_decomposed(&q3, &db, &[]));
    }

    #[test]
    fn fully_ground_after_substitution() {
        let db = Instance::from_atoms([GroundAtom::named("E", &["a", "b"])]);
        let q = parse_cq("Q(X,Y) :- E(X,Y)").unwrap();
        assert!(check_answer_decomposed(&q, &db, &[v("a"), v("b")]));
        assert!(!check_answer_decomposed(&q, &db, &[v("b"), v("a")]));
    }

    #[test]
    fn disconnected_query_components() {
        let db = grid_db(2, 2);
        let q = parse_cq("Q() :- H(X,Y), V(Z,W)").unwrap();
        assert!(check_answer_decomposed(&q, &db, &[]));
        let db2 = Instance::from_atoms([GroundAtom::named("H", &["a", "b"])]);
        assert!(!check_answer_decomposed(&q, &db2, &[]));
    }

    #[test]
    fn exhaustive_agreement_random_answers() {
        // Compare DP and backtracking across all candidate answers.
        let db = grid_db(3, 3);
        let q = parse_cq("Q(X,Y) :- H(X,Z), V(Z,W), H(W,Y)").unwrap();
        let dom: Vec<Value> = db.dom().to_vec();
        for &a in &dom {
            for &b in &dom {
                assert_eq!(
                    check_answer_decomposed(&q, &db, &[a, b]),
                    check_answer(&q, &db, &[a, b])
                );
            }
        }
    }
}
