//! A small datalog-style text format for CQs and UCQs.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! ucq  := rule ("." rule)* "."?
//! rule := head ":-" atom ("," atom)*
//! head := ident "(" terms? ")"
//! atom := ident "(" terms? ")"
//! term := VARIABLE | CONSTANT
//! ```
//!
//! Identifiers starting with an uppercase ASCII letter are **variables**;
//! identifiers starting with a lowercase letter or a digit, and quoted
//! strings, are **constants**. The head predicate name is cosmetic: only the
//! head's variable list (the answer variables) matters.
//!
//! Example: `Ans(X) :- R(X,Y), S(Y,c)` is `q(x) = ∃y R(x,y) ∧ S(y,"c")`.

use crate::cq::{Cq, QAtom, Term, Ucq, Var};
use gtgd_data::{Predicate, Value};
use std::collections::HashMap;

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Quoted(String),
    LParen,
    RParen,
    Comma,
    Turnstile,
    Dot,
}

fn tokenize(s: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let b = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, i));
                i += 1;
            }
            '.' => {
                out.push((Tok::Dot, i));
                i += 1;
            }
            ':' => {
                if b.get(i + 1) == Some(&b'-') {
                    out.push((Tok::Turnstile, i));
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: "expected ':-'".into(),
                        offset: i,
                    });
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'"' {
                    j += 1;
                }
                if j == b.len() {
                    return Err(ParseError {
                        message: "unterminated string".into(),
                        offset: i,
                    });
                }
                out.push((Tok::Quoted(s[start..j].to_string()), i));
                i = j + 1;
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push((Tok::Ident(s[start..i].to_string()), start));
            }
            _ => {
                return Err(ParseError {
                    message: format!("unexpected character {c:?}"),
                    offset: i,
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map_or(usize::MAX, |(_, o)| *o)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), ParseError> {
        let off = self.offset();
        match self.next() {
            Some(t) if t == want => Ok(()),
            _ => Err(ParseError {
                message: format!("expected {what}"),
                offset: off,
            }),
        }
    }

    fn err<T>(&self, message: &str) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.offset(),
        })
    }
}

fn is_variable_name(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

struct RuleCtx {
    var_names: Vec<String>,
    var_ids: HashMap<String, Var>,
}

impl RuleCtx {
    fn var(&mut self, name: &str) -> Var {
        if let Some(&v) = self.var_ids.get(name) {
            return v;
        }
        let v = Var(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        self.var_ids.insert(name.to_string(), v);
        v
    }
}

fn parse_atom(p: &mut Parser, ctx: &mut RuleCtx) -> Result<QAtom, ParseError> {
    let name = match p.next() {
        Some(Tok::Ident(n)) => n,
        _ => return p.err("expected predicate name"),
    };
    p.expect(Tok::LParen, "'('")?;
    let mut args = Vec::new();
    if p.peek() != Some(&Tok::RParen) {
        loop {
            match p.next() {
                Some(Tok::Ident(t)) => {
                    if is_variable_name(&t) {
                        args.push(Term::Var(ctx.var(&t)));
                    } else {
                        args.push(Term::Const(Value::named(&t)));
                    }
                }
                Some(Tok::Quoted(t)) => args.push(Term::Const(Value::named(&t))),
                _ => return p.err("expected term"),
            }
            match p.peek() {
                Some(Tok::Comma) => {
                    p.next();
                }
                _ => break,
            }
        }
    }
    p.expect(Tok::RParen, "')'")?;
    Ok(QAtom::new(Predicate::new(&name), args))
}

fn parse_rule(p: &mut Parser) -> Result<Cq, ParseError> {
    let mut ctx = RuleCtx {
        var_names: Vec::new(),
        var_ids: HashMap::new(),
    };
    let head = parse_atom(p, &mut ctx)?;
    let mut answer_vars = Vec::new();
    for t in &head.args {
        match *t {
            Term::Var(v) => {
                if answer_vars.contains(&v) {
                    return p.err("answer variables must be distinct");
                }
                answer_vars.push(v);
            }
            Term::Const(_) => return p.err("head arguments must be variables"),
        }
    }
    p.expect(Tok::Turnstile, "':-'")?;
    let mut atoms = vec![parse_atom(p, &mut ctx)?];
    while p.peek() == Some(&Tok::Comma) {
        p.next();
        atoms.push(parse_atom(p, &mut ctx)?);
    }
    // Every answer variable must occur in the body (safety).
    for &v in &answer_vars {
        if !atoms.iter().any(|a| a.mentions(v)) {
            return Err(ParseError {
                message: format!(
                    "answer variable does not occur in the body: {}",
                    ctx.var_names[v.index()]
                ),
                offset: 0,
            });
        }
    }
    Ok(Cq::new(ctx.var_names, atoms, answer_vars))
}

/// Parses a single CQ, e.g. `Ans(X,Y) :- R(X,Z), S(Z,Y)`.
pub fn parse_cq(input: &str) -> Result<Cq, ParseError> {
    let mut p = Parser {
        toks: tokenize(input)?,
        pos: 0,
    };
    let q = parse_rule(&mut p)?;
    if p.peek() == Some(&Tok::Dot) {
        p.next();
    }
    if p.peek().is_some() {
        return p.err("trailing input after CQ");
    }
    Ok(q)
}

/// Parses a UCQ: one or more rules separated by `.`; all heads must have the
/// same arity. Example: `Q(X) :- R(X,Y). Q(X) :- S(X)`.
pub fn parse_ucq(input: &str) -> Result<Ucq, ParseError> {
    let mut p = Parser {
        toks: tokenize(input)?,
        pos: 0,
    };
    let mut disjuncts = vec![parse_rule(&mut p)?];
    while p.peek() == Some(&Tok::Dot) {
        p.next();
        if p.peek().is_none() {
            break;
        }
        disjuncts.push(parse_rule(&mut p)?);
    }
    if p.peek().is_some() {
        return p.err("trailing input after UCQ");
    }
    let arity = disjuncts[0].arity();
    if disjuncts.iter().any(|q| q.arity() != arity) {
        return Err(ParseError {
            message: "UCQ disjuncts must share arity".into(),
            offset: 0,
        });
    }
    Ok(Ucq::new(disjuncts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_cq() {
        let q = parse_cq("Ans(X,Y) :- R(X,Z), S(Z,Y)").unwrap();
        assert_eq!(q.arity(), 2);
        assert_eq!(q.atom_count(), 2);
        assert_eq!(q.all_vars().len(), 3);
        assert_eq!(q.to_string(), "Ans(X,Y) :- R(X,Z), S(Z,Y)");
    }

    #[test]
    fn parses_boolean_cq_and_constants() {
        let q = parse_cq("Q() :- Edge(X, Y), Color(X, red), Color(Y, \"navy blue\")").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.all_vars().len(), 2);
        let consts: Vec<_> = q
            .atoms
            .iter()
            .flat_map(|a| a.args.iter())
            .filter(|t| matches!(t, Term::Const(_)))
            .collect();
        assert_eq!(consts.len(), 2);
    }

    #[test]
    fn parses_zero_ary_atoms() {
        let q = parse_cq("Q() :- Start(), Goal()").unwrap();
        assert_eq!(q.atom_count(), 2);
        assert!(q.all_vars().is_empty());
    }

    #[test]
    fn parses_ucq() {
        let u = parse_ucq("Q(X) :- R(X,Y). Q(X) :- S(X).").unwrap();
        assert_eq!(u.disjuncts.len(), 2);
        assert_eq!(u.arity(), 1);
    }

    #[test]
    fn rejects_unsafe_head() {
        assert!(parse_cq("Q(X) :- R(Y,Y)").is_err());
    }

    #[test]
    fn rejects_constant_in_head() {
        assert!(parse_cq("Q(a) :- R(a,Y)").is_err());
    }

    #[test]
    fn rejects_duplicate_answer_vars() {
        assert!(parse_cq("Q(X,X) :- R(X,X)").is_err());
    }

    #[test]
    fn rejects_arity_mismatch_in_ucq() {
        assert!(parse_ucq("Q(X) :- R(X,Y). Q() :- S(Z)").is_err());
    }

    #[test]
    fn reports_offsets() {
        let e = parse_cq("Q(X) :- R(X,Y)!").unwrap_err();
        assert_eq!(e.offset, 14);
    }

    #[test]
    fn variables_shared_across_atoms() {
        let q = parse_cq("Q() :- R(X,Y), S(Y,Z), T(Z,X)").unwrap();
        assert_eq!(q.all_vars().len(), 3);
    }
}
