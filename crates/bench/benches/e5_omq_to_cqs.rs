//! E5 — Prop 5.8 / Lemma 6.8: building the OMQ→CQS reduction database `D*`
//! scales polynomially in `|D|`, and closed-world evaluation over it is
//! cheap.

use gtgd_bench::harness;
use gtgd_bench::workloads::org_db;
use gtgd_chase::{parse_tgds, ChaseBudget};
use gtgd_core::{omq_to_cqs_database, Omq};
use gtgd_query::{evaluate_ucq, parse_ucq};

fn main() {
    harness::group("e5_omq_to_cqs");
    let sigma =
        parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> Audited(D)")
            .unwrap();
    let q = Omq::full_schema(
        sigma,
        parse_ucq("Q(X) :- Emp(X), WorksIn(X,D), Audited(D)").unwrap(),
    );
    for &n in &[25usize, 100, 400] {
        let db = org_db(n);
        harness::case(&format!("build_dstar/{n}"), || {
            omq_to_cqs_database(&q, &db, &ChaseBudget::unbounded()).unwrap()
        });
        let d_star = omq_to_cqs_database(&q, &db, &ChaseBudget::unbounded()).unwrap();
        harness::case(&format!("closed_eval/{n}"), || {
            evaluate_ucq(&q.query, &d_star)
        });
    }
}
