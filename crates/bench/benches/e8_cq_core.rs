//! E8 — Grohe's baseline: CQ core computation (semantic treewidth of plain
//! CQs, Theorem 4.1's decidability footnote).

use gtgd_bench::harness;
use gtgd_query::{core_of, parse_cq};

fn redundant_query(pendant: usize) -> gtgd_query::Cq {
    let mut atoms = vec![
        "E(Y0,Y1)".to_string(),
        "E(Y1,Y2)".to_string(),
        "E(Y2,Y0)".to_string(),
    ];
    for i in 0..pendant {
        atoms.push(format!("E(Z{i},Z{})", i + 1));
    }
    parse_cq(&format!("Q() :- {}", atoms.join(", "))).unwrap()
}

fn main() {
    harness::group("e8_cq_core");
    for &pendant in &[4usize, 8, 12] {
        let q = redundant_query(pendant);
        harness::case(&format!("core_of/{pendant}"), || core_of(&q));
    }
}
