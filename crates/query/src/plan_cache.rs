//! Warm prepared-query cache for long-lived serving: parse + compile once
//! per distinct query text, then every later arrival of the same query is
//! a map hit returning the shared [`PreparedQuery`].
//!
//! Preparation depends only on the query (never on instance contents), so
//! a cached plan stays valid across arbitrary instance evolution — the
//! serve daemon's write path never invalidates this cache. Keys are
//! *normalized* query text (whitespace collapsed), so trivial formatting
//! differences between clients don't defeat the cache. Hits and misses
//! are observable through the `serve.plan_hits` / `serve.plan_misses`
//! metrics and through [`PlanCache::stats`].

use crate::engine::{Engine, PreparedQuery};
use crate::parser::{parse_cq, ParseError};
use gtgd_data::obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Normalizes query text for cache keying: leading/trailing whitespace
/// trimmed, every internal whitespace run collapsed to one space. The
/// grammar treats all whitespace alike, so normal forms parse identically
/// to their originals.
pub fn normalize_query_text(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// A concurrent cache of compiled query plans keyed by normalized query
/// text. Cheap to share: readers hold the lock only for the map probe;
/// compilation happens outside it.
#[derive(Debug, Default)]
pub struct PlanCache {
    map: RwLock<HashMap<String, Arc<PreparedQuery>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// The prepared plan for `text`, parsing and compiling on first
    /// sight. Parse errors are returned (and not cached — the next
    /// attempt re-parses, so a transiently garbled client doesn't poison
    /// the key). Two threads racing on one fresh key both compile; one
    /// winner is kept.
    pub fn get_or_prepare(&self, text: &str) -> Result<Arc<PreparedQuery>, ParseError> {
        let key = normalize_query_text(text);
        if let Some(hit) = self.map.read().expect("plan cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::count(obs::Metric::ServePlanHits, 1);
            return Ok(Arc::clone(hit));
        }
        let cq = parse_cq(&key)?;
        let prepared = Arc::new(Engine::prepare(&cq));
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::count(obs::Metric::ServePlanMisses, 1);
        let mut map = self.map.write().expect("plan cache lock");
        Ok(Arc::clone(map.entry(key).or_insert(prepared)))
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.read().expect("plan cache lock").len()
    }

    /// Whether no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtgd_data::{GroundAtom, Instance};

    #[test]
    fn second_arrival_is_a_hit_even_with_different_whitespace() {
        let cache = PlanCache::new();
        let db = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("R", &["b", "c"]),
        ]);
        let p1 = cache.get_or_prepare("Q(X) :- R(X,Y)").unwrap();
        let p2 = cache.get_or_prepare("  Q(X)   :-   R(X,Y)  ").unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "normalized texts share one plan");
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(p1.answers(&db).len(), 2);
    }

    #[test]
    fn distinct_queries_get_distinct_plans() {
        let cache = PlanCache::new();
        cache.get_or_prepare("Q(X) :- R(X,Y)").unwrap();
        cache.get_or_prepare("Q(Y) :- R(X,Y)").unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn parse_errors_are_returned_not_cached() {
        let cache = PlanCache::new();
        assert!(cache.get_or_prepare("this is not a query").is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn concurrent_demands_converge_on_one_plan() {
        let cache = PlanCache::new();
        let plans: Vec<Arc<PreparedQuery>> = std::thread::scope(|s| {
            (0..8)
                .map(|_| s.spawn(|| cache.get_or_prepare("Q(X) :- R(X,Y), S(Y)").unwrap()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(cache.len(), 1);
        // `or_insert` hands every caller the cached winner, so all eight
        // returned plans alias one allocation.
        let winner = cache.get_or_prepare("Q(X) :- R(X,Y), S(Y)").unwrap();
        assert!(plans.iter().all(|p| Arc::ptr_eq(p, &winner)));
    }
}
