//! A binary-counter ontology in the spirit of Appendix C.5: a guarded set
//! Σ₁ over a 6-ary guard `G` that forces, from a single `T1` atom, an
//! `S`-path of length exactly `2^n − 1`. This stresses the type machinery
//! (wide guards, many side atoms, deep expansion with pairwise-distinct
//! types — no premature blocking allowed) and reproduces the paper's point
//! that ontologies can force structures exponentially larger than the OMQ.

use gtgd::chase::{parse_tgds, typed_chase, DepthPolicy, Tgd};
use gtgd::data::{GroundAtom, Instance};
use gtgd::query::{holds_boolean, parse_cq, Cq};

/// Σ₁ for an `n`-bit counter: `T1(x̄)` starts at 0; every non-maximal
/// counter value spawns a successor bag via the guard
/// `G(x1,x2,x3,y1,y2,y3)` with an `S(x1,y1)` edge; increment rules carry
/// bits across the guard.
fn counter_sigma(n: usize) -> Vec<Tgd> {
    let mut rules: Vec<String> = Vec::new();
    // Initialization: all bits zero.
    for i in 0..n {
        rules.push(format!("T1(X1,X2,X3) -> Bz{i}(X1,X2,X3)"));
    }
    // Expansion: any zero bit means a successor exists.
    for i in 0..n {
        rules.push(format!("Bz{i}(X1,X2,X3) -> G(X1,X2,X3,Y1,Y2,Y3), S(X1,Y1)"));
    }
    // Increment across the guard: the lowest zero bit i flips to one, lower
    // bits reset to zero, higher bits copy.
    let guard = "G(X1,X2,X3,Y1,Y2,Y3)";
    for i in 0..n {
        let mut body = vec![guard.to_string()];
        for j in 0..i {
            body.push(format!("Bo{j}(X1,X2,X3)"));
        }
        body.push(format!("Bz{i}(X1,X2,X3)"));
        let mut head = vec![format!("Bo{i}(Y1,Y2,Y3)")];
        for j in 0..i {
            head.push(format!("Bz{j}(Y1,Y2,Y3)"));
        }
        rules.push(format!("{} -> {}", body.join(", "), head.join(", ")));
        // Copy rules for higher bits.
        for j in (i + 1)..n {
            for (bit, pred) in [("z", "Bz"), ("o", "Bo")] {
                let _ = bit;
                let mut cbody = vec![guard.to_string()];
                for l in 0..i {
                    cbody.push(format!("Bo{l}(X1,X2,X3)"));
                }
                cbody.push(format!("Bz{i}(X1,X2,X3)"));
                cbody.push(format!("{pred}{j}(X1,X2,X3)"));
                rules.push(format!("{} -> {pred}{j}(Y1,Y2,Y3)", cbody.join(", ")));
            }
        }
    }
    parse_tgds(&rules.join(". ")).unwrap()
}

fn s_path_query(len: usize) -> Cq {
    let atoms: Vec<String> = (0..len).map(|i| format!("S(P{i},P{})", i + 1)).collect();
    parse_cq(&format!("Q() :- {}", atoms.join(", "))).unwrap()
}

fn run_counter(n: usize) -> Instance {
    let sigma = counter_sigma(n);
    let db = Instance::from_atoms([GroundAtom::named("T1", &["c1", "c2", "c3"])]);
    let result = typed_chase(
        &db,
        &sigma,
        DepthPolicy::Adaptive {
            extra_levels: (1 << n) + 2,
            max_level: (1 << n) + 4,
        },
    );
    assert!(result.saturated, "counter chase must terminate on its own");
    result.instance
}

#[test]
fn two_bit_counter_builds_path_of_length_three() {
    let chase = run_counter(2);
    // 00 → 01 → 10 → 11: exactly 3 S-edges on every branch.
    assert!(holds_boolean(&s_path_query(3), &chase));
    assert!(!holds_boolean(&s_path_query(4), &chase));
}

#[test]
fn three_bit_counter_builds_path_of_length_seven() {
    let chase = run_counter(3);
    assert!(holds_boolean(&s_path_query(7), &chase));
    assert!(!holds_boolean(&s_path_query(8), &chase));
}

#[test]
fn counter_rules_are_guarded() {
    use gtgd::chase::TgdClass;
    for t in counter_sigma(3) {
        assert!(t.is_in(TgdClass::Guarded), "not guarded: {t}");
    }
}

#[test]
fn omq_over_counter_ontology() {
    // The OMQ "is there an S-path of length 3?" is certain from a single
    // T1 atom under the 2-bit ontology — the paper's point that small OMQs
    // can force long derivations.
    use gtgd::omq::{check_omq, EvalConfig, Omq};
    let sigma = counter_sigma(2);
    let q = Omq::full_schema(sigma, gtgd::query::Ucq::single(s_path_query(3)));
    let db = Instance::from_atoms([GroundAtom::named("T1", &["c1", "c2", "c3"])]);
    let cfg = EvalConfig {
        extra_levels: Some(6),
        max_level: 12,
        ..EvalConfig::default()
    };
    let (holds, exact) = check_omq(&q, &db, &[], &cfg);
    assert!(holds && exact);
    // And from T2-style data (no counter start), nothing follows.
    let db2 = Instance::from_atoms([GroundAtom::named("T2", &["c1", "c2", "c3"])]);
    let (holds2, _) = check_omq(&q, &db2, &[], &cfg);
    assert!(!holds2);
}
