//! Std-only engine observability: gated counters, coarse latency
//! histograms, hierarchical spans, and serializable run reports.
//!
//! Every engine in the workspace (chase rounds and trigger firings,
//! saturator bag closures, the kernel backtracker, the worst-case-optimal
//! executor, the sorted-index cache, the worker pool) carries *probes* —
//! calls into this module at its interesting events. Probes are **off by
//! default**: each one compiles to a single branch on one process-global
//! `AtomicBool` ([`enabled`]), so an untraced run pays one relaxed load
//! per probe site and nothing else (measured < 3% on the E15 chase and the
//! E10 WCOJ enumeration — see DESIGN.md §10). Switching the gate on makes
//! the same probes record into lock-free global state:
//!
//! * **Counters** ([`Metric`], [`count`]) — monotonically increasing
//!   `AtomicU64`s, one per metric, `fetch_add(Relaxed)` per hit.
//! * **Histograms** ([`Hist`], [`observe`]) — 64 power-of-two buckets per
//!   metric (`bucket = floor(log2(v))`), good enough to separate "10 µs
//!   rounds" from "10 ms rounds" without any allocation on the hot path.
//! * **Spans** ([`span`]) — monotonic-clock ([`std::time::Instant`])
//!   timings with parent/child nesting, kept per thread on a thread-local
//!   stack; a span that finishes with an empty stack is a *root* and is
//!   published to the global finished list (one short mutex hold per root,
//!   never per event).
//!
//! A [`RunReport`] snapshots all three into a plain serializable tree;
//! [`RunReport::to_json`] renders it (metric and span names are `'static`
//! identifiers chosen by this workspace, so the rendering needs no string
//! escaping). The intended protocol for "trace this run" is
//! enable → [`reset`] → run → [`report`] → disable, which the
//! `ChaseRunner`/`PreparedQuery` facades and the `experiments --trace-json`
//! harness all follow. State is process-global: two *concurrently* traced
//! runs fold into one report (the counters still add up; the span forests
//! interleave), which is the right trade for a std-only layer with
//! branch-only disabled cost.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The global probe gate. All probes are branches on this flag.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether probes currently record. One relaxed load; inlined into every
/// probe site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns probe recording on or off. Callers that want a per-run report
/// follow enable → [`reset`] → run → [`report`] → disable.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// A named global counter. Every variant is one `AtomicU64` in a static
/// array; the discriminant is the array index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Semi-naive rounds completed by an oblivious chase (sequential or
    /// parallel).
    ChaseRounds,
    /// Triggers fired, across all chase engines.
    TriggerFirings,
    /// Fresh nulls invented by trigger firings.
    NullsCreated,
    /// Head-satisfaction checks performed by the restricted chase at
    /// trigger pop time.
    RestrictedHeadChecks,
    /// Bag closures computed by the saturator (`close_canonical` calls
    /// that did real work, i.e. not answered by the stable-key memo).
    BagClosures,
    /// Saturator stable-memo fast-path hits.
    BagClosureMemoHits,
    /// Nodes visited by the kernel backtracker (`search_rec` entries).
    KernelNodes,
    /// Exhausted candidate lists in the backtracker (a visited node whose
    /// alternatives all failed — the backtrack edges of the search tree).
    KernelBacktracks,
    /// `seek` calls on WCOJ trie cursors.
    WcojSeeks,
    /// Galloping/binary-search steps taken inside cursor seeks.
    WcojGallopSteps,
    /// Sorted-permutation indexes built by a full sort.
    IndexFullBuilds,
    /// Sorted-permutation indexes extended by a delta sort + merge.
    IndexMergeExtends,
    /// Parallel pool invocations that actually spawned worker threads.
    PoolRuns,
    /// Work chunks claimed by pool workers.
    PoolChunksClaimed,
    /// Widest worker count any pool ran with (a high-water gauge, via
    /// [`record_max`]).
    PoolMaxWidth,
    /// Bag checks performed by the decomposition-guided evaluator.
    DecompBagChecks,
    /// Dense-dictionary encode lookups answered by an existing code.
    DenseDictHits,
    /// Dense-dictionary encode lookups that minted a fresh code.
    DenseDictMisses,
    /// Order-preserving dictionary remaps (a new value sorted before an
    /// existing one, forcing a code shift across all encoded storage).
    DenseRemaps,
    /// Morsels (bounded WCOJ sub-searches) executed by the parallel
    /// scheduler.
    WcojMorselsExecuted,
    /// Morsels claimed by a worker other than their round-robin home (the
    /// work-stealing rebalance count).
    WcojMorselsStolen,
    /// Triggers fired by incremental maintenance (delta inserts and DRed
    /// re-derivation runs), as opposed to from-scratch chases.
    MaintTriggersFired,
    /// Atoms placed in the DRed over-delete set during a retraction
    /// (before re-derivation rescues survivors).
    MaintAtomsOverdeleted,
    /// Over-deleted atoms rescued by an alternative surviving derivation
    /// during the DRed re-derive phase.
    MaintAtomsRederived,
    /// Serve-mode prepared-query cache hits (query answered off a warm
    /// compiled plan, skipping parse + compile).
    ServePlanHits,
    /// Serve-mode prepared-query cache misses (query parsed and compiled,
    /// then cached for the rest of the daemon's lifetime).
    ServePlanMisses,
}

impl Metric {
    /// All metrics, in report order.
    pub const ALL: [Metric; 26] = [
        Metric::ChaseRounds,
        Metric::TriggerFirings,
        Metric::NullsCreated,
        Metric::RestrictedHeadChecks,
        Metric::BagClosures,
        Metric::BagClosureMemoHits,
        Metric::KernelNodes,
        Metric::KernelBacktracks,
        Metric::WcojSeeks,
        Metric::WcojGallopSteps,
        Metric::IndexFullBuilds,
        Metric::IndexMergeExtends,
        Metric::PoolRuns,
        Metric::PoolChunksClaimed,
        Metric::PoolMaxWidth,
        Metric::DecompBagChecks,
        Metric::DenseDictHits,
        Metric::DenseDictMisses,
        Metric::DenseRemaps,
        Metric::WcojMorselsExecuted,
        Metric::WcojMorselsStolen,
        Metric::MaintTriggersFired,
        Metric::MaintAtomsOverdeleted,
        Metric::MaintAtomsRederived,
        Metric::ServePlanHits,
        Metric::ServePlanMisses,
    ];

    /// The metric's stable report name (a dotted static identifier; no
    /// characters that need JSON escaping).
    pub fn name(self) -> &'static str {
        match self {
            Metric::ChaseRounds => "chase.rounds",
            Metric::TriggerFirings => "chase.trigger_firings",
            Metric::NullsCreated => "chase.nulls_created",
            Metric::RestrictedHeadChecks => "chase.restricted_head_checks",
            Metric::BagClosures => "saturator.bag_closures",
            Metric::BagClosureMemoHits => "saturator.memo_hits",
            Metric::KernelNodes => "kernel.nodes_visited",
            Metric::KernelBacktracks => "kernel.backtracks",
            Metric::WcojSeeks => "wcoj.seeks",
            Metric::WcojGallopSteps => "wcoj.gallop_steps",
            Metric::IndexFullBuilds => "index.full_builds",
            Metric::IndexMergeExtends => "index.merge_extends",
            Metric::PoolRuns => "pool.parallel_runs",
            Metric::PoolChunksClaimed => "pool.chunks_claimed",
            Metric::PoolMaxWidth => "pool.max_width",
            Metric::DecompBagChecks => "decomp.bag_checks",
            Metric::DenseDictHits => "dense.dict_hits",
            Metric::DenseDictMisses => "dense.dict_misses",
            Metric::DenseRemaps => "dense.remaps",
            Metric::WcojMorselsExecuted => "wcoj.morsels_executed",
            Metric::WcojMorselsStolen => "wcoj.morsels_stolen",
            Metric::MaintTriggersFired => "maint.triggers_fired",
            Metric::MaintAtomsOverdeleted => "maint.atoms_overdeleted",
            Metric::MaintAtomsRederived => "maint.atoms_rederived",
            Metric::ServePlanHits => "serve.plan_hits",
            Metric::ServePlanMisses => "serve.plan_misses",
        }
    }
}

const N_METRICS: usize = Metric::ALL.len();
// A const item may be repeated into an array even though `AtomicU64` is
// not `Copy`.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static COUNTERS: [AtomicU64; N_METRICS] = [ZERO; N_METRICS];

/// Adds `n` to a counter if probes are enabled. The disabled path is one
/// relaxed load and a branch.
#[inline(always)]
pub fn count(m: Metric, n: u64) {
    if enabled() {
        COUNTERS[m as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Raises a gauge-style counter to at least `v` (used for high-water
/// values like the pool width, where adding makes no sense).
#[inline(always)]
pub fn record_max(m: Metric, v: u64) {
    if enabled() {
        COUNTERS[m as usize].fetch_max(v, Ordering::Relaxed);
    }
}

/// The current value of a counter (regardless of the gate).
pub fn counter_value(m: Metric) -> u64 {
    COUNTERS[m as usize].load(Ordering::Relaxed)
}

/// A named global log2 histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Wall time of one oblivious-chase round, in nanoseconds.
    ChaseRoundNs,
    /// Wall time of one saturator bag closure, in nanoseconds.
    BagClosureNs,
    /// Wall time of one sorted-index build or merge-extend, in
    /// nanoseconds.
    IndexBuildNs,
    /// Chunks claimed by one pool worker during one parallel run (the
    /// per-worker utilization shape: a balanced run concentrates mass in
    /// one or two adjacent buckets).
    PoolWorkerChunks,
    /// Per-worker busy wall time over one morsel-driven WCOJ enumeration,
    /// in nanoseconds (one observation per worker per run — a balanced run
    /// concentrates mass in adjacent buckets).
    WcojWorkerBusyNs,
}

impl Hist {
    /// All histograms, in report order.
    pub const ALL: [Hist; 5] = [
        Hist::ChaseRoundNs,
        Hist::BagClosureNs,
        Hist::IndexBuildNs,
        Hist::PoolWorkerChunks,
        Hist::WcojWorkerBusyNs,
    ];

    /// The histogram's stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Hist::ChaseRoundNs => "chase.round_ns",
            Hist::BagClosureNs => "saturator.closure_ns",
            Hist::IndexBuildNs => "index.build_ns",
            Hist::PoolWorkerChunks => "pool.worker_chunks",
            Hist::WcojWorkerBusyNs => "wcoj.worker_busy_ns",
        }
    }
}

const N_HISTS: usize = Hist::ALL.len();
const BUCKETS: usize = 64;
#[allow(clippy::declare_interior_mutable_const)]
const ROW: [AtomicU64; BUCKETS] = [ZERO; BUCKETS];
static HISTS: [[AtomicU64; BUCKETS]; N_HISTS] = [ROW; N_HISTS];

/// Records `v` into a histogram if probes are enabled. Bucket `b` counts
/// values with `floor(log2(v)) == b` (0 counts both 0 and 1).
#[inline(always)]
pub fn observe(h: Hist, v: u64) {
    if enabled() {
        let bucket = (63 - v.max(1).leading_zeros()) as usize;
        HISTS[h as usize][bucket].fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// One node of a finished span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The span's static name (workspace-chosen identifier).
    pub name: &'static str,
    /// Elapsed wall time, monotonic clock, in nanoseconds.
    pub elapsed_ns: u64,
    /// Spans opened and closed while this one was open, on this thread.
    pub children: Vec<SpanNode>,
}

struct OpenSpan {
    name: &'static str,
    started: Instant,
    children: Vec<SpanNode>,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
}

/// Root spans finished since the last [`reset`], in finish order.
static FINISHED: Mutex<Vec<SpanNode>> = Mutex::new(Vec::new());

/// A live span; closing happens on drop. Obtained from [`span`].
#[must_use = "a span measures the scope it is held for"]
pub struct Span {
    armed: bool,
}

/// Opens a span. When probes are disabled this is a branch and returns an
/// inert guard; when enabled, the span nests under the innermost open span
/// of the current thread and is timed until the guard drops.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { armed: false };
    }
    SPAN_STACK.with(|stack| {
        stack.borrow_mut().push(OpenSpan {
            name,
            started: Instant::now(),
            children: Vec::new(),
        });
    });
    Span { armed: true }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // The guard was armed, so its frame is on this thread's stack
            // (guards are droppable only in LIFO scope order).
            let Some(open) = stack.pop() else { return };
            let node = SpanNode {
                name: open.name,
                elapsed_ns: open.started.elapsed().as_nanos() as u64,
                children: open.children,
            };
            match stack.last_mut() {
                Some(parent) => parent.children.push(node),
                None => FINISHED.lock().expect("span list").push(node),
            }
        });
    }
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

/// One counter's snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// [`Metric::name`].
    pub name: &'static str,
    /// Value at snapshot time.
    pub value: u64,
}

/// One histogram's snapshot: only its non-empty buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// [`Hist::name`].
    pub name: &'static str,
    /// `(floor(log2(value)), count)` pairs, ascending.
    pub buckets: Vec<(u32, u64)>,
}

/// A serializable snapshot of everything the probes recorded since the
/// last [`reset`]: non-zero counters, non-empty histograms, and the forest
/// of finished root spans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Non-zero counters, in [`Metric::ALL`] order.
    pub counters: Vec<CounterSnapshot>,
    /// Non-empty histograms, in [`Hist::ALL`] order.
    pub histograms: Vec<HistSnapshot>,
    /// Finished root spans, in finish order.
    pub spans: Vec<SpanNode>,
}

impl RunReport {
    /// The value of a counter in this report (0 if absent).
    pub fn counter(&self, m: Metric) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == m.name())
            .map_or(0, |c| c.value)
    }

    /// Renders the report as a JSON object. All names are static
    /// workspace-chosen identifiers without `"` or `\`, so no escaping is
    /// required; numbers are plain `u64`s.
    pub fn to_json(&self) -> String {
        fn span_json(out: &mut String, s: &SpanNode, indent: usize) {
            let pad = " ".repeat(indent);
            out.push_str(&format!(
                "{pad}{{\"name\": \"{}\", \"elapsed_ns\": {}, \"children\": [",
                s.name, s.elapsed_ns
            ));
            if s.children.is_empty() {
                out.push_str("]}");
                return;
            }
            out.push('\n');
            for (i, c) in s.children.iter().enumerate() {
                span_json(out, c, indent + 2);
                if i + 1 < s.children.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&format!("{pad}]}}"));
        }
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", c.name, c.value));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": [", h.name));
            for (j, &(b, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{{\"log2\": {b}, \"count\": {n}}}"));
            }
            out.push(']');
        }
        out.push_str("\n  },\n  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            span_json(&mut out, s, 4);
            if i + 1 < self.spans.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}");
        out
    }
}

/// Zeroes every counter and histogram and clears the finished-span list.
/// Does not touch the gate or any *open* span.
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for row in &HISTS {
        for b in row {
            b.store(0, Ordering::Relaxed);
        }
    }
    FINISHED.lock().expect("span list").clear();
}

/// Snapshots the probes into a [`RunReport`]. Non-destructive: call
/// [`reset`] to start the next run from zero.
pub fn report() -> RunReport {
    let counters = Metric::ALL
        .iter()
        .filter_map(|&m| {
            let value = counter_value(m);
            (value > 0).then_some(CounterSnapshot {
                name: m.name(),
                value,
            })
        })
        .collect();
    let histograms = Hist::ALL
        .iter()
        .filter_map(|&h| {
            let buckets: Vec<(u32, u64)> = HISTS[h as usize]
                .iter()
                .enumerate()
                .filter_map(|(b, c)| {
                    let n = c.load(Ordering::Relaxed);
                    (n > 0).then_some((b as u32, n))
                })
                .collect();
            (!buckets.is_empty()).then_some(HistSnapshot {
                name: h.name(),
                buckets,
            })
        })
        .collect();
    let spans = FINISHED.lock().expect("span list").clone();
    RunReport {
        counters,
        histograms,
        spans,
    }
}

/// Runs `f` with probes enabled against a clean slate and returns its
/// result together with the run's report; the gate is switched off again
/// afterwards. This is the one-call form of the
/// enable → reset → run → report → disable protocol used by the facades.
pub fn trace_run<T>(f: impl FnOnce() -> T) -> (T, RunReport) {
    set_enabled(true);
    reset();
    let out = f();
    let rep = report();
    set_enabled(false);
    (out, rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The obs state is process-global and rust test binaries run tests
    // concurrently, so every test here serializes on one lock.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_probes_record_nothing() {
        let _g = GATE.lock().unwrap();
        set_enabled(false);
        reset();
        count(Metric::ChaseRounds, 5);
        observe(Hist::ChaseRoundNs, 1024);
        drop(span("t"));
        let r = report();
        assert!(r.counters.is_empty());
        assert!(r.histograms.is_empty());
        assert!(r.spans.is_empty());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let _g = GATE.lock().unwrap();
        let ((), r) = trace_run(|| {
            count(Metric::TriggerFirings, 3);
            count(Metric::TriggerFirings, 4);
            record_max(Metric::PoolMaxWidth, 4);
            record_max(Metric::PoolMaxWidth, 2);
        });
        assert_eq!(r.counter(Metric::TriggerFirings), 7);
        assert_eq!(r.counter(Metric::PoolMaxWidth), 4);
        assert_eq!(r.counter(Metric::ChaseRounds), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let _g = GATE.lock().unwrap();
        let ((), r) = trace_run(|| {
            observe(Hist::PoolWorkerChunks, 0); // bucket 0
            observe(Hist::PoolWorkerChunks, 1); // bucket 0
            observe(Hist::PoolWorkerChunks, 2); // bucket 1
            observe(Hist::PoolWorkerChunks, 3); // bucket 1
            observe(Hist::PoolWorkerChunks, 1 << 20); // bucket 20
        });
        let h = r
            .histograms
            .iter()
            .find(|h| h.name == "pool.worker_chunks")
            .unwrap();
        assert_eq!(h.buckets, vec![(0, 2), (1, 2), (20, 1)]);
    }

    #[test]
    fn spans_nest_and_roots_publish() {
        let _g = GATE.lock().unwrap();
        let ((), r) = trace_run(|| {
            let root = span("outer");
            {
                let _child = span("inner");
            }
            drop(root);
            let _sibling = span("second");
        });
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.spans[0].name, "outer");
        assert_eq!(r.spans[0].children.len(), 1);
        assert_eq!(r.spans[0].children[0].name, "inner");
        assert!(r.spans[0].elapsed_ns >= r.spans[0].children[0].elapsed_ns);
        assert_eq!(r.spans[1].name, "second");
    }

    #[test]
    fn json_is_balanced_and_names_are_clean() {
        let _g = GATE.lock().unwrap();
        for m in Metric::ALL {
            assert!(!m.name().contains(['"', '\\']), "{}", m.name());
        }
        for h in Hist::ALL {
            assert!(!h.name().contains(['"', '\\']), "{}", h.name());
        }
        let ((), r) = trace_run(|| {
            count(Metric::WcojSeeks, 2);
            observe(Hist::IndexBuildNs, 4096);
            let _s = span("run");
        });
        let json = r.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"wcoj.seeks\": 2"));
        assert!(json.contains("\"index.build_ns\""));
        assert!(json.contains("\"name\": \"run\""));
    }

    #[test]
    fn reset_clears_everything() {
        let _g = GATE.lock().unwrap();
        set_enabled(true);
        reset();
        count(Metric::KernelNodes, 9);
        let _ = span("x");
        reset();
        let r = report();
        set_enabled(false);
        assert!(r.counters.is_empty());
        assert!(r.spans.is_empty());
    }
}
