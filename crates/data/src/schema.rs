//! Predicates and schemas.

use crate::symbols::Symbol;
use std::collections::BTreeMap;

/// A relation symbol. Arity is carried by the [`Schema`]; atoms carry their
/// own argument lists, and [`Schema::check_atom`] cross-validates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Predicate(pub Symbol);

impl Predicate {
    /// A predicate with the given name.
    pub fn new(name: &str) -> Predicate {
        Predicate(Symbol::new(name))
    }

    /// The predicate's name.
    pub fn name(self) -> String {
        self.0.name()
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Predicate {
    fn from(s: &str) -> Predicate {
        Predicate::new(s)
    }
}

/// A finite set of predicates with associated arities (a *schema* `S`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    arities: BTreeMap<Predicate, usize>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Builds a schema from `(name, arity)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, usize)>) -> Schema {
        let mut s = Schema::new();
        for (name, ar) in pairs {
            s.add(Predicate::new(name), ar);
        }
        s
    }

    /// Adds a predicate. Panics if the predicate is already present with a
    /// different arity — a schema bug worth failing loudly on.
    pub fn add(&mut self, p: Predicate, arity: usize) -> &mut Self {
        if let Some(&prev) = self.arities.get(&p) {
            assert_eq!(prev, arity, "predicate {p} redeclared with different arity");
        }
        self.arities.insert(p, arity);
        self
    }

    /// Arity of `p`, if declared.
    pub fn arity(&self, p: Predicate) -> Option<usize> {
        self.arities.get(&p).copied()
    }

    /// Whether `p` is declared.
    pub fn contains(&self, p: Predicate) -> bool {
        self.arities.contains_key(&p)
    }

    /// `ar(S)`: the maximum arity, or 0 for the empty schema.
    pub fn max_arity(&self) -> usize {
        self.arities.values().copied().max().unwrap_or(0)
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// Whether the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }

    /// Iterates over `(predicate, arity)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (Predicate, usize)> + '_ {
        self.arities.iter().map(|(&p, &a)| (p, a))
    }

    /// Whether `self ⊆ other` (same predicates with same arities).
    pub fn is_subschema_of(&self, other: &Schema) -> bool {
        self.iter().all(|(p, a)| other.arity(p) == Some(a))
    }

    /// The union of two schemas. Panics on arity clashes.
    pub fn union(&self, other: &Schema) -> Schema {
        let mut s = self.clone();
        for (p, a) in other.iter() {
            s.add(p, a);
        }
        s
    }

    /// Validates an atom's arity against the schema.
    pub fn check_atom(&self, p: Predicate, arg_count: usize) -> Result<(), SchemaError> {
        match self.arity(p) {
            None => Err(SchemaError::UnknownPredicate(p)),
            Some(a) if a != arg_count => Err(SchemaError::ArityMismatch {
                predicate: p,
                declared: a,
                found: arg_count,
            }),
            Some(_) => Ok(()),
        }
    }
}

/// Schema violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The predicate is not declared in the schema.
    UnknownPredicate(Predicate),
    /// The atom has the wrong number of arguments.
    ArityMismatch {
        /// The offending predicate.
        predicate: Predicate,
        /// Its declared arity.
        declared: usize,
        /// The number of arguments found.
        found: usize,
    },
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::UnknownPredicate(p) => write!(f, "unknown predicate {p}"),
            SchemaError::ArityMismatch {
                predicate,
                declared,
                found,
            } => write!(
                f,
                "predicate {predicate} has arity {declared} but atom has {found} arguments"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let s = Schema::from_pairs([("R", 2), ("P", 1)]);
        assert_eq!(s.arity(Predicate::new("R")), Some(2));
        assert_eq!(s.arity(Predicate::new("Q")), None);
        assert_eq!(s.max_arity(), 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "redeclared")]
    fn arity_clash_panics() {
        let mut s = Schema::new();
        s.add(Predicate::new("R"), 2);
        s.add(Predicate::new("R"), 3);
    }

    #[test]
    fn subschema_and_union() {
        let s = Schema::from_pairs([("R", 2)]);
        let t = Schema::from_pairs([("R", 2), ("P", 1)]);
        assert!(s.is_subschema_of(&t));
        assert!(!t.is_subschema_of(&s));
        let u = s.union(&Schema::from_pairs([("P", 1)]));
        assert_eq!(u, t);
    }

    #[test]
    fn atom_checks() {
        let s = Schema::from_pairs([("R", 2)]);
        assert!(s.check_atom(Predicate::new("R"), 2).is_ok());
        assert!(matches!(
            s.check_atom(Predicate::new("R"), 3),
            Err(SchemaError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_atom(Predicate::new("Z"), 0),
            Err(SchemaError::UnknownPredicate(_))
        ));
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new();
        assert!(s.is_empty());
        assert_eq!(s.max_arity(), 0);
    }
}
