//! Constraint-query specifications (Section 3.2): `S = (Σ, q)` evaluated
//! closed-world over databases **promised** to satisfy Σ.

use crate::omq::Omq;
use gtgd_chase::{satisfies_all, Tgd, TgdClass};
use gtgd_data::{Instance, Schema, Value};
use gtgd_query::{evaluate_ucq, Ucq};
use std::collections::HashSet;

/// A constraint-query specification `S = (Σ, q)` over a schema `T`.
#[derive(Debug, Clone)]
pub struct Cqs {
    /// The integrity constraints Σ.
    pub sigma: Vec<Tgd>,
    /// The query `q`.
    pub query: Ucq,
}

/// The input database violated the promise `D |= Σ`.
#[derive(Debug, Clone)]
pub struct CqsViolation {
    /// A violated constraint (displayed).
    pub constraint: String,
}

impl std::fmt::Display for CqsViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "database violates constraint: {}", self.constraint)
    }
}

impl std::error::Error for CqsViolation {}

impl Cqs {
    /// Builds a CQS.
    pub fn new(sigma: Vec<Tgd>, query: Ucq) -> Cqs {
        Cqs { sigma, query }
    }

    /// The schema `T` realized by Σ and `q`.
    pub fn schema(&self) -> Schema {
        let mut t = self.query.schema();
        for tgd in &self.sigma {
            t = t.union(&tgd.schema());
        }
        t
    }

    /// The companion OMQ `omq(S)` with full data schema (Section 5.1).
    pub fn omq(&self) -> Omq {
        Omq::full_schema(self.sigma.clone(), self.query.clone())
    }

    /// Whether Σ lies in the given class.
    pub fn sigma_in(&self, class: TgdClass) -> bool {
        self.sigma.iter().all(|t| t.is_in(class))
    }

    /// Whether Σ ⊆ FG_m (frontier-guarded with at most `m` head atoms).
    pub fn sigma_in_fg_m(&self, m: usize) -> bool {
        self.sigma
            .iter()
            .all(|t| t.is_in(TgdClass::FrontierGuarded) && t.head_atom_count() <= m)
    }

    /// Validates the promise `D |= Σ`.
    pub fn check_promise(&self, db: &Instance) -> Result<(), CqsViolation> {
        for t in &self.sigma {
            if !gtgd_chase::satisfies(db, t) {
                return Err(CqsViolation {
                    constraint: t.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Closed-world evaluation: `q(D)` directly over `D` (the promise is
    /// checked first — CQS evaluation is *defined* only on databases that
    /// satisfy Σ).
    pub fn evaluate(&self, db: &Instance) -> Result<HashSet<Vec<Value>>, CqsViolation> {
        self.check_promise(db)?;
        Ok(evaluate_ucq(&self.query, db))
    }

    /// Closed-world evaluation without re-checking the promise (for callers
    /// that constructed `db` to satisfy Σ, e.g. the reductions).
    pub fn evaluate_unchecked(&self, db: &Instance) -> HashSet<Vec<Value>> {
        debug_assert!(satisfies_all(db, &self.sigma));
        evaluate_ucq(&self.query, db)
    }

    /// Decision form: `c̄ ∈ q(D)`.
    pub fn check(&self, db: &Instance, answer: &[Value]) -> Result<bool, CqsViolation> {
        self.check_promise(db)?;
        Ok(gtgd_query::eval::check_answer_ucq(&self.query, db, answer))
    }

    /// Decision form via the polynomial plan of Theorem 5.7's tractable
    /// side: each disjunct is checked with the Prop 2.1 tree-decomposition
    /// DP (guaranteed `O(‖D‖^{k+1}·‖q‖)` when the query is in `UCQ_k`).
    pub fn check_decomposed(&self, db: &Instance, answer: &[Value]) -> Result<bool, CqsViolation> {
        self.check_promise(db)?;
        Ok(gtgd_query::decomp_eval::check_answer_ucq_decomposed(
            &self.query,
            db,
            answer,
        ))
    }

    /// The least `k` with the query in `UCQ_k` (its syntactic treewidth) —
    /// the exponent of the [`Cqs::check_decomposed`] plan.
    pub fn query_treewidth(&self) -> usize {
        gtgd_query::tw::ucq_treewidth(&self.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtgd_chase::parse_tgds;
    use gtgd_data::GroundAtom;
    use gtgd_query::parse_ucq;

    fn inclusion_cqs() -> Cqs {
        Cqs::new(
            parse_tgds("Emp(X,D) -> Dept(D)").unwrap(),
            parse_ucq("Q(X) :- Emp(X,D), Dept(D)").unwrap(),
        )
    }

    #[test]
    fn evaluation_on_satisfying_database() {
        let s = inclusion_cqs();
        let db = Instance::from_atoms([
            GroundAtom::named("Emp", &["ann", "sales"]),
            GroundAtom::named("Dept", &["sales"]),
        ]);
        let ans = s.evaluate(&db).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![Value::named("ann")]));
    }

    #[test]
    fn promise_violation_detected() {
        let s = inclusion_cqs();
        let db = Instance::from_atoms([GroundAtom::named("Emp", &["ann", "sales"])]);
        assert!(s.evaluate(&db).is_err());
    }

    #[test]
    fn omq_companion_has_full_schema() {
        let s = inclusion_cqs();
        let q = s.omq();
        assert!(q.has_full_data_schema());
        assert_eq!(q.arity(), 1);
    }

    #[test]
    fn class_checks() {
        let s = inclusion_cqs();
        assert!(s.sigma_in(TgdClass::Guarded));
        assert!(s.sigma_in_fg_m(1));
        let fg = Cqs::new(
            parse_tgds("R(X,Y), S(Y,Z) -> T(X), U(X)").unwrap(),
            parse_ucq("Q() :- T(X)").unwrap(),
        );
        assert!(!fg.sigma_in(TgdClass::Guarded));
        assert!(fg.sigma_in(TgdClass::FrontierGuarded));
        assert!(!fg.sigma_in_fg_m(1));
        assert!(fg.sigma_in_fg_m(2));
    }

    #[test]
    fn decomposed_plan_agrees() {
        let s = inclusion_cqs();
        let db = Instance::from_atoms([
            GroundAtom::named("Emp", &["ann", "sales"]),
            GroundAtom::named("Emp", &["bob", "hr"]),
            GroundAtom::named("Dept", &["sales"]),
            GroundAtom::named("Dept", &["hr"]),
        ]);
        assert_eq!(s.query_treewidth(), 1);
        for name in ["ann", "bob", "sales"] {
            let cand = vec![Value::named(name)];
            assert_eq!(
                s.check(&db, &cand).unwrap(),
                s.check_decomposed(&db, &cand).unwrap(),
                "candidate {name}"
            );
        }
    }

    #[test]
    fn schema_union() {
        let s = inclusion_cqs();
        let t = s.schema();
        assert_eq!(t.arity(gtgd_data::Predicate::new("Emp")), Some(2));
        assert_eq!(t.arity(gtgd_data::Predicate::new("Dept")), Some(1));
    }
}
