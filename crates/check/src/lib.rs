#![warn(missing_docs)]

//! Standalone, fail-closed verification of gtgd answer certificates.
//!
//! The chase/query engines emit proof-carrying answers: a JSON
//! [`Certificate`] bundling database facts, TGDs, a chain of trigger
//! firings, and a witnessing homomorphism (see `gtgd-chase::cert` for the
//! producer). This crate is the *independent* consumer. It deliberately
//! depends on nothing — not the chase, not the query kernel, not even the
//! shared data model — and re-validates a certificate with the dumbest
//! sound method available:
//!
//! 1. the stated facts are taken as axioms;
//! 2. each firing is replayed by **naive substitution**: apply the
//!    valuation to the named TGD's body, require every ground body atom to
//!    be an axiom or an earlier-derived atom, require every existential
//!    binding to be a *fresh* null (null-typed, unseen anywhere before,
//!    distinct within the firing — freshness is what makes the step sound
//!    in every model), then derive the ground head atoms;
//! 3. the answer homomorphism must map every query atom into the derived
//!    set, project to exactly the claimed answer tuple, and the tuple must
//!    be null-free (a certain answer names real constants, not invented
//!    ones).
//!
//! Everything unstated is rejected: unknown rule indices, unbound or
//! duplicate or extraneous variable bindings, stale nulls, atoms that
//! appear from nowhere. There is no "probably fine" path — every
//! [`CheckError`] names the first offending step. The JSON parser is
//! equally closed: objects, arrays, strings and unsigned integers only,
//! unknown keys rejected.

use std::collections::{HashMap, HashSet};
use std::fmt;

mod json;
use json::Json;

/// A constant of a certificate: a named constant or a labelled null.
///
/// The string/number payloads are the certificate's own encoding — this
/// crate never consults the engine's interned symbol tables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CVal {
    /// A named constant (`"c:<name>"` on the wire).
    Named(String),
    /// A labelled null (`"n:<id>"` on the wire).
    Null(u64),
}

impl fmt::Display for CVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CVal::Named(s) => write!(f, "{s}"),
            CVal::Null(n) => write!(f, "⊥{n}"),
        }
    }
}

/// A term of a rule or query atom: a variable index or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CTerm {
    /// A variable (`"v:<index>"` on the wire).
    Var(u32),
    /// A constant.
    Const(CVal),
}

/// A (possibly non-ground) atom of a TGD or query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CAtom {
    /// The predicate name.
    pub pred: String,
    /// The argument terms.
    pub args: Vec<CTerm>,
}

/// A ground atom (facts, and everything derived during checking).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CFact {
    /// The predicate name.
    pub pred: String,
    /// The argument values.
    pub args: Vec<CVal>,
}

impl fmt::Display for CFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self.args.iter().map(|a| a.to_string()).collect();
        write!(f, "{}({})", self.pred, args.join(","))
    }
}

/// A TGD as stated by the certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CTgd {
    /// The body atoms.
    pub body: Vec<CAtom>,
    /// The head atoms.
    pub head: Vec<CAtom>,
}

/// One claimed trigger firing: rule `tgd` under valuation `val`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CFiring {
    /// Index into the certificate's TGD list.
    pub tgd: usize,
    /// The full valuation, `(variable, value)` pairs.
    pub val: Vec<(u32, CVal)>,
}

/// A parsed certificate. All fields are public and plain so tests can
/// corrupt them programmatically and re-serialize nothing — [`check`]
/// works on the model directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The stated database facts (axioms).
    pub facts: Vec<CFact>,
    /// The rule set firings index into.
    pub tgds: Vec<CTgd>,
    /// The derivation chain, in order.
    pub firings: Vec<CFiring>,
    /// The query atoms.
    pub query: Vec<CAtom>,
    /// The query's answer variables.
    pub answer_vars: Vec<u32>,
    /// The claimed witnessing homomorphism.
    pub hom: Vec<(u32, CVal)>,
    /// The claimed answer tuple.
    pub answer: Vec<CVal>,
}

/// Why a certificate was rejected. Every variant names the first
/// offending step precisely — "rejected" without a reason would be as
/// unauditable as "accepted" without a check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The input was not the JSON this crate accepts.
    Json(String),
    /// The JSON parsed but was not a well-formed certificate.
    Malformed(String),
    /// The certificate's `version` field is not a version this checker
    /// knows how to validate.
    BadVersion(u64),
    /// A firing names a TGD index outside the stated rule set.
    UnknownTgd {
        /// Position of the firing in the chain.
        firing: usize,
        /// The out-of-range index it named.
        tgd: usize,
    },
    /// A firing's valuation binds the same variable twice.
    FiringDuplicateVar {
        /// Position of the firing in the chain.
        firing: usize,
        /// The doubly-bound variable.
        var: u32,
    },
    /// A firing's valuation leaves a rule variable unbound.
    FiringUnboundVar {
        /// Position of the firing in the chain.
        firing: usize,
        /// The unbound variable.
        var: u32,
    },
    /// A firing's valuation binds a variable the rule does not mention.
    FiringExtraVar {
        /// Position of the firing in the chain.
        firing: usize,
        /// The extraneous variable.
        var: u32,
    },
    /// A ground body atom of a firing is neither a stated fact nor an
    /// earlier-derived atom.
    BodyAtomUnstated {
        /// Position of the firing in the chain.
        firing: usize,
        /// The unjustified ground atom.
        atom: CFact,
    },
    /// An existential variable of a firing is not bound to a fresh null
    /// (it is a named constant, a null already seen, or a null reused
    /// within the firing).
    NonFreshNull {
        /// Position of the firing in the chain.
        firing: usize,
        /// The offending existential variable.
        var: u32,
    },
    /// The answer homomorphism binds the same variable twice.
    HomDuplicateVar {
        /// The doubly-bound variable.
        var: u32,
    },
    /// The answer homomorphism leaves a query variable unbound.
    HomUnboundVar {
        /// The unbound variable.
        var: u32,
    },
    /// The answer homomorphism binds a variable the query does not
    /// mention.
    HomExtraVar {
        /// The extraneous variable.
        var: u32,
    },
    /// A query atom under the homomorphism is not a derived atom.
    AnswerAtomUnstated {
        /// The unjustified ground atom.
        atom: CFact,
    },
    /// An answer variable does not occur in the query atoms (its image
    /// would be unconstrained).
    AnswerVarNotInQuery {
        /// The free-floating answer variable.
        var: u32,
    },
    /// The homomorphism's projection onto the answer variables is not the
    /// claimed answer tuple.
    AnswerMismatch,
    /// The answer tuple contains a labelled null — invented values are
    /// not certain answers.
    AnswerNotGround,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use CheckError::*;
        match self {
            Json(m) => write!(f, "invalid JSON: {m}"),
            Malformed(m) => write!(f, "malformed certificate: {m}"),
            BadVersion(v) => write!(f, "unsupported certificate version {v}"),
            UnknownTgd { firing, tgd } => {
                write!(f, "firing {firing} names unknown TGD {tgd}")
            }
            FiringDuplicateVar { firing, var } => {
                write!(f, "firing {firing} binds v{var} twice")
            }
            FiringUnboundVar { firing, var } => {
                write!(f, "firing {firing} leaves v{var} unbound")
            }
            FiringExtraVar { firing, var } => {
                write!(
                    f,
                    "firing {firing} binds v{var}, which its rule does not mention"
                )
            }
            BodyAtomUnstated { firing, atom } => {
                write!(f, "firing {firing} requires unstated body atom {atom}")
            }
            NonFreshNull { firing, var } => {
                write!(
                    f,
                    "firing {firing} binds existential v{var} to a non-fresh value"
                )
            }
            HomDuplicateVar { var } => write!(f, "answer hom binds v{var} twice"),
            HomUnboundVar { var } => write!(f, "answer hom leaves v{var} unbound"),
            HomExtraVar { var } => {
                write!(
                    f,
                    "answer hom binds v{var}, which the query does not mention"
                )
            }
            AnswerAtomUnstated { atom } => {
                write!(f, "answer requires unstated atom {atom}")
            }
            AnswerVarNotInQuery { var } => {
                write!(f, "answer variable v{var} does not occur in the query")
            }
            AnswerMismatch => write!(f, "hom projection does not equal the claimed answer"),
            AnswerNotGround => write!(f, "answer tuple contains a labelled null"),
        }
    }
}

fn atom_vars(atoms: &[CAtom]) -> HashSet<u32> {
    let mut out = HashSet::new();
    for a in atoms {
        for t in &a.args {
            if let CTerm::Var(v) = *t {
                out.insert(v);
            }
        }
    }
    out
}

/// Grounds `atom` under `val`; `unbound` reports a missing binding.
fn ground<E>(
    atom: &CAtom,
    val: &HashMap<u32, CVal>,
    unbound: impl Fn(u32) -> E,
) -> Result<CFact, E> {
    let mut args = Vec::with_capacity(atom.args.len());
    for t in &atom.args {
        args.push(match t {
            CTerm::Const(c) => c.clone(),
            CTerm::Var(v) => val.get(v).ok_or_else(|| unbound(*v))?.clone(),
        });
    }
    Ok(CFact {
        pred: atom.pred.clone(),
        args,
    })
}

fn to_map<E>(pairs: &[(u32, CVal)], duplicate: impl Fn(u32) -> E) -> Result<HashMap<u32, CVal>, E> {
    let mut map = HashMap::with_capacity(pairs.len());
    for (v, x) in pairs {
        if map.insert(*v, x.clone()).is_some() {
            return Err(duplicate(*v));
        }
    }
    Ok(map)
}

/// Verifies one certificate fail-closed. `Ok(())` means: replaying the
/// firing chain by naive substitution from the stated facts derives a set
/// of atoms into which the stated homomorphism maps every query atom, and
/// the homomorphism projects to exactly the claimed null-free answer.
pub fn check(cert: &Certificate) -> Result<(), CheckError> {
    // Facts are axioms; their values (nulls included, if a caller states
    // any) count as seen for freshness purposes.
    let mut derived: HashSet<CFact> = cert.facts.iter().cloned().collect();
    let mut seen: HashSet<CVal> = cert
        .facts
        .iter()
        .flat_map(|a| a.args.iter().cloned())
        .collect();

    for (i, firing) in cert.firings.iter().enumerate() {
        let tgd = cert.tgds.get(firing.tgd).ok_or(CheckError::UnknownTgd {
            firing: i,
            tgd: firing.tgd,
        })?;
        let val = to_map(&firing.val, |var| CheckError::FiringDuplicateVar {
            firing: i,
            var,
        })?;
        let body_vars = atom_vars(&tgd.body);
        let head_vars = atom_vars(&tgd.head);
        for &(var, _) in &firing.val {
            if !body_vars.contains(&var) && !head_vars.contains(&var) {
                return Err(CheckError::FiringExtraVar { firing: i, var });
            }
        }
        // Body atoms must already be justified.
        for atom in &tgd.body {
            let fact = ground(atom, &val, |var| CheckError::FiringUnboundVar {
                firing: i,
                var,
            })?;
            if !derived.contains(&fact) {
                return Err(CheckError::BodyAtomUnstated {
                    firing: i,
                    atom: fact,
                });
            }
        }
        // Existential variables (head-only variables) must be bound to
        // fresh nulls: null-typed, never seen before, distinct within the
        // firing. Freshness is the soundness core — a head instantiated
        // at a *specific* pre-existing value would claim more than the
        // rule licenses.
        let mut fresh_here: HashSet<CVal> = HashSet::new();
        for &var in head_vars.iter().filter(|v| !body_vars.contains(v)) {
            let v = val
                .get(&var)
                .ok_or(CheckError::FiringUnboundVar { firing: i, var })?;
            let fresh =
                matches!(v, CVal::Null(_)) && !seen.contains(v) && fresh_here.insert(v.clone());
            if !fresh {
                return Err(CheckError::NonFreshNull { firing: i, var });
            }
        }
        // Derive the head.
        for atom in &tgd.head {
            let fact = ground(atom, &val, |var| CheckError::FiringUnboundVar {
                firing: i,
                var,
            })?;
            seen.extend(fact.args.iter().cloned());
            derived.insert(fact);
        }
    }

    // The answer: hom maps every query atom into the derived set...
    let hom = to_map(&cert.hom, |var| CheckError::HomDuplicateVar { var })?;
    let query_vars = atom_vars(&cert.query);
    for &(var, _) in &cert.hom {
        if !query_vars.contains(&var) {
            return Err(CheckError::HomExtraVar { var });
        }
    }
    for atom in &cert.query {
        let fact = ground(atom, &hom, |var| CheckError::HomUnboundVar { var })?;
        if !derived.contains(&fact) {
            return Err(CheckError::AnswerAtomUnstated { atom: fact });
        }
    }
    // ...and projects to exactly the claimed null-free tuple.
    if cert.answer.len() != cert.answer_vars.len() {
        return Err(CheckError::AnswerMismatch);
    }
    for (pos, &var) in cert.answer_vars.iter().enumerate() {
        if !query_vars.contains(&var) {
            return Err(CheckError::AnswerVarNotInQuery { var });
        }
        let image = hom.get(&var).ok_or(CheckError::HomUnboundVar { var })?;
        if *image != cert.answer[pos] {
            return Err(CheckError::AnswerMismatch);
        }
    }
    if cert.answer.iter().any(|v| matches!(v, CVal::Null(_))) {
        return Err(CheckError::AnswerNotGround);
    }
    Ok(())
}

// --- JSON decoding ---

fn expect_str(j: &Json, what: &str) -> Result<String, CheckError> {
    match j {
        Json::Str(s) => Ok(s.clone()),
        _ => Err(CheckError::Malformed(format!("{what}: expected a string"))),
    }
}

fn expect_arr<'a>(j: &'a Json, what: &str) -> Result<&'a [Json], CheckError> {
    match j {
        Json::Arr(items) => Ok(items),
        _ => Err(CheckError::Malformed(format!("{what}: expected an array"))),
    }
}

fn expect_int(j: &Json, what: &str) -> Result<u64, CheckError> {
    match j {
        Json::Int(n) => Ok(*n),
        _ => Err(CheckError::Malformed(format!(
            "{what}: expected an integer"
        ))),
    }
}

fn decode_value(s: &str) -> Result<CVal, CheckError> {
    if let Some(name) = s.strip_prefix("c:") {
        Ok(CVal::Named(name.to_string()))
    } else if let Some(id) = s.strip_prefix("n:") {
        id.parse()
            .map(CVal::Null)
            .map_err(|_| CheckError::Malformed(format!("bad null label {s:?}")))
    } else {
        Err(CheckError::Malformed(format!("bad value encoding {s:?}")))
    }
}

fn decode_term(s: &str) -> Result<CTerm, CheckError> {
    if let Some(idx) = s.strip_prefix("v:") {
        idx.parse()
            .map(CTerm::Var)
            .map_err(|_| CheckError::Malformed(format!("bad variable {s:?}")))
    } else {
        decode_value(s).map(CTerm::Const)
    }
}

fn decode_var(j: &Json, what: &str) -> Result<u32, CheckError> {
    let s = expect_str(j, what)?;
    match decode_term(&s)? {
        CTerm::Var(v) => Ok(v),
        CTerm::Const(_) => Err(CheckError::Malformed(format!(
            "{what}: expected a variable"
        ))),
    }
}

fn decode_atom(j: &Json, what: &str) -> Result<CAtom, CheckError> {
    let items = expect_arr(j, what)?;
    let [pred, args @ ..] = items else {
        return Err(CheckError::Malformed(format!("{what}: empty atom")));
    };
    Ok(CAtom {
        pred: expect_str(pred, what)?,
        args: args
            .iter()
            .map(|t| decode_term(&expect_str(t, what)?))
            .collect::<Result<_, _>>()?,
    })
}

fn decode_fact(j: &Json, what: &str) -> Result<CFact, CheckError> {
    let atom = decode_atom(j, what)?;
    let mut args = Vec::with_capacity(atom.args.len());
    for t in atom.args {
        match t {
            CTerm::Const(c) => args.push(c),
            CTerm::Var(v) => {
                return Err(CheckError::Malformed(format!(
                    "{what}: fact contains variable v:{v}"
                )))
            }
        }
    }
    Ok(CFact {
        pred: atom.pred,
        args,
    })
}

fn decode_pairs(j: &Json, what: &str) -> Result<Vec<(u32, CVal)>, CheckError> {
    let items = expect_arr(j, what)?;
    items
        .iter()
        .map(|pair| {
            let [var, value] = expect_arr(pair, what)? else {
                return Err(CheckError::Malformed(format!(
                    "{what}: binding is not a [var, value] pair"
                )));
            };
            Ok((
                decode_var(var, what)?,
                decode_value(&expect_str(value, what)?)?,
            ))
        })
        .collect()
}

impl Certificate {
    /// Parses one certificate from its JSON object form. Unknown keys,
    /// missing keys, and wrong versions are rejected.
    pub fn from_json(input: &str) -> Result<Certificate, CheckError> {
        Certificate::from_value(&json::parse(input).map_err(CheckError::Json)?)
    }

    fn from_value(j: &Json) -> Result<Certificate, CheckError> {
        let Json::Obj(fields) = j else {
            return Err(CheckError::Malformed(
                "certificate must be an object".into(),
            ));
        };
        const KEYS: [&str; 8] = [
            "version",
            "facts",
            "tgds",
            "firings",
            "query",
            "answer_vars",
            "hom",
            "answer",
        ];
        let mut by_key: HashMap<&str, &Json> = HashMap::new();
        for (k, v) in fields {
            if !KEYS.contains(&k.as_str()) {
                return Err(CheckError::Malformed(format!("unknown key {k:?}")));
            }
            if by_key.insert(k, v).is_some() {
                return Err(CheckError::Malformed(format!("duplicate key {k:?}")));
            }
        }
        let get = |k: &str| {
            by_key
                .get(k)
                .copied()
                .ok_or_else(|| CheckError::Malformed(format!("missing key {k:?}")))
        };
        let version = expect_int(get("version")?, "version")?;
        if version != 1 {
            return Err(CheckError::BadVersion(version));
        }
        let facts = expect_arr(get("facts")?, "facts")?
            .iter()
            .map(|f| decode_fact(f, "facts"))
            .collect::<Result<_, _>>()?;
        let tgds = expect_arr(get("tgds")?, "tgds")?
            .iter()
            .map(|t| {
                let Json::Obj(fields) = t else {
                    return Err(CheckError::Malformed("tgd must be an object".into()));
                };
                let mut body = None;
                let mut head = None;
                for (k, v) in fields {
                    let atoms = expect_arr(v, "tgd")?
                        .iter()
                        .map(|a| decode_atom(a, "tgd"))
                        .collect::<Result<Vec<_>, _>>()?;
                    match k.as_str() {
                        "body" if body.is_none() => body = Some(atoms),
                        "head" if head.is_none() => head = Some(atoms),
                        other => {
                            return Err(CheckError::Malformed(format!("bad tgd key {other:?}")))
                        }
                    }
                }
                Ok(CTgd {
                    body: body.ok_or(CheckError::Malformed("tgd missing body".into()))?,
                    head: head.ok_or(CheckError::Malformed("tgd missing head".into()))?,
                })
            })
            .collect::<Result<_, _>>()?;
        let firings = expect_arr(get("firings")?, "firings")?
            .iter()
            .map(|f| {
                let Json::Obj(fields) = f else {
                    return Err(CheckError::Malformed("firing must be an object".into()));
                };
                let mut tgd = None;
                let mut val = None;
                for (k, v) in fields {
                    match k.as_str() {
                        "tgd" if tgd.is_none() => tgd = Some(expect_int(v, "firing tgd")? as usize),
                        "val" if val.is_none() => val = Some(decode_pairs(v, "firing val")?),
                        other => {
                            return Err(CheckError::Malformed(format!("bad firing key {other:?}")))
                        }
                    }
                }
                Ok(CFiring {
                    tgd: tgd.ok_or(CheckError::Malformed("firing missing tgd".into()))?,
                    val: val.ok_or(CheckError::Malformed("firing missing val".into()))?,
                })
            })
            .collect::<Result<_, _>>()?;
        let query = expect_arr(get("query")?, "query")?
            .iter()
            .map(|a| decode_atom(a, "query"))
            .collect::<Result<_, _>>()?;
        let answer_vars = expect_arr(get("answer_vars")?, "answer_vars")?
            .iter()
            .map(|v| decode_var(v, "answer_vars"))
            .collect::<Result<_, _>>()?;
        let hom = decode_pairs(get("hom")?, "hom")?;
        let answer = expect_arr(get("answer")?, "answer")?
            .iter()
            .map(|v| decode_value(&expect_str(v, "answer")?))
            .collect::<Result<_, _>>()?;
        Ok(Certificate {
            facts,
            tgds,
            firings,
            query,
            answer_vars,
            hom,
            answer,
        })
    }
}

/// Parses a batch: either one JSON array of certificate objects, or JSON
/// lines (one object per non-empty line).
pub fn parse_certificates(input: &str) -> Result<Vec<Certificate>, CheckError> {
    let trimmed = input.trim_start();
    if trimmed.starts_with('[') {
        let j = json::parse(input).map_err(CheckError::Json)?;
        expect_arr(&j, "certificate batch")?
            .iter()
            .map(Certificate::from_value)
            .collect()
    } else {
        input
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(Certificate::from_json)
            .collect()
    }
}

/// Parses and checks a batch. Returns the number of accepted certificates
/// or the index and error of the first rejected one. Fail-closed: any
/// parse error rejects the whole batch.
pub fn check_all(input: &str) -> Result<usize, (usize, CheckError)> {
    let certs = parse_certificates(input).map_err(|e| (0, e))?;
    for (i, cert) in certs.iter().enumerate() {
        check(cert).map_err(|e| (i, e))?;
    }
    Ok(certs.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn named(s: &str) -> CVal {
        CVal::Named(s.to_string())
    }

    fn atom(pred: &str, args: &[CTerm]) -> CAtom {
        CAtom {
            pred: pred.to_string(),
            args: args.to_vec(),
        }
    }

    fn fact(pred: &str, args: &[&str]) -> CFact {
        CFact {
            pred: pred.to_string(),
            args: args.iter().map(|a| named(a)).collect(),
        }
    }

    /// A(a); A(X) -> B(X); B(X) -> R(X,Y); query Q(X) :- R(X,Y); answer a.
    fn valid() -> Certificate {
        Certificate {
            facts: vec![fact("A", &["a"])],
            tgds: vec![
                CTgd {
                    body: vec![atom("A", &[CTerm::Var(0)])],
                    head: vec![atom("B", &[CTerm::Var(0)])],
                },
                CTgd {
                    body: vec![atom("B", &[CTerm::Var(0)])],
                    head: vec![atom("R", &[CTerm::Var(0), CTerm::Var(1)])],
                },
            ],
            firings: vec![
                CFiring {
                    tgd: 0,
                    val: vec![(0, named("a"))],
                },
                CFiring {
                    tgd: 1,
                    val: vec![(0, named("a")), (1, CVal::Null(7))],
                },
            ],
            query: vec![atom("R", &[CTerm::Var(0), CTerm::Var(1)])],
            answer_vars: vec![0],
            hom: vec![(0, named("a")), (1, CVal::Null(7))],
            answer: vec![named("a")],
        }
    }

    #[test]
    fn accepts_a_valid_chain() {
        assert_eq!(check(&valid()), Ok(()));
    }

    #[test]
    fn rejects_dropped_firing() {
        let mut c = valid();
        c.firings.remove(0);
        assert!(matches!(
            check(&c),
            Err(CheckError::BodyAtomUnstated { firing: 0, .. })
        ));
    }

    #[test]
    fn rejects_stale_null() {
        let mut c = valid();
        // Null 7 appears in a "stated fact", so the firing can't claim it
        // fresh.
        c.facts.push(CFact {
            pred: "Seen".into(),
            args: vec![CVal::Null(7)],
        });
        assert!(matches!(
            check(&c),
            Err(CheckError::NonFreshNull { firing: 1, var: 1 })
        ));
    }

    #[test]
    fn rejects_constant_existential() {
        let mut c = valid();
        c.firings[1].val[1].1 = named("b");
        c.hom[1].1 = named("b");
        assert!(matches!(
            check(&c),
            Err(CheckError::NonFreshNull { firing: 1, var: 1 })
        ));
    }

    #[test]
    fn rejects_wrong_answer_tuple() {
        let mut c = valid();
        c.answer = vec![named("b")];
        assert_eq!(check(&c), Err(CheckError::AnswerMismatch));
    }

    #[test]
    fn rejects_null_answer() {
        let mut c = valid();
        c.answer_vars = vec![1];
        c.answer = vec![CVal::Null(7)];
        assert_eq!(check(&c), Err(CheckError::AnswerNotGround));
    }

    #[test]
    fn json_round_trip() {
        let json = r#"{"version":1,
            "facts":[["A","c:a"]],
            "tgds":[{"body":[["A","v:0"]],"head":[["B","v:0"]]},
                    {"body":[["B","v:0"]],"head":[["R","v:0","v:1"]]}],
            "firings":[{"tgd":0,"val":[["v:0","c:a"]]},
                       {"tgd":1,"val":[["v:0","c:a"],["v:1","n:7"]]}],
            "query":[["R","v:0","v:1"]],
            "answer_vars":["v:0"],
            "hom":[["v:0","c:a"],["v:1","n:7"]],
            "answer":["c:a"]}"#;
        let cert = Certificate::from_json(json).unwrap();
        assert_eq!(cert, valid());
        assert_eq!(check(&cert), Ok(()));
    }

    #[test]
    fn rejects_unknown_keys_and_bad_versions() {
        assert!(matches!(
            Certificate::from_json(r#"{"version":2}"#),
            Err(CheckError::Malformed(_)) | Err(CheckError::BadVersion(2))
        ));
        assert!(matches!(
            Certificate::from_json(r#"{"bogus":1}"#),
            Err(CheckError::Malformed(_))
        ));
        assert!(matches!(
            Certificate::from_json("not json"),
            Err(CheckError::Json(_))
        ));
    }

    #[test]
    fn batch_forms() {
        let one = r#"{"version":1,"facts":[["A","c:a"]],"tgds":[],"firings":[],
            "query":[["A","v:0"]],"answer_vars":["v:0"],
            "hom":[["v:0","c:a"]],"answer":["c:a"]}"#
            .replace('\n', " ");
        let array = format!("[{one},{one}]");
        assert_eq!(check_all(&array), Ok(2));
        let lines = format!("{one}\n{one}\n");
        assert_eq!(check_all(&lines), Ok(2));
        assert!(check_all("[not json").is_err());
    }
}
