//! Deterministic workload generators for the experiments: databases
//! (paths, grids, random graphs), query families (paths, ladders, grids,
//! cliques), and scalable guarded ontologies.

use gtgd_chase::{parse_tgds, Tgd};
use gtgd_data::{GroundAtom, Instance, Predicate, Rng, Value};
use gtgd_query::{Cq, QAtom, Term, Ucq, Var};
use gtgd_treewidth::Graph;

/// A path database `E(n0,n1), …, E(n_{len-1}, n_len)`.
pub fn path_db(len: usize) -> Instance {
    Instance::from_atoms(
        (0..len).map(|i| GroundAtom::named("E", &[&format!("n{i}"), &format!("n{}", i + 1)])),
    )
}

/// A cycle database over `n` nodes.
pub fn cycle_db(n: usize) -> Instance {
    Instance::from_atoms(
        (0..n).map(|i| GroundAtom::named("E", &[&format!("c{i}"), &format!("c{}", (i + 1) % n)])),
    )
}

/// A grid database with `H` (horizontal) and `V` (vertical) edge relations.
pub fn grid_db(rows: usize, cols: usize) -> Instance {
    let name = |r: usize, c: usize| format!("g{r}_{c}");
    let mut atoms = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                atoms.push(GroundAtom::named("H", &[&name(r, c), &name(r, c + 1)]));
            }
            if r + 1 < rows {
                atoms.push(GroundAtom::named("V", &[&name(r, c), &name(r + 1, c)]));
            }
        }
    }
    Instance::from_atoms(atoms)
}

/// An Erdős–Rényi random graph `G(n, p)`, deterministic per seed.
pub fn random_graph(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = Rng::seed(seed);
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.chance(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A random graph as a symmetric `E`-relation database.
pub fn graph_db(g: &Graph) -> Instance {
    let mut atoms = Vec::new();
    for (u, v) in g.edges() {
        atoms.push(GroundAtom::named(
            "E",
            &[&format!("v{u}"), &format!("v{v}")],
        ));
        atoms.push(GroundAtom::named(
            "E",
            &[&format!("v{v}"), &format!("v{u}")],
        ));
    }
    Instance::from_atoms(atoms)
}

/// The Boolean path CQ of the given length (treewidth 1).
pub fn path_cq(len: usize) -> Cq {
    let names: Vec<String> = (0..=len).map(|i| format!("P{i}")).collect();
    let vars: Vec<Var> = (0..=len as u32).map(Var).collect();
    let e = Predicate::new("E");
    let atoms = (0..len)
        .map(|i| QAtom::new(e, vec![Term::Var(vars[i]), Term::Var(vars[i + 1])]))
        .collect();
    Cq::new(names, atoms, vec![])
}

/// The Boolean `rows × cols` grid CQ over `H`/`V` (treewidth
/// `min(rows, cols)`).
pub fn grid_query(rows: usize, cols: usize) -> Cq {
    let mut names = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            names.push(format!("G{i}_{j}"));
        }
    }
    let vars: Vec<Var> = (0..(rows * cols) as u32).map(Var).collect();
    let at = |i: usize, j: usize| vars[i * cols + j];
    let h = Predicate::new("H");
    let vp = Predicate::new("V");
    let mut atoms = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            if j + 1 < cols {
                atoms.push(QAtom::new(
                    h,
                    vec![Term::Var(at(i, j)), Term::Var(at(i, j + 1))],
                ));
            }
            if i + 1 < rows {
                atoms.push(QAtom::new(
                    vp,
                    vec![Term::Var(at(i, j)), Term::Var(at(i + 1, j))],
                ));
            }
        }
    }
    Cq::new(names, atoms, vec![])
}

/// The Boolean `k`-clique CQ over a symmetric `E` (treewidth `k − 1`).
pub fn clique_cq(k: usize) -> Cq {
    let names: Vec<String> = (0..k).map(|i| format!("C{i}")).collect();
    let vars: Vec<Var> = (0..k as u32).map(Var).collect();
    let e = Predicate::new("E");
    let mut atoms = Vec::new();
    for i in 0..k {
        for j in 0..k {
            if i != j {
                atoms.push(QAtom::new(e, vec![Term::Var(vars[i]), Term::Var(vars[j])]));
            }
        }
    }
    Cq::new(names, atoms, vec![])
}

/// The ladder (2 × `n` grid) Boolean CQ: treewidth 2.
pub fn ladder_cq(n: usize) -> Cq {
    grid_query(2, n)
}

/// A scalable guarded ontology with existential heads (infinite chase):
/// the org-chart of Section 3's running flavor, `depth` mutually recursive
/// levels.
pub fn org_ontology() -> Vec<Tgd> {
    parse_tgds(
        "Emp(X) -> WorksIn(X,D), Dept(D). \
         Dept(D) -> HasMgr(D,M), Emp(M). \
         HasMgr(D,M) -> Reports(M,D). \
         WorksIn(X,D) -> Member(X)",
    )
    .unwrap()
}

/// A linear (inclusion-dependency-like) ontology chain of `n` rules:
/// `A0(x) → A1(x) → … → An(x)`.
pub fn chain_ontology(n: usize) -> Vec<Tgd> {
    let src: Vec<String> = (0..n)
        .map(|i| format!("A{i}(X) -> A{}(X)", i + 1))
        .collect();
    parse_tgds(&src.join(". ")).unwrap()
}

/// A full-TGD transitive-closure ontology.
pub fn tc_ontology() -> Vec<Tgd> {
    parse_tgds("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap()
}

/// An `Emp`-population database for the org ontology.
pub fn org_db(n: usize) -> Instance {
    let mut atoms: Vec<GroundAtom> = (0..n)
        .map(|i| GroundAtom::named("Emp", &[&format!("e{i}")]))
        .collect();
    for i in 0..n / 2 {
        atoms.push(GroundAtom::named(
            "WorksIn",
            &[&format!("e{i}"), &format!("d{}", i % 5)],
        ));
    }
    Instance::from_atoms(atoms)
}

/// A UCQ wrapper.
pub fn boolean_ucq(q: Cq) -> Ucq {
    Ucq::single(q)
}

/// Plants a `k`-clique into a graph (for yes-instances).
pub fn plant_clique(g: &mut Graph, k: usize, seed: u64) {
    let mut rng = Rng::seed(seed);
    let n = g.vertex_count();
    assert!(n >= k);
    let mut chosen: Vec<usize> = Vec::new();
    while chosen.len() < k {
        let v = rng.range(0, n);
        if !chosen.contains(&v) {
            chosen.push(v);
        }
    }
    g.make_clique(&chosen);
}

/// Named-value helper.
pub fn val(s: &str) -> Value {
    Value::named(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtgd_query::{holds_boolean, tw::cq_treewidth};

    #[test]
    fn databases_have_expected_sizes() {
        assert_eq!(path_db(10).len(), 10);
        assert_eq!(cycle_db(10).len(), 10);
        assert_eq!(grid_db(3, 4).len(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn query_treewidths() {
        assert_eq!(cq_treewidth(&path_cq(5)), 1);
        assert_eq!(cq_treewidth(&ladder_cq(4)), 2);
        assert_eq!(cq_treewidth(&grid_query(3, 3)), 3);
        assert_eq!(cq_treewidth(&clique_cq(4)), 3);
    }

    #[test]
    fn queries_match_where_expected() {
        assert!(holds_boolean(&path_cq(3), &path_db(5)));
        assert!(!holds_boolean(&path_cq(6), &path_db(5)));
        assert!(holds_boolean(&grid_query(2, 2), &grid_db(3, 3)));
        let mut g = random_graph(10, 0.2, 7);
        plant_clique(&mut g, 4, 3);
        assert!(holds_boolean(&clique_cq(4), &graph_db(&g)));
    }

    #[test]
    fn random_graph_is_deterministic() {
        let a = random_graph(12, 0.3, 42);
        let b = random_graph(12, 0.3, 42);
        assert_eq!(a, b);
        let c = random_graph(12, 0.3, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn ontologies_parse_and_classify() {
        use gtgd_chase::TgdClass;
        assert!(org_ontology().iter().all(|t| t.is_in(TgdClass::Guarded)));
        assert!(chain_ontology(5).iter().all(|t| t.is_in(TgdClass::Linear)));
        assert_eq!(chain_ontology(5).len(), 5);
    }
}
