//! A minimal text format for ground facts: one atom per line (or separated
//! by `.`), e.g. `Emp(ann)` / `WorksIn(ann, sales)`. Arguments may be
//! quoted to include spaces. Lines starting with `#` are comments.
//!
//! This is the fixture/bulk-load side door used by the CLI and tests; the
//! richer query/TGD syntax lives in `gtgd-query`'s parser.

use crate::atom::GroundAtom;
use crate::instance::Instance;
use crate::schema::Predicate;
use crate::value::Value;

/// A fact-parsing failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactParseError {
    /// Line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for FactParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FactParseError {}

/// Parses a single fact like `R(a, b)` or `Flag()`.
pub fn parse_fact(src: &str) -> Result<GroundAtom, String> {
    let src = src.trim().trim_end_matches('.').trim();
    let open = src.find('(').ok_or("expected '('")?;
    if !src.ends_with(')') {
        return Err("expected ')' at end".into());
    }
    let name = src[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("bad predicate name {name:?}"));
    }
    let inner = &src[open + 1..src.len() - 1];
    let args: Vec<Value> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner
            .split(',')
            .map(|a| {
                let a = a.trim();
                let unquoted = a.strip_prefix('"').and_then(|s| s.strip_suffix('"'));
                Value::named(unquoted.unwrap_or(a))
            })
            .collect()
    };
    Ok(GroundAtom::new(Predicate::new(name), args))
}

/// Parses a block of facts into an [`Instance`]. Facts are separated by
/// newlines; blank lines and `#` comments are skipped.
pub fn parse_facts(src: &str) -> Result<Instance, FactParseError> {
    let mut out = Instance::new();
    for (i, raw) in src.lines().enumerate() {
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        for piece in text.split_inclusive('.') {
            let piece = piece.trim().trim_end_matches('.');
            if piece.is_empty() {
                continue;
            }
            let atom = parse_fact(piece).map_err(|message| FactParseError {
                line: i + 1,
                message,
            })?;
            out.insert(atom);
        }
    }
    Ok(out)
}

/// Renders an instance back into the fact format (one atom per line,
/// insertion order).
pub fn render_facts(i: &Instance) -> String {
    let mut out = String::new();
    for a in i.iter() {
        out.push_str(&a.to_string());
        out.push_str(".\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_facts() {
        let i = parse_facts(
            "# a comment\n\
             Emp(ann). Emp(bob).\n\
             WorksIn(ann, sales)\n\
             \n\
             Flag().\n",
        )
        .unwrap();
        assert_eq!(i.len(), 4);
        assert!(i.contains(&GroundAtom::named("WorksIn", &["ann", "sales"])));
        assert!(i.contains(&GroundAtom::named("Flag", &[])));
    }

    #[test]
    fn quoted_arguments() {
        let i = parse_facts("City(\"new york\")").unwrap();
        assert!(i.contains(&GroundAtom::named("City", &["new york"])));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_facts("Emp(ann).\nbroken").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_facts("Emp(ann").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn round_trip() {
        let src = "R(a,b).\nP(c).\n";
        let i = parse_facts(src).unwrap();
        assert_eq!(render_facts(&i), src);
    }

    #[test]
    fn rejects_bad_predicates() {
        assert!(parse_fact("(a,b)").is_err());
        assert!(parse_fact("R!(a)").is_err());
    }
}
