//! Property-based tests (proptest) on the toolkit's core invariants.

use gtgd::chase::{chase, parse_tgds, satisfies_all, ChaseBudget};
use gtgd::data::{GroundAtom, Instance, Value};
use gtgd::query::{
    check_answer, contractions, core_of, cq_contained, cq_equivalent,
    decomp_eval::check_answer_decomposed, evaluate_cq, Cq, QAtom, Term, Var,
};
use gtgd::treewidth::{treewidth_exact, Graph};
use proptest::prelude::*;

/// A random small graph as an edge list over `n ≤ 8` vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..8,
        proptest::collection::vec((0usize..8, 0usize..8), 0..16),
    )
        .prop_map(|(n, edges)| {
            let mut g = Graph::new(n);
            for (u, v) in edges {
                if u < n && v < n && u != v {
                    g.add_edge(u, v);
                }
            }
            g
        })
}

/// A random binary-relation database over a small domain.
fn arb_db() -> impl Strategy<Value = Instance> {
    proptest::collection::vec((0usize..5, 0usize..5), 1..10).prop_map(|pairs| {
        Instance::from_atoms(
            pairs
                .into_iter()
                .map(|(a, b)| GroundAtom::named("E", &[&format!("d{a}"), &format!("d{b}")])),
        )
    })
}

/// A random connected-ish Boolean CQ over `E` with ≤ 5 variables.
fn arb_cq() -> impl Strategy<Value = Cq> {
    proptest::collection::vec((0u32..5, 0u32..5), 1..6).prop_map(|pairs| {
        let max = pairs.iter().map(|&(a, b)| a.max(b)).max().unwrap_or(0);
        let names: Vec<String> = (0..=max).map(|i| format!("V{i}")).collect();
        let atoms = pairs
            .into_iter()
            .map(|(a, b)| {
                QAtom::new(
                    gtgd::data::Predicate::new("E"),
                    vec![Term::Var(Var(a)), Term::Var(Var(b))],
                )
            })
            .collect();
        Cq::new(names, atoms, vec![])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact treewidth is sandwiched by the degeneracy lower bound and both
    /// greedy upper bounds, and its decomposition validates.
    #[test]
    fn treewidth_bounds_consistent(g in arb_graph()) {
        use gtgd::treewidth::{degeneracy_lower_bound, treewidth_upper_bound, Heuristic};
        let (w, d) = treewidth_exact(&g);
        prop_assert!(d.validate(&g).is_ok());
        prop_assert_eq!(d.width(), w);
        prop_assert!(degeneracy_lower_bound(&g) <= w);
        for h in [Heuristic::MinDegree, Heuristic::MinFill] {
            prop_assert!(treewidth_upper_bound(&g, h).0 >= w);
        }
    }

    /// The core is equivalent to the original query and is itself a fixed
    /// point of core computation.
    #[test]
    fn core_is_equivalent_retract(q in arb_cq()) {
        let c = core_of(&q);
        prop_assert!(cq_equivalent(&q, &c));
        let cc = core_of(&c);
        prop_assert_eq!(cc.atom_count(), c.atom_count());
        prop_assert!(c.atom_count() <= q.atom_count());
    }

    /// Every contraction of a CQ is contained in it.
    #[test]
    fn contractions_are_contained(q in arb_cq()) {
        for c in contractions(&q) {
            prop_assert!(cq_contained(&c, &q), "contraction {c} ⊄ {q}");
        }
    }

    /// The Prop 2.1 DP agrees with backtracking on Boolean queries over
    /// random databases.
    #[test]
    fn dp_agrees_with_backtracking(q in arb_cq(), d in arb_db()) {
        prop_assert_eq!(
            check_answer_decomposed(&q, &d, &[]),
            check_answer(&q, &d, &[])
        );
    }

    /// The chase of a full TGD set reaches a model, and evaluation over it
    /// is monotone in the database.
    #[test]
    fn full_chase_reaches_model(d in arb_db()) {
        let sigma = parse_tgds("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let r = chase(&d, &sigma, &ChaseBudget::unbounded());
        prop_assert!(r.complete);
        prop_assert!(satisfies_all(&r.instance, &sigma));
        // Monotonicity: answers over D are preserved over chase(D).
        let q = gtgd::query::parse_cq("Q(X) :- E(X,Y)").unwrap();
        let before = evaluate_cq(&q, &d);
        let after = evaluate_cq(&q, &r.instance);
        prop_assert!(before.is_subset(&after));
    }

    /// Guarded ground saturation contains the database and only named
    /// constants.
    #[test]
    fn ground_saturation_sound(d in arb_db()) {
        let sigma = parse_tgds("E(X,Y) -> Reach(X,Z). Reach(X,Z) -> Mark(X)").unwrap();
        let sat = gtgd::chase::ground_saturation(&d, &sigma);
        for a in d.iter() {
            prop_assert!(sat.contains(a));
        }
        for v in sat.dom() {
            prop_assert!(v.is_named());
        }
        // Mark(x) holds exactly for constants with outgoing edges.
        for v in d.dom() {
            let has_out = d.iter().any(|a| a.args[0] == *v);
            let marked = sat.contains(&GroundAtom::new(
                gtgd::data::Predicate::new("Mark"),
                vec![*v],
            ));
            prop_assert_eq!(has_out, marked);
        }
    }

    /// The Grohe database's h0 is always a homomorphism to D′, and the
    /// reduction verdict always matches brute force (k = 2).
    #[test]
    fn grohe_reduction_correct_k2(g in arb_graph()) {
        use gtgd::omq::grohe::has_clique;
        use gtgd::omq::reduction::{decide_clique_via_cqs, grid_cqs_family};
        let fam = grid_cqs_family(2);
        prop_assert_eq!(decide_clique_via_cqs(&g, 2, &fam), has_clique(&g, 2));
    }

    /// OMQ evaluation is monotone under database extension (certain answers
    /// only grow).
    #[test]
    fn omq_monotone(d in arb_db()) {
        use gtgd::omq::{evaluate_omq, EvalConfig, Omq};
        let sigma = parse_tgds("E(X,Y) -> Conn(X)").unwrap();
        let q = Omq::full_schema(sigma, gtgd::query::parse_ucq("Q(X) :- Conn(X)").unwrap());
        let small = evaluate_omq(&q, &d, &EvalConfig::default());
        let mut bigger = d.clone();
        bigger.insert(GroundAtom::named("E", &["extra1", "extra2"]));
        let big = evaluate_omq(&q, &bigger, &EvalConfig::default());
        prop_assert!(small.answers.is_subset(&big.answers));
    }

    /// Specializations are syntactically well formed: V always contains the
    /// answer variables and the contraction part is a genuine contraction.
    #[test]
    fn specializations_well_formed(q in arb_cq()) {
        for s in gtgd::query::specializations(&q) {
            for v in &s.cq.answer_vars {
                prop_assert!(s.v.contains(v));
            }
            prop_assert!(s.cq.atom_count() <= q.atom_count());
            prop_assert!(cq_contained(&s.cq, &q));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The CQ parser never panics on arbitrary input — it returns a result.
    #[test]
    fn parser_never_panics(input in ".{0,80}") {
        let _ = gtgd::query::parse_cq(&input);
        let _ = gtgd::query::parse_ucq(&input);
        let _ = gtgd::chase::parse_tgd(&input);
    }

    /// Parsing round-trips through Display for well-formed CQs.
    #[test]
    fn parser_display_roundtrip(q in arb_cq()) {
        let printed = q.to_string();
        let reparsed = gtgd::query::parse_cq(&printed).expect("display output parses");
        prop_assert!(cq_equivalent(&q, &reparsed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Prop D.2 as a property: the linear rewriting agrees with chase-based
    /// evaluation on random databases.
    #[test]
    fn linear_rewriting_agrees_with_chase(d in arb_db()) {
        use gtgd::chase::linear_rewrite;
        let sigma = parse_tgds("E(X,Y) -> R(Y,Z). R(Y,Z) -> M(Y)").unwrap();
        let q = gtgd::query::parse_ucq("Q(X) :- E(X,Y), M(Y)").unwrap();
        let rewritten = linear_rewrite(&q, &sigma);
        let via_rewrite: std::collections::HashSet<Vec<Value>> =
            gtgd::query::evaluate_ucq(&rewritten, &d)
                .into_iter()
                .filter(|t| t.iter().all(|v| d.dom_contains(*v)))
                .collect();
        let reference = chase(&d, &sigma, &ChaseBudget::levels(4));
        let via_chase: std::collections::HashSet<Vec<Value>> =
            gtgd::query::evaluate_ucq(&q, &reference.instance)
                .into_iter()
                .filter(|t| t.iter().all(|v| d.dom_contains(*v)))
                .collect();
        prop_assert_eq!(via_rewrite, via_chase);
    }

    /// Yannakakis agrees with backtracking on acyclic queries over random
    /// databases.
    #[test]
    fn yannakakis_agrees(d in arb_db()) {
        use gtgd::query::check_answer_yannakakis;
        let q = gtgd::query::parse_cq("Q(X) :- E(X,Y), E(Y,Z)").unwrap();
        for v in d.dom().to_vec() {
            let expected = check_answer(&q, &d, &[v]);
            prop_assert_eq!(check_answer_yannakakis(&q, &d, &[v]), Some(expected));
        }
    }
}

/// Non-proptest sanity: instance equality is set semantics, used throughout
/// the properties above.
#[test]
fn instance_set_semantics() {
    let a = Instance::from_atoms([
        GroundAtom::named("E", &["x", "y"]),
        GroundAtom::named("E", &["y", "z"]),
    ]);
    let b = Instance::from_atoms([
        GroundAtom::named("E", &["y", "z"]),
        GroundAtom::named("E", &["x", "y"]),
        GroundAtom::named("E", &["x", "y"]),
    ]);
    assert_eq!(a, b);
    assert_eq!(a.dom().len(), 3);
    let _ = Value::named("x");
}
