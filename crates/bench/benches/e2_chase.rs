//! E2 — chase growth across TGD classes: linear chains, full transitive
//! closure, and guarded ground saturation (`chase↓`), sequential and
//! parallel.

use gtgd_bench::harness;
use gtgd_bench::workloads::{chain_ontology, org_db, org_ontology, path_db, tc_ontology};
use gtgd_chase::{chase, ground_saturation, par_chase, par_ground_saturation, ChaseBudget};
use gtgd_data::{GroundAtom, Instance};

fn main() {
    harness::group("e2_chase");
    let chain = chain_ontology(8);
    let tc = tc_ontology();
    let org = org_ontology();
    for &n in &[50usize, 150, 400] {
        let unary: Instance = (0..n)
            .map(|i| GroundAtom::named("A0", &[&format!("x{i}")]))
            .collect();
        harness::case(&format!("linear_chain/{n}"), || {
            chase(&unary, &chain, &ChaseBudget::unbounded())
        });
        let pdb = path_db(n.min(120));
        harness::case(&format!("full_tc/{n}"), || {
            chase(&pdb, &tc, &ChaseBudget::unbounded())
        });
        harness::case(&format!("full_tc_par4/{n}"), || {
            par_chase(&pdb, &tc, &ChaseBudget::unbounded(), 4)
        });
        let odb = org_db(n);
        harness::case(&format!("guarded_saturation/{n}"), || {
            ground_saturation(&odb, &org)
        });
        harness::case(&format!("guarded_saturation_par4/{n}"), || {
            par_ground_saturation(&odb, &org, 4)
        });
    }
}
