//! UCQ rewriting for linear TGDs (Proposition D.2, from \[15\]):
//! given Σ ∈ L and a UCQ `q`, compute a UCQ `q′` with
//! `q(chase(D, Σ)) = q′(D)` for every database `D`.
//!
//! This is the classic backward piece-rewriting: pick a *piece* of a
//! disjunct (a set of atoms that can simultaneously map into one
//! instantiation of a TGD head, respecting existential variables), and
//! replace it by the TGD's (single) body atom. Linearity guarantees
//! termination: every step replaces a nonempty piece by one atom, so atom
//! counts never increase, and there are finitely many CQs of bounded size
//! up to renaming.

use crate::tgd::{Tgd, TgdClass};
use gtgd_query::{Cq, QAtom, Term, Ucq, Var};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Rewrites `q` under linear, constant-free Σ into a UCQ `q′` with
/// `q′(D) = q(chase(D, Σ))` for all `D`. Panics if some TGD is not linear
/// or mentions constants.
pub fn linear_rewrite(q: &Ucq, sigma: &[Tgd]) -> Ucq {
    for t in sigma {
        assert!(t.is_in(TgdClass::Linear), "linear_rewrite needs Σ ⊆ L: {t}");
        let constant_free = t
            .body
            .iter()
            .chain(t.head.iter())
            .all(|a| a.args.iter().all(|x| matches!(x, Term::Var(_))));
        assert!(
            constant_free,
            "linear_rewrite needs constant-free TGDs: {t}"
        );
    }
    let mut seen: HashSet<(Vec<QAtom>, Vec<Var>)> = HashSet::new();
    let mut out: Vec<Cq> = Vec::new();
    let mut frontier: Vec<Cq> = q.disjuncts.iter().map(normalize).collect();
    while let Some(cq) = frontier.pop() {
        if !seen.insert(cq.dedup_key()) {
            continue;
        }
        for next in rewrite_steps(&cq, sigma) {
            frontier.push(normalize(&next));
        }
        out.push(cq);
    }
    // Drop disjuncts classically subsumed by others (keeps the result lean;
    // does not change semantics).
    let mut kept: Vec<Cq> = Vec::new();
    for (i, c) in out.iter().enumerate() {
        let subsumed = out.iter().enumerate().any(|(j, d)| {
            j != i && gtgd_query::cq_contained(c, d) && (!gtgd_query::cq_contained(d, c) || j < i)
        });
        if !subsumed {
            kept.push(c.clone());
        }
    }
    Ucq::new(kept)
}

/// A deterministic normal form: sort atoms, renumber variables by first
/// occurrence, repeat to a fixpoint. Not a full isomorphism canonicalizer,
/// but stable enough to keep the rewriting set small.
fn normalize(q: &Cq) -> Cq {
    let mut current = q.compact();
    for _ in 0..4 {
        let mut atoms = current.atoms.clone();
        atoms.sort();
        let reordered = Cq::new(
            current.var_names().to_vec(),
            atoms,
            current.answer_vars.clone(),
        );
        let next = reordered.compact();
        if next.dedup_key() == current.dedup_key() {
            return next;
        }
        current = next;
    }
    current
}

/// Factorizations of a CQ: for each pair of same-predicate atoms, the
/// contraction that unifies them (when the unification respects answer
/// variables). Factorized disjuncts are contained in the original, so
/// adding them is always sound; they are what lets a multi-occurrence
/// existential position collapse before a piece rewriting (the classic
/// XRewrite factorization step).
fn factorizations(cq: &Cq) -> Vec<Cq> {
    let answer: BTreeSet<Var> = cq.answer_vars.iter().copied().collect();
    let mut out = Vec::new();
    for i in 0..cq.atoms.len() {
        for j in (i + 1)..cq.atoms.len() {
            let (a, b) = (&cq.atoms[i], &cq.atoms[j]);
            if a.predicate != b.predicate || a.args.len() != b.args.len() {
                continue;
            }
            // Unify positionally: build a substitution Var -> Term.
            let mut subst: HashMap<Var, Term> = HashMap::new();
            let mut ok = true;
            let resolve = |subst: &HashMap<Var, Term>, t: Term| -> Term {
                let mut cur = t;
                for _ in 0..cq.atoms.len() * 4 {
                    match cur {
                        Term::Var(v) => match subst.get(&v) {
                            Some(&next) if next != cur => cur = next,
                            _ => return cur,
                        },
                        c => return c,
                    }
                }
                cur
            };
            for (ta, tb) in a.args.iter().zip(b.args.iter()) {
                let ra = resolve(&subst, *ta);
                let rb = resolve(&subst, *tb);
                if ra == rb {
                    continue;
                }
                match (ra, rb) {
                    (Term::Var(va), Term::Var(vb)) => {
                        let (keep, drop) = if answer.contains(&vb) {
                            (vb, va)
                        } else {
                            (va, vb)
                        };
                        if answer.contains(&keep) && answer.contains(&drop) {
                            ok = false;
                            break;
                        }
                        subst.insert(drop, Term::Var(keep));
                    }
                    (Term::Var(v), c) | (c, Term::Var(v)) => {
                        if answer.contains(&v) {
                            ok = false;
                            break;
                        }
                        subst.insert(v, c);
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok || subst.is_empty() {
                continue;
            }
            let atoms: Vec<QAtom> = cq
                .atoms
                .iter()
                .map(|at| {
                    QAtom::new(
                        at.predicate,
                        at.args.iter().map(|&t| resolve(&subst, t)).collect(),
                    )
                })
                .collect();
            out.push(Cq::new(
                cq.var_names().to_vec(),
                atoms,
                cq.answer_vars.clone(),
            ));
        }
    }
    out
}

/// All single-step rewritings of `cq` using some TGD of Σ.
fn rewrite_steps(cq: &Cq, sigma: &[Tgd]) -> Vec<Cq> {
    let answer: BTreeSet<Var> = cq.answer_vars.iter().copied().collect();
    let mut results = factorizations(cq);
    for tgd in sigma {
        if tgd.body.is_empty() {
            // An empty body asserts the head unconditionally; pieces rewrite
            // to the empty conjunction, which a CQ cannot express. Such TGDs
            // are out of scope for rewriting (and rare); skip.
            continue;
        }
        let exist: BTreeSet<Var> = tgd.existential_vars().into_iter().collect();
        // Enumerate pieces: nonempty subsets of cq atoms whose predicates
        // all appear in the head. To stay tractable, pieces grow from a
        // single seed atom by need: we enumerate subsets of candidate atoms
        // (bounded by the head size in practice).
        let candidates: Vec<usize> = (0..cq.atoms.len())
            .filter(|&i| {
                tgd.head
                    .iter()
                    .any(|h| h.predicate == cq.atoms[i].predicate)
            })
            .collect();
        let max_piece = tgd.head.len().min(candidates.len());
        for piece in subsets_up_to(&candidates, max_piece) {
            if piece.is_empty() {
                continue;
            }
            rewrite_piece(cq, tgd, &piece, &answer, &exist, &mut results);
        }
    }
    results
}

fn subsets_up_to(items: &[usize], max_len: usize) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = vec![Vec::new()];
    for &x in items {
        let mut extra: Vec<Vec<usize>> = Vec::new();
        for s in &out {
            if s.len() < max_len {
                let mut t = s.clone();
                t.push(x);
                extra.push(t);
            }
        }
        out.extend(extra);
    }
    out
}

/// Attempts to unify the piece with head atoms of `tgd` and emit the
/// rewritten CQ. The unifier maps TGD variables to query terms; existential
/// TGD variables must map to *local* existential query variables (occurring
/// only inside the piece), and two query terms mapped from the same
/// existential variable must be equal.
fn rewrite_piece(
    cq: &Cq,
    tgd: &Tgd,
    piece: &[usize],
    answer: &BTreeSet<Var>,
    exist: &BTreeSet<Var>,
    results: &mut Vec<Cq>,
) {
    // For each assignment of piece atoms to head atoms, try to unify.
    let head_choices: Vec<Vec<usize>> = piece
        .iter()
        .map(|&ai| {
            (0..tgd.head.len())
                .filter(|&hi| {
                    tgd.head[hi].predicate == cq.atoms[ai].predicate
                        && tgd.head[hi].args.len() == cq.atoms[ai].args.len()
                })
                .collect()
        })
        .collect();
    let mut assignment = vec![0usize; piece.len()];
    enumerate_assignments(&head_choices, 0, &mut assignment, &mut |assign| {
        try_unifier(cq, tgd, piece, assign, answer, exist, results);
    });
}

fn enumerate_assignments(
    choices: &[Vec<usize>],
    i: usize,
    current: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize]),
) {
    if i == choices.len() {
        f(current);
        return;
    }
    for &c in &choices[i] {
        current[i] = c;
        enumerate_assignments(choices, i + 1, current, f);
    }
}

fn try_unifier(
    cq: &Cq,
    tgd: &Tgd,
    piece: &[usize],
    assign: &[usize],
    answer: &BTreeSet<Var>,
    exist: &BTreeSet<Var>,
    results: &mut Vec<Cq>,
) {
    // Unify: tgd var -> query term (most-general unifier with the query
    // side frozen; query variables are treated as constants except that
    // terms matched to the same existential variable must coincide).
    let mut theta: HashMap<Var, Term> = HashMap::new();
    for (pi, &ai) in piece.iter().enumerate() {
        let head_atom = &tgd.head[assign[pi]];
        for (ht, qt) in head_atom.args.iter().zip(cq.atoms[ai].args.iter()) {
            let Term::Var(hv) = *ht else {
                return; // constant-free asserted, unreachable
            };
            match theta.get(&hv) {
                None => {
                    theta.insert(hv, *qt);
                }
                Some(&prev) if prev == *qt => {}
                Some(_) => return, // clash
            }
        }
    }
    // Existential-variable conditions.
    let piece_set: HashSet<usize> = piece.iter().copied().collect();
    for (&hv, &qt) in &theta {
        if !exist.contains(&hv) {
            continue;
        }
        match qt {
            Term::Const(_) => return, // an invented null is never a constant
            Term::Var(qv) => {
                if answer.contains(&qv) {
                    return; // answers range over dom(D), never nulls
                }
                // qv must occur only inside the piece.
                for (i, a) in cq.atoms.iter().enumerate() {
                    if !piece_set.contains(&i) && a.mentions(qv) {
                        return;
                    }
                }
            }
        }
    }
    // Distinct existential variables denote distinct nulls: two of them may
    // not unify to the same query variable.
    {
        let mut images: HashMap<Term, Var> = HashMap::new();
        for (&hv, &qt) in &theta {
            if exist.contains(&hv) {
                if let Some(&other) = images.get(&qt) {
                    if other != hv {
                        return;
                    }
                }
                images.insert(qt, hv);
            }
        }
    }
    // Build the rewritten CQ: drop the piece, add body(σ)θ with fresh
    // variables for unmapped body variables.
    let mut names = cq.var_names().to_vec();
    let mut next = names.len() as u32;
    let mut theta_full = theta.clone();
    let body_atom = &tgd.body[0];
    for v in body_atom.vars() {
        theta_full.entry(v).or_insert_with(|| {
            names.push(format!("r{next}"));
            let nv = Var(next);
            next += 1;
            Term::Var(nv)
        });
    }
    let new_atom = QAtom::new(
        body_atom.predicate,
        body_atom
            .args
            .iter()
            .map(|t| match *t {
                Term::Var(v) => theta_full[&v],
                c => c,
            })
            .collect(),
    );
    let mut atoms: Vec<QAtom> = cq
        .atoms
        .iter()
        .enumerate()
        .filter(|(i, _)| !piece_set.contains(i))
        .map(|(_, a)| a.clone())
        .collect();
    atoms.push(new_atom);
    // Safety: all answer variables must survive.
    let candidate = Cq::new(names, atoms, cq.answer_vars.clone());
    for &v in &candidate.answer_vars {
        if !candidate.atoms.iter().any(|a| a.mentions(v)) {
            return;
        }
    }
    results.push(candidate);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{chase, ChaseBudget};
    use crate::tgd::parse_tgds;
    use gtgd_data::{GroundAtom, Instance, Value};
    use gtgd_query::{evaluate_ucq, parse_ucq};
    use std::collections::HashSet as StdHashSet;

    fn db(atoms: &[(&str, &[&str])]) -> Instance {
        Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
    }

    /// Cross-checks `q′(D) = q(chase(D, Σ))` on a database.
    fn check_equiv(sigma_src: &str, q_src: &str, d: &Instance, levels: usize) {
        let sigma = parse_tgds(sigma_src).unwrap();
        let q = parse_ucq(q_src).unwrap();
        let rewritten = linear_rewrite(&q, &sigma);
        let direct: StdHashSet<Vec<Value>> = evaluate_ucq(&rewritten, d)
            .into_iter()
            .filter(|t| t.iter().all(|v| d.dom_contains(*v)))
            .collect();
        let reference_chase = chase(d, &sigma, &ChaseBudget::levels(levels));
        let reference: StdHashSet<Vec<Value>> = evaluate_ucq(&q, &reference_chase.instance)
            .into_iter()
            .filter(|t| t.iter().all(|v| d.dom_contains(*v)))
            .collect();
        assert_eq!(direct, reference, "rewriting disagrees with chase");
    }

    #[test]
    fn unary_chain_rewriting() {
        check_equiv(
            "A(X) -> B(X). B(X) -> C(X)",
            "Q(X) :- C(X)",
            &db(&[("A", &["a"]), ("B", &["b"]), ("C", &["c"])]),
            4,
        );
    }

    #[test]
    fn existential_head_rewriting() {
        // Emp(x) → ∃d WorksIn(x, d): asking for some workplace rewrites to
        // just Emp(x) ∨ WorksIn(x, d).
        check_equiv(
            "Emp(X) -> WorksIn(X,D)",
            "Q(X) :- WorksIn(X,D)",
            &db(&[("Emp", &["ann"]), ("WorksIn", &["bob", "hr"])]),
            3,
        );
    }

    #[test]
    fn existential_join_blocks_rewriting() {
        // Q(X,D) :- WorksIn(X,D): D is an answer variable, so the
        // existential rewriting must NOT apply — only explicit workplaces
        // qualify.
        let sigma = parse_tgds("Emp(X) -> WorksIn(X,D)").unwrap();
        let q = parse_ucq("Q(X,D) :- WorksIn(X,D)").unwrap();
        let r = linear_rewrite(&q, &sigma);
        let d = db(&[("Emp", &["ann"]), ("WorksIn", &["bob", "hr"])]);
        let ans = evaluate_ucq(&r, &d);
        assert_eq!(ans.len(), 1, "only bob/hr, ann's workplace is a null");
    }

    #[test]
    fn shared_existential_piece() {
        // σ: A(x) → ∃z R(x,z), S(z). A query joining R and S on z must
        // rewrite both atoms together (a 2-atom piece).
        check_equiv(
            "A(X) -> R(X,Z), S(Z)",
            "Q(X) :- R(X,Z), S(Z)",
            &db(&[("A", &["a"]), ("R", &["b", "c"]), ("S", &["c"])]),
            3,
        );
    }

    #[test]
    fn partial_piece_must_not_fire() {
        // Same σ, but S(z) joined with something external: rewriting only
        // R(x,z) while z also occurs in T(z,w) is unsound and must not
        // produce answers from A alone.
        let sigma = parse_tgds("A(X) -> R(X,Z), S(Z)").unwrap();
        let q = parse_ucq("Q(X) :- R(X,Z), T(Z,W)").unwrap();
        let r = linear_rewrite(&q, &sigma);
        let d = db(&[("A", &["a"]), ("T", &["c", "w"])]);
        let ans = evaluate_ucq(&r, &d);
        assert!(ans.is_empty(), "the null z never joins a database T");
    }

    #[test]
    fn binary_projection_rewriting() {
        check_equiv(
            "Xp(X,Y,Z) -> X2(X,Y)",
            "Q(X,Y) :- X2(X,Y)",
            &db(&[("Xp", &["a", "b", "c"]), ("X2", &["d", "e"])]),
            2,
        );
    }

    #[test]
    fn multi_level_existential_chain() {
        check_equiv(
            "P(X) -> R(X,Y). R(X,Y) -> S(Y)",
            "Q() :- R(X,Y), S(Y)",
            &db(&[("P", &["a"])]),
            4,
        );
    }

    #[test]
    fn rewriting_is_a_ucq_over_the_data_schema_only() {
        let sigma = parse_tgds("A(X) -> B(X)").unwrap();
        let q = parse_ucq("Q(X) :- B(X)").unwrap();
        let r = linear_rewrite(&q, &sigma);
        assert_eq!(r.disjuncts.len(), 2); // B(x) ∨ A(x)
    }

    #[test]
    #[should_panic(expected = "Σ ⊆ L")]
    fn non_linear_rejected() {
        let sigma = parse_tgds("R(X,Y), S(Y,Z) -> T(X,Z)").unwrap();
        linear_rewrite(&parse_ucq("Q() :- T(X,Y)").unwrap(), &sigma);
    }
}
