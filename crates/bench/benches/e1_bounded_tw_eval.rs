//! E1 — Prop 2.1: bounded-treewidth CQ evaluation scales polynomially in
//! `|D|` with the degree tracking `k + 1`; backtracking is the baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtgd_bench::workloads::{grid_db, grid_query};
use gtgd_query::decomp_eval::check_answer_decomposed;
use gtgd_query::holds_boolean;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_bounded_tw_eval");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &cols in &[20usize, 60, 180] {
        let db = grid_db(4, cols);
        for (name, q) in [
            ("tw1_path", grid_query(1, 4)),
            ("tw2_ladder", grid_query(2, 3)),
            ("tw3_grid", grid_query(3, 3)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("dp_{name}"), cols),
                &db,
                |b, db| b.iter(|| check_answer_decomposed(&q, db, &[])),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("backtrack_{name}"), cols),
                &db,
                |b, db| b.iter(|| holds_boolean(&q, db)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
