//! Cached trigger plans: each TGD compiled once per chase run.
//!
//! The engines used to rebuild the "rest of the body" atom list and re-hash
//! variable bindings for every (pin, delta-atom) pair — for every firing.
//! A [`TriggerPlan`] compiles the body and head of a TGD into the
//! slot-based kernel form ([`CompiledQuery`]) up front:
//!
//! * the **body plan** is probed every round with a delta atom pinned via
//!   [`CompiledQuery::unify_atom`] + [`gtgd_query::KernelSearch::skip_atom`]
//!   — no atom lists are cloned, ever;
//! * the **trigger key** (the body-variable images that deduplicate
//!   oblivious-chase firings) is read straight out of the kernel row via
//!   precomputed slots, in the same ascending-variable order as the legacy
//!   engine, so `fired`-set semantics are unchanged;
//! * the **head plan** grounds head atoms from the row plus fresh nulls,
//!   allocating nulls in ascending existential-variable order — the exact
//!   null-naming sequence of the legacy `fire`, which keeps sequential and
//!   parallel chases bit-identical;
//! * the **head satisfaction check** of the restricted chase is a compiled
//!   head query with the frontier slots pre-linked to body slots.

use crate::tgd::Tgd;
use gtgd_data::{obs, prov, GroundAtom, Instance, Predicate, Value};
use gtgd_query::{CompiledQuery, Term};

/// One argument of a compiled body atom template.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BodyArg {
    /// A constant from the TGD body.
    Const(Value),
    /// A body variable: read this slot of the body row.
    Slot(u32),
}

/// A compiled body atom template: grounds one body atom from a trigger
/// row. This is the trigger's *support set* — the atoms whose presence
/// witnessed the firing — which restricted-chase level tracking and the
/// maintenance dependency index both need to reconstruct per firing.
#[derive(Debug, Clone)]
pub(crate) struct BodyAtomPlan {
    pub predicate: Predicate,
    pub args: Vec<BodyArg>,
}

/// One argument of a compiled head atom.
#[derive(Debug, Clone, Copy)]
pub(crate) enum HeadArg {
    /// A constant from the TGD head.
    Const(Value),
    /// A frontier variable: read this slot of the body row.
    Body(u32),
    /// An existential variable: use the `i`-th fresh null of the firing.
    Exist(u32),
}

/// A compiled head atom.
#[derive(Debug, Clone)]
pub(crate) struct HeadAtomPlan {
    pub predicate: Predicate,
    pub args: Vec<HeadArg>,
}

/// A TGD compiled for repeated trigger search and firing.
#[derive(Debug, Clone)]
pub(crate) struct TriggerPlan {
    /// Index of the TGD in the rule set (names the rule in provenance
    /// records).
    pub index: usize,
    /// The compiled body (one slot per body variable).
    pub body: CompiledQuery,
    /// Body atom templates in body order (see [`BodyAtomPlan`]).
    pub body_atoms: Vec<BodyAtomPlan>,
    /// Body slots in ascending variable order — the legacy trigger-key
    /// order ([`Tgd::body_vars`]).
    pub key_slots: Vec<usize>,
    /// Body variable indices in the same ascending order as `key_slots`
    /// (the provenance-record valuation keys).
    pub key_vars: Vec<u32>,
    /// Existential variable indices in ascending order (the order
    /// [`TriggerPlan::fire_row`] allocates fresh nulls in).
    pub exist_vars: Vec<u32>,
    /// The compiled head atoms for firing.
    pub head: Vec<HeadAtomPlan>,
    /// Number of existential variables (fresh nulls per firing).
    pub n_exist: usize,
    /// The compiled head as a query (for restricted-chase satisfaction
    /// checks).
    pub head_query: CompiledQuery,
    /// `(head slot, body slot)` pairs linking each frontier variable.
    pub frontier_links: Vec<(usize, usize)>,
}

impl TriggerPlan {
    /// Compiles one TGD; `index` is its position in the rule set.
    pub fn new(tgd: &Tgd, index: usize) -> TriggerPlan {
        let body = CompiledQuery::compile(&tgd.body);
        let body_atoms = tgd
            .body
            .iter()
            .map(|a| BodyAtomPlan {
                predicate: a.predicate,
                args: a
                    .args
                    .iter()
                    .map(|t| match *t {
                        Term::Const(c) => BodyArg::Const(c),
                        Term::Var(v) => {
                            BodyArg::Slot(body.slot_of(v).expect("body vars are interned") as u32)
                        }
                    })
                    .collect(),
            })
            .collect();
        let body_vars = tgd.body_vars();
        let key_slots = body_vars
            .iter()
            .map(|&v| body.slot_of(v).expect("body vars are interned"))
            .collect();
        let key_vars = body_vars.iter().map(|v| v.index() as u32).collect();
        let exist = tgd.existential_vars();
        let head = tgd
            .head
            .iter()
            .map(|a| HeadAtomPlan {
                predicate: a.predicate,
                args: a
                    .args
                    .iter()
                    .map(|t| match *t {
                        Term::Const(c) => HeadArg::Const(c),
                        Term::Var(v) => match body.slot_of(v) {
                            Some(s) => HeadArg::Body(s as u32),
                            None => {
                                let i = exist
                                    .iter()
                                    .position(|&z| z == v)
                                    .expect("non-frontier head var is existential");
                                HeadArg::Exist(i as u32)
                            }
                        },
                    })
                    .collect(),
            })
            .collect();
        let head_query = CompiledQuery::compile(&tgd.head);
        let frontier_links = tgd
            .frontier()
            .iter()
            .map(|&v| {
                (
                    head_query.slot_of(v).expect("frontier occurs in head"),
                    body.slot_of(v).expect("frontier occurs in body"),
                )
            })
            .collect();
        TriggerPlan {
            index,
            body,
            body_atoms,
            key_slots,
            key_vars,
            exist_vars: exist.iter().map(|v| v.index() as u32).collect(),
            head,
            n_exist: exist.len(),
            head_query,
            frontier_links,
        }
    }

    /// Compiles every TGD of a rule set.
    pub fn compile_all(tgds: &[Tgd]) -> Vec<TriggerPlan> {
        tgds.iter()
            .enumerate()
            .map(|(i, t)| TriggerPlan::new(t, i))
            .collect()
    }

    /// The trigger key (body-variable images in ascending variable order)
    /// of a body row.
    pub fn trigger_key(&self, row: &[Value]) -> Vec<Value> {
        self.key_slots.iter().map(|&s| row[s]).collect()
    }

    /// Inverts [`TriggerPlan::trigger_key`]: reconstructs the full body
    /// row from a trigger key. `key_slots` maps ascending-variable order
    /// to body slots and covers every slot exactly once (each body
    /// variable has one slot), so the key *is* the row, permuted — this is
    /// what lets snapshot persistence store only `(tgd, key)` per firing
    /// and still rebuild the firing's body atoms on load.
    pub fn row_from_key(&self, key: &[Value]) -> Vec<Value> {
        debug_assert_eq!(key.len(), self.key_slots.len());
        let mut row = vec![Value::Null(0); self.key_slots.len()];
        for (&s, &v) in self.key_slots.iter().zip(key) {
            row[s] = v;
        }
        row
    }

    /// Fires the trigger witnessed by `row`: instantiates the head with
    /// fresh nulls for the existential variables (allocated in ascending
    /// variable order, like the legacy engine) and appends the atoms to
    /// `out`.
    ///
    /// All three engines fire exclusively through this method — and always
    /// on their single merge/fire thread — so the provenance probe below
    /// sees every derivation, in the engines' canonical firing order, for
    /// any worker count.
    pub fn fire_row(&self, row: &[Value], out: &mut Vec<GroundAtom>) {
        obs::count(obs::Metric::NullsCreated, self.n_exist as u64);
        let nulls: Vec<Value> = (0..self.n_exist).map(|_| Value::fresh_null()).collect();
        let start = out.len();
        for atom in &self.head {
            out.push(GroundAtom::new(
                atom.predicate,
                atom.args
                    .iter()
                    .map(|a| match *a {
                        HeadArg::Const(c) => c,
                        HeadArg::Body(s) => row[s as usize],
                        HeadArg::Exist(i) => nulls[i as usize],
                    })
                    .collect(),
            ))
        }
        if prov::enabled() {
            let val = self
                .key_vars
                .iter()
                .zip(self.key_slots.iter())
                .map(|(&v, &s)| (v, row[s]))
                .chain(self.exist_vars.iter().zip(&nulls).map(|(&v, &n)| (v, n)))
                .collect();
            prov::record_firing(prov::FiringRecord {
                tgd: self.index,
                val,
                atoms: out[start..].to_vec(),
            });
        }
    }

    /// Grounds the body atoms witnessed by `row` — the firing's support
    /// set. Restricted-chase level tracking reads derivation depth off
    /// these, and maintenance records them as the firing's dependencies.
    pub fn ground_body(&self, row: &[Value]) -> Vec<GroundAtom> {
        self.body_atoms
            .iter()
            .map(|a| {
                GroundAtom::new(
                    a.predicate,
                    a.args
                        .iter()
                        .map(|t| match *t {
                            BodyArg::Const(c) => c,
                            BodyArg::Slot(s) => row[s as usize],
                        })
                        .collect(),
                )
            })
            .collect()
    }

    /// Whether the trigger's head is already satisfied in `instance`
    /// (restricted-chase activity check): does the compiled head query
    /// match with the frontier pinned to the body row's images?
    pub fn head_satisfied(&self, row: &[Value], instance: &Instance) -> bool {
        obs::count(obs::Metric::RestrictedHeadChecks, 1);
        self.head_query
            .search(instance)
            .fix_slots(self.frontier_links.iter().map(|&(hs, bs)| (hs, row[bs])))
            .exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tgd::parse_tgds;
    use gtgd_data::Instance;

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    #[test]
    fn fire_row_grounds_head_with_fresh_nulls() {
        let tgds = parse_tgds("Emp(X) -> WorksIn(X,D), Dept(D)").unwrap();
        let plan = TriggerPlan::new(&tgds[0], 0);
        assert_eq!(plan.n_exist, 1);
        let mut out = Vec::new();
        plan.fire_row(&[v("ann")], &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].args[0], v("ann"));
        // Both head atoms share the same fresh null for D.
        assert_eq!(out[0].args[1], out[1].args[0]);
        assert!(matches!(out[0].args[1], Value::Null(_)));
    }

    #[test]
    fn trigger_key_is_ascending_var_order() {
        // Body vars Y(=1), X(=0) appear out of order in the body text; the
        // key must still come out in ascending Var order, like
        // `Tgd::body_vars`.
        let tgds = parse_tgds("R(Y,X) -> S(X,Y)").unwrap();
        let plan = TriggerPlan::new(&tgds[0], 0);
        let bv = tgds[0].body_vars();
        let row_y_x = [v("a"), v("b")]; // slot order: first occurrence = Y, X
        let key = plan.trigger_key(&row_y_x);
        let by_var: Vec<Value> = bv
            .iter()
            .map(|&u| row_y_x[plan.body.slot_of(u).unwrap()])
            .collect();
        assert_eq!(key, by_var);
    }

    #[test]
    fn row_from_key_inverts_trigger_key() {
        // Out-of-order body variables: slot order (first occurrence) is
        // Y, X while key order (ascending var) is X, Y.
        let tgds = parse_tgds("R(Y,X), S(X,Z) -> T(X)").unwrap();
        let plan = TriggerPlan::new(&tgds[0], 0);
        let row = vec![v("a"), v("b"), v("c")];
        let key = plan.trigger_key(&row);
        assert_eq!(plan.row_from_key(&key), row);
    }

    #[test]
    fn ground_body_reconstructs_the_witness_atoms() {
        let tgds = parse_tgds("R(X,Y), S(Y, red) -> T(X)").unwrap();
        let plan = TriggerPlan::new(&tgds[0], 0);
        // Slot order is first-occurrence: X then Y.
        let body = plan.ground_body(&[v("a"), v("b")]);
        assert_eq!(body.len(), 2);
        assert_eq!(body[0], GroundAtom::named("R", &["a", "b"]));
        assert_eq!(body[1], GroundAtom::named("S", &["b", "red"]));
    }

    #[test]
    fn head_satisfied_checks_frontier_extension() {
        let tgds = parse_tgds("P(X) -> R(X,Y)").unwrap();
        let plan = TriggerPlan::new(&tgds[0], 0);
        let with = Instance::from_atoms([GroundAtom::named("R", &["a", "b"])]);
        let without = Instance::from_atoms([GroundAtom::named("R", &["z", "b"])]);
        assert!(plan.head_satisfied(&[v("a")], &with));
        assert!(!plan.head_satisfied(&[v("a")], &without));
    }
}
