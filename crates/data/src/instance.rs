//! Instances and databases: indexed sets of ground atoms.

use crate::atom::GroundAtom;
use crate::columnar::{IndexExport, IndexStats, PredColumns, SortedIndexCache, SortedPermutation};
use crate::dense::{DenseExport, DenseStats, DenseStore, DenseTrie, Dict};
use crate::schema::{Predicate, Schema};
use crate::value::Value;
use gtgd_treewidth::Graph;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

/// Shared static-empty candidate list: the miss path of every index
/// accessor returns this without touching (or hashing into) any map.
const EMPTY_IDS: &[usize] = &[];

/// A finitely materialized instance (the paper's *database* when finite by
/// construction; also used to hold finite prefixes of infinite chase
/// results).
///
/// Maintains secondary indexes by predicate and by `(predicate, position,
/// value)` so homomorphism search and chase trigger matching get selective
/// candidate lists. Insertion order is preserved and deduplicated, so
/// iteration is deterministic.
#[derive(Debug, Default)]
pub struct Instance {
    atoms: Vec<GroundAtom>,
    /// Row-level hash indexes (dedup map, per-predicate and per-position
    /// candidate lists, domain), built lazily from `atoms` on first
    /// demand. Bulk construction ([`Instance::from_unique_atoms`] — the
    /// snapshot load path) skips them entirely; the first lookup or
    /// mutation pays one linear build. Interior mutability like `sorted`
    /// and `dense` below: reads go through `&Instance`.
    rows: OnceLock<RowIndexes>,
    /// Columnar mirror of the tuples, per `(predicate, arity)` — the
    /// storage the worst-case-optimal join path scans (see
    /// [`crate::columnar`]). Lazily mirrored from `atoms` on first
    /// demand, like `rows`.
    columns: OnceLock<ColumnMap>,
    /// Lazily built sorted permutation indexes over `columns`. Interior
    /// mutability: indexes are built on demand through `&Instance` (query
    /// execution never holds `&mut`).
    sorted: SortedIndexCache,
    /// Dense-dictionary encoded mirror of `columns` plus flat sorted trie
    /// levels — the storage the dense WCOJ path scans (see
    /// [`crate::dense`]). Built lazily, extended incrementally, interior
    /// mutability like `sorted`.
    dense: DenseStore,
}

/// The columnar arenas keyed by `(predicate, arity)`.
type ColumnMap = HashMap<(Predicate, u16), PredColumns>;

/// Per-relation old-row → new-row maps accumulated during retraction,
/// alongside the running count of surviving rows.
type RowRemapBuild = HashMap<(Predicate, u16), (Vec<Option<u32>>, u32)>;

/// Clones a lazily-built cell, preserving built-ness.
fn clone_cell<T: Clone>(cell: &OnceLock<T>) -> OnceLock<T> {
    match cell.get() {
        Some(v) => OnceLock::from(v.clone()),
        None => OnceLock::new(),
    }
}

impl Clone for Instance {
    fn clone(&self) -> Instance {
        Instance {
            atoms: self.atoms.clone(),
            rows: clone_cell(&self.rows),
            columns: clone_cell(&self.columns),
            sorted: self.sorted.clone(),
            dense: self.dense.clone(),
        }
    }
}

/// The row-level hash indexes of an [`Instance`]: the dedup map, the
/// per-predicate and per-`(predicate, position, value)` candidate lists,
/// and the first-occurrence domain. Kept together so they can be built
/// lazily in one pass over the atom vector.
#[derive(Debug, Clone, Default)]
struct RowIndexes {
    index_of: HashMap<GroundAtom, usize>,
    by_pred: HashMap<Predicate, Vec<usize>>,
    by_pred_pos_val: HashMap<(Predicate, u16, Value), Vec<usize>>,
    dom: Vec<Value>,
    dom_set: HashSet<Value>,
}

impl RowIndexes {
    /// Indexes one atom already appended to the atom vector at `idx`.
    /// Shared by the lazy one-pass build and incremental insertion.
    fn note(&mut self, atom: &GroundAtom, idx: usize) {
        self.by_pred.entry(atom.predicate).or_default().push(idx);
        for (pos, &v) in atom.args.iter().enumerate() {
            let pos = u16::try_from(pos).expect("arity fits u16");
            self.by_pred_pos_val
                .entry((atom.predicate, pos, v))
                .or_default()
                .push(idx);
            if self.dom_set.insert(v) {
                self.dom.push(v);
            }
        }
        self.index_of.insert(atom.clone(), idx);
    }

    /// One-pass build over a deduplicated atom vector, pre-sized so the
    /// maps do not regrow once per atom.
    fn build(atoms: &[GroundAtom]) -> RowIndexes {
        let cells: usize = atoms.iter().map(|a| a.args.len()).sum();
        let mut r = RowIndexes {
            index_of: HashMap::with_capacity(atoms.len()),
            by_pred_pos_val: HashMap::with_capacity(cells),
            ..RowIndexes::default()
        };
        for (idx, a) in atoms.iter().enumerate() {
            r.note(a, idx);
        }
        r
    }
}

impl Instance {
    /// The row indexes, built on first demand.
    fn rows(&self) -> &RowIndexes {
        self.rows.get_or_init(|| RowIndexes::build(&self.atoms))
    }

    /// The row indexes for mutation: builds first if still deferred.
    fn rows_mut(&mut self) -> &mut RowIndexes {
        if self.rows.get().is_none() {
            let built = RowIndexes::build(&self.atoms);
            let _ = self.rows.set(built);
        }
        self.rows.get_mut().expect("row indexes just built")
    }

    /// The columnar arenas, mirrored from the atom vector on first demand.
    fn columns_map(&self) -> &ColumnMap {
        self.columns
            .get_or_init(|| Self::build_columns(&self.atoms))
    }

    /// The columnar arenas for mutation: builds first if still deferred.
    fn columns_mut(&mut self) -> &mut ColumnMap {
        if self.columns.get().is_none() {
            let built = Self::build_columns(&self.atoms);
            let _ = self.columns.set(built);
        }
        self.columns.get_mut().expect("columns just built")
    }

    /// One sequential pass appending every tuple into its arena.
    fn build_columns(atoms: &[GroundAtom]) -> ColumnMap {
        let mut m = ColumnMap::new();
        for atom in atoms {
            let arity = u16::try_from(atom.args.len()).expect("arity fits u16");
            m.entry((atom.predicate, arity))
                .or_default()
                .push(&atom.args);
        }
        m
    }

    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Builds an instance from atoms, deduplicating.
    pub fn from_atoms(atoms: impl IntoIterator<Item = GroundAtom>) -> Instance {
        let mut i = Instance::new();
        for a in atoms {
            i.insert(a);
        }
        i
    }

    /// Builds an instance from atoms the caller guarantees are already
    /// distinct — the snapshot load path, whose atom section was written
    /// from an instance and is therefore duplicate-free. Only the atom
    /// vector is materialized; the row-level hash indexes and the
    /// columnar arenas stay deferred until first demand, off the load
    /// path. Feeding duplicates violates the contract and leaves lookups
    /// over-counting.
    pub fn from_unique_atoms(atoms: Vec<GroundAtom>) -> Instance {
        Instance {
            atoms,
            ..Instance::new()
        }
    }

    /// Inserts an atom; returns `true` if it was new.
    pub fn insert(&mut self, atom: GroundAtom) -> bool {
        let idx = self.atoms.len();
        let rows = self.rows_mut();
        if rows.index_of.contains_key(&atom) {
            return false;
        }
        rows.note(&atom, idx);
        let arity = u16::try_from(atom.args.len()).expect("arity fits u16");
        self.columns_mut()
            .entry((atom.predicate, arity))
            .or_default()
            .push(&atom.args);
        self.atoms.push(atom);
        true
    }

    /// Inserts a batch of atoms, deduplicating; returns how many were new.
    ///
    /// The bulk-load counterpart of [`Instance::insert`]: the primary
    /// stores (atom vector, dedup map, per-predicate and per-position
    /// candidate lists) are reserved once for the whole batch and the
    /// columnar arenas are grown per relation, so a 10⁶-atom ingest pays
    /// amortized map growth instead of a rehash/regrow cadence driven by
    /// per-atom inserts. The lazy mirrors (sorted permutations, dense
    /// dictionary/tries) are untouched until the *next demand after* the
    /// batch — one delta-extend over the whole batch, never one per row.
    /// Ingestion sinks and the CLI bulk loaders feed this; the snapshot
    /// load path goes further and skips index construction entirely via
    /// [`Instance::from_unique_atoms`].
    pub fn insert_batch(&mut self, atoms: impl IntoIterator<Item = GroundAtom>) -> usize {
        let batch: Vec<GroundAtom> = atoms.into_iter().collect();
        if batch.is_empty() {
            return 0;
        }
        self.atoms.reserve(batch.len());
        let cells: usize = batch.iter().map(|a| a.args.len()).sum();
        {
            let rows = self.rows_mut();
            rows.index_of.reserve(batch.len());
            rows.by_pred_pos_val.reserve(cells);
        }
        // Pre-size each touched relation's arena and candidate list once.
        let mut per_rel: HashMap<(Predicate, u16), usize> = HashMap::new();
        for a in &batch {
            let arity = u16::try_from(a.args.len()).expect("arity fits u16");
            *per_rel.entry((a.predicate, arity)).or_default() += 1;
        }
        {
            let cols = self.columns_mut();
            for (&(p, ar), &n) in &per_rel {
                if let Some(pc) = cols.get_mut(&(p, ar)) {
                    pc.reserve(n);
                }
            }
        }
        {
            let rows = self.rows_mut();
            for (&(p, _), &n) in &per_rel {
                rows.by_pred.entry(p).or_default().reserve(n);
            }
        }
        let mut added = 0;
        for a in batch {
            added += usize::from(self.insert(a));
        }
        added
    }

    /// Removes one atom; returns `true` if it was present. See
    /// [`Instance::retract_atoms`] for the cost model — batch retractions
    /// through that method when removing more than one atom.
    pub fn retract(&mut self, atom: &GroundAtom) -> bool {
        self.retract_atoms(std::slice::from_ref(atom)) == 1
    }

    /// Removes a batch of atoms; returns how many were actually present.
    /// Atoms absent from the instance are ignored.
    ///
    /// Every store except the atom vector is append-only by design, so
    /// retraction is a **rebuild, not a tombstone**: the primary stores
    /// (dedup map, per-predicate and per-position indexes, domain,
    /// columnar arenas) are reconstructed from the survivors in one pass
    /// over the instance (`O(total cells)`), which keeps row ids dense and
    /// every accessor exact — `dom()` contains precisely the values of
    /// surviving atoms, with no tombstone filtering on any read path. The
    /// lazy mirrors are cheaper to fix: sorted permutations are
    /// filter+remapped in place (deletion preserves sort order — see
    /// [`SortedIndexCache`]), and the dense store drops only the touched
    /// `(predicate, arity)` relations while keeping the dictionary.
    pub fn retract_atoms(&mut self, atoms: &[GroundAtom]) -> usize {
        let present = &self.rows().index_of;
        let doomed: HashSet<&GroundAtom> =
            atoms.iter().filter(|a| present.contains_key(*a)).collect();
        if doomed.is_empty() {
            return 0;
        }
        let removed = doomed.len();
        // Relations that lose rows: their dense mirrors must be dropped
        // and their sorted permutations remapped.
        let touched: HashSet<(Predicate, u16)> = doomed
            .iter()
            .map(|a| {
                let arity = u16::try_from(a.args.len()).expect("arity fits u16");
                (a.predicate, arity)
            })
            .collect();
        // One pass in insertion order: record, per touched relation, where
        // each old row lands (arena row ids follow insertion order within
        // a relation), and collect the survivors.
        let old_atoms = std::mem::take(&mut self.atoms);
        let mut row_maps: RowRemapBuild = HashMap::new();
        let mut survivors: Vec<GroundAtom> = Vec::with_capacity(old_atoms.len() - removed);
        for a in old_atoms {
            let arity = u16::try_from(a.args.len()).expect("arity fits u16");
            let key = (a.predicate, arity);
            let dead = doomed.contains(&a);
            if touched.contains(&key) {
                let (map, kept) = row_maps.entry(key).or_default();
                map.push((!dead).then_some(*kept));
                *kept += u32::from(!dead);
            }
            if !dead {
                survivors.push(a);
            }
        }
        let row_maps: HashMap<(Predicate, u16), Vec<Option<u32>>> =
            row_maps.into_iter().map(|(k, (map, _))| (k, map)).collect();
        // Rebuild the primary stores from the survivors.
        self.rows = OnceLock::new();
        self.columns = OnceLock::new();
        for a in survivors {
            self.insert(a);
        }
        // Fix the lazy mirrors.
        self.sorted.retract_remap(&row_maps);
        self.dense.invalidate_relations(&touched);
        removed
    }

    /// Reserves capacity for `n` further atoms in the primary stores (the
    /// atom vector and the dedup map), so bulk loads — chase round
    /// materialization, [`Instance::extend_from`] — do not rehash/regrow
    /// once per atom.
    pub fn reserve_additional(&mut self, n: usize) {
        self.atoms.reserve(n);
        self.rows_mut().index_of.reserve(n);
    }

    /// Whether the atom is present.
    pub fn contains(&self, atom: &GroundAtom) -> bool {
        self.rows().index_of.contains_key(atom)
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the instance has no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over atoms in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &GroundAtom> {
        self.atoms.iter()
    }

    /// The atom at `idx` (insertion order).
    pub fn atom(&self, idx: usize) -> &GroundAtom {
        &self.atoms[idx]
    }

    /// All atoms in insertion order as one slice — the bulk accessor used
    /// by compiled query plans to resolve candidate indexes without
    /// per-atom bounds checks.
    pub fn atoms(&self) -> &[GroundAtom] {
        &self.atoms
    }

    /// Selectivity of predicate `p`: how many atoms carry it. Equivalent
    /// to `atoms_with_pred(p).len()` without touching the slice.
    pub fn pred_count(&self, p: Predicate) -> usize {
        self.rows().by_pred.get(&p).map_or(0, |v| v.len())
    }

    /// Selectivity of the `(p, pos, v)` index probed by the compiled
    /// kernel: how many atoms with predicate `p` have value `v` at
    /// argument position `pos`.
    pub fn index_count(&self, p: Predicate, pos: usize, v: Value) -> usize {
        let rows = self.rows();
        if rows.by_pred_pos_val.is_empty() {
            return 0;
        }
        let pos = u16::try_from(pos).expect("arity fits u16");
        rows.by_pred_pos_val
            .get(&(p, pos, v))
            .map_or(0, |ids| ids.len())
    }

    /// `dom(I)`: distinct constants in first-occurrence order.
    pub fn dom(&self) -> &[Value] {
        &self.rows().dom
    }

    /// Whether `v ∈ dom(I)`.
    pub fn dom_contains(&self, v: Value) -> bool {
        self.rows().dom_set.contains(&v)
    }

    /// Indexes of atoms with the given predicate.
    pub fn atoms_with_pred(&self, p: Predicate) -> &[usize] {
        let rows = self.rows();
        if rows.by_pred.is_empty() {
            return EMPTY_IDS;
        }
        rows.by_pred.get(&p).map_or(EMPTY_IDS, |v| v.as_slice())
    }

    /// Indexes of atoms with predicate `p` whose argument at `pos` is `v`.
    pub fn atoms_matching(&self, p: Predicate, pos: usize, v: Value) -> &[usize] {
        let rows = self.rows();
        if rows.by_pred_pos_val.is_empty() {
            return EMPTY_IDS;
        }
        let pos = u16::try_from(pos).expect("arity fits u16");
        rows.by_pred_pos_val
            .get(&(p, pos, v))
            .map_or(EMPTY_IDS, |ids| ids.as_slice())
    }

    /// The columnar tuple arena for predicate `p` at the given arity, if
    /// any tuple was inserted (see [`crate::columnar::PredColumns`]).
    pub fn columns(&self, p: Predicate, arity: usize) -> Option<&PredColumns> {
        let arity = u16::try_from(arity).expect("arity fits u16");
        self.columns_map().get(&(p, arity))
    }

    /// The sorted permutation index of `p`'s tuples (at `arity`) under the
    /// given column order: built by a full sort on first demand, extended
    /// by a sorted-merge of the insert delta on later demands (never a full
    /// re-sort; see [`crate::columnar::SortedIndexCache`]). Cheap to call
    /// when already built and current: one read-lock plus an `Arc` clone.
    pub fn sorted_permutation(
        &self,
        p: Predicate,
        arity: usize,
        order: &[u16],
    ) -> Arc<SortedPermutation> {
        self.sorted
            .get_or_build(p, arity, order, self.columns(p, arity))
    }

    /// Build/extend counters of the sorted-index cache (the incremental
    /// maintenance contract: `full_builds` grows once per distinct index,
    /// `merge_extends` on every delta extension).
    pub fn index_stats(&self) -> IndexStats {
        self.sorted.stats()
    }

    /// A consistent dense-encoded snapshot serving one query: the global
    /// order-preserving dictionary plus, per request
    /// `(predicate, arity, column order)`, the flat sorted trie — `None`
    /// when the relation is empty. Builds or delta-extends stale parts
    /// first; current parts cost one read-lock hold and `Arc` clones (see
    /// [`crate::dense::DenseStore::snapshot`]).
    pub fn dense_snapshot(
        &self,
        reqs: &[(Predicate, usize, &[u16])],
    ) -> (Arc<Dict>, Vec<Option<Arc<DenseTrie>>>) {
        let reqs16: Vec<(Predicate, u16, &[u16])> = reqs
            .iter()
            .map(|&(p, a, o)| (p, u16::try_from(a).expect("arity fits u16"), o))
            .collect();
        self.dense.snapshot(self.columns_map(), &reqs16)
    }

    /// Counters of the dense store (the append-mostly growth contract:
    /// `remaps` stays at zero while every fresh value — e.g. every
    /// chase-invented null — sorts after the existing maximum).
    pub fn dense_stats(&self) -> DenseStats {
        self.dense.stats()
    }

    /// Exports every cached sorted index in portable form, for snapshot
    /// persistence (see [`crate::columnar::IndexExport`]).
    pub fn export_sorted_indexes(&self) -> Vec<IndexExport> {
        self.sorted.export_entries()
    }

    /// Re-installs exported sorted indexes, skipping any entry that is
    /// stale or not actually sorted under this process's value order
    /// (skipped entries rebuild lazily on first demand). Returns how many
    /// were installed. Interior mutability: callable through `&self`, like
    /// every other cache operation.
    pub fn install_sorted_indexes(&self, entries: &[IndexExport]) -> usize {
        if entries.is_empty() {
            return 0;
        }
        self.sorted.install_entries(entries, self.columns_map())
    }

    /// Exports the dense-encoded store in portable form, for snapshot
    /// persistence (see [`crate::dense::DenseExport`]).
    pub fn export_dense(&self) -> DenseExport {
        self.dense.export_state()
    }

    /// Re-installs an exported dense store after validating the dictionary
    /// order and every encoded cell against the live arenas; invalid
    /// sections are skipped and rebuild lazily. Only a pristine (never
    /// dense-queried) instance accepts the import. Returns
    /// `(tables installed, tries installed)`.
    pub fn install_dense(&self, export: &DenseExport) -> (usize, usize) {
        if export.dict.is_empty() && export.tables.is_empty() && export.tries.is_empty() {
            return (0, 0);
        }
        self.dense.install_state(export, self.columns_map())
    }

    /// The distinct predicates appearing in the instance, in first-use order.
    pub fn predicates(&self) -> Vec<Predicate> {
        let mut seen = Vec::new();
        for a in &self.atoms {
            if !seen.contains(&a.predicate) {
                seen.push(a.predicate);
            }
        }
        seen
    }

    /// Infers the schema realized by this instance (each used predicate with
    /// the arity of its first occurrence). Panics if a predicate is used at
    /// two different arities.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for a in &self.atoms {
            s.add(a.predicate, a.arity());
        }
        s
    }

    /// `I|T`: the restriction to atoms mentioning only constants of `keep`.
    pub fn restrict_to(&self, keep: &HashSet<Value>) -> Instance {
        Instance::from_atoms(
            self.atoms
                .iter()
                .filter(|a| a.args.iter().all(|v| keep.contains(v)))
                .cloned(),
        )
    }

    /// Restriction to atoms over the given predicates.
    pub fn restrict_predicates(&self, keep: &HashSet<Predicate>) -> Instance {
        Instance::from_atoms(
            self.atoms
                .iter()
                .filter(|a| keep.contains(&a.predicate))
                .cloned(),
        )
    }

    /// Applies a value mapping to every atom, producing a new instance (the
    /// homomorphic image when `f` is a homomorphism).
    pub fn map_values(&self, f: impl Fn(Value) -> Value) -> Instance {
        Instance::from_atoms(self.atoms.iter().map(|a| a.map(&f)))
    }

    /// Inserts all atoms of `other`. Capacity is reserved up front — in
    /// the primary stores and per predicate — so the bulk load does not
    /// regrow them once per atom.
    pub fn extend_from(&mut self, other: &Instance) {
        self.reserve_additional(other.len());
        let mine = self.rows_mut();
        for (p, ids) in &other.rows().by_pred {
            mine.by_pred.entry(*p).or_default().reserve(ids.len());
        }
        for a in other.iter() {
            self.insert(a.clone());
        }
    }

    /// Whether the tuple `vs` is *guarded* in the instance: some atom
    /// mentions every value of `vs`.
    pub fn is_guarded(&self, vs: &[Value]) -> bool {
        match vs.first() {
            None => !self.is_empty(),
            Some(&v0) => {
                // Scan only atoms containing v0 at some position.
                self.atoms
                    .iter()
                    .any(|a| a.mentions(v0) && vs.iter().all(|&v| a.mentions(v)))
            }
        }
    }

    /// All maximal guarded sets: for each atom, `dom(α)` — deduplicated and
    /// restricted to the ⊆-maximal ones. Used by the guarded unraveling and
    /// the OMQ→CQS reduction.
    pub fn maximal_guarded_sets(&self) -> Vec<Vec<Value>> {
        let mut sets: Vec<Vec<Value>> = Vec::new();
        for a in &self.atoms {
            let mut d = a.dom();
            d.sort_unstable();
            if !sets.contains(&d) {
                sets.push(d);
            }
        }
        let maximal: Vec<Vec<Value>> = sets
            .iter()
            .filter(|s| {
                !sets
                    .iter()
                    .any(|t| t.len() > s.len() && s.iter().all(|v| t.contains(v)))
            })
            .cloned()
            .collect();
        maximal
    }

    /// The Gaifman graph `G_I`: vertices are `dom(I)` (in domain order),
    /// edges join constants co-occurring in an atom. Returns the graph and
    /// the vertex-id → value mapping.
    pub fn gaifman(&self) -> (Graph, Vec<Value>) {
        let dom = &self.rows().dom;
        let mut id_of: HashMap<Value, usize> = HashMap::new();
        for (i, &v) in dom.iter().enumerate() {
            id_of.insert(v, i);
        }
        let mut g = Graph::new(dom.len());
        for a in &self.atoms {
            let d = a.dom();
            for (i, &u) in d.iter().enumerate() {
                for &v in &d[i + 1..] {
                    g.add_edge(id_of[&u], id_of[&v]);
                }
            }
        }
        (g, dom.clone())
    }

    /// A constant is *isolated* if exactly one atom mentions it
    /// (Section 6 / Theorem 6.1).
    pub fn is_isolated(&self, v: Value) -> bool {
        self.atoms.iter().filter(|a| a.mentions(v)).count() == 1
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|a| other.contains(a))
    }
}

impl Eq for Instance {}

impl FromIterator<GroundAtom> for Instance {
    fn from_iter<T: IntoIterator<Item = GroundAtom>>(iter: T) -> Instance {
        Instance::from_atoms(iter)
    }
}

impl std::fmt::Display for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    #[test]
    fn insert_dedup_and_indexes() {
        let mut i = Instance::new();
        assert!(i.insert(GroundAtom::named("R", &["a", "b"])));
        assert!(!i.insert(GroundAtom::named("R", &["a", "b"])));
        assert!(i.insert(GroundAtom::named("R", &["b", "c"])));
        assert_eq!(i.len(), 2);
        assert_eq!(i.atoms_with_pred(Predicate::new("R")).len(), 2);
        assert_eq!(i.atoms_matching(Predicate::new("R"), 0, v("a")).len(), 1);
        assert_eq!(i.atoms_matching(Predicate::new("R"), 1, v("b")).len(), 1);
        assert!(i.atoms_matching(Predicate::new("R"), 0, v("z")).is_empty());
        assert_eq!(i.dom(), &[v("a"), v("b"), v("c")]);
    }

    #[test]
    fn selectivity_accessors_match_slices() {
        let mut i = Instance::new();
        i.insert(GroundAtom::named("R", &["a", "b"]));
        i.insert(GroundAtom::named("R", &["a", "c"]));
        i.insert(GroundAtom::named("S", &["a"]));
        let r = Predicate::new("R");
        assert_eq!(i.atoms().len(), i.len());
        assert_eq!(i.pred_count(r), i.atoms_with_pred(r).len());
        assert_eq!(i.pred_count(Predicate::new("T")), 0);
        assert_eq!(
            i.index_count(r, 0, v("a")),
            i.atoms_matching(r, 0, v("a")).len()
        );
        assert_eq!(i.index_count(r, 1, v("z")), 0);
    }

    #[test]
    fn set_equality_ignores_order() {
        let i1 = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("P", &["c"]),
        ]);
        let i2 = Instance::from_atoms([
            GroundAtom::named("P", &["c"]),
            GroundAtom::named("R", &["a", "b"]),
        ]);
        assert_eq!(i1, i2);
    }

    #[test]
    fn restriction_by_values() {
        let i = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("R", &["b", "c"]),
            GroundAtom::named("P", &["a"]),
        ]);
        let keep: HashSet<Value> = [v("a"), v("b")].into_iter().collect();
        let r = i.restrict_to(&keep);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&GroundAtom::named("R", &["a", "b"])));
        assert!(r.contains(&GroundAtom::named("P", &["a"])));
    }

    #[test]
    fn gaifman_graph_of_triangle_fact() {
        let i = Instance::from_atoms([GroundAtom::named("T", &["a", "b", "c"])]);
        let (g, vals) = i.gaifman();
        assert_eq!(vals.len(), 3);
        assert_eq!(g.edge_count(), 3); // a 3-ary atom induces a triangle
    }

    #[test]
    fn guardedness_checks() {
        let i = Instance::from_atoms([
            GroundAtom::named("T", &["a", "b", "c"]),
            GroundAtom::named("R", &["c", "d"]),
        ]);
        assert!(i.is_guarded(&[v("a"), v("c")]));
        assert!(!i.is_guarded(&[v("a"), v("d")]));
        assert!(i.is_guarded(&[]));
        let max = i.maximal_guarded_sets();
        assert_eq!(max.len(), 2);
    }

    #[test]
    fn isolation() {
        let i = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("R", &["b", "c"]),
        ]);
        assert!(i.is_isolated(v("a")));
        assert!(!i.is_isolated(v("b")));
    }

    #[test]
    fn map_values_applies_substitution() {
        let i = Instance::from_atoms([GroundAtom::named("R", &["a", "b"])]);
        let j = i.map_values(|x| if x == v("a") { v("z") } else { x });
        assert!(j.contains(&GroundAtom::named("R", &["z", "b"])));
    }

    #[test]
    fn columnar_arena_mirrors_insertion_order() {
        let mut i = Instance::new();
        i.insert(GroundAtom::named("R", &["a", "b"]));
        i.insert(GroundAtom::named("R", &["a", "b"])); // duplicate: no row
        i.insert(GroundAtom::named("R", &["c", "d"]));
        i.insert(GroundAtom::named("S", &["e"]));
        let r = i.columns(Predicate::new("R"), 2).unwrap();
        assert_eq!(r.rows(), 2);
        assert_eq!(r.col(0), &[v("a"), v("c")]);
        assert_eq!(r.col(1), &[v("b"), v("d")]);
        assert!(i.columns(Predicate::new("R"), 3).is_none());
        assert!(i.columns(Predicate::new("T"), 2).is_none());
    }

    /// Reference argsort over the arena (by key tuple, then row id).
    fn naive_perm(i: &Instance, p: Predicate, arity: usize, order: &[u16]) -> Vec<u32> {
        let pc = i.columns(p, arity).unwrap();
        let mut ids: Vec<u32> = (0..pc.rows() as u32).collect();
        ids.sort_by_key(|&r| {
            let key: Vec<Value> = order
                .iter()
                .map(|&j| pc.col(j as usize)[r as usize])
                .collect();
            (key, r)
        });
        ids
    }

    #[test]
    fn sorted_permutation_is_incremental_across_inserts() {
        let mut i = Instance::new();
        i.insert(GroundAtom::named("E", &["c", "x"]));
        i.insert(GroundAtom::named("E", &["a", "y"]));
        let e = Predicate::new("E");
        let first = i.sorted_permutation(e, 2, &[0, 1]);
        assert_eq!(first.perm(), naive_perm(&i, e, 2, &[0, 1]));
        assert_eq!(i.index_stats().full_builds, 1);
        i.insert(GroundAtom::named("E", &["b", "z"]));
        let second = i.sorted_permutation(e, 2, &[0, 1]);
        assert_eq!(second.perm(), naive_perm(&i, e, 2, &[0, 1]));
        let stats = i.index_stats();
        assert_eq!(stats.full_builds, 1);
        assert_eq!(stats.merge_extends, 1);
        assert_eq!(stats.indexes, 1);
    }

    #[test]
    fn clones_carry_independent_index_caches() {
        let mut i = Instance::new();
        i.insert(GroundAtom::named("E", &["b", "x"]));
        i.sorted_permutation(Predicate::new("E"), 2, &[0, 1]);
        let mut j = i.clone();
        j.insert(GroundAtom::named("E", &["a", "w"]));
        let sp = j.sorted_permutation(Predicate::new("E"), 2, &[0, 1]);
        assert_eq!(sp.perm(), naive_perm(&j, Predicate::new("E"), 2, &[0, 1]));
        // The clone extended its own cache; the original is untouched.
        assert_eq!(j.index_stats().merge_extends, 1);
        assert_eq!(i.index_stats().merge_extends, 0);
    }

    #[test]
    fn insert_batch_matches_per_atom_insert() {
        use crate::rng::Rng;
        let mut rng = Rng::seed(0xba7c4);
        for case in 0..20 {
            let n = rng.range(0, 60);
            let atoms: Vec<GroundAtom> = (0..n)
                .map(|_| {
                    let p = ["R", "S", "T"][rng.range(0, 3)];
                    let arity = rng.range(0, 4);
                    let args: Vec<&str> = (0..arity)
                        .map(|_| ["a", "b", "c", "d"][rng.range(0, 4)])
                        .collect();
                    GroundAtom::named(p, &args)
                })
                .collect();
            let mut batched = Instance::new();
            // Split the batch so one call lands on a non-empty instance.
            let mid = atoms.len() / 2;
            let added_1 = batched.insert_batch(atoms[..mid].iter().cloned());
            let added_2 = batched.insert_batch(atoms[mid..].iter().cloned());
            let mut serial = Instance::new();
            let mut added_serial = 0;
            for a in &atoms {
                added_serial += usize::from(serial.insert(a.clone()));
            }
            assert_eq!(added_1 + added_2, added_serial, "case {case}");
            assert_eq!(batched, serial, "case {case}");
            assert_eq!(batched.dom(), serial.dom(), "case {case}");
            // Insertion order (hence row ids) is identical.
            assert!(batched.iter().eq(serial.iter()), "case {case}");
            for p in ["R", "S", "T"].map(Predicate::new) {
                assert_eq!(batched.pred_count(p), serial.pred_count(p));
            }
        }
    }

    #[test]
    fn insert_batch_extends_built_indexes_once() {
        let mut i = Instance::new();
        i.insert_batch([
            GroundAtom::named("E", &["c", "x"]),
            GroundAtom::named("E", &["a", "y"]),
        ]);
        let e = Predicate::new("E");
        i.sorted_permutation(e, 2, &[0, 1]);
        assert_eq!(i.index_stats().full_builds, 1);
        // A whole batch lands before the next demand: exactly one
        // merge-extend, not one per row.
        i.insert_batch([
            GroundAtom::named("E", &["b", "z"]),
            GroundAtom::named("E", &["d", "w"]),
            GroundAtom::named("E", &["a", "q"]),
        ]);
        let sp = i.sorted_permutation(e, 2, &[0, 1]);
        assert_eq!(sp.perm(), naive_perm(&i, e, 2, &[0, 1]));
        let stats = i.index_stats();
        assert_eq!(stats.full_builds, 1);
        assert_eq!(stats.merge_extends, 1);
    }

    #[test]
    fn reserve_and_extend_preserve_contents() {
        let mut i = Instance::new();
        i.reserve_additional(16);
        i.insert(GroundAtom::named("R", &["a", "b"]));
        let other = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("R", &["b", "c"]),
            GroundAtom::named("P", &["a"]),
        ]);
        i.extend_from(&other);
        assert_eq!(i.len(), 3);
        assert_eq!(i.pred_count(Predicate::new("R")), 2);
        assert_eq!(i.pred_count(Predicate::new("P")), 1);
    }

    #[test]
    fn retract_rebuilds_every_index() {
        let mut i = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("R", &["b", "c"]),
            GroundAtom::named("P", &["a"]),
        ]);
        assert!(i.retract(&GroundAtom::named("R", &["a", "b"])));
        assert!(
            !i.retract(&GroundAtom::named("R", &["a", "b"])),
            "already gone"
        );
        assert_eq!(i.len(), 2);
        assert!(!i.contains(&GroundAtom::named("R", &["a", "b"])));
        let r = Predicate::new("R");
        assert_eq!(i.pred_count(r), 1);
        assert!(i.atoms_matching(r, 0, v("a")).is_empty());
        assert_eq!(i.atoms_matching(r, 0, v("b")).len(), 1);
        // dom() is exact: "a" survives through P(a), nothing else changes.
        assert_eq!(i.dom(), &[v("b"), v("c"), v("a")]);
        // Columnar arena shrank and re-densified.
        let rc = i.columns(r, 2).unwrap();
        assert_eq!(rc.rows(), 1);
        assert_eq!(rc.col(0), &[v("b")]);
    }

    #[test]
    fn retract_drops_values_no_atom_mentions() {
        let mut i = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("P", &["c"]),
        ]);
        assert_eq!(i.retract_atoms(&[GroundAtom::named("R", &["a", "b"])]), 1);
        assert_eq!(i.dom(), &[v("c")]);
        assert!(!i.dom_contains(v("a")));
        assert!(!i.dom_contains(v("b")));
    }

    #[test]
    fn retract_batch_counts_only_present_atoms() {
        let mut i = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("P", &["a"]),
        ]);
        let n = i.retract_atoms(&[
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("R", &["z", "z"]), // absent
            GroundAtom::named("P", &["a"]),
        ]);
        assert_eq!(n, 2);
        assert!(i.is_empty());
        assert!(i.dom().is_empty());
        assert_eq!(i.retract_atoms(&[GroundAtom::named("P", &["a"])]), 0);
    }

    #[test]
    fn sorted_permutation_survives_retraction_without_resort() {
        let mut i = Instance::new();
        for (a, b) in [("d", "w"), ("b", "x"), ("c", "y"), ("a", "z")] {
            i.insert(GroundAtom::named("E", &[a, b]));
        }
        let e = Predicate::new("E");
        i.sorted_permutation(e, 2, &[0, 1]);
        assert_eq!(i.index_stats().full_builds, 1);
        i.retract(&GroundAtom::named("E", &["c", "y"]));
        let sp = i.sorted_permutation(e, 2, &[0, 1]);
        assert_eq!(sp.perm(), naive_perm(&i, e, 2, &[0, 1]));
        // The remap was in place: no second full build, no merge.
        let stats = i.index_stats();
        assert_eq!(stats.full_builds, 1);
        assert_eq!(stats.merge_extends, 0);
        // And later growth still extends incrementally.
        i.insert(GroundAtom::named("E", &["c", "q"]));
        let sp2 = i.sorted_permutation(e, 2, &[0, 1]);
        assert_eq!(sp2.perm(), naive_perm(&i, e, 2, &[0, 1]));
        assert_eq!(i.index_stats().merge_extends, 1);
    }

    #[test]
    fn retracting_a_whole_relation_uncaches_its_index() {
        let mut i = Instance::new();
        i.insert(GroundAtom::named("E", &["a", "b"]));
        i.insert(GroundAtom::named("P", &["c"]));
        let e = Predicate::new("E");
        i.sorted_permutation(e, 2, &[0, 1]);
        i.retract(&GroundAtom::named("E", &["a", "b"]));
        // The only E-row is gone: its index is dropped, not left empty.
        assert_eq!(i.index_stats().indexes, 0);
        let sp = i.sorted_permutation(e, 2, &[0, 1]);
        assert!(sp.is_empty());
    }

    #[test]
    fn dense_snapshot_after_retraction_matches_fresh_build() {
        let mut i = Instance::new();
        for (a, b) in [("b", "x"), ("a", "z"), ("c", "y")] {
            i.insert(GroundAtom::named("E", &[a, b]));
        }
        i.insert(GroundAtom::named("P", &["p"]));
        let e = Predicate::new("E");
        let p = Predicate::new("P");
        let reqs: [(Predicate, usize, &[u16]); 2] = [(e, 2, &[0, 1]), (p, 1, &[0])];
        let (_, before) = i.dense_snapshot(&reqs);
        i.retract(&GroundAtom::named("E", &["a", "z"]));
        let (dict, tries) = i.dense_snapshot(&reqs);
        let fresh = Instance::from_atoms(i.iter().cloned());
        let (fdict, ftries) = fresh.dense_snapshot(&reqs);
        let decode = |d: &Dict, t: &DenseTrie, arity: usize| -> Vec<Vec<Value>> {
            (0..t.rows())
                .map(|r| (0..arity).map(|l| d.decode(t.level(l)[r])).collect())
                .collect()
        };
        for (k, arity) in [(0, 2), (1, 1)] {
            assert_eq!(
                decode(&dict, tries[k].as_ref().unwrap(), arity),
                decode(&fdict, ftries[k].as_ref().unwrap(), arity)
            );
        }
        // Untouched relation P kept its trie through the invalidation; the
        // dictionary may keep the stale "z" but never loses a surviving
        // value.
        assert!(Arc::ptr_eq(
            before[1].as_ref().unwrap(),
            tries[1].as_ref().unwrap()
        ));
        for a in i.iter() {
            for &val in &a.args {
                assert!(dict.code(val).is_some());
            }
        }
    }

    #[test]
    fn schema_inference() {
        let i = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("P", &["a"]),
        ]);
        let s = i.schema();
        assert_eq!(s.arity(Predicate::new("R")), Some(2));
        assert_eq!(s.arity(Predicate::new("P")), Some(1));
        assert_eq!(s.max_arity(), 2);
    }
}
