//! A minimal, fail-closed JSON reader for the certificate wire format.
//!
//! Accepts exactly what certificates use — objects, arrays, strings, and
//! unsigned integers — and rejects everything else (`true`/`false`/`null`,
//! floats, leading zeros, trailing input). A checker that guesses at its
//! input is no checker; parse errors are rejections.

/// A parsed JSON value (the accepted subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// An object, fields in source order (duplicates preserved for the
    /// model layer to reject).
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
    /// A string.
    Str(String),
    /// An unsigned integer.
    Int(u64),
}

/// Parses one JSON value; trailing non-whitespace input is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9') => self.integer(),
            Some(c) => Err(format!(
                "unexpected {:?} at byte {} (only objects, arrays, strings, and unsigned integers are accepted)",
                c as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn integer(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let digits = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if digits.len() > 1 && digits.starts_with('0') {
            return Err(format!("leading zero at byte {start}"));
        }
        digits
            .parse()
            .map(Json::Int)
            .map_err(|_| format!("integer out of range at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("invalid \\u escape {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_accepted_subset() {
        let j = parse(r#"{"a":[1,"x\n",{"b":[]}],"c":0}"#).unwrap();
        let Json::Obj(fields) = j else { panic!() };
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[1], ("c".into(), Json::Int(0)));
    }

    #[test]
    fn rejects_everything_else() {
        for bad in [
            "true", "null", "1.5", "-1", "01", "[1,]", "{", "\"\\q\"", "1 2", "",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""\u0041""#).unwrap(), Json::Str("A".into()));
        assert!(parse(r#""\ud800""#).is_err(), "lone surrogate rejected");
    }
}
