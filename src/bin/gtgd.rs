//! `gtgd` — evaluate a query script open- or closed-world.
//!
//! ```text
//! gtgd script.gtgd            # evaluate a script file
//! gtgd -                      # read the script from stdin
//! gtgd --trace script.gtgd    # also print the probe report (JSON, stderr)
//! gtgd --certify script.gtgd  # print answer certificates (JSON, stdout)
//! gtgd --maintain script.gtgd # apply +atom / -atom ops incrementally
//! ```
//!
//! With `--maintain` (open-world only), the `fact` base is chased once
//! into a maintained materialization; each `+Atom(...)` line then runs a
//! delta chase and each `-Atom(...)` a DRed retraction, printing one
//! report line per op, before the query is answered over the final
//! instance.
//!
//! With `--certify`, stdout carries *only* the certificate JSON — the
//! human-readable answer summary moves to stderr — so the output pipes
//! straight into the independent checker:
//!
//! ```text
//! gtgd --certify script.gtgd | gtgd-check -
//! ```
//!
//! See `gtgd::script` for the script format.

use gtgd::chase::certificates_to_json;
use gtgd::data::obs;
use gtgd::script::{certify_script, eval_script, parse_script, run_maintained, Mode};
use std::io::Read;

fn main() {
    let mut trace = false;
    let mut certify = false;
    let mut maintain = false;
    let mut files: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--trace" => trace = true,
            "--certify" => certify = true,
            "--maintain" => maintain = true,
            _ => files.push(a),
        }
    }
    let [arg] = files.as_slice() else {
        eprintln!("usage: gtgd [--trace] [--certify] [--maintain] <script-file | ->");
        std::process::exit(2);
    };
    let src = if arg == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        std::fs::read_to_string(arg).unwrap_or_else(|e| {
            eprintln!("cannot read {arg}: {e}");
            std::process::exit(2);
        })
    };
    if maintain {
        let script = parse_script(&src).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        let run = || run_maintained(&script);
        let (result, report) = if trace {
            let (r, rep) = obs::trace_run(run);
            (r, Some(rep))
        } else {
            (run(), None)
        };
        match result {
            Ok(out) => {
                for step in &out.steps {
                    println!("{step}");
                }
                println!(
                    "maintained (open-world); {} answer(s); exact = {}",
                    out.answers.len(),
                    out.exact
                );
                for a in &out.answers {
                    println!("  ({a})");
                }
                if let Some(rep) = report {
                    eprintln!("{}", rep.to_json());
                }
                return;
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    let (result, report) = if trace {
        let (r, rep) = obs::trace_run(|| eval_script(&src));
        (r, Some(rep))
    } else {
        (eval_script(&src), None)
    };
    match result {
        Ok(out) => {
            let mode = match out.mode {
                Mode::Open => "open-world (OMQ)",
                Mode::Closed => "closed-world (CQS)",
            };
            let mut summary = format!(
                "{mode}; {} answer(s); exact = {}",
                out.answers.len(),
                out.exact
            );
            for a in &out.answers {
                summary.push_str(&format!("\n  ({a})"));
            }
            if certify {
                // Certificates own stdout; everything human goes to stderr.
                eprintln!("{summary}");
                let script = parse_script(&src).expect("script parsed once already");
                match certify_script(&script) {
                    Ok(certs) => {
                        eprintln!("{} certificate(s)", certs.len());
                        println!("{}", certificates_to_json(&certs));
                    }
                    Err(e) => {
                        eprintln!("certification error: {e}");
                        std::process::exit(1);
                    }
                }
            } else {
                println!("{summary}");
            }
            if let Some(rep) = report {
                // The report goes to stderr so piped answer output stays clean.
                eprintln!("{}", rep.to_json());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
