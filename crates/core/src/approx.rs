//! UCQ_k-approximations and UCQ_k-equivalence (Section 4 / Appendix C).
//!
//! * For CQSs (Prop 5.11, `FG_m` with `k ≥ r·m−1`): the approximation
//!   `S^a_k = (Σ, q^a_k)` collects the contractions of each disjunct that
//!   fall in `CQ_k`; `S` is uniformly UCQ_k-equivalent iff `S ⊆ S^a_k`.
//! * For guarded OMQs (Def C.6, Prop 5.2, `k ≥ ar(T)−1`): the approximation
//!   replaces each disjunct by the Σ-groundings (Def C.3) of its
//!   specializations that fall in `UCQ_k`; `Q` is (uniformly)
//!   UCQ_k-equivalent iff `Q ≡ Q^a_k`.
//!
//! Grounding enumeration avoids the paper's doubly exponential sweep over
//! all guarded full CQs by combining two observations, valid in the
//! supported regime `k ≥ ar(T) − 1` (Lemma B.2: all Σ-groundings of a
//! specialization then share the treewidth-`≤ k` property):
//!
//! 1. the ⊆-**maximal** candidate per component (every atom over the chosen
//!    variable set) is a grounding whenever any same-width grounding exists
//!    (chase monotonicity), and
//! 2. by the proof of Lemma C.5, the groundings that decide the chase-based
//!    equivalence test `Q ⊆ Q^a_k` are exactly the **types realized in
//!    `chase↓(D[p], Σ)`** for the disjuncts `p` of `q` — a finite,
//!    computable candidate set (`type_{D[p],Σ}(α)` per atom `α`, viewed as
//!    a guarded full CQ).
//!
//! Every emitted disjunct passes the Definition C.3 homomorphism test, so
//! the approximation is always sound (`Q^a_k ⊆ Q`), and with candidate set
//! (2) the equivalence verdict of [`omq_ucqk_equivalent`] is exact. The
//! case `k < ar(T) − 1` is rejected: the paper itself proves
//! UCQ_k-approximations misbehave there (Appendix C.5).

use crate::containment::{omq_contained_same_sigma, ucq_contained_under, Containment};
use crate::cqs::Cqs;
use crate::eval::{check_omq, EvalConfig};
use crate::omq::Omq;
use gtgd_data::{Schema, Value};
use gtgd_query::contract::{atoms_within, contractions, specializations, v_components};
use gtgd_query::tw::is_cq_treewidth_at_most;
use gtgd_query::{Cq, QAtom, Term, Ucq, Var};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Limits for Σ-grounding enumeration.
#[derive(Debug, Clone, Copy)]
pub struct GroundingPolicy {
    /// Cap on the number of specializations examined per disjunct (safety
    /// valve; the count is exponential in the disjunct's variable count).
    pub max_specializations: usize,
}

impl Default for GroundingPolicy {
    fn default() -> Self {
        GroundingPolicy {
            max_specializations: 100_000,
        }
    }
}

// ---------------------------------------------------------------------------
// CQS approximation (Prop 5.11)
// ---------------------------------------------------------------------------

/// The UCQ_k-approximation `S^a_k` of a CQS: all contractions of disjuncts
/// of `q` that belong to `CQ_k`. Returns `None` when no contraction
/// qualifies (then `q^a_k` would be the empty UCQ, equivalent to `false`).
pub fn cqs_ucqk_approximation(s: &Cqs, k: usize) -> Option<Cqs> {
    let mut disjuncts: Vec<Cq> = Vec::new();
    let mut seen = HashSet::new();
    for d in &s.query.disjuncts {
        for c in contractions(d) {
            if is_cq_treewidth_at_most(&c, k) && seen.insert(c.dedup_key()) {
                disjuncts.push(c);
            }
        }
    }
    if disjuncts.is_empty() {
        return None;
    }
    Some(Cqs::new(s.sigma.clone(), Ucq::new(disjuncts)))
}

/// Decides uniform UCQ_k-equivalence of a CQS (Prop 5.11 / Theorem 5.10):
/// `S ≡ S^a_k` iff `S ⊆ S^a_k` (the converse holds by construction).
/// Returns the verdict and, when equivalent, the witnessing rewriting.
pub fn cqs_uniformly_ucqk_equivalent(
    s: &Cqs,
    k: usize,
    cfg: &EvalConfig,
) -> (Containment, Option<Cqs>) {
    let Some(approx) = cqs_ucqk_approximation(s, k) else {
        return (
            Containment {
                holds: false,
                exact: true,
            },
            None,
        );
    };
    let c = ucq_contained_under(&s.sigma, &s.query, &approx.query, cfg);
    if c.holds {
        (c, Some(approx))
    } else {
        (c, None)
    }
}

/// The Theorem 5.10 regime bound for a CQS from `FG_m` over arity-`r`
/// schemas: uniform UCQ_k-equivalence is decided soundly for
/// `k ≥ r·m − 1` (the chase of a treewidth-`k` database then stays within
/// treewidth `k`, which is what makes the contraction approximation
/// complete). Returns `r·m − 1`.
pub fn fgm_regime_bound(s: &Cqs) -> usize {
    let r = s.schema().max_arity();
    let m = s
        .sigma
        .iter()
        .map(|t| t.head_atom_count())
        .max()
        .unwrap_or(1);
    (r * m).saturating_sub(1)
}

// ---------------------------------------------------------------------------
// OMQ approximation (Def C.3 / C.6)
// ---------------------------------------------------------------------------

/// All atoms over the variable set `vars` in the schema `t` (the ⊆-maximal
/// guarded full CQ on those variables — every atom, including a guard, when
/// some predicate has arity ≥ `vars.len()`).
fn all_atoms_over(t: &Schema, vars: &[Var]) -> Vec<QAtom> {
    let mut out = Vec::new();
    for (p, a) in t.iter() {
        // Enumerate vars^a argument tuples.
        let mut tuple = vec![0usize; a];
        loop {
            out.push(QAtom::new(
                p,
                tuple.iter().map(|&i| Term::Var(vars[i])).collect(),
            ));
            // Increment odometer.
            let mut pos = 0;
            loop {
                if pos == a {
                    break;
                }
                tuple[pos] += 1;
                if tuple[pos] < vars.len() {
                    break;
                }
                tuple[pos] = 0;
                pos += 1;
            }
            if pos == a {
                break;
            }
        }
        if a == 0 {
            // The odometer above already emitted the single 0-ary atom.
            continue;
        }
    }
    out
}

/// A grounding candidate `дᵢ` in a local variable space `0..width`: a
/// guarded full CQ (some atom mentions every variable).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Candidate {
    width: usize,
    atoms: Vec<QAtom>,
}

/// The candidate pool for Σ-groundings of an OMQ's components:
/// the ⊆-maximal CQs of each width `1..=r`, plus (for exactness of the
/// equivalence test, per the proof of Lemma C.5) every type
/// `type_{D[p],Σ}(α)` realized in the ground saturation of the canonical
/// database of a disjunct of `q`.
fn candidate_pool(q: &Omq, t: &Schema, cfg: &EvalConfig) -> Vec<Candidate> {
    let r = t.max_arity();
    let mut pool: Vec<Candidate> = Vec::new();
    let mut seen: HashSet<(usize, Vec<QAtom>)> = HashSet::new();
    let mut push = |width: usize, mut atoms: Vec<QAtom>| {
        let vars: Vec<Var> = (0..width as u32).map(Var).collect();
        if !atoms.iter().any(|a| vars.iter().all(|&v| a.mentions(v))) {
            return; // not guarded
        }
        atoms.sort();
        atoms.dedup();
        if seen.insert((width, atoms.clone())) {
            pool.push(Candidate { width, atoms });
        }
    };
    // Maximal candidates.
    for w in 1..=r {
        let vars: Vec<Var> = (0..w as u32).map(Var).collect();
        push(w, all_atoms_over(t, &vars));
    }
    // Realized types from the disjuncts' canonical databases (guarded Σ
    // only — the type machinery requires it; for empty Σ the types are just
    // the bags of D[p] itself).
    let guarded = q
        .sigma
        .iter()
        .all(|s| s.is_in(gtgd_chase::TgdClass::Guarded));
    let _ = cfg;
    if guarded {
        for p in &q.query.disjuncts {
            let (db, _) = p.canonical_database();
            let sat = gtgd_chase::ground_saturation(&db, &q.sigma);
            for a in sat.iter() {
                let consts = a.dom();
                let keep: std::collections::HashSet<Value> = consts.iter().copied().collect();
                let bag = sat.restrict_to(&keep);
                // Every ordering of the bag constants yields a candidate
                // (the shared-variable interface may need any position).
                let orderings = permutations(&consts);
                for ord in orderings {
                    let pos: HashMap<Value, u32> = ord
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (v, i as u32))
                        .collect();
                    let atoms: Vec<QAtom> = bag
                        .iter()
                        .map(|ga| {
                            QAtom::new(
                                ga.predicate,
                                ga.args.iter().map(|v| Term::Var(Var(pos[v]))).collect(),
                            )
                        })
                        .collect();
                    push(consts.len(), atoms);
                }
            }
        }
    }
    pool
}

fn permutations(items: &[Value]) -> Vec<Vec<Value>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest: Vec<Value> = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            let mut perm = vec![x];
            perm.append(&mut tail);
            out.push(perm);
        }
    }
    out
}

/// Whether `candidate` grounds the component: `pᵢ → chase(д, Σ)` via a
/// homomorphism that is the identity on the shared variables, which are
/// taken to be the first `shared.len()` candidate variables.
fn candidate_grounds(
    sigma: &[gtgd_chase::Tgd],
    candidate: &Candidate,
    component: &Cq,
    shared: &[Var],
    cfg: &EvalConfig,
) -> bool {
    if candidate.width < shared.len() {
        return false;
    }
    let names: Vec<String> = (0..candidate.width).map(|i| format!("g{i}")).collect();
    let g = Cq::new(names, candidate.atoms.clone(), vec![]);
    let (db, frozen) = g.canonical_database();
    // Candidate variables may not all occur in its atoms if width was
    // overstated; guardedness guarantees they do.
    let answer: Vec<Value> = (0..shared.len()).map(|i| frozen[&Var(i as u32)]).collect();
    let mut comp = component.clone();
    comp.answer_vars = shared.to_vec();
    let omq = Omq::full_schema(sigma.to_vec(), Ucq::single(comp));
    let (holds, _exact) = check_omq(&omq, &db, &answer, cfg);
    holds
}

/// The UCQ_k-approximation `Q^a_k` of a guarded OMQ (Definition C.6), for
/// `k ≥ ar(T) − 1`. Returns `None` when no specialization admits a
/// grounding in `UCQ_k`.
pub fn omq_ucqk_approximation(
    q: &Omq,
    k: usize,
    policy: &GroundingPolicy,
    cfg: &EvalConfig,
) -> Option<Omq> {
    let t = q.extended_schema();
    let r = t.max_arity();
    assert!(
        k + 1 >= r,
        "UCQ_k-approximation requires k ≥ ar(T) − 1 (got k = {k}, ar(T) = {r}); \
         the paper shows the approximation is not faithful below that (App. C.5)"
    );
    let pool = candidate_pool(q, &t, cfg);
    let mut disjuncts: Vec<Cq> = Vec::new();
    let mut seen = HashSet::new();
    for p in &q.query.disjuncts {
        let specs = specializations(p);
        assert!(
            specs.len() <= policy.max_specializations,
            "specialization count {} exceeds policy cap",
            specs.len()
        );
        'spec: for s in specs {
            let pc = &s.cq;
            let v: BTreeSet<Var> = s.v.clone();
            // д0: the atoms of pc|V.
            let g0: Vec<QAtom> = atoms_within(pc, &v)
                .into_iter()
                .map(|i| pc.atoms[i].clone())
                .collect();
            // Per-component grounding choices from the candidate pool.
            let comps = v_components(pc, &v);
            let mut choices: Vec<(Vec<Var>, Vec<&Candidate>)> = Vec::new();
            for comp_atoms in &comps {
                let comp = Cq::new(
                    pc.var_names().to_vec(),
                    comp_atoms.iter().map(|&i| pc.atoms[i].clone()).collect(),
                    vec![],
                );
                let shared: Vec<Var> = comp
                    .all_vars()
                    .into_iter()
                    .filter(|x| v.contains(x))
                    .collect();
                if shared.len() > r {
                    continue 'spec; // no guard atom can cover the interface
                }
                let working: Vec<&Candidate> = pool
                    .iter()
                    .filter(|c| candidate_grounds(&q.sigma, c, &comp, &shared, cfg))
                    .collect();
                if working.is_empty() {
                    continue 'spec;
                }
                choices.push((shared, working));
            }
            // Every combination of per-component candidates yields one
            // Σ-grounding дs = д0 ∧ д1 ∧ … ∧ дn.
            let combo_count: usize = choices
                .iter()
                .map(|(_, w)| w.len())
                .try_fold(1usize, |a, b| a.checked_mul(b))
                .unwrap_or(usize::MAX);
            assert!(
                combo_count <= policy.max_specializations,
                "grounding combination count {combo_count} exceeds policy cap"
            );
            let mut combos: Vec<Vec<usize>> = vec![Vec::new()];
            for (_, working) in &choices {
                combos = combos
                    .into_iter()
                    .flat_map(|c| {
                        (0..working.len()).map(move |i| {
                            let mut c2 = c.clone();
                            c2.push(i);
                            c2
                        })
                    })
                    .collect();
            }
            for combo in combos {
                let mut grounding_atoms: Vec<QAtom> = g0.clone();
                let mut names: Vec<String> = pc.var_names().to_vec();
                let mut next_var = names.len() as u32;
                for (ci, ((shared, working), &pick)) in choices.iter().zip(combo.iter()).enumerate()
                {
                    let cand = working[pick];
                    // Candidate variable i ↦ shared[i] for the interface,
                    // fresh variables beyond.
                    let mut local: Vec<Var> = shared.clone();
                    for j in shared.len()..cand.width {
                        names.push(format!("g{ci}_{j}"));
                        local.push(Var(next_var));
                        next_var += 1;
                    }
                    grounding_atoms
                        .extend(cand.atoms.iter().map(|a| a.map_vars(|x| local[x.index()])));
                }
                let gs = Cq::new(names, grounding_atoms, pc.answer_vars.clone());
                if gs.atoms.is_empty() {
                    continue;
                }
                if is_cq_treewidth_at_most(&gs, k) && seen.insert(gs.dedup_key()) {
                    disjuncts.push(gs.compact());
                }
            }
        }
    }
    if disjuncts.is_empty() {
        return None;
    }
    Some(Omq {
        data_schema: q.data_schema.clone(),
        sigma: q.sigma.clone(),
        query: Ucq::new(disjuncts),
    })
}

/// Decides UCQ_k-equivalence of a guarded OMQ (Prop 5.2 / Theorem 5.1):
/// `Q ≡ Q^a_k` iff `Q ⊆ Q^a_k` (the converse holds by Lemma C.7(1)).
/// Returns the verdict and, when equivalent, the approximation as the
/// witnessing OMQ from `(G, UCQ_k)`.
///
/// By Proposition 5.2, for `k ≥ ar(T) − 1` UCQ_k-equivalence
/// (Definition 4.2, the ontology may change) and **uniform**
/// UCQ_k-equivalence (Definition 4.3, same ontology) coincide, and both are
/// witnessed by `Q^a_k` — which keeps `Q`'s ontology, so the witness this
/// function returns is always a *uniform* one. Use
/// [`omq_uniformly_ucqk_equivalent`] when you want the uniform reading
/// spelled out.
pub fn omq_ucqk_equivalent(
    q: &Omq,
    k: usize,
    policy: &GroundingPolicy,
    cfg: &EvalConfig,
) -> (Containment, Option<Omq>) {
    let Some(approx) = omq_ucqk_approximation(q, k, policy, cfg) else {
        return (
            Containment {
                holds: false,
                exact: true,
            },
            None,
        );
    };
    let c = omq_contained_same_sigma(q, &approx, cfg);
    if c.holds {
        (c, Some(approx))
    } else {
        (c, None)
    }
}

/// The compact approximation `Q′_k` of Appendix B.1: instead of
/// materializing Σ-groundings, each disjunct of `q′_k` is a specialization
/// contraction `p_c` extended with marker atoms `A(x)` on the variables
/// outside `V`, and the ontology Σ′ extends Σ by asserting `A` on every
/// invented null. `Q′_k ≡ Q^a_k` (Lemma B.3), but `q′_k` has only singly
/// exponentially many disjuncts, each of polynomial size — the paper's
/// device for the 2ExpTime upper bound of Theorem 5.1.
///
/// A specialization contributes iff **some** Σ-grounding of it has
/// treewidth ≤ `k`; in the supported regime `k ≥ ar(T) − 1` this is
/// grounding-independent (Lemma B.2), so one witnessing combination is
/// checked.
pub fn omq_ucqk_approximation_compact(
    q: &Omq,
    k: usize,
    policy: &GroundingPolicy,
    cfg: &EvalConfig,
) -> Option<Omq> {
    let t = q.extended_schema();
    let r = t.max_arity();
    assert!(k + 1 >= r, "compact approximation requires k ≥ ar(T) − 1");
    let marker = gtgd_data::Predicate::new("__A");
    // Σ′: add A(z) to every head with existential variable z.
    let sigma_prime: Vec<gtgd_chase::Tgd> = q
        .sigma
        .iter()
        .map(|tgd| {
            let mut head = tgd.head.clone();
            for z in tgd.existential_vars() {
                head.push(QAtom::new(marker, vec![Term::Var(z)]));
            }
            gtgd_chase::Tgd::new(tgd.var_name_table(), tgd.body.clone(), head)
        })
        .collect();
    let pool = candidate_pool(q, &t, cfg);
    let mut disjuncts: Vec<Cq> = Vec::new();
    let mut seen = HashSet::new();
    for p in &q.query.disjuncts {
        let specs = specializations(p);
        assert!(specs.len() <= policy.max_specializations);
        'spec: for s in specs {
            let pc = &s.cq;
            let v: BTreeSet<Var> = s.v.clone();
            // One witnessing grounding: first working candidate per
            // component.
            let comps = v_components(pc, &v);
            let mut grounding_atoms: Vec<QAtom> = atoms_within(pc, &v)
                .into_iter()
                .map(|i| pc.atoms[i].clone())
                .collect();
            let mut names: Vec<String> = pc.var_names().to_vec();
            let mut next_var = names.len() as u32;
            for (ci, comp_atoms) in comps.iter().enumerate() {
                let comp = Cq::new(
                    pc.var_names().to_vec(),
                    comp_atoms.iter().map(|&i| pc.atoms[i].clone()).collect(),
                    vec![],
                );
                let shared: Vec<Var> = comp
                    .all_vars()
                    .into_iter()
                    .filter(|x| v.contains(x))
                    .collect();
                if shared.len() > r {
                    continue 'spec;
                }
                let Some(cand) = pool
                    .iter()
                    .find(|c| candidate_grounds(&q.sigma, c, &comp, &shared, cfg))
                else {
                    continue 'spec;
                };
                let mut local: Vec<Var> = shared.clone();
                for j in shared.len()..cand.width {
                    names.push(format!("g{ci}_{j}"));
                    local.push(Var(next_var));
                    next_var += 1;
                }
                grounding_atoms.extend(cand.atoms.iter().map(|a| a.map_vars(|x| local[x.index()])));
            }
            let witness = Cq::new(names, grounding_atoms, pc.answer_vars.clone());
            if witness.atoms.is_empty() || !is_cq_treewidth_at_most(&witness, k) {
                continue;
            }
            // The compact disjunct: pc plus markers on vars outside V.
            let mut atoms = pc.atoms.clone();
            for x in pc.all_vars() {
                if !v.contains(&x) {
                    atoms.push(QAtom::new(marker, vec![Term::Var(x)]));
                }
            }
            let compact = Cq::new(pc.var_names().to_vec(), atoms, pc.answer_vars.clone());
            if seen.insert(compact.dedup_key()) {
                disjuncts.push(compact);
            }
        }
    }
    if disjuncts.is_empty() {
        return None;
    }
    Some(Omq {
        data_schema: q.data_schema.clone(),
        sigma: sigma_prime,
        query: Ucq::new(disjuncts),
    })
}

/// Uniform UCQ_k-equivalence of a guarded OMQ (Definition 4.3). By
/// Proposition 5.2 this coincides with [`omq_ucqk_equivalent`] in the
/// supported regime `k ≥ ar(T) − 1`; the returned witness shares `Q`'s
/// ontology by construction.
pub fn omq_uniformly_ucqk_equivalent(
    q: &Omq,
    k: usize,
    policy: &GroundingPolicy,
    cfg: &EvalConfig,
) -> (Containment, Option<Omq>) {
    let (verdict, witness) = omq_ucqk_equivalent(q, k, policy, cfg);
    if let Some(w) = &witness {
        debug_assert_eq!(
            w.sigma.len(),
            q.sigma.len(),
            "the approximation witness keeps the ontology (Prop 5.2)"
        );
    }
    (verdict, witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtgd_chase::parse_tgds;
    use gtgd_query::tw::ucq_treewidth;
    use gtgd_query::{parse_cq, parse_ucq};

    /// Prop 5.2: UCQ_k-equivalence and uniform UCQ_k-equivalence coincide,
    /// and the witness keeps the ontology.
    #[test]
    fn prop_5_2_uniform_coincides() {
        let sigma = parse_tgds("R2(X) -> R4(X)").unwrap();
        let q = Omq::full_schema(
            sigma.clone(),
            parse_ucq(
                "Q() :- P(X2,X1), P(X4,X1), P(X2,X3), P(X4,X3), \
                 R1(X1), R2(X2), R3(X3), R4(X4)",
            )
            .unwrap(),
        );
        let (v1, w1) = omq_ucqk_equivalent(&q, 1, &GroundingPolicy::default(), &cfg());
        let (v2, w2) = omq_uniformly_ucqk_equivalent(&q, 1, &GroundingPolicy::default(), &cfg());
        assert_eq!(v1.holds, v2.holds);
        assert!(v1.holds);
        // Both witnesses carry the original ontology.
        for w in [w1.unwrap(), w2.unwrap()] {
            assert_eq!(w.sigma.len(), sigma.len());
        }
    }

    fn cfg() -> EvalConfig {
        EvalConfig::default()
    }

    fn example_4_4_query() -> Ucq {
        parse_ucq("Q() :- P(X2,X1), P(X4,X1), P(X2,X3), P(X4,X3), R1(X1), R2(X2), R3(X3), R4(X4)")
            .unwrap()
    }

    #[test]
    fn cqs_approximation_collects_low_tw_contractions() {
        let s = Cqs::new(vec![], parse_ucq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap());
        let a = cqs_ucqk_approximation(&s, 1).expect("contractions exist");
        // The triangle itself (tw 2) is excluded; its collapses (loops) are in.
        assert!(ucq_treewidth(&a.query) <= 1);
        for d in &a.query.disjuncts {
            assert!(d.atom_count() < 3 || is_cq_treewidth_at_most(d, 1));
        }
    }

    #[test]
    fn example_4_4_cqs_is_ucq1_equivalent_under_constraints() {
        // Section 4.2: Example 4.4 works for CQSs too — with Σ = {R2→R4},
        // the tw-2 query is uniformly UCQ_1-equivalent.
        let sigma = parse_tgds("R2(X) -> R4(X)").unwrap();
        let s = Cqs::new(sigma, example_4_4_query());
        let (c, rewriting) = cqs_uniformly_ucqk_equivalent(&s, 1, &cfg());
        assert!(c.exact);
        assert!(c.holds, "Example 4.4 under constraints");
        let r = rewriting.unwrap();
        assert!(ucq_treewidth(&r.query) <= 1);
        // Without Σ it is NOT UCQ_1-equivalent (q is a tw-2 core).
        let s0 = Cqs::new(vec![], example_4_4_query());
        let (c0, _) = cqs_uniformly_ucqk_equivalent(&s0, 1, &cfg());
        assert!(c0.exact);
        assert!(!c0.holds);
    }

    #[test]
    fn plain_cq_semantic_treewidth_matches_core_criterion() {
        // Σ = ∅: S is UCQ_k-equivalent iff the core has treewidth ≤ k
        // (Theorem 4.1's decidability footnote). Redundant triangle+path:
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X), E(X,W)").unwrap();
        let s = Cqs::new(vec![], Ucq::single(q.clone()));
        let core = gtgd_query::core_of(&q);
        let core_tw = gtgd_query::tw::cq_treewidth(&core);
        assert_eq!(core_tw, 2); // triangle survives; W folds away
        let (c1, _) = cqs_uniformly_ucqk_equivalent(&s, 1, &cfg());
        assert!(!c1.holds);
        let (c2, _) = cqs_uniformly_ucqk_equivalent(&s, 2, &cfg());
        assert!(c2.holds);
    }

    #[test]
    fn omq_example_4_4_is_ucq1_equivalent() {
        let sigma = parse_tgds("R2(X) -> R4(X)").unwrap();
        let q = Omq::full_schema(sigma, example_4_4_query());
        let (c, witness) = omq_ucqk_equivalent(&q, 1, &GroundingPolicy::default(), &cfg());
        assert!(c.holds, "Example 4.4: Q1 ∈ (G, UCQ)≡1");
        let w = witness.unwrap();
        assert!(ucq_treewidth(&w.query) <= 1);
    }

    #[test]
    fn omq_without_ontology_not_ucq1_equivalent() {
        let q = Omq::full_schema(vec![], example_4_4_query());
        let (c, _) = omq_ucqk_equivalent(&q, 1, &GroundingPolicy::default(), &cfg());
        assert!(!c.holds, "q is a tw-2 core; no ontology, no rewriting");
    }

    #[test]
    fn omq_approximation_is_contained_in_omq() {
        // Soundness (Lemma C.7(1)): Q^a_k ⊆ Q always.
        let sigma = parse_tgds("R2(X) -> R4(X)").unwrap();
        let q = Omq::full_schema(sigma, example_4_4_query());
        let a = omq_ucqk_approximation(&q, 1, &GroundingPolicy::default(), &cfg())
            .expect("approximation nonempty");
        let c = omq_contained_same_sigma(&a, &q, &cfg());
        assert!(c.holds, "Q^a_k ⊆ Q");
    }

    #[test]
    #[should_panic(expected = "k ≥ ar(T) − 1")]
    fn low_k_rejected() {
        let sigma = parse_tgds("T3(X,Y,Z) -> P(X)").unwrap();
        let q = Omq::full_schema(sigma, parse_ucq("Q() :- P(X)").unwrap());
        omq_ucqk_approximation(&q, 1, &GroundingPolicy::default(), &cfg());
    }

    #[test]
    fn existential_ontology_bridges_components() {
        // Σ: A(x) → ∃y E(x,y), B(y). Query asks for E(x,y),B(y) — with V
        // excluding y, the grounding machinery replaces the component by a
        // guarded stub, so the OMQ is UCQ_1-equivalent with witness A(x).
        let sigma = parse_tgds("A(X) -> E(X,Y), B(Y)").unwrap();
        let q = Omq::full_schema(
            sigma,
            parse_ucq("Q(X) :- E(X,Y), B(Y). Q(X) :- A(X)").unwrap(),
        );
        let (c, _) = omq_ucqk_equivalent(&q, 1, &GroundingPolicy::default(), &cfg());
        assert!(c.holds);
    }

    #[test]
    fn compact_approximation_agrees_with_full_on_databases() {
        // Lemma B.3 (behavioral form): Q^a_k and Q′_k answer alike.
        let sigma = parse_tgds("R2(X) -> R4(X)").unwrap();
        let q = Omq::full_schema(sigma, example_4_4_query());
        let full = omq_ucqk_approximation(&q, 1, &GroundingPolicy::default(), &cfg())
            .expect("approximation nonempty");
        let compact = omq_ucqk_approximation_compact(&q, 1, &GroundingPolicy::default(), &cfg())
            .expect("compact approximation nonempty");
        // Compact disjuncts are polynomial-sized (pc + markers).
        let max_atoms = compact
            .query
            .disjuncts
            .iter()
            .map(|d| d.atom_count())
            .max()
            .unwrap();
        assert!(max_atoms <= example_4_4_query().disjuncts[0].atom_count() + 4);
        // Behavioral agreement on a family of databases.
        use gtgd_data::{GroundAtom, Instance};
        for variant in 0..4u32 {
            let mut atoms = vec![
                GroundAtom::named("P", &["b", "a"]),
                GroundAtom::named("P", &["b", "c"]),
                GroundAtom::named("R1", &["a"]),
                GroundAtom::named("R2", &["b"]),
                GroundAtom::named("R3", &["c"]),
            ];
            if variant & 1 == 1 {
                atoms.push(GroundAtom::named("R4", &["b"]));
            }
            if variant & 2 == 2 {
                atoms.push(GroundAtom::named("P", &["d", "a"]));
                atoms.push(GroundAtom::named("R4", &["d"]));
            }
            let db = Instance::from_atoms(atoms);
            let a_full = crate::eval::evaluate_omq(&full, &db, &cfg());
            let a_compact = crate::eval::evaluate_omq(&compact, &db, &cfg());
            assert!(a_full.exact && a_compact.exact);
            assert_eq!(
                a_full.answers, a_compact.answers,
                "variant {variant}: Q^a_k vs Q′_k"
            );
        }
    }

    #[test]
    fn compact_sigma_marks_nulls() {
        // Σ′ extends every existential head with the __A marker.
        let sigma = parse_tgds("A(X) -> E(X,Y), B(Y)").unwrap();
        let q = Omq::full_schema(
            sigma,
            parse_ucq("Q(X) :- E(X,Y), B(Y). Q(X) :- A(X)").unwrap(),
        );
        let compact = omq_ucqk_approximation_compact(&q, 1, &GroundingPolicy::default(), &cfg())
            .expect("nonempty");
        let marker = gtgd_data::Predicate::new("__A");
        let marked = compact
            .sigma
            .iter()
            .any(|t| t.head.iter().any(|a| a.predicate == marker));
        assert!(marked, "Σ′ marks invented nulls");
    }

    #[test]
    fn cqs_approximation_none_when_nothing_fits() {
        // Boolean triangle query with answer vars pinning all variables:
        // contractions of a triangle still contain a triangle or loops; with
        // k = 1 only loop-collapses qualify, which exist — so Some. But a
        // 3-ary guard-free... use arity to force None instead:
        let q = parse_cq("Q(X,Y,Z) :- T(X,Y,Z), T(Y,Z,X)").unwrap();
        // All variables are answers: the only contraction is q itself, whose
        // existential graph is empty → tw 1 by convention → it qualifies.
        let s = Cqs::new(vec![], Ucq::single(q));
        assert!(cqs_ucqk_approximation(&s, 1).is_some());
    }
}
