//! Grid graphs (Section 6: the `k × ℓ`-grid) and helpers for the
//! Excluded Grid Theorem machinery.

use crate::graph::Graph;

/// The `k × l` grid: vertices `(i, j)` for `1 ≤ i ≤ k`, `1 ≤ j ≤ l`, with an
/// edge between `(i, j)` and `(i', j')` iff `|i - i'| + |j - j'| = 1`.
///
/// Vertex `(i, j)` (1-based as in the paper) receives id
/// `(i - 1) * l + (j - 1)`; see [`grid_vertex`].
pub fn grid(k: usize, l: usize) -> Graph {
    let mut g = Graph::new(k * l);
    for i in 0..k {
        for j in 0..l {
            if j + 1 < l {
                g.add_edge(i * l + j, i * l + j + 1);
            }
            if i + 1 < k {
                g.add_edge(i * l + j, (i + 1) * l + j);
            }
        }
    }
    g
}

/// Id of grid vertex `(i, j)` (1-based coordinates) in a `k × l` grid.
pub fn grid_vertex(l: usize, i: usize, j: usize) -> usize {
    assert!(i >= 1 && j >= 1, "grid coordinates are 1-based");
    (i - 1) * l + (j - 1)
}

/// `K = k choose 2`, the second grid dimension used throughout Section 6.
pub fn big_k(k: usize) -> usize {
    k * (k.max(1) - 1) / 2
}

/// A fixed bijection `χ` between 2-element subsets `{i, j}` of `[k]`
/// (with `i < j`) and `[K]` (1-based), as required by the Grohe
/// construction. Pairs are ordered lexicographically.
#[derive(Debug, Clone)]
pub struct PairBijection {
    pairs: Vec<(usize, usize)>,
}

impl PairBijection {
    /// The bijection for clique size `k`.
    pub fn new(k: usize) -> Self {
        let mut pairs = Vec::with_capacity(big_k(k));
        for i in 1..=k {
            for j in (i + 1)..=k {
                pairs.push((i, j));
            }
        }
        PairBijection { pairs }
    }

    /// `χ({i, j})`, 1-based.
    pub fn index_of(&self, i: usize, j: usize) -> usize {
        let key = if i < j { (i, j) } else { (j, i) };
        self.pairs
            .iter()
            .position(|&p| p == key)
            .expect("pair within [k]")
            + 1
    }

    /// `χ⁻¹(p)`, 1-based pair for a 1-based index.
    pub fn pair_of(&self, p: usize) -> (usize, usize) {
        self.pairs[p - 1]
    }

    /// `K`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether `k < 2` (no pairs).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether `i ∈ ρ(p)` in the paper's shorthand.
    pub fn pair_contains(&self, p: usize, i: usize) -> bool {
        let (a, b) = self.pair_of(p);
        i == a || i == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::treewidth_exact;

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.vertex_count(), 12);
        // 3*(4-1) horizontal + (3-1)*4 vertical
        assert_eq!(g.edge_count(), 9 + 8);
        assert!(g.has_edge(grid_vertex(4, 1, 1), grid_vertex(4, 1, 2)));
        assert!(g.has_edge(grid_vertex(4, 1, 1), grid_vertex(4, 2, 1)));
        assert!(!g.has_edge(grid_vertex(4, 1, 1), grid_vertex(4, 2, 2)));
    }

    #[test]
    fn grid_treewidth_is_min_dimension() {
        assert_eq!(treewidth_exact(&grid(2, 6)).0, 2);
        assert_eq!(treewidth_exact(&grid(3, 4)).0, 3);
        assert_eq!(treewidth_exact(&grid(1, 5)).0, 1);
    }

    #[test]
    fn degenerate_grids() {
        let g = grid(1, 1);
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.edge_count(), 0);
        let g = grid(0, 5);
        assert_eq!(g.vertex_count(), 0);
    }

    #[test]
    fn pair_bijection_roundtrip() {
        let chi = PairBijection::new(4);
        assert_eq!(chi.len(), 6);
        assert_eq!(big_k(4), 6);
        for p in 1..=chi.len() {
            let (i, j) = chi.pair_of(p);
            assert_eq!(chi.index_of(i, j), p);
            assert_eq!(chi.index_of(j, i), p);
            assert!(chi.pair_contains(p, i) && chi.pair_contains(p, j));
            assert!(!chi.pair_contains(p, 0));
        }
    }

    #[test]
    fn big_k_small_values() {
        assert_eq!(big_k(1), 0);
        assert_eq!(big_k(2), 1);
        assert_eq!(big_k(3), 3);
        assert_eq!(big_k(5), 10);
    }
}
