#![warn(missing_docs)]

//! Relational data model for the guarded-TGD toolkit.
//!
//! Terminology follows Section 2 of the paper:
//!
//! * a [`Schema`] is a finite set of predicates with arities;
//! * an *instance* is a (possibly infinite, here: finitely materialized) set
//!   of atoms over constants; a *database* is a finite instance — both are
//!   represented by [`Instance`];
//! * constants are [`Value`]s: either named constants from the input or
//!   labelled nulls invented by the chase;
//! * homomorphisms between instances are arbitrary functions on domains that
//!   preserve atoms (the paper does **not** require constants to be fixed).
//!
//! ```
//! use gtgd_data::{GroundAtom, Instance};
//!
//! let db = Instance::from_atoms([
//!     GroundAtom::named("R", &["a", "b"]),
//!     GroundAtom::named("R", &["b", "c"]),
//! ]);
//! assert_eq!(db.len(), 2);
//! assert_eq!(db.dom().len(), 3);
//! let (gaifman, _) = db.gaifman();
//! assert_eq!(gaifman.edge_count(), 2);
//! ```

pub mod atom;
pub mod columnar;
pub mod dense;
pub mod homomorphism;
pub mod instance;
pub mod obs;
pub mod par;
pub mod prov;
pub mod rng;
pub mod schema;
pub mod symbols;
pub mod text;
pub mod value;

pub use atom::GroundAtom;
pub use columnar::{IndexExport, IndexStats, PredColumns, SortedPermutation};
pub use dense::{DenseExport, DenseStats, DenseTableExport, DenseTrie, DenseTrieExport, Dict};
pub use homomorphism::{is_homomorphism, Valuation};
pub use instance::Instance;
pub use obs::RunReport;
pub use par::{default_workers, Pool};
pub use prov::FiringRecord;
pub use rng::Rng;
pub use schema::{Predicate, Schema};
pub use symbols::Symbol;
pub use text::{parse_fact, parse_facts, render_facts, FactParseError};
pub use value::Value;
