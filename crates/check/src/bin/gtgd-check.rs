//! `gtgd-check` — verify answer certificates independently of the engine.
//!
//! ```text
//! gtgd --certify script.gtgd | gtgd-check -   # verify a fresh run
//! gtgd-check certs.json                       # verify a saved batch
//! ```
//!
//! Input is a JSON array of certificates or JSON lines (one per line).
//! Exit status 0 means every certificate was accepted; anything else —
//! parse errors included — is a rejection with the first offending
//! certificate and reason on stderr.

use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [arg] = args.as_slice() else {
        eprintln!("usage: gtgd-check <certificates-file | ->");
        std::process::exit(2);
    };
    let input = if arg == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        std::fs::read_to_string(arg).unwrap_or_else(|e| {
            eprintln!("cannot read {arg}: {e}");
            std::process::exit(2);
        })
    };
    match gtgd_check::check_all(&input) {
        Ok(n) => println!("{n} certificate(s) accepted"),
        Err((i, e)) => {
            eprintln!("certificate {i} rejected: {e}");
            std::process::exit(1);
        }
    }
}
