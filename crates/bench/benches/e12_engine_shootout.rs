//! E12 — evaluation-engine shootout on acyclic queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtgd_bench::workloads::grid_db;
use gtgd_query::{
    check_answer_yannakakis, decomp_eval::check_answer_decomposed, holds_boolean, parse_cq,
};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_engine_shootout");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let q = parse_cq("Q() :- H(A,B), H(B,C), H(C,D), H(D,E), H(E,F)").unwrap();
    for &n in &[100usize, 400] {
        let db = grid_db(4, n);
        group.bench_with_input(BenchmarkId::new("yannakakis", n), &db, |b, db| {
            b.iter(|| check_answer_yannakakis(&q, db, &[]))
        });
        group.bench_with_input(BenchmarkId::new("decomposition_dp", n), &db, |b, db| {
            b.iter(|| check_answer_decomposed(&q, db, &[]))
        });
        group.bench_with_input(BenchmarkId::new("backtracking", n), &db, |b, db| {
            b.iter(|| holds_boolean(&q, db))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
