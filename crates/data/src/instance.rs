//! Instances and databases: indexed sets of ground atoms.

use crate::atom::GroundAtom;
use crate::columnar::{IndexStats, PredColumns, SortedIndexCache, SortedPermutation};
use crate::dense::{DenseStats, DenseStore, DenseTrie, Dict};
use crate::schema::{Predicate, Schema};
use crate::value::Value;
use gtgd_treewidth::Graph;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Shared static-empty candidate list: the miss path of every index
/// accessor returns this without touching (or hashing into) any map.
const EMPTY_IDS: &[usize] = &[];

/// A finitely materialized instance (the paper's *database* when finite by
/// construction; also used to hold finite prefixes of infinite chase
/// results).
///
/// Maintains secondary indexes by predicate and by `(predicate, position,
/// value)` so homomorphism search and chase trigger matching get selective
/// candidate lists. Insertion order is preserved and deduplicated, so
/// iteration is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    atoms: Vec<GroundAtom>,
    index_of: HashMap<GroundAtom, usize>,
    by_pred: HashMap<Predicate, Vec<usize>>,
    by_pred_pos_val: HashMap<(Predicate, u16, Value), Vec<usize>>,
    dom: Vec<Value>,
    dom_set: HashSet<Value>,
    /// Columnar mirror of the tuples, per `(predicate, arity)` — the
    /// storage the worst-case-optimal join path scans (see
    /// [`crate::columnar`]).
    columns: HashMap<(Predicate, u16), PredColumns>,
    /// Lazily built sorted permutation indexes over `columns`. Interior
    /// mutability: indexes are built on demand through `&Instance` (query
    /// execution never holds `&mut`).
    sorted: SortedIndexCache,
    /// Dense-dictionary encoded mirror of `columns` plus flat sorted trie
    /// levels — the storage the dense WCOJ path scans (see
    /// [`crate::dense`]). Built lazily, extended incrementally, interior
    /// mutability like `sorted`.
    dense: DenseStore,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Builds an instance from atoms, deduplicating.
    pub fn from_atoms(atoms: impl IntoIterator<Item = GroundAtom>) -> Instance {
        let mut i = Instance::new();
        for a in atoms {
            i.insert(a);
        }
        i
    }

    /// Inserts an atom; returns `true` if it was new.
    pub fn insert(&mut self, atom: GroundAtom) -> bool {
        if self.index_of.contains_key(&atom) {
            return false;
        }
        let idx = self.atoms.len();
        self.by_pred.entry(atom.predicate).or_default().push(idx);
        for (pos, &v) in atom.args.iter().enumerate() {
            let pos = u16::try_from(pos).expect("arity fits u16");
            self.by_pred_pos_val
                .entry((atom.predicate, pos, v))
                .or_default()
                .push(idx);
            if self.dom_set.insert(v) {
                self.dom.push(v);
            }
        }
        let arity = u16::try_from(atom.args.len()).expect("arity fits u16");
        self.columns
            .entry((atom.predicate, arity))
            .or_default()
            .push(&atom.args);
        self.index_of.insert(atom.clone(), idx);
        self.atoms.push(atom);
        true
    }

    /// Reserves capacity for `n` further atoms in the primary stores (the
    /// atom vector and the dedup map), so bulk loads — chase round
    /// materialization, [`Instance::extend_from`] — do not rehash/regrow
    /// once per atom.
    pub fn reserve_additional(&mut self, n: usize) {
        self.atoms.reserve(n);
        self.index_of.reserve(n);
    }

    /// Whether the atom is present.
    pub fn contains(&self, atom: &GroundAtom) -> bool {
        self.index_of.contains_key(atom)
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the instance has no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over atoms in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &GroundAtom> {
        self.atoms.iter()
    }

    /// The atom at `idx` (insertion order).
    pub fn atom(&self, idx: usize) -> &GroundAtom {
        &self.atoms[idx]
    }

    /// All atoms in insertion order as one slice — the bulk accessor used
    /// by compiled query plans to resolve candidate indexes without
    /// per-atom bounds checks.
    pub fn atoms(&self) -> &[GroundAtom] {
        &self.atoms
    }

    /// Selectivity of predicate `p`: how many atoms carry it. Equivalent
    /// to `atoms_with_pred(p).len()` without touching the slice.
    pub fn pred_count(&self, p: Predicate) -> usize {
        self.by_pred.get(&p).map_or(0, |v| v.len())
    }

    /// Selectivity of the `(p, pos, v)` index probed by the compiled
    /// kernel: how many atoms with predicate `p` have value `v` at
    /// argument position `pos`.
    pub fn index_count(&self, p: Predicate, pos: usize, v: Value) -> usize {
        if self.by_pred_pos_val.is_empty() {
            return 0;
        }
        let pos = u16::try_from(pos).expect("arity fits u16");
        self.by_pred_pos_val
            .get(&(p, pos, v))
            .map_or(0, |ids| ids.len())
    }

    /// `dom(I)`: distinct constants in first-occurrence order.
    pub fn dom(&self) -> &[Value] {
        &self.dom
    }

    /// Whether `v ∈ dom(I)`.
    pub fn dom_contains(&self, v: Value) -> bool {
        self.dom_set.contains(&v)
    }

    /// Indexes of atoms with the given predicate.
    pub fn atoms_with_pred(&self, p: Predicate) -> &[usize] {
        if self.by_pred.is_empty() {
            return EMPTY_IDS;
        }
        self.by_pred.get(&p).map_or(EMPTY_IDS, |v| v.as_slice())
    }

    /// Indexes of atoms with predicate `p` whose argument at `pos` is `v`.
    pub fn atoms_matching(&self, p: Predicate, pos: usize, v: Value) -> &[usize] {
        if self.by_pred_pos_val.is_empty() {
            return EMPTY_IDS;
        }
        let pos = u16::try_from(pos).expect("arity fits u16");
        self.by_pred_pos_val
            .get(&(p, pos, v))
            .map_or(EMPTY_IDS, |ids| ids.as_slice())
    }

    /// The columnar tuple arena for predicate `p` at the given arity, if
    /// any tuple was inserted (see [`crate::columnar::PredColumns`]).
    pub fn columns(&self, p: Predicate, arity: usize) -> Option<&PredColumns> {
        let arity = u16::try_from(arity).expect("arity fits u16");
        self.columns.get(&(p, arity))
    }

    /// The sorted permutation index of `p`'s tuples (at `arity`) under the
    /// given column order: built by a full sort on first demand, extended
    /// by a sorted-merge of the insert delta on later demands (never a full
    /// re-sort; see [`crate::columnar::SortedIndexCache`]). Cheap to call
    /// when already built and current: one read-lock plus an `Arc` clone.
    pub fn sorted_permutation(
        &self,
        p: Predicate,
        arity: usize,
        order: &[u16],
    ) -> Arc<SortedPermutation> {
        self.sorted
            .get_or_build(p, arity, order, self.columns(p, arity))
    }

    /// Build/extend counters of the sorted-index cache (the incremental
    /// maintenance contract: `full_builds` grows once per distinct index,
    /// `merge_extends` on every delta extension).
    pub fn index_stats(&self) -> IndexStats {
        self.sorted.stats()
    }

    /// A consistent dense-encoded snapshot serving one query: the global
    /// order-preserving dictionary plus, per request
    /// `(predicate, arity, column order)`, the flat sorted trie — `None`
    /// when the relation is empty. Builds or delta-extends stale parts
    /// first; current parts cost one read-lock hold and `Arc` clones (see
    /// [`crate::dense::DenseStore::snapshot`]).
    pub fn dense_snapshot(
        &self,
        reqs: &[(Predicate, usize, &[u16])],
    ) -> (Arc<Dict>, Vec<Option<Arc<DenseTrie>>>) {
        let reqs16: Vec<(Predicate, u16, &[u16])> = reqs
            .iter()
            .map(|&(p, a, o)| (p, u16::try_from(a).expect("arity fits u16"), o))
            .collect();
        self.dense.snapshot(&self.columns, &reqs16)
    }

    /// Counters of the dense store (the append-mostly growth contract:
    /// `remaps` stays at zero while every fresh value — e.g. every
    /// chase-invented null — sorts after the existing maximum).
    pub fn dense_stats(&self) -> DenseStats {
        self.dense.stats()
    }

    /// The distinct predicates appearing in the instance, in first-use order.
    pub fn predicates(&self) -> Vec<Predicate> {
        let mut seen = Vec::new();
        for a in &self.atoms {
            if !seen.contains(&a.predicate) {
                seen.push(a.predicate);
            }
        }
        seen
    }

    /// Infers the schema realized by this instance (each used predicate with
    /// the arity of its first occurrence). Panics if a predicate is used at
    /// two different arities.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for a in &self.atoms {
            s.add(a.predicate, a.arity());
        }
        s
    }

    /// `I|T`: the restriction to atoms mentioning only constants of `keep`.
    pub fn restrict_to(&self, keep: &HashSet<Value>) -> Instance {
        Instance::from_atoms(
            self.atoms
                .iter()
                .filter(|a| a.args.iter().all(|v| keep.contains(v)))
                .cloned(),
        )
    }

    /// Restriction to atoms over the given predicates.
    pub fn restrict_predicates(&self, keep: &HashSet<Predicate>) -> Instance {
        Instance::from_atoms(
            self.atoms
                .iter()
                .filter(|a| keep.contains(&a.predicate))
                .cloned(),
        )
    }

    /// Applies a value mapping to every atom, producing a new instance (the
    /// homomorphic image when `f` is a homomorphism).
    pub fn map_values(&self, f: impl Fn(Value) -> Value) -> Instance {
        Instance::from_atoms(self.atoms.iter().map(|a| a.map(&f)))
    }

    /// Inserts all atoms of `other`. Capacity is reserved up front — in
    /// the primary stores and per predicate — so the bulk load does not
    /// regrow them once per atom.
    pub fn extend_from(&mut self, other: &Instance) {
        self.reserve_additional(other.len());
        for (p, ids) in &other.by_pred {
            self.by_pred.entry(*p).or_default().reserve(ids.len());
        }
        for a in other.iter() {
            self.insert(a.clone());
        }
    }

    /// Whether the tuple `vs` is *guarded* in the instance: some atom
    /// mentions every value of `vs`.
    pub fn is_guarded(&self, vs: &[Value]) -> bool {
        match vs.first() {
            None => !self.is_empty(),
            Some(&v0) => {
                // Scan only atoms containing v0 at some position.
                self.atoms
                    .iter()
                    .any(|a| a.mentions(v0) && vs.iter().all(|&v| a.mentions(v)))
            }
        }
    }

    /// All maximal guarded sets: for each atom, `dom(α)` — deduplicated and
    /// restricted to the ⊆-maximal ones. Used by the guarded unraveling and
    /// the OMQ→CQS reduction.
    pub fn maximal_guarded_sets(&self) -> Vec<Vec<Value>> {
        let mut sets: Vec<Vec<Value>> = Vec::new();
        for a in &self.atoms {
            let mut d = a.dom();
            d.sort_unstable();
            if !sets.contains(&d) {
                sets.push(d);
            }
        }
        let maximal: Vec<Vec<Value>> = sets
            .iter()
            .filter(|s| {
                !sets
                    .iter()
                    .any(|t| t.len() > s.len() && s.iter().all(|v| t.contains(v)))
            })
            .cloned()
            .collect();
        maximal
    }

    /// The Gaifman graph `G_I`: vertices are `dom(I)` (in domain order),
    /// edges join constants co-occurring in an atom. Returns the graph and
    /// the vertex-id → value mapping.
    pub fn gaifman(&self) -> (Graph, Vec<Value>) {
        let mut id_of: HashMap<Value, usize> = HashMap::new();
        for (i, &v) in self.dom.iter().enumerate() {
            id_of.insert(v, i);
        }
        let mut g = Graph::new(self.dom.len());
        for a in &self.atoms {
            let d = a.dom();
            for (i, &u) in d.iter().enumerate() {
                for &v in &d[i + 1..] {
                    g.add_edge(id_of[&u], id_of[&v]);
                }
            }
        }
        (g, self.dom.clone())
    }

    /// A constant is *isolated* if exactly one atom mentions it
    /// (Section 6 / Theorem 6.1).
    pub fn is_isolated(&self, v: Value) -> bool {
        self.atoms.iter().filter(|a| a.mentions(v)).count() == 1
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|a| other.contains(a))
    }
}

impl Eq for Instance {}

impl FromIterator<GroundAtom> for Instance {
    fn from_iter<T: IntoIterator<Item = GroundAtom>>(iter: T) -> Instance {
        Instance::from_atoms(iter)
    }
}

impl std::fmt::Display for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    #[test]
    fn insert_dedup_and_indexes() {
        let mut i = Instance::new();
        assert!(i.insert(GroundAtom::named("R", &["a", "b"])));
        assert!(!i.insert(GroundAtom::named("R", &["a", "b"])));
        assert!(i.insert(GroundAtom::named("R", &["b", "c"])));
        assert_eq!(i.len(), 2);
        assert_eq!(i.atoms_with_pred(Predicate::new("R")).len(), 2);
        assert_eq!(i.atoms_matching(Predicate::new("R"), 0, v("a")).len(), 1);
        assert_eq!(i.atoms_matching(Predicate::new("R"), 1, v("b")).len(), 1);
        assert!(i.atoms_matching(Predicate::new("R"), 0, v("z")).is_empty());
        assert_eq!(i.dom(), &[v("a"), v("b"), v("c")]);
    }

    #[test]
    fn selectivity_accessors_match_slices() {
        let mut i = Instance::new();
        i.insert(GroundAtom::named("R", &["a", "b"]));
        i.insert(GroundAtom::named("R", &["a", "c"]));
        i.insert(GroundAtom::named("S", &["a"]));
        let r = Predicate::new("R");
        assert_eq!(i.atoms().len(), i.len());
        assert_eq!(i.pred_count(r), i.atoms_with_pred(r).len());
        assert_eq!(i.pred_count(Predicate::new("T")), 0);
        assert_eq!(
            i.index_count(r, 0, v("a")),
            i.atoms_matching(r, 0, v("a")).len()
        );
        assert_eq!(i.index_count(r, 1, v("z")), 0);
    }

    #[test]
    fn set_equality_ignores_order() {
        let i1 = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("P", &["c"]),
        ]);
        let i2 = Instance::from_atoms([
            GroundAtom::named("P", &["c"]),
            GroundAtom::named("R", &["a", "b"]),
        ]);
        assert_eq!(i1, i2);
    }

    #[test]
    fn restriction_by_values() {
        let i = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("R", &["b", "c"]),
            GroundAtom::named("P", &["a"]),
        ]);
        let keep: HashSet<Value> = [v("a"), v("b")].into_iter().collect();
        let r = i.restrict_to(&keep);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&GroundAtom::named("R", &["a", "b"])));
        assert!(r.contains(&GroundAtom::named("P", &["a"])));
    }

    #[test]
    fn gaifman_graph_of_triangle_fact() {
        let i = Instance::from_atoms([GroundAtom::named("T", &["a", "b", "c"])]);
        let (g, vals) = i.gaifman();
        assert_eq!(vals.len(), 3);
        assert_eq!(g.edge_count(), 3); // a 3-ary atom induces a triangle
    }

    #[test]
    fn guardedness_checks() {
        let i = Instance::from_atoms([
            GroundAtom::named("T", &["a", "b", "c"]),
            GroundAtom::named("R", &["c", "d"]),
        ]);
        assert!(i.is_guarded(&[v("a"), v("c")]));
        assert!(!i.is_guarded(&[v("a"), v("d")]));
        assert!(i.is_guarded(&[]));
        let max = i.maximal_guarded_sets();
        assert_eq!(max.len(), 2);
    }

    #[test]
    fn isolation() {
        let i = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("R", &["b", "c"]),
        ]);
        assert!(i.is_isolated(v("a")));
        assert!(!i.is_isolated(v("b")));
    }

    #[test]
    fn map_values_applies_substitution() {
        let i = Instance::from_atoms([GroundAtom::named("R", &["a", "b"])]);
        let j = i.map_values(|x| if x == v("a") { v("z") } else { x });
        assert!(j.contains(&GroundAtom::named("R", &["z", "b"])));
    }

    #[test]
    fn columnar_arena_mirrors_insertion_order() {
        let mut i = Instance::new();
        i.insert(GroundAtom::named("R", &["a", "b"]));
        i.insert(GroundAtom::named("R", &["a", "b"])); // duplicate: no row
        i.insert(GroundAtom::named("R", &["c", "d"]));
        i.insert(GroundAtom::named("S", &["e"]));
        let r = i.columns(Predicate::new("R"), 2).unwrap();
        assert_eq!(r.rows(), 2);
        assert_eq!(r.col(0), &[v("a"), v("c")]);
        assert_eq!(r.col(1), &[v("b"), v("d")]);
        assert!(i.columns(Predicate::new("R"), 3).is_none());
        assert!(i.columns(Predicate::new("T"), 2).is_none());
    }

    /// Reference argsort over the arena (by key tuple, then row id).
    fn naive_perm(i: &Instance, p: Predicate, arity: usize, order: &[u16]) -> Vec<u32> {
        let pc = i.columns(p, arity).unwrap();
        let mut ids: Vec<u32> = (0..pc.rows() as u32).collect();
        ids.sort_by_key(|&r| {
            let key: Vec<Value> = order
                .iter()
                .map(|&j| pc.col(j as usize)[r as usize])
                .collect();
            (key, r)
        });
        ids
    }

    #[test]
    fn sorted_permutation_is_incremental_across_inserts() {
        let mut i = Instance::new();
        i.insert(GroundAtom::named("E", &["c", "x"]));
        i.insert(GroundAtom::named("E", &["a", "y"]));
        let e = Predicate::new("E");
        let first = i.sorted_permutation(e, 2, &[0, 1]);
        assert_eq!(first.perm(), naive_perm(&i, e, 2, &[0, 1]));
        assert_eq!(i.index_stats().full_builds, 1);
        i.insert(GroundAtom::named("E", &["b", "z"]));
        let second = i.sorted_permutation(e, 2, &[0, 1]);
        assert_eq!(second.perm(), naive_perm(&i, e, 2, &[0, 1]));
        let stats = i.index_stats();
        assert_eq!(stats.full_builds, 1);
        assert_eq!(stats.merge_extends, 1);
        assert_eq!(stats.indexes, 1);
    }

    #[test]
    fn clones_carry_independent_index_caches() {
        let mut i = Instance::new();
        i.insert(GroundAtom::named("E", &["b", "x"]));
        i.sorted_permutation(Predicate::new("E"), 2, &[0, 1]);
        let mut j = i.clone();
        j.insert(GroundAtom::named("E", &["a", "w"]));
        let sp = j.sorted_permutation(Predicate::new("E"), 2, &[0, 1]);
        assert_eq!(sp.perm(), naive_perm(&j, Predicate::new("E"), 2, &[0, 1]));
        // The clone extended its own cache; the original is untouched.
        assert_eq!(j.index_stats().merge_extends, 1);
        assert_eq!(i.index_stats().merge_extends, 0);
    }

    #[test]
    fn reserve_and_extend_preserve_contents() {
        let mut i = Instance::new();
        i.reserve_additional(16);
        i.insert(GroundAtom::named("R", &["a", "b"]));
        let other = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("R", &["b", "c"]),
            GroundAtom::named("P", &["a"]),
        ]);
        i.extend_from(&other);
        assert_eq!(i.len(), 3);
        assert_eq!(i.pred_count(Predicate::new("R")), 2);
        assert_eq!(i.pred_count(Predicate::new("P")), 1);
    }

    #[test]
    fn schema_inference() {
        let i = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("P", &["a"]),
        ]);
        let s = i.schema();
        assert_eq!(s.arity(Predicate::new("R")), Some(2));
        assert_eq!(s.arity(Predicate::new("P")), Some(1));
        assert_eq!(s.max_arity(), 2);
    }
}
