//! Std-only data parallelism: a scoped-thread worker pool with chunked work
//! distribution.
//!
//! The hot paths of the system — chase trigger search, homomorphism
//! enumeration, experiment series — are embarrassingly parallel over
//! independent items (triggers, candidate tuples, experiments). This module
//! provides the one primitive they all share: split a slice into chunks,
//! process chunks on a fixed set of scoped worker threads pulling from a
//! shared atomic counter, and return the per-chunk results **in chunk
//! order**, independent of thread scheduling.
//!
//! Determinism contract: `map_chunks(items, f)` returns exactly
//! `chunks(items).map(f)` — the same result as the sequential loop, for any
//! worker count and any interleaving. Callers that need reproducible output
//! (the parallel chase's canonical trigger ordering, answer enumeration)
//! get it by construction: all nondeterminism is confined to *when* a chunk
//! runs, never to *where its result lands*.
//!
//! There is no work stealing and no channel machinery: workers race on a
//! single `AtomicUsize` for the next chunk index and write results into
//! their own slot vectors. Chunks are over-partitioned (more chunks than
//! workers) so stragglers re-balance naturally.

use crate::obs;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many chunks to split work into, independent of worker count. A
/// width-independent chunking makes [`Pool::map_chunks`] return an
/// *identical* vector for any worker count (not merely an equal multiset),
/// and 64 chunks over-partitions any plausible pool (≤ 16 workers) enough
/// that stragglers re-balance naturally.
const TARGET_CHUNKS: usize = 64;

/// A worker-pool configuration. `Pool` is cheap to construct — threads are
/// scoped per call, not kept alive — so it is a value type describing *how
/// wide* to run, not a handle to live threads.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool with exactly `workers` workers (clamped to ≥ 1).
    pub fn with_workers(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
        }
    }

    /// A pool sized by the environment: `GTGD_JOBS` if set, otherwise the
    /// number of available hardware threads.
    pub fn from_env() -> Pool {
        Pool::with_workers(default_workers())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to chunks of `items`, in parallel, returning the
    /// per-chunk results in chunk order. `f` receives the chunk's starting
    /// offset into `items` and the chunk itself.
    ///
    /// Sequential fallback: with one worker, one chunk, or an empty input
    /// this runs inline on the calling thread (no spawn cost, identical
    /// results).
    pub fn map_chunks<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(usize, &[T]) -> R + Sync,
    ) -> Vec<R> {
        if items.is_empty() {
            return Vec::new();
        }
        let chunk_size = items.len().div_ceil(TARGET_CHUNKS).max(1);
        let chunks: Vec<(usize, &[T])> = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(i, c)| (i * chunk_size, c))
            .collect();
        if self.workers == 1 || chunks.len() == 1 {
            return chunks.into_iter().map(|(off, c)| f(off, c)).collect();
        }
        let spawned = self.workers.min(chunks.len());
        obs::count(obs::Metric::PoolRuns, 1);
        obs::record_max(obs::Metric::PoolMaxWidth, spawned as u64);
        let next = AtomicUsize::new(0);
        let mut per_worker: Vec<Vec<(usize, R)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..spawned)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&(off, chunk)) = chunks.get(i) else {
                                return mine;
                            };
                            mine.push((i, f(off, chunk)));
                        }
                    })
                })
                .collect();
            for h in handles {
                let mine = h.join().expect("pool worker panicked");
                obs::count(obs::Metric::PoolChunksClaimed, mine.len() as u64);
                obs::observe(obs::Hist::PoolWorkerChunks, mine.len() as u64);
                per_worker.push(mine);
            }
        });
        let mut slots: Vec<Option<R>> = (0..chunks.len()).map(|_| None).collect();
        for (i, r) in per_worker.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every chunk claimed exactly once"))
            .collect()
    }

    /// Like [`Pool::map_chunks`], but each worker owns a mutable state for
    /// the duration of the call (e.g. a memo table that warms up across
    /// items). `items` is split into `states.len()` contiguous slices, one
    /// per state, and the per-slice results come back in slice order.
    ///
    /// Unlike `map_chunks`, slice boundaries depend on `states.len()`, so
    /// only callers whose per-slice results are order-insensitive after a
    /// flatten/merge (e.g. set insertion) should use this.
    pub fn map_with_state<T: Sync, S: Send, R: Send>(
        &self,
        items: &[T],
        states: &mut [S],
        f: impl Fn(&mut S, usize, &[T]) -> R + Sync,
    ) -> Vec<R> {
        assert!(!states.is_empty(), "need at least one worker state");
        if items.is_empty() {
            return Vec::new();
        }
        let n = states.len().min(items.len());
        if n == 1 || self.workers == 1 {
            return vec![f(&mut states[0], 0, items)];
        }
        let chunk = items.len().div_ceil(n);
        obs::count(obs::Metric::PoolRuns, 1);
        obs::record_max(obs::Metric::PoolMaxWidth, n as u64);
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = states[..n]
                .iter_mut()
                .zip(items.chunks(chunk))
                .enumerate()
                .map(|(i, (s, c))| scope.spawn(move || f(s, i * chunk, c)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        })
    }

    /// Like [`Pool::map`], but `f` also receives the claiming worker's id
    /// and the item index: `f(worker, index, item)`. Items are claimed one
    /// at a time off a shared atomic counter, so an idle worker *steals*
    /// whatever task is next regardless of any notional home assignment —
    /// this is the execution substrate for morsel-driven parallelism
    /// (callers treat each item as a morsel and use `worker`/`index` for
    /// steal accounting and per-worker timing). Results come back in item
    /// order, for any worker count.
    pub fn run_tasks<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(usize, usize, &T) -> R + Sync,
    ) -> Vec<R> {
        if items.is_empty() {
            return Vec::new();
        }
        let spawned = self.workers.min(items.len());
        if spawned == 1 {
            return items.iter().enumerate().map(|(i, t)| f(0, i, t)).collect();
        }
        obs::count(obs::Metric::PoolRuns, 1);
        obs::record_max(obs::Metric::PoolMaxWidth, spawned as u64);
        let next = AtomicUsize::new(0);
        let mut per_worker: Vec<Vec<(usize, R)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..spawned)
                .map(|w| {
                    let next = &next;
                    let f = &f;
                    scope.spawn(move || {
                        let mut mine: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else {
                                return mine;
                            };
                            mine.push((i, f(w, i, item)));
                        }
                    })
                })
                .collect();
            for h in handles {
                let mine = h.join().expect("pool worker panicked");
                obs::count(obs::Metric::PoolChunksClaimed, mine.len() as u64);
                obs::observe(obs::Hist::PoolWorkerChunks, mine.len() as u64);
                per_worker.push(mine);
            }
        });
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in per_worker.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every task claimed exactly once"))
            .collect()
    }

    /// Applies `f` to every item, in parallel, returning results in item
    /// order. Each item is its own unit of work — use for few, coarse tasks
    /// (e.g. independent experiment series); prefer [`Pool::map_chunks`]
    /// for many fine-grained items.
    pub fn map<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        if items.is_empty() {
            return Vec::new();
        }
        let chunks: Vec<&[T]> = items.chunks(1).collect();
        if self.workers == 1 || chunks.len() == 1 {
            return items.iter().map(f).collect();
        }
        let spawned = self.workers.min(items.len());
        obs::count(obs::Metric::PoolRuns, 1);
        obs::record_max(obs::Metric::PoolMaxWidth, spawned as u64);
        let next = AtomicUsize::new(0);
        let mut per_worker: Vec<Vec<(usize, R)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..spawned)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else {
                                return mine;
                            };
                            mine.push((i, f(item)));
                        }
                    })
                })
                .collect();
            for h in handles {
                per_worker.push(h.join().expect("pool worker panicked"));
            }
        });
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in per_worker.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every item claimed exactly once"))
            .collect()
    }
}

/// The default worker count: `GTGD_JOBS` if set to a positive integer,
/// otherwise the available hardware parallelism.
pub fn default_workers() -> usize {
    if let Ok(s) = std::env::var("GTGD_JOBS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_chunks_matches_sequential_for_any_width() {
        let items: Vec<usize> = (0..103).collect();
        let expect: Vec<usize> =
            Pool::with_workers(1).map_chunks(&items, |_, c| c.iter().sum::<usize>());
        for w in [2, 3, 4, 8] {
            let got = Pool::with_workers(w).map_chunks(&items, |_, c| c.iter().sum::<usize>());
            assert_eq!(got, expect, "width {w}");
        }
    }

    #[test]
    fn chunk_offsets_tile_the_input() {
        let items: Vec<u32> = (0..57).collect();
        let spans = Pool::with_workers(4).map_chunks(&items, |off, c| (off, c.len()));
        let mut pos = 0;
        for (off, len) in spans {
            assert_eq!(off, pos);
            pos += len;
        }
        assert_eq!(pos, items.len());
    }

    #[test]
    fn run_tasks_preserves_item_order_and_covers_all() {
        let items: Vec<usize> = (0..41).collect();
        for w in [1usize, 2, 5, 9] {
            let got = Pool::with_workers(w).run_tasks(&items, |worker, i, &x| {
                assert!(worker < w);
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(
                got,
                items.iter().map(|&x| x * 3).collect::<Vec<_>>(),
                "width {w}"
            );
        }
        let none: Vec<u8> = Vec::new();
        assert!(Pool::with_workers(4)
            .run_tasks(&none, |_, _, &x| x)
            .is_empty());
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<i64> = (0..37).collect();
        let got = Pool::with_workers(5).map(&items, |&x| x * 2);
        assert_eq!(got, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let none: Vec<u8> = Vec::new();
        assert!(Pool::with_workers(4)
            .map_chunks(&none, |_, c| c.len())
            .is_empty());
        assert!(Pool::with_workers(4).map(&none, |&x| x).is_empty());
    }

    #[test]
    fn all_items_processed_exactly_once() {
        static HITS: AtomicUsize = AtomicUsize::new(0);
        let items: Vec<usize> = (0..256).collect();
        HITS.store(0, Ordering::SeqCst);
        let _ = Pool::with_workers(6).map_chunks(&items, |_, c| {
            HITS.fetch_add(c.len(), Ordering::SeqCst);
        });
        assert_eq!(HITS.load(Ordering::SeqCst), 256);
    }

    #[test]
    fn workers_clamped_to_one() {
        assert_eq!(Pool::with_workers(0).workers(), 1);
    }

    #[test]
    fn map_with_state_covers_every_item_once() {
        let items: Vec<usize> = (0..97).collect();
        for w in [1usize, 2, 3, 8] {
            let mut states: Vec<Vec<usize>> = vec![Vec::new(); w];
            let sums = Pool::with_workers(w).map_with_state(&items, &mut states, |s, off, c| {
                s.extend(c.iter().copied());
                (off, c.iter().sum::<usize>())
            });
            let total: usize = sums.iter().map(|&(_, s)| s).sum();
            assert_eq!(total, items.iter().sum::<usize>(), "width {w}");
            let mut seen: Vec<usize> = states.into_iter().flatten().collect();
            seen.sort_unstable();
            assert_eq!(seen, items, "width {w}");
            // Slice results arrive in slice order.
            let offs: Vec<usize> = sums.iter().map(|&(o, _)| o).collect();
            let mut sorted = offs.clone();
            sorted.sort_unstable();
            assert_eq!(offs, sorted);
        }
    }

    #[test]
    fn map_with_state_more_states_than_items() {
        let items = [1u32, 2];
        let mut states = vec![0u32; 8];
        let r = Pool::with_workers(8).map_with_state(&items, &mut states, |s, _, c| {
            *s += 1;
            c.len()
        });
        assert_eq!(r.iter().sum::<usize>(), 2);
    }
}
