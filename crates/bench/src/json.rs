//! Minimal JSON emission for the experiment tables.
//!
//! The build is offline, so instead of serde we hand-roll the one JSON
//! shape we need: a pretty-printed array of experiment-table objects with
//! string-only leaves. The output is byte-compatible with what
//! `serde_json::to_string_pretty` produced for the previous derive, so
//! downstream consumers of `experiments_results.json` are unaffected.

use crate::experiments::ExperimentTable;

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn string_array(items: &[String], indent: &str) -> String {
    if items.is_empty() {
        return "[]".into();
    }
    let inner: Vec<String> = items
        .iter()
        .map(|s| format!("{indent}  \"{}\"", escape(s)))
        .collect();
    format!("[\n{}\n{indent}]", inner.join(",\n"))
}

/// Renders one table as a pretty-printed JSON object at the given
/// indentation depth.
pub fn table_to_json(t: &ExperimentTable, indent: &str) -> String {
    let i2 = format!("{indent}  ");
    let i3 = format!("{indent}    ");
    let rows: Vec<String> = t
        .rows
        .iter()
        .map(|r| format!("{i3}{}", string_array(r, &i3)))
        .collect();
    let rows_json = if rows.is_empty() {
        "[]".into()
    } else {
        format!("[\n{}\n{i2}]", rows.join(",\n"))
    };
    format!(
        "{indent}{{\n\
         {i2}\"id\": \"{}\",\n\
         {i2}\"title\": \"{}\",\n\
         {i2}\"claim\": \"{}\",\n\
         {i2}\"columns\": {},\n\
         {i2}\"rows\": {},\n\
         {i2}\"notes\": \"{}\"\n\
         {indent}}}",
        escape(&t.id),
        escape(&t.title),
        escape(&t.claim),
        string_array(&t.columns, &i2),
        rows_json,
        escape(&t.notes),
    )
}

/// Renders a list of tables as a pretty-printed JSON array.
pub fn tables_to_json(tables: &[ExperimentTable]) -> String {
    if tables.is_empty() {
        return "[]".into();
    }
    let items: Vec<String> = tables.iter().map(|t| table_to_json(t, "  ")).collect();
    format!("[\n{}\n]", items.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentTable {
        ExperimentTable {
            id: "E0".into(),
            title: "a \"quoted\" title".into(),
            claim: "line\nbreak".into(),
            columns: vec!["n".into(), "ms".into()],
            rows: vec![vec!["1".into(), "2.5".into()]],
            notes: String::new(),
        }
    }

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn renders_valid_shape() {
        let json = tables_to_json(&[sample()]);
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"id\": \"E0\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("line\\nbreak"));
        // Balanced braces/brackets (no strings contain them in the sample).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_cases() {
        assert_eq!(tables_to_json(&[]), "[]");
        let mut t = sample();
        t.rows.clear();
        t.columns.clear();
        let json = tables_to_json(&[t]);
        assert!(json.contains("\"columns\": []"));
        assert!(json.contains("\"rows\": []"));
    }
}
