//! Worst-case-optimal join execution: leapfrog triejoin over the columnar
//! sorted-trie indexes of `gtgd-data`.
//!
//! The backtracking kernel ([`crate::compile::KernelSearch`]) matches one
//! *atom* at a time; on cyclic bodies (triangles, cliques — the paper's
//! hardness core, Thms 5.4/5.13) its intermediate candidate sets can exceed
//! the AGM fractional-cover bound by polynomial factors. This module binds
//! one *variable* at a time instead: every atom containing the current
//! variable exposes a sorted trie iterator, and a leapfrog intersection
//! enumerates exactly the values present in *all* of them. The total work
//! is within the worst-case-optimal bound for the chosen variable order.
//!
//! The executor is generic over the **key representation** ([`TrieKeys`] +
//! [`Codec`]), with two instantiations behind the kernel's runtime gate
//! ([`crate::compile::Repr`]):
//!
//! * **generic** — keys are [`Value`]s read through a
//!   [`gtgd_data::SortedPermutation`] indirection
//!   (`cols[level][perm[i]]`): always available, zero preprocessing
//!   beyond the sorted index.
//! * **dense** — keys are `u32` codes from the instance's
//!   order-preserving dictionary ([`gtgd_data::Dict`]), read from the
//!   flat per-level arrays of a [`gtgd_data::DenseTrie`]: one
//!   cache-linear load per key, 4-byte comparisons, decode back to
//!   [`Value`] only at answer materialization (and mode checks).
//!
//! Three pieces live here:
//!
//! * [`build_plan`] — the planner: a global variable (slot) order — seeded
//!   guard-first from the widest atom, grown connected-first, degree then
//!   min-slot tie-breaks — plus, per atom, the trie level layout (which
//!   column is keyed by which depth, constants first).
//! * [`prefers_wcoj`] — the gate: slot-level GYO acyclicity test plus a
//!   high-arity multiway-join trigger. Acyclic low-join queries keep the
//!   backtracker (it wins on paths and stars with selective constants).
//! * [`WcojRun`] — the executor: trie cursors with `open`/`seek`/`next`/
//!   `up`, recursing over the variable order. Semantics (fixed slots,
//!   injectivity, image restriction, skipped atoms) mirror the
//!   backtracker exactly; `tests/differential_wcoj.rs` and
//!   `tests/differential_dense.rs` prove answer-set equality across all
//!   three paths. [`WcojRun::split_probe`] exposes the next unbound
//!   intersection to the morsel scheduler
//!   ([`crate::compile::KernelSearch::par_table`]).

use crate::compile::{CAtom, CTerm};
use gtgd_data::{obs, DenseTrie, Dict, Instance, SortedPermutation, Value};
use std::collections::HashSet;
use std::ops::ControlFlow;
use std::sync::Arc;

/// What keys one trie level of one atom: an inline constant (descended
/// before any variable is bound) or the variable bound at a global depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LevelKey {
    /// The level's column holds this constant on every matching row.
    Const(Value),
    /// The level's column is keyed by the slot bound at this depth of the
    /// global variable order.
    Depth(u32),
}

/// One atom's trie layout: the column order its sorted index is requested
/// in, and what keys each level.
#[derive(Debug, Clone)]
pub(crate) struct AtomPlan {
    pub(crate) predicate: gtgd_data::Predicate,
    pub(crate) arity: usize,
    /// Term positions in trie-level order: constants first, then positions
    /// in increasing depth of their slot (position order within a depth).
    pub(crate) col_order: Vec<u16>,
    /// Aligned with `col_order`.
    pub(crate) keys: Vec<LevelKey>,
}

/// A compiled worst-case-optimal execution plan: the global variable order
/// plus per-atom trie layouts. Built once per [`crate::CompiledQuery`].
#[derive(Debug, Clone)]
pub(crate) struct WcojPlan {
    /// `order[d]` is the slot bound at depth `d`. Slots that occur in no
    /// atom (ghost slots) come last.
    pub(crate) order: Vec<u32>,
    /// One plan per compiled atom (same indexing).
    pub(crate) atoms: Vec<AtomPlan>,
}

/// Distinct slots of an atom, in first-occurrence order.
fn atom_slots(a: &CAtom) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    for t in &a.terms {
        if let CTerm::Slot(s) = *t {
            if !out.contains(&s) {
                out.push(s);
            }
        }
    }
    out
}

/// Slot-level GYO reduction: `true` iff the hypergraph whose edges are the
/// atoms' slot sets is α-acyclic. (The query-level test in
/// [`crate::acyclic`] works on `Cq`/`Var`; this one runs at compile time
/// on interned slots.)
fn slots_acyclic(atoms: &[CAtom], slot_count: usize) -> bool {
    let mut edges: Vec<Vec<u32>> = atoms
        .iter()
        .map(|a| {
            let mut s = atom_slots(a);
            s.sort_unstable();
            s
        })
        .filter(|s| !s.is_empty())
        .collect();
    edges.sort();
    edges.dedup();
    loop {
        let mut changed = false;
        // Ear rule 1: drop vertices occurring in at most one edge.
        let mut occurs = vec![0usize; slot_count];
        for e in &edges {
            for &s in e {
                occurs[s as usize] += 1;
            }
        }
        for e in &mut edges {
            let before = e.len();
            e.retain(|&s| occurs[s as usize] > 1);
            changed |= e.len() != before;
        }
        // Ear rule 2: drop edges contained in another edge (and empties).
        let snapshot = edges.clone();
        let before = edges.len();
        edges.retain(|e| {
            !e.is_empty()
                && !snapshot
                    .iter()
                    .any(|f| f.len() > e.len() && e.iter().all(|s| f.contains(s)))
        });
        edges.sort();
        edges.dedup();
        changed |= edges.len() != before;
        if !changed {
            return edges.is_empty();
        }
    }
}

/// The planner gate: worst-case-optimal execution pays off on cyclic
/// bodies (its raison d'être) and on high-arity multiway joins where one
/// variable is shared by three or more atoms. Everything else — paths,
/// low-join lookups, E12's acyclic workloads — keeps the backtracker.
pub(crate) fn prefers_wcoj(atoms: &[CAtom], slot_count: usize) -> bool {
    if atoms.len() < 2 {
        return false;
    }
    if !slots_acyclic(atoms, slot_count) {
        return true;
    }
    if atoms.len() < 3 {
        return false;
    }
    let mut degree = vec![0usize; slot_count];
    for a in atoms {
        for s in atom_slots(a) {
            degree[s as usize] += 1;
        }
    }
    degree.iter().any(|&d| d >= 3)
}

/// Chooses the global variable order and builds per-atom trie layouts.
///
/// Order heuristic: seed with the *guard* — the atom with the most
/// distinct slots (widest scheme; in guarded bodies this is the guard
/// atom) — then repeatedly append the unordered slot sharing an atom with
/// an already-ordered slot (connectedness), preferring highest degree
/// (most atoms constrain it), breaking ties by smallest slot. Ghost slots
/// (interned but absent from every atom) are appended last.
pub(crate) fn build_plan(atoms: &[CAtom], slot_count: usize) -> WcojPlan {
    let slots_per_atom: Vec<Vec<u32>> = atoms.iter().map(atom_slots).collect();
    let mut degree = vec![0usize; slot_count];
    let mut occurring = vec![false; slot_count];
    for sa in &slots_per_atom {
        for &s in sa {
            degree[s as usize] += 1;
            occurring[s as usize] = true;
        }
    }
    let total_occurring = occurring.iter().filter(|&&b| b).count();
    let mut chosen = vec![false; slot_count];
    let mut order: Vec<u32> = Vec::with_capacity(slot_count);
    while order.len() < total_occurring {
        // Connected candidates: unchosen slots sharing an atom with a
        // chosen slot.
        let mut cands: Vec<u32> = Vec::new();
        for sa in &slots_per_atom {
            if sa.iter().any(|&s| chosen[s as usize]) {
                for &s in sa {
                    if !chosen[s as usize] && !cands.contains(&s) {
                        cands.push(s);
                    }
                }
            }
        }
        if cands.is_empty() {
            // New component: guard-first — the widest atom with any
            // unchosen slot seeds the candidates.
            let guard = slots_per_atom
                .iter()
                .enumerate()
                .filter(|(_, sa)| sa.iter().any(|&s| !chosen[s as usize]))
                .max_by_key(|(i, sa)| (sa.len(), std::cmp::Reverse(*i)))
                .map(|(i, _)| i)
                .expect("unchosen occurring slot implies a candidate atom");
            cands = slots_per_atom[guard]
                .iter()
                .copied()
                .filter(|&s| !chosen[s as usize])
                .collect();
        }
        let best = cands
            .into_iter()
            .min_by_key(|&s| (std::cmp::Reverse(degree[s as usize]), s))
            .expect("candidates nonempty");
        chosen[best as usize] = true;
        order.push(best);
    }
    for s in 0..slot_count as u32 {
        if !chosen[s as usize] {
            order.push(s);
        }
    }
    let mut depth_of = vec![u32::MAX; slot_count];
    for (d, &s) in order.iter().enumerate() {
        depth_of[s as usize] = d as u32;
    }
    let atom_plans = atoms
        .iter()
        .map(|a| {
            // (turn, position) sort: constants (turn −1) descend at init,
            // then levels in depth order; within one depth, term-position
            // order (the first is the intersection's primary, the rest are
            // repeated-variable checks).
            let mut levels: Vec<(i64, u16, LevelKey)> = a
                .terms
                .iter()
                .enumerate()
                .map(|(pos, t)| {
                    let pos = u16::try_from(pos).expect("arity fits u16");
                    match *t {
                        CTerm::Const(c) => (-1i64, pos, LevelKey::Const(c)),
                        CTerm::Slot(s) => {
                            let d = depth_of[s as usize];
                            (d as i64, pos, LevelKey::Depth(d))
                        }
                    }
                })
                .collect();
            levels.sort_by_key(|&(turn, pos, _)| (turn, pos));
            AtomPlan {
                predicate: a.predicate,
                arity: a.terms.len(),
                col_order: levels.iter().map(|&(_, pos, _)| pos).collect(),
                keys: levels.iter().map(|&(_, _, k)| k).collect(),
            }
        })
        .collect();
    WcojPlan {
        order,
        atoms: atom_plans,
    }
}

// ---------------------------------------------------------------------
// Key representations
// ---------------------------------------------------------------------

/// Sorted trie keys of one atom: `key_at(level, i)` is the key of the
/// `i`-th row (in trie-sorted order) at trie level `level`. Keys compare
/// in value order in both representations, which is what keeps leapfrog
/// intersections valid across atoms.
pub(crate) trait TrieKeys {
    /// The key type: [`Value`] (generic) or `u32` codes (dense).
    type K: Copy + Ord;
    fn rows(&self) -> usize;
    fn key_at(&self, level: usize, i: usize) -> Self::K;
    /// A pointer-identity of the backing sorted source: equal ids mean
    /// `key_at` reads the same data (same relation, same column order),
    /// so equal row ranges hold equal keys at every level.
    fn source_id(&self) -> usize;
}

/// Encoding between [`Value`]s and a representation's keys, shared by all
/// atoms of one run (the dense side holds the instance's global
/// dictionary).
pub(crate) trait Codec {
    /// Matches the paired [`TrieKeys::K`].
    type K: Copy + Ord;
    /// `None` means the value provably occurs in no scanned relation.
    fn encode(&self, v: Value) -> Option<Self::K>;
    fn decode(&self, k: Self::K) -> Value;
}

/// Generic representation: `Value` keys behind the sorted-permutation
/// indirection.
pub(crate) struct GenericKeys<'a> {
    perm: Arc<SortedPermutation>,
    /// Per level, the arena column it keys on.
    cols: Vec<&'a [Value]>,
}

impl TrieKeys for GenericKeys<'_> {
    type K = Value;

    fn rows(&self) -> usize {
        self.perm.len()
    }

    #[inline]
    fn key_at(&self, level: usize, i: usize) -> Value {
        self.cols[level][self.perm.perm()[i] as usize]
    }

    fn source_id(&self) -> usize {
        // The permutation cache hands out one `Arc` per `(predicate,
        // arity, col_order)`, so pointer equality pins both the relation
        // and the level→column mapping.
        Arc::as_ptr(&self.perm) as usize
    }
}

/// Identity codec for the generic representation.
pub(crate) struct GenericCodec;

impl Codec for GenericCodec {
    type K = Value;

    #[inline]
    fn encode(&self, v: Value) -> Option<Value> {
        Some(v)
    }

    #[inline]
    fn decode(&self, k: Value) -> Value {
        k
    }
}

/// The dense codec: the instance's global order-preserving dictionary,
/// borrowed from the run's [`DenseSnapshot`].
pub(crate) struct DenseCodec<'a> {
    dict: &'a Dict,
}

impl Codec for DenseCodec<'_> {
    type K = u32;

    #[inline]
    fn encode(&self, v: Value) -> Option<u32> {
        self.dict.code(v)
    }

    #[inline]
    fn decode(&self, k: u32) -> Value {
        self.dict.decode(k)
    }
}

/// One query's consistent view of the dense store: the dictionary plus
/// the trie of every active atom, from a single epoch. Owned by the
/// caller so the run (and its cursors) can borrow plain slices out of it
/// — the executor's hot loop then runs on `&[u32]` with no `Arc`
/// indirection.
pub(crate) struct DenseSnapshot {
    dict: Arc<Dict>,
    /// Aligned with the plan's atoms **after** the skip filter; `None`
    /// marks an empty relation.
    tries: Vec<Option<Arc<DenseTrie>>>,
}

impl DenseSnapshot {
    /// Takes one consistent snapshot serving every non-skipped atom of
    /// `wplan` against `target`.
    pub(crate) fn take(wplan: &WcojPlan, target: &Instance, skip: Option<usize>) -> DenseSnapshot {
        let reqs: Vec<(gtgd_data::Predicate, usize, &[u16])> = wplan
            .atoms
            .iter()
            .enumerate()
            .filter(|&(i, _)| Some(i) != skip)
            .map(|(_, ap)| (ap.predicate, ap.arity, ap.col_order.as_slice()))
            .collect();
        let (dict, tries) = target.dense_snapshot(&reqs);
        DenseSnapshot { dict, tries }
    }
}

// ---------------------------------------------------------------------
// Cursors
// ---------------------------------------------------------------------

/// Below this range width, seeks scan linearly instead of galloping: on
/// short runs (tight key groups, small relations — the E4 k=2 regime) the
/// branchy exponential probe loses to a straight-line scan the optimizer
/// can unroll.
const LINEAR_SEEK_THRESHOLD: usize = 16;

/// The trie-iterator interface the executor recursion drives. Two
/// implementations: [`Cursor`] walks the generic sorted-run
/// representation (row-duplicated keys behind a permutation, key groups
/// found by bound searches); [`CsrCursor`] walks the dense CSR trie
/// (distinct keys, O(1) `next`, child ranges by offset lookup).
pub(crate) trait TrieCursor {
    /// The key type; matches the paired [`Codec::K`].
    type K: Copy + Ord;
    /// Descends into the current key's children (or the root level).
    fn open(&mut self);
    /// Ascends one level.
    fn up(&mut self);
    /// The current key, or `None` when the level is exhausted.
    ///
    /// The position/key accessors fold "at end?" and "which key?" into
    /// one call on purpose: the leapfrog alignment loop touches every
    /// participant once per pass, and each separate method call re-reads
    /// the cursor's top frame.
    fn current(&self) -> Option<Self::K>;
    /// Advances to the next distinct key at the current level and
    /// returns it (`None` when the level runs out).
    fn advance(&mut self) -> Option<Self::K>;
    /// Positions at the first key `>= v` (keys only move forward) and
    /// returns it (`None` when the level runs out).
    fn seek(&mut self, v: Self::K) -> Option<Self::K>;
    /// A pointer-identity of the cursor's backing data (0 when there is
    /// none to share): cursors with equal nonzero ids read the same
    /// arrays, so equal seek histories leave them on identical frames.
    fn source_id(&self) -> usize;
    /// The top frame's movable state (position plus group end where the
    /// representation has one). Only meaningful for mirroring onto a
    /// cursor whose token equaled this one's at open: the backing arrays
    /// are the same, so the state transfers verbatim.
    fn frame_state(&self) -> (usize, usize);
    /// Overwrites the top frame's movable state (see
    /// [`TrieCursor::frame_state`]).
    fn set_frame_state(&mut self, st: (usize, usize));
    /// An identity of the open top frame: two cursors with equal tokens
    /// are positioned on the **same range of the same underlying key
    /// array** — they will enumerate identical keys here and expose
    /// identical subtrees below. The recursion uses this to elide
    /// duplicate leapfrog participants (dense tries of a symmetric
    /// relation under both column orders alias one `Arc`, so their
    /// cursors' slices share a pointer). Implementations without a
    /// shareable source return a cursor-unique token (never equal).
    fn token(&self) -> (usize, usize, usize, usize);
    /// The top frame's remaining keys as one contiguous slice, when the
    /// representation has one (the dense CSR level is exactly that; the
    /// generic permuted view returns `None`). Powers the leaf-depth
    /// intersection fast path.
    fn top_slice(&self) -> Option<&[Self::K]>;
    /// Drains the locally batched `(seeks, gallop_steps)` probe counts.
    fn drain_obs(&mut self) -> (u64, u64);
}

/// One open trie level: the row range matching all ancestor keys (`hi`
/// bounds it; its start is implicit in `pos` history) and the current key
/// group `[pos, end)`.
#[derive(Debug, Clone, Copy)]
struct Frame {
    hi: usize,
    pos: usize,
    end: usize,
}

/// A trie iterator over one atom's sorted index. Level `ℓ` keys rows by
/// column `col_order[ℓ]`; `open` narrows to the parent's current key
/// group, `seek`/`next` move between key groups by galloping search
/// (linear below [`LINEAR_SEEK_THRESHOLD`]).
pub(crate) struct Cursor<T: TrieKeys> {
    keys: T,
    rows: usize,
    stack: Vec<Frame>,
    /// Locally batched probe counters, flushed to obs once per run (the
    /// hot loop must not pay an atomic load per seek).
    seeks: u64,
    steps: u64,
}

impl<T: TrieKeys> Cursor<T> {
    fn new(keys: T, levels: usize) -> Cursor<T> {
        let rows = keys.rows();
        Cursor {
            keys,
            rows,
            stack: Vec::with_capacity(levels),
            seeks: 0,
            steps: 0,
        }
    }

    #[inline]
    fn key_at(&self, level: usize, i: usize) -> T::K {
        self.keys.key_at(level, i)
    }

    /// First index in `[lo, hi)` whose key at `level` is `>= v` (linear on
    /// short ranges, gallop + binary search beyond; `O(log gap)` for short
    /// seeks either way).
    fn lower_bound(&mut self, level: usize, lo: usize, hi: usize, v: T::K) -> usize {
        if lo >= hi || self.key_at(level, lo) >= v {
            return lo;
        }
        let mut steps = 0u64;
        if hi - lo <= LINEAR_SEEK_THRESHOLD {
            let mut i = lo + 1;
            while i < hi && self.key_at(level, i) < v {
                i += 1;
                steps += 1;
            }
            self.steps += steps;
            return i;
        }
        // Invariant: key_at(base) < v.
        let mut base = lo;
        let mut step = 1usize;
        while base + step < hi && self.key_at(level, base + step) < v {
            base += step;
            step <<= 1;
            steps += 1;
        }
        let mut l = base + 1;
        let mut h = (base + step).min(hi);
        while l < h {
            let mid = l + (h - l) / 2;
            if self.key_at(level, mid) < v {
                l = mid + 1;
            } else {
                h = mid;
            }
            steps += 1;
        }
        self.steps += steps;
        l
    }

    /// First index in `[lo, hi)` whose key at `level` is `> v`.
    fn upper_bound(&mut self, level: usize, lo: usize, hi: usize, v: T::K) -> usize {
        if lo >= hi || self.key_at(level, lo) > v {
            return lo;
        }
        let mut steps = 0u64;
        if hi - lo <= LINEAR_SEEK_THRESHOLD {
            let mut i = lo + 1;
            while i < hi && self.key_at(level, i) <= v {
                i += 1;
                steps += 1;
            }
            self.steps += steps;
            return i;
        }
        let mut base = lo;
        let mut step = 1usize;
        while base + step < hi && self.key_at(level, base + step) <= v {
            base += step;
            step <<= 1;
            steps += 1;
        }
        let mut l = base + 1;
        let mut h = (base + step).min(hi);
        while l < h {
            let mid = l + (h - l) / 2;
            if self.key_at(level, mid) <= v {
                l = mid + 1;
            } else {
                h = mid;
            }
            steps += 1;
        }
        self.steps += steps;
        l
    }
}

impl<T: TrieKeys> TrieCursor for Cursor<T> {
    type K = T::K;

    /// Descends into the current key group of the top level (or the whole
    /// relation at the root), positioned at its first key.
    fn open(&mut self) {
        let (lo, hi) = match self.stack.last() {
            None => (0, self.rows),
            Some(f) => (f.pos, f.end),
        };
        let level = self.stack.len();
        let end = if lo < hi {
            let k = self.key_at(level, lo);
            self.upper_bound(level, lo + 1, hi, k)
        } else {
            lo
        };
        self.stack.push(Frame { hi, pos: lo, end });
    }

    fn up(&mut self) {
        self.stack.pop();
    }

    #[inline]
    fn current(&self) -> Option<T::K> {
        let f = self.stack.last().expect("cursor is open");
        if f.pos < f.hi {
            Some(self.key_at(self.stack.len() - 1, f.pos))
        } else {
            None
        }
    }

    fn advance(&mut self) -> Option<T::K> {
        let level = self.stack.len() - 1;
        let (pos, hi) = {
            let f = self.stack.last_mut().expect("cursor is open");
            f.pos = f.end;
            (f.pos, f.hi)
        };
        if pos < hi {
            let k = self.key_at(level, pos);
            let end = self.upper_bound(level, pos + 1, hi, k);
            self.stack.last_mut().expect("cursor is open").end = end;
            Some(k)
        } else {
            None
        }
    }

    fn seek(&mut self, v: T::K) -> Option<T::K> {
        self.seeks += 1;
        let level = self.stack.len() - 1;
        let f = *self.stack.last().expect("cursor is open");
        if f.pos < f.hi {
            let k = self.key_at(level, f.pos);
            if k >= v {
                return Some(k);
            }
        }
        let pos = self.lower_bound(level, f.pos, f.hi, v);
        if pos < f.hi {
            let k = self.key_at(level, pos);
            let end = self.upper_bound(level, pos + 1, f.hi, k);
            let f = self.stack.last_mut().expect("cursor is open");
            f.pos = pos;
            f.end = end;
            Some(k)
        } else {
            let f = self.stack.last_mut().expect("cursor is open");
            f.pos = pos;
            f.end = pos;
            None
        }
    }

    fn token(&self) -> (usize, usize, usize, usize) {
        let f = self.stack.last().expect("cursor is open");
        // Same permutation + same level + same row range ⇒ identical key
        // runs (the range's implicit start is `pos`, monotone from the
        // shared open range).
        (self.keys.source_id(), self.stack.len(), f.pos, f.hi)
    }

    fn source_id(&self) -> usize {
        self.keys.source_id()
    }

    fn top_slice(&self) -> Option<&[T::K]> {
        None
    }

    fn frame_state(&self) -> (usize, usize) {
        let f = self.stack.last().expect("cursor is open");
        (f.pos, f.end)
    }

    fn set_frame_state(&mut self, st: (usize, usize)) {
        let f = self.stack.last_mut().expect("cursor is open");
        f.pos = st.0;
        f.end = st.1;
    }

    fn drain_obs(&mut self) -> (u64, u64) {
        let out = (self.seeks, self.steps);
        self.seeks = 0;
        self.steps = 0;
        out
    }
}

/// One open level of a [`CsrCursor`]: the entry range `[pos, hi)` plus
/// the level's key array, cached in the frame so `key`/`seek`/`at_end`
/// touch one slice with no per-op trie indirection.
struct CsrFrame<'a> {
    keys: &'a [u32],
    pos: u32,
    hi: u32,
}

/// The dense trie cursor: walks [`DenseTrie`]'s CSR entry arrays through
/// slices borrowed from the run's [`DenseSnapshot`]. Distinct keys make
/// `next` a position increment, child ranges are two offset loads, and
/// seeks gallop over short duplicate-free `u32` runs — no group-end
/// searches anywhere.
pub(crate) struct CsrCursor<'a> {
    /// Per level: `(entry keys, child offsets)`; the leaf level's offset
    /// slice is empty.
    levels: Vec<(&'a [u32], &'a [u32])>,
    stack: Vec<CsrFrame<'a>>,
    seeks: u64,
    steps: u64,
}

impl<'a> CsrCursor<'a> {
    fn new(trie: &'a DenseTrie, depth: usize) -> CsrCursor<'a> {
        let levels = (0..depth)
            .map(|l| {
                let child: &[u32] = if l + 1 < depth {
                    trie.entry_child_offsets(l)
                } else {
                    &[]
                };
                (trie.entry_keys(l), child)
            })
            .collect();
        CsrCursor {
            levels,
            stack: Vec::with_capacity(depth),
            seeks: 0,
            steps: 0,
        }
    }
}

/// First index in `keys[lo..hi]` holding a key `>= v` (the slice is
/// strictly ascending): linear below [`LINEAR_SEEK_THRESHOLD`], gallop +
/// binary beyond.
#[inline]
fn seek_entries(keys: &[u32], lo: usize, hi: usize, v: u32, steps: &mut u64) -> usize {
    // One range check up front; the scan loops below then run over `sub`
    // without per-element bounds checks.
    let sub = &keys[lo..hi];
    match sub.first() {
        None => return lo,
        Some(&k) if k >= v => return lo,
        _ => {}
    }
    if sub.len() <= LINEAR_SEEK_THRESHOLD {
        let mut i = 1usize;
        for &k in &sub[1..] {
            if k >= v {
                break;
            }
            i += 1;
        }
        *steps += (i - 1) as u64;
        return lo + i;
    }
    let mut base = 0usize;
    let mut step = 1usize;
    let mut n = 0u64;
    while base + step < sub.len() && sub[base + step] < v {
        base += step;
        step <<= 1;
        n += 1;
    }
    let mut l = base + 1;
    let mut h = (base + step).min(sub.len());
    while l < h {
        let mid = l + (h - l) / 2;
        if sub[mid] < v {
            l = mid + 1;
        } else {
            h = mid;
        }
        n += 1;
    }
    *steps += n;
    lo + l
}

impl<'a> TrieCursor for CsrCursor<'a> {
    type K = u32;

    #[inline]
    fn open(&mut self) {
        let level = self.stack.len();
        let (lo, hi) = match self.stack.last() {
            None => (0, self.levels[0].0.len() as u32),
            Some(f) => {
                let offsets = self.levels[level - 1].1;
                (offsets[f.pos as usize], offsets[f.pos as usize + 1])
            }
        };
        self.stack.push(CsrFrame {
            keys: self.levels[level].0,
            pos: lo,
            hi,
        });
    }

    fn up(&mut self) {
        self.stack.pop();
    }

    #[inline]
    fn current(&self) -> Option<u32> {
        let f = self.stack.last().expect("cursor is open");
        if f.pos < f.hi {
            Some(f.keys[f.pos as usize])
        } else {
            None
        }
    }

    #[inline]
    fn advance(&mut self) -> Option<u32> {
        let f = self.stack.last_mut().expect("cursor is open");
        f.pos += 1;
        if f.pos < f.hi {
            Some(f.keys[f.pos as usize])
        } else {
            None
        }
    }

    #[inline]
    fn seek(&mut self, v: u32) -> Option<u32> {
        self.seeks += 1;
        let f = self.stack.last_mut().expect("cursor is open");
        f.pos = seek_entries(f.keys, f.pos as usize, f.hi as usize, v, &mut self.steps) as u32;
        if f.pos < f.hi {
            Some(f.keys[f.pos as usize])
        } else {
            None
        }
    }

    fn token(&self) -> (usize, usize, usize, usize) {
        let f = self.stack.last().expect("cursor is open");
        // The key slice is the whole CSR entry array of one trie level
        // (never empty for a materialized trie), so its base pointer pins
        // trie + level; `[pos, hi)` pins the frame. Content-deduped tries
        // share the arrays, so symmetric-order cursors collide here.
        (f.keys.as_ptr() as usize, 0, f.pos as usize, f.hi as usize)
    }

    fn source_id(&self) -> usize {
        // The root entry array pins the trie (content-deduped orders
        // share it); degenerate zero-arity cursors opt out with 0.
        self.levels.first().map_or(0, |l| l.0.as_ptr() as usize)
    }

    #[inline]
    fn top_slice(&self) -> Option<&[u32]> {
        let f = self.stack.last().expect("cursor is open");
        Some(&f.keys[f.pos as usize..f.hi as usize])
    }

    #[inline]
    fn frame_state(&self) -> (usize, usize) {
        let f = self.stack.last().expect("cursor is open");
        (f.pos as usize, 0)
    }

    #[inline]
    fn set_frame_state(&mut self, st: (usize, usize)) {
        let f = self.stack.last_mut().expect("cursor is open");
        f.pos = st.0 as u32;
    }

    fn drain_obs(&mut self) -> (u64, u64) {
        let out = (self.seeks, self.steps);
        self.seeks = 0;
        self.steps = 0;
        out
    }
}

/// Intersects two strictly ascending slices into `out` (cleared first):
/// two-pointer merge when the sizes are comparable, per-element binary
/// probes into the larger side when they are skewed.
fn intersect_into<K: Copy + Ord>(a: &[K], b: &[K], out: &mut Vec<K>) {
    out.clear();
    let (a, b) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if a.is_empty() {
        return;
    }
    if b.len() / 8 > a.len() {
        let mut lo = 0usize;
        for &x in a {
            lo += b[lo..].partition_point(|&y| y < x);
            if lo == b.len() {
                return;
            }
            if b[lo] == x {
                out.push(x);
                lo += 1;
            }
        }
        return;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        match x.cmp(&y) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(x);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Streams the intersection of two strictly ascending slices to `f` in
/// ascending order without materializing it: two-pointer merge when the
/// sizes are comparable, per-element binary probes into the larger side
/// when they are skewed.
fn intersect_stream<K: Copy + Ord>(
    a: &[K],
    b: &[K],
    mut f: impl FnMut(K) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let (a, b) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if a.is_empty() {
        return ControlFlow::Continue(());
    }
    if b.len() / 8 > a.len() {
        let mut lo = 0usize;
        for &x in a {
            lo += b[lo..].partition_point(|&y| y < x);
            if lo == b.len() {
                return ControlFlow::Continue(());
            }
            if b[lo] == x {
                f(x)?;
                lo += 1;
            }
        }
        return ControlFlow::Continue(());
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(a[i])?;
                i += 1;
                j += 1;
            }
        }
    }
    ControlFlow::Continue(())
}

// ---------------------------------------------------------------------
// The executor
// ---------------------------------------------------------------------

/// One atom's executor state: its cursor plus a pointer to the next trie
/// level to descend.
struct RunAtom<'a, Cur: TrieCursor> {
    cursor: Cur,
    keys: &'a [LevelKey],
    ptr: usize,
}

/// What [`WcojRun::split_probe`] found at the first unbound constrained
/// depth — the morsel scheduler's expansion step.
pub(crate) enum SplitProbe {
    /// The bound prefix provably yields no answers.
    Dead,
    /// Every depth is pre-bound or unconstrained: the prefix is its own
    /// (indivisible) morsel.
    Exhausted,
    /// The slot at the first unbound constrained depth, with its
    /// candidate values (the leapfrog intersection) in ascending order —
    /// prefix + candidate `i` is a child morsel, and child order is
    /// sequential enumeration order.
    Candidates(usize, Vec<Value>),
}

/// A running worst-case-optimal search: the recursion over the global
/// variable order, generic over the key representation. Constructed per
/// enumeration by the kernel ([`crate::compile::KernelSearch`] routes
/// here when the strategy gate picks WCOJ).
pub(crate) struct WcojRun<'a, C: Codec, Cur: TrieCursor<K = C::K>> {
    codec: C,
    order: &'a [u32],
    atoms: Vec<RunAtom<'a, Cur>>,
    injective: bool,
    allowed: Option<&'a HashSet<Value>>,
    /// Encoded bindings, indexed by slot (what the cursors compare).
    val: Vec<Option<C::K>>,
    /// Decoded pre-bound values, indexed by slot. A fixed value absent
    /// from the dense dictionary can be bound here while `val` stays
    /// `None` — legal only for slots no atom constrains. Search-bound
    /// slots live in `val` only and decode at answer materialization.
    raw: Vec<Option<Value>>,
    used: HashSet<Value>,
    row: Vec<Value>,
    /// Per depth, every atom level keyed by that depth (atom index, with
    /// multiplicity, grouped in ascending atom order) — precomputed at
    /// init so the recursion never scans atom key lists.
    levels_at: Vec<Vec<u32>>,
    /// Per depth, the leapfrog participants: the first level per atom.
    leap_at: Vec<Vec<u32>>,
    /// Per depth, the repeated-variable levels: every level beyond an
    /// atom's first, in participant order.
    extra_at: Vec<Vec<u32>>,
    /// Per depth, the leapfrog ring scratch `(current key, atom)` — kept
    /// on the run so the recursion never allocates per node.
    ring_at: Vec<Vec<(C::K, u32)>>,
    /// Per depth, scratch for the duplicate-cursor partition: the ring
    /// participants after eliding duplicates, the elided ("lazy")
    /// participants, and the open-frame tokens seen. Recomputed per node
    /// (frames differ per node), allocated once.
    active_at: Vec<Vec<u32>>,
    lazy_at: Vec<Vec<(u32, u32)>>,
    tok_at: Vec<Vec<(usize, usize, usize, usize)>>,
    /// Leaf-depth intersection scratch (ping-pong pair): the last
    /// variable's candidates are materialized by slice intersection and
    /// emitted in one tight loop instead of driving the ring.
    leaf_buf: Vec<C::K>,
    leaf_tmp: Vec<C::K>,
    /// `true` when every slot is provably bound by emit time (pre-bound
    /// or keyed by some atom at its depth): `row` is then maintained
    /// incrementally — one decode per binding, not one per slot per
    /// answer — and emit is a bare callback. The `false` fallback keeps
    /// the checked per-slot materialization (and its unbound-slot panic).
    row_live: bool,
}

/// The generic-representation run.
pub(crate) type GenericRun<'a> = WcojRun<'a, GenericCodec, Cursor<GenericKeys<'a>>>;
/// The dense-representation run.
pub(crate) type DenseRun<'a> = WcojRun<'a, DenseCodec<'a>, CsrCursor<'a>>;

impl<'a> GenericRun<'a> {
    /// Builds a generic-`Value` run over sorted-permutation cursors.
    pub(crate) fn new_generic(
        wplan: &'a WcojPlan,
        target: &'a Instance,
        val: Vec<Option<Value>>,
        used: HashSet<Value>,
        injective: bool,
        allowed: Option<&'a HashSet<Value>>,
        skip: Option<usize>,
    ) -> Option<GenericRun<'a>> {
        let mut cursors: Vec<(Cursor<GenericKeys<'a>>, &'a [LevelKey])> = Vec::new();
        for (i, ap) in wplan.atoms.iter().enumerate() {
            if Some(i) == skip {
                continue;
            }
            let pc = target.columns(ap.predicate, ap.arity);
            let cols: Vec<&'a [Value]> = ap
                .col_order
                .iter()
                .map(|&j| pc.map_or(&[] as &[Value], |c| c.col(j as usize)))
                .collect();
            let perm = target.sorted_permutation(ap.predicate, ap.arity, &ap.col_order);
            let cursor = Cursor::new(GenericKeys { perm, cols }, ap.col_order.len());
            if cursor.rows == 0 {
                return None;
            }
            cursors.push((cursor, ap.keys.as_slice()));
        }
        WcojRun::init(
            GenericCodec,
            cursors,
            &wplan.order,
            val,
            used,
            injective,
            allowed,
        )
    }
}

impl<'a> DenseRun<'a> {
    /// Builds a dense-`u32` run over flat trie-level cursors borrowing
    /// the caller's [`DenseSnapshot`] (one consistent
    /// [`gtgd_data::Dict`]/[`gtgd_data::DenseTrie`] epoch).
    pub(crate) fn new_dense(
        snap: &'a DenseSnapshot,
        wplan: &'a WcojPlan,
        val: Vec<Option<Value>>,
        used: HashSet<Value>,
        injective: bool,
        allowed: Option<&'a HashSet<Value>>,
        skip: Option<usize>,
    ) -> Option<DenseRun<'a>> {
        let active = wplan
            .atoms
            .iter()
            .enumerate()
            .filter(|&(i, _)| Some(i) != skip)
            .map(|(_, ap)| ap);
        let mut cursors: Vec<(CsrCursor<'a>, &'a [LevelKey])> = Vec::new();
        for (ap, trie) in active.zip(&snap.tries) {
            // An absent trie means the relation is empty: no answers.
            let trie = trie.as_ref()?;
            let levels = ap.col_order.len();
            cursors.push((CsrCursor::new(trie, levels), ap.keys.as_slice()));
        }
        WcojRun::init(
            DenseCodec { dict: &snap.dict },
            cursors,
            &wplan.order,
            val,
            used,
            injective,
            allowed,
        )
    }
}

impl<'a, C: Codec, Cur: TrieCursor<K = C::K>> WcojRun<'a, C, Cur> {
    /// Shared construction: encodes the fixed bindings, rejects provably
    /// empty searches (an un-encodable constrained binding or constant),
    /// and descends every atom's constant trie prefix.
    fn init(
        codec: C,
        cursors: Vec<(Cur, &'a [LevelKey])>,
        order: &'a [u32],
        raw: Vec<Option<Value>>,
        used: HashSet<Value>,
        injective: bool,
        allowed: Option<&'a HashSet<Value>>,
    ) -> Option<WcojRun<'a, C, Cur>> {
        let n = raw.len();
        let mut val: Vec<Option<C::K>> = vec![None; n];
        for (s, bound) in raw.iter().enumerate() {
            if let Some(x) = *bound {
                val[s] = codec.encode(x);
                if val[s].is_none() {
                    // The value occurs in no scanned relation: any atom
                    // level keyed by this slot's depth is unsatisfiable.
                    let d = order
                        .iter()
                        .position(|&o| o as usize == s)
                        .expect("every slot has a depth") as u32;
                    if cursors
                        .iter()
                        .any(|(_, keys)| keys.contains(&LevelKey::Depth(d)))
                    {
                        return None;
                    }
                }
            }
        }
        // A later atom whose cursor reads the same backing data as an
        // earlier one through the **same level-key sequence** repeats that
        // atom's constraint at every depth (same arrays, same seeks ⇒
        // same frames, by induction over the shared keys): drop it. This
        // is where content-deduped symmetric tries pay off — `E(x,y)`
        // and `E(y,x)` compile to one trie and identical key sequences,
        // halving the atom set of clique-style queries.
        let mut kept: Vec<(Cur, &'a [LevelKey])> = Vec::with_capacity(cursors.len());
        for (cursor, keys) in cursors {
            let id = cursor.source_id();
            let dup = id != 0
                && kept
                    .iter()
                    .any(|(c2, k2)| c2.source_id() == id && *k2 == keys);
            if !dup {
                kept.push((cursor, keys));
            }
        }
        let atoms = kept
            .into_iter()
            .map(|(cursor, keys)| RunAtom {
                cursor,
                keys,
                ptr: 0,
            })
            .collect();
        let depths = order.len();
        let mut run = WcojRun {
            codec,
            order,
            atoms,
            injective,
            allowed,
            val,
            raw,
            used,
            row: vec![Value::named("?"); n],
            levels_at: vec![Vec::new(); depths],
            leap_at: vec![Vec::new(); depths],
            extra_at: vec![Vec::new(); depths],
            ring_at: vec![Vec::new(); depths],
            active_at: vec![Vec::new(); depths],
            lazy_at: vec![Vec::new(); depths],
            tok_at: vec![Vec::new(); depths],
            leaf_buf: Vec::new(),
            leaf_tmp: Vec::new(),
            row_live: false,
        };
        for ai in 0..run.atoms.len() {
            while let Some(LevelKey::Const(c)) = run.next_key(ai) {
                let code = run.codec.encode(c)?;
                if !run.open_seek(ai, code) {
                    return None;
                }
            }
        }
        // Constants sort before all depth levels in every atom plan, so
        // after the constant descent each atom's remaining keys are depth
        // levels in recursion order: the participant sets per depth are
        // static. Precompute them once (the recursion is the hot path).
        for (ai, a) in run.atoms.iter().enumerate() {
            for k in &a.keys[a.ptr..] {
                let LevelKey::Depth(d) = *k else {
                    unreachable!("constants precede depth levels");
                };
                let d = d as usize;
                if run.levels_at[d].last() == Some(&(ai as u32)) {
                    run.extra_at[d].push(ai as u32);
                } else {
                    run.leap_at[d].push(ai as u32);
                }
                run.levels_at[d].push(ai as u32);
            }
        }
        run.row_live = run.order.iter().enumerate().all(|(d, &sl)| {
            let sl = sl as usize;
            run.raw[sl].is_some() || run.val[sl].is_some() || !run.leap_at[d].is_empty()
        });
        if run.row_live {
            for sl in 0..run.raw.len() {
                if let Some(v) = run.raw[sl] {
                    run.row[sl] = v;
                } else if let Some(k) = run.val[sl] {
                    run.row[sl] = run.codec.decode(k);
                }
            }
        }
        Some(run)
    }

    #[inline]
    fn next_key(&self, ai: usize) -> Option<LevelKey> {
        let a = &self.atoms[ai];
        a.keys.get(a.ptr).copied()
    }

    #[inline]
    fn next_is_depth(&self, ai: usize, d: usize) -> bool {
        self.next_key(ai) == Some(LevelKey::Depth(d as u32))
    }

    /// Opens atom `ai`'s next trie level and seeks `x`; `true` iff the
    /// level contains `x`. The level stays open either way (the caller
    /// unwinds with [`WcojRun::close`]).
    fn open_seek(&mut self, ai: usize, x: C::K) -> bool {
        let a = &mut self.atoms[ai];
        a.cursor.open();
        a.ptr += 1;
        a.cursor.seek(x) == Some(x)
    }

    fn close(&mut self, ai: usize) {
        let a = &mut self.atoms[ai];
        a.cursor.up();
        a.ptr -= 1;
    }

    /// Runs the search, invoking `f` per answer row (slot order).
    pub(crate) fn run(
        &mut self,
        f: &mut impl FnMut(&[Value]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let r = self.rec(0, f);
        self.flush_obs();
        r
    }

    /// Flushes the cursors' locally batched probe counters to obs (one
    /// atomic add per counter per run instead of one per seek).
    fn flush_obs(&mut self) {
        if !obs::enabled() {
            return;
        }
        let mut seeks = 0u64;
        let mut steps = 0u64;
        for a in &mut self.atoms {
            let (s, g) = a.cursor.drain_obs();
            seeks += s;
            steps += g;
        }
        obs::count(obs::Metric::WcojSeeks, seeks);
        obs::count(obs::Metric::WcojGallopSteps, steps);
    }

    fn rec(
        &mut self,
        d: usize,
        f: &mut impl FnMut(&[Value]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if d == self.order.len() {
            return self.emit(f);
        }
        let s = self.order[d] as usize;
        if let Some(x) = self.val[s] {
            // Pre-bound (fixed or a morsel seed): every level keyed by
            // this depth must contain x.
            let mut opened = 0usize;
            let mut ok = true;
            for i in 0..self.levels_at[d].len() {
                let ai = self.levels_at[d][i] as usize;
                opened = i + 1;
                if !self.open_seek(ai, x) {
                    ok = false;
                    break;
                }
            }
            let r = if ok {
                self.rec(d + 1, f)
            } else {
                ControlFlow::Continue(())
            };
            for i in (0..opened).rev() {
                let ai = self.levels_at[d][i] as usize;
                self.close(ai);
            }
            return r;
        }
        if self.leap_at[d].is_empty() {
            // No atom constrains this slot. The backtracker leaves such a
            // slot unbound too (and the emit `expect` fires on both paths
            // if it is ever reached without a fixed binding).
            return self.rec(d + 1, f);
        }
        // Depth-monotone recursion never revisits depth `d` while this
        // frame is live, so the participant list can be moved out to
        // sidestep per-iteration re-indexing through `self`.
        let parts = std::mem::take(&mut self.leap_at[d]);
        for &ai in &parts {
            let a = &mut self.atoms[ai as usize];
            a.cursor.open();
            a.ptr += 1;
        }
        // At an emit-eligible leaf depth the partition below is pointless
        // work: the leaf fast path never moves cursors per match, so
        // duplicate participants cost nothing (and init already dropped
        // full duplicates) — go straight to the intersection.
        let r = if self.leaf_eligible(d) {
            self.leapfrog(d, s, &parts, &[], f)
        } else {
            // Duplicate-cursor elision: participants whose freshly opened
            // frames carry equal tokens enumerate the same keys — only
            // the first joins the ring; the rest turn "lazy" and follow
            // each matched value by mirroring their twin's frame, keeping
            // their deeper levels reachable. Both-direction atoms over a
            // symmetric relation halve the ring this way at every depth.
            let mut active = std::mem::take(&mut self.active_at[d]);
            let mut lazy = std::mem::take(&mut self.lazy_at[d]);
            let mut toks = std::mem::take(&mut self.tok_at[d]);
            active.clear();
            lazy.clear();
            toks.clear();
            for &ai in &parts {
                let t = self.atoms[ai as usize].cursor.token();
                if let Some(j) = toks.iter().position(|&t2| t2 == t) {
                    lazy.push((ai, active[j]));
                } else {
                    toks.push(t);
                    active.push(ai);
                }
            }
            let r = self.leapfrog(d, s, &active, &lazy, f);
            self.active_at[d] = active;
            self.lazy_at[d] = lazy;
            self.tok_at[d] = toks;
            r
        };
        for &ai in parts.iter().rev() {
            self.close(ai as usize);
        }
        self.leap_at[d] = parts;
        r
    }

    /// Whether depth `d` qualifies for the leaf emit path: it binds the
    /// last variable, no repeated-variable levels key on it, and no
    /// per-value mode checks run.
    #[inline]
    fn leaf_eligible(&self, d: usize) -> bool {
        d + 1 == self.order.len()
            && self.extra_at[d].is_empty()
            && !self.injective
            && self.allowed.is_none()
    }

    /// Materializes and reports one answer row: pre-bound slots carry
    /// their decoded value in `raw`; search-bound slots decode from their
    /// code here, once per emitted answer.
    fn emit(&mut self, f: &mut impl FnMut(&[Value]) -> ControlFlow<()>) -> ControlFlow<()> {
        if self.row_live {
            return f(&self.row);
        }
        for i in 0..self.row.len() {
            self.row[i] = match self.raw[i] {
                Some(v) => v,
                None => {
                    let k = self.val[i].expect("every slot is bound at a full match");
                    self.codec.decode(k)
                }
            };
        }
        f(&self.row)
    }

    /// The leaf emit path: intersects the participants' key slices
    /// directly, smallest first, streaming the *final* intersection
    /// straight into the answer callback — the last merge is never
    /// materialized, and with one or two participants nothing is.
    /// `None` when a participant has no contiguous key slice (generic
    /// cursors) or the fan-in exceeds the stack scratch; the caller
    /// falls back to the ring.
    fn leaf_emit(
        &mut self,
        parts: &[u32],
        s: usize,
        f: &mut impl FnMut(&[Value]) -> ControlFlow<()>,
    ) -> Option<ControlFlow<()>> {
        let mut buf = std::mem::take(&mut self.leaf_buf);
        let mut tmp = std::mem::take(&mut self.leaf_tmp);
        let mut row = std::mem::take(&mut self.row);
        let r = self.leaf_emit_inner(parts, s, &mut buf, &mut tmp, &mut row, f);
        self.leaf_buf = buf;
        self.leaf_tmp = tmp;
        self.row = row;
        r
    }

    fn leaf_emit_inner(
        &self,
        parts: &[u32],
        s: usize,
        buf: &mut Vec<C::K>,
        tmp: &mut Vec<C::K>,
        row: &mut [Value],
        f: &mut impl FnMut(&[Value]) -> ControlFlow<()>,
    ) -> Option<ControlFlow<()>> {
        if parts.len() > 8 {
            return None;
        }
        let empty: &[C::K] = &[];
        let mut sl = [empty; 8];
        let mut n = 0usize;
        for &ai in parts {
            sl[n] = self.atoms[ai as usize].cursor.top_slice()?;
            n += 1;
        }
        let sl = &mut sl[..n];
        sl.sort_unstable_by_key(|x| x.len());
        // Every slot but `s` is already bound: a maintained row needs no
        // work; otherwise materialize the prefix once and rewrite only
        // the leaf slot per answer.
        if !self.row_live {
            for (i, slot) in row.iter_mut().enumerate() {
                if i == s {
                    continue;
                }
                *slot = match self.raw[i] {
                    Some(v) => v,
                    None => {
                        let k = self.val[i].expect("every slot is bound at a full match");
                        self.codec.decode(k)
                    }
                };
            }
        }
        let mut emit = |x: C::K| {
            row[s] = self.codec.decode(x);
            f(row)
        };
        Some(match n {
            1 => {
                for &x in sl[0].iter() {
                    if emit(x).is_break() {
                        return Some(ControlFlow::Break(()));
                    }
                }
                ControlFlow::Continue(())
            }
            2 => intersect_stream(sl[0], sl[1], emit),
            _ => {
                intersect_into(sl[0], sl[1], buf);
                for sx in &sl[2..n - 1] {
                    if buf.is_empty() {
                        break;
                    }
                    tmp.clear();
                    intersect_into(buf, sx, tmp);
                    std::mem::swap(buf, tmp);
                }
                intersect_stream(buf, sl[n - 1], emit)
            }
        })
    }

    /// The multiway intersection at depth `d`: every participant cursor is
    /// freshly opened on its keying level; enumerate common keys in
    /// ascending order.
    ///
    /// Classic leapfrog ring: each participant's current key is cached in
    /// the ring, so a round touches exactly one cursor (a seek past the
    /// frontier, or an advance after a match) — the other comparisons run
    /// on local state. `aligned` counts ring entries known to equal the
    /// frontier `x` since `x` last moved; hitting the ring size means
    /// every participant sits on `x`.
    fn leapfrog(
        &mut self,
        d: usize,
        s: usize,
        parts: &[u32],
        lazy: &[(u32, u32)],
        f: &mut impl FnMut(&[Value]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        // Leaf fast path: the last variable binds no deeper levels, so
        // when nothing inspects cursor state per match (no repeated
        // variables here, no mode checks) the candidate set is computed
        // by direct slice intersection, the final merge streaming each
        // answer straight out — no ring bookkeeping, no per-match cursor
        // moves (elided duplicates need no mirroring: their frames pop
        // right after). Enumeration stays ascending, identical to the
        // ring.
        if self.leaf_eligible(d) {
            if let Some(r) = self.leaf_emit(parts, s, f) {
                return r;
            }
        }
        // The two smallest fan-ins dominate real plans (duplicate elision
        // shrinks most rings to one or two members): run them on locals,
        // no ring indexing, no wrap-around counter.
        match *parts {
            [a0] => {
                let mut k = self.atoms[a0 as usize].cursor.current();
                while let Some(x) = k {
                    if self.try_value(d, s, x, lazy, f).is_break() {
                        return ControlFlow::Break(());
                    }
                    k = self.atoms[a0 as usize].cursor.advance();
                }
                return ControlFlow::Continue(());
            }
            [a0, a1] => {
                let (Some(mut k0), Some(mut k1)) = (
                    self.atoms[a0 as usize].cursor.current(),
                    self.atoms[a1 as usize].cursor.current(),
                ) else {
                    return ControlFlow::Continue(());
                };
                loop {
                    match k0.cmp(&k1) {
                        std::cmp::Ordering::Equal => {
                            if self.try_value(d, s, k0, lazy, f).is_break() {
                                return ControlFlow::Break(());
                            }
                            let Some(n0) = self.atoms[a0 as usize].cursor.advance() else {
                                return ControlFlow::Continue(());
                            };
                            k0 = n0;
                        }
                        std::cmp::Ordering::Less => {
                            let Some(n0) = self.atoms[a0 as usize].cursor.seek(k1) else {
                                return ControlFlow::Continue(());
                            };
                            k0 = n0;
                        }
                        std::cmp::Ordering::Greater => {
                            let Some(n1) = self.atoms[a1 as usize].cursor.seek(k0) else {
                                return ControlFlow::Continue(());
                            };
                            k1 = n1;
                        }
                    }
                }
            }
            _ => {}
        }
        let mut ring = std::mem::take(&mut self.ring_at[d]);
        ring.clear();
        for &ai in parts {
            let Some(k) = self.atoms[ai as usize].cursor.current() else {
                self.ring_at[d] = ring;
                return ControlFlow::Continue(());
            };
            ring.push((k, ai));
        }
        let p = ring.len();
        let mut x = ring[0].0;
        let mut aligned = 1usize;
        let mut i = 1 % p;
        let r = loop {
            if aligned == p {
                if self.try_value(d, s, x, lazy, f).is_break() {
                    break ControlFlow::Break(());
                }
                let ai = ring[i].1;
                let Some(k) = self.atoms[ai as usize].cursor.advance() else {
                    break ControlFlow::Continue(());
                };
                ring[i].0 = k;
                x = k;
                aligned = 1;
                i += 1;
                if i == p {
                    i = 0;
                }
                continue;
            }
            let (k, ai) = ring[i];
            if k == x {
                aligned += 1;
            } else if k > x {
                x = k;
                aligned = 1;
            } else {
                let Some(k) = self.atoms[ai as usize].cursor.seek(x) else {
                    break ControlFlow::Continue(());
                };
                ring[i].0 = k;
                if k == x {
                    aligned += 1;
                } else {
                    x = k;
                    aligned = 1;
                }
            }
            i += 1;
            if i == p {
                i = 0;
            }
        };
        self.ring_at[d] = ring;
        r
    }

    /// Binds `x` at depth `d` (mode checks, repeated-variable levels) and
    /// recurses.
    fn try_value(
        &mut self,
        d: usize,
        s: usize,
        x: C::K,
        lazy: &[(u32, u32)],
        f: &mut impl FnMut(&[Value]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        // Injectivity and answer filters compare decoded values; skip the
        // decode entirely on the (common) unchecked path.
        let mut xv = None;
        if self.injective || self.allowed.is_some() {
            let v = self.codec.decode(x);
            if self.injective && self.used.contains(&v) {
                return ControlFlow::Continue(());
            }
            if let Some(allowed) = self.allowed {
                if !allowed.contains(&v) {
                    return ControlFlow::Continue(());
                }
            }
            xv = Some(v);
        }
        // Elided duplicate participants follow the ring to the matched
        // value by copying their twin's frame position — the backing
        // arrays are identical (equal tokens at open), and the twin sits
        // exactly on `x` whenever a match fires, so the copy is the seek
        // the duplicate would have performed, for two loads and a store.
        // This keeps the duplicate's position correct for the deeper
        // levels it opens below.
        for &(lz, tw) in lazy {
            let st = self.atoms[tw as usize].cursor.frame_state();
            self.atoms[lz as usize].cursor.set_frame_state(st);
        }
        // Repeated variables: further levels of the same atom keyed by this
        // depth must also contain x.
        let mut opened = 0usize;
        let mut ok = true;
        for i in 0..self.extra_at[d].len() {
            let ai = self.extra_at[d][i] as usize;
            opened = i + 1;
            if !self.open_seek(ai, x) {
                ok = false;
                break;
            }
        }
        let r = if ok {
            self.val[s] = Some(x);
            if self.row_live {
                self.row[s] = xv.unwrap_or_else(|| self.codec.decode(x));
            }
            if self.injective {
                self.used
                    .insert(xv.expect("decoded under the injective check"));
            }
            let r = self.rec(d + 1, f);
            self.val[s] = None;
            if self.injective {
                self.used
                    .remove(&xv.expect("decoded under the injective check"));
            }
            r
        } else {
            ControlFlow::Continue(())
        };
        for i in (0..opened).rev() {
            let ai = self.extra_at[d][i] as usize;
            self.close(ai);
        }
        r
    }

    /// Walks the pre-bound prefix of the variable order and reports the
    /// first unbound constrained depth's candidate values — the morsel
    /// scheduler's expansion step. Consumes the run's cursor state (the
    /// probe run is discarded afterwards).
    pub(crate) fn split_probe(&mut self) -> SplitProbe {
        let r = self.split_probe_inner();
        self.flush_obs();
        r
    }

    fn split_probe_inner(&mut self) -> SplitProbe {
        let mut d = 0usize;
        loop {
            if d == self.order.len() {
                return SplitProbe::Exhausted;
            }
            let s = self.order[d] as usize;
            if let Some(x) = self.val[s] {
                for ai in 0..self.atoms.len() {
                    while self.next_is_depth(ai, d) {
                        if !self.open_seek(ai, x) {
                            return SplitProbe::Dead;
                        }
                    }
                }
                d += 1;
                continue;
            }
            let parts: Vec<usize> = (0..self.atoms.len())
                .filter(|&ai| self.next_is_depth(ai, d))
                .collect();
            if parts.is_empty() {
                d += 1;
                continue;
            }
            for &ai in &parts {
                let a = &mut self.atoms[ai];
                a.cursor.open();
                a.ptr += 1;
            }
            let mut out: Vec<Value> = Vec::new();
            let mut x0 = self.atoms[parts[0]].cursor.current();
            'outer: while let Some(mut x) = x0 {
                loop {
                    let mut moved = false;
                    for &ai in &parts {
                        let c = &mut self.atoms[ai].cursor;
                        let Some(k) = c.current() else { break 'outer };
                        if k < x {
                            let Some(k) = c.seek(x) else { break 'outer };
                            if k > x {
                                x = k;
                                moved = true;
                            }
                        } else if k > x {
                            x = k;
                            moved = true;
                        }
                    }
                    if !moved {
                        break;
                    }
                }
                out.push(self.codec.decode(x));
                x0 = self.atoms[parts[0]].cursor.advance();
            }
            return SplitProbe::Candidates(s, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::compile::{CompiledQuery, Repr, Strategy};
    use crate::parser::parse_cq;
    use gtgd_data::{GroundAtom, Instance, Value};
    use std::collections::HashSet;

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    fn tri_db() -> Instance {
        // A triangle a-b-c plus a dangling path d-e (both edge directions).
        let mut atoms = Vec::new();
        for (x, y) in [("a", "b"), ("b", "c"), ("c", "a"), ("d", "e")] {
            atoms.push(GroundAtom::named("E", &[x, y]));
            atoms.push(GroundAtom::named("E", &[y, x]));
        }
        Instance::from_atoms(atoms)
    }

    fn rows_sorted(q: &CompiledQuery, db: &Instance, s: Strategy, r: Repr) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = q
            .search(db)
            .strategy(s)
            .repr(r)
            .table()
            .rows()
            .map(|r| r.to_vec())
            .collect();
        rows.sort();
        rows
    }

    fn assert_strategies_agree(src: &str, db: &Instance) {
        let q = parse_cq(src).unwrap();
        let plan = CompiledQuery::compile(&q.atoms);
        let expect = rows_sorted(&plan, db, Strategy::Backtrack, Repr::Auto);
        for repr in [Repr::Dense, Repr::Generic] {
            assert_eq!(
                rows_sorted(&plan, db, Strategy::Wcoj, repr),
                expect,
                "{src} {repr:?}"
            );
        }
    }

    #[test]
    fn wcoj_matches_backtracker_on_shapes() {
        let db = tri_db();
        for src in [
            "Q() :- E(X,Y)",
            "Q() :- E(X,Y), E(Y,Z)",
            "Q() :- E(X,Y), E(Y,Z), E(Z,X)",
            "Q() :- E(X,Y), E(Y,X)",
            "Q() :- E(X,X)",
            "Q() :- E(a,Y), E(Y,Z)",
            "Q() :- E(X,Y), E(X,Z), E(X,W)",
        ] {
            assert_strategies_agree(src, &db);
        }
    }

    #[test]
    fn dense_and_generic_emit_identical_order() {
        let db = tri_db();
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        let plan = CompiledQuery::compile(&q.atoms);
        // Not sorted: dense codes are order-preserving, so the two
        // representations must enumerate in exactly the same order.
        let dense: Vec<Vec<Value>> = plan
            .search(&db)
            .strategy(Strategy::Wcoj)
            .repr(Repr::Dense)
            .table()
            .rows()
            .map(|r| r.to_vec())
            .collect();
        let generic: Vec<Vec<Value>> = plan
            .search(&db)
            .strategy(Strategy::Wcoj)
            .repr(Repr::Generic)
            .table()
            .rows()
            .map(|r| r.to_vec())
            .collect();
        assert_eq!(dense, generic);
        assert!(!dense.is_empty());
    }

    #[test]
    fn planner_gate_prefers_wcoj_only_on_hard_shapes() {
        let gate = |src: &str| {
            let q = parse_cq(src).unwrap();
            CompiledQuery::compile(&q.atoms).prefers_wcoj()
        };
        // Cyclic: triangle, square, clique.
        assert!(gate("Q() :- E(X,Y), E(Y,Z), E(Z,X)"));
        assert!(gate("Q() :- E(X,Y), E(Y,Z), E(Z,W), E(W,X)"));
        // High-arity multiway join: one variable in three atoms.
        assert!(gate("Q() :- E(X,Y), E(X,Z), E(X,W)"));
        // Acyclic, low-join: paths, single atoms, pairs.
        assert!(!gate("Q() :- E(X,Y)"));
        assert!(!gate("Q() :- E(X,Y), E(Y,Z)"));
        assert!(!gate("Q() :- E(X,Y), E(Y,Z), E(Z,W)"));
        // Guarded triangle: the covering atom makes it α-acyclic, but the
        // shared variables still hit the multiway trigger.
        assert!(gate("Q() :- T(X,Y,Z), E(X,Y), E(Y,Z), E(Z,X)"));
    }

    #[test]
    fn wcoj_respects_modes_and_fixed_slots() {
        let db = tri_db();
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        let plan = CompiledQuery::compile(&q.atoms);
        for repr in [Repr::Dense, Repr::Generic] {
            let wcoj = || plan.search(&db).strategy(Strategy::Wcoj).repr(repr);
            let back = || plan.search(&db).strategy(Strategy::Backtrack);
            // Triangle homs: 6 oriented triangles on {a,b,c} plus 2-cycles
            // using repeated vertices; count must match the backtracker.
            assert_eq!(wcoj().count(), back().count());
            assert_eq!(wcoj().injective().count(), back().injective().count());
            let allowed: HashSet<Value> = [v("a"), v("b"), v("c")].into_iter().collect();
            assert_eq!(
                wcoj().restrict_images(&allowed).count(),
                back().restrict_images(&allowed).count()
            );
            let sx = plan.slot_of(crate::cq::Var(0)).unwrap();
            assert_eq!(
                wcoj().fix_slots([(sx, v("a"))]).count(),
                back().fix_slots([(sx, v("a"))]).count()
            );
            // A fixed value outside the active domain: zero rows, no panic.
            assert_eq!(wcoj().fix_slots([(sx, v("zz"))]).count(), 0);
        }
    }

    #[test]
    fn wcoj_skip_atom_with_pinned_bindings() {
        let db = tri_db();
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        let plan = CompiledQuery::compile(&q.atoms);
        let seed = plan
            .unify_atom(0, &GroundAtom::named("E", &["a", "b"]))
            .unwrap();
        let mut back: Vec<Vec<Value>> = Vec::new();
        plan.search(&db)
            .strategy(Strategy::Backtrack)
            .fix_slots(seed.clone())
            .skip_atom(0)
            .for_each_row(|r| {
                back.push(r.to_vec());
                std::ops::ControlFlow::Continue(())
            });
        back.sort();
        for repr in [Repr::Dense, Repr::Generic] {
            let mut wcoj: Vec<Vec<Value>> = Vec::new();
            plan.search(&db)
                .strategy(Strategy::Wcoj)
                .repr(repr)
                .fix_slots(seed.clone())
                .skip_atom(0)
                .for_each_row(|r| {
                    wcoj.push(r.to_vec());
                    std::ops::ControlFlow::Continue(())
                });
            wcoj.sort();
            assert_eq!(wcoj, back, "{repr:?}");
            assert!(!wcoj.is_empty());
        }
    }

    #[test]
    fn wcoj_par_table_equals_sequential() {
        let db = tri_db();
        for src in [
            "Q() :- E(X,Y), E(Y,Z), E(Z,X)",
            "Q() :- E(X,Y), E(X,Z), E(X,W)",
        ] {
            let q = parse_cq(src).unwrap();
            let plan = CompiledQuery::compile(&q.atoms);
            assert!(plan.prefers_wcoj());
            let seq: Vec<Vec<Value>> = plan
                .search(&db)
                .table()
                .rows()
                .map(|r| r.to_vec())
                .collect();
            for repr in [Repr::Auto, Repr::Dense, Repr::Generic] {
                for w in [1usize, 2, 4, 7] {
                    let par: Vec<Vec<Value>> = plan
                        .search(&db)
                        .repr(repr)
                        .par_table(w)
                        .rows()
                        .map(|r| r.to_vec())
                        .collect();
                    // The morsel merge preserves sequential order exactly
                    // (not just as a set).
                    assert_eq!(par, seq, "{src} at {w} workers {repr:?}");
                }
            }
        }
    }
}
