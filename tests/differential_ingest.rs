//! Differential test for the ingestion frontends (DESIGN.md §15):
//! the same LUBM-style workload must mean the same thing whether it
//! arrives as RDF triples under an OWL ontology or as hand-written
//! datalog facts under the hand-written guarded-TGD mirror.
//!
//! Path A (RDF): `LubmSource::ntriples()` → [`RdfSource`] as the ABox of
//! an [`OwlSource`] over [`ONTOLOGY_OWL`], lowered to TGDs by the DL
//! fragment lowering.
//!
//! Path B (datalog): `LubmSource::datalog_facts()` → `parse_facts`, with
//! [`ONTOLOGY_TGDS`] (the hand-maintained mirror of the ontology) →
//! `parse_tgds`.
//!
//! At widths 1, 2, and 4 universities both paths must produce the same
//! base instance, chase fixpoints isomorphic over the named constants
//! (null identities are an artifact of firing order), and identical
//! answers to a panel of conjunctive queries.

use gtgd::chase::{parse_tgds, ChaseBudget, ChaseRunner};
use gtgd::data::text::parse_facts;
use gtgd::ingest::{
    ingest, LubmConfig, LubmSource, OwlSource, RdfSource, ONTOLOGY_OWL, ONTOLOGY_TGDS,
};
use gtgd::query::{instance_isomorphic, parse_cq, Engine};

const QUERIES: &[&str] = &[
    "Ans(X) :- Person(X)",
    "Ans(X,U) :- Professor(X), worksFor(X,D), subOrganizationOf(D,U)",
    "Ans(S,P) :- advisor(S,P), takesCourse(S,C), teacherOf(P,C)",
    "Ans(P) :- Publication(P), publicationAuthor(P,A), Employee(A)",
];

/// Runs the width-`universities` differential on a thread with an
/// explicit 64 MiB stack: the isomorphism search recurses per atom, and
/// debug-build frames overflow the default test-thread stack at width 2+.
fn differential_at(universities: usize) {
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(move || differential_at_inner(universities))
        .expect("spawn differential thread")
        .join()
        .expect("differential thread panicked");
}

fn differential_at_inner(universities: usize) {
    let cfg = LubmConfig {
        universities,
        seed: 7 + universities as u64,
    };

    // Path A: RDF triples + OWL ontology through the Source API.
    let triples = LubmSource::new(cfg).ntriples();
    let abox = RdfSource::from_str("lubm-abox", &triples);
    let mut owl = OwlSource::from_str("lubm-ontology", ONTOLOGY_OWL).with_abox(abox);
    let rdf_program = ingest(&mut owl).expect("generated RDF must ingest cleanly");

    // Path B: the same workload hand-written in datalog.
    let datalog_facts = parse_facts(&LubmSource::new(cfg).datalog_facts()).expect("facts parse");
    let datalog_tgds = parse_tgds(ONTOLOGY_TGDS).expect("mirror TGDs parse");

    // Same base instance, atom for atom (both renderings walk the one
    // seeded generator in the same traversal order).
    assert_eq!(
        rdf_program.facts, datalog_facts,
        "width {universities}: RDF and datalog base instances differ"
    );

    let budget = ChaseBudget::atoms(5_000_000);
    let a = rdf_program.chase(budget);
    let b = ChaseRunner::new(&datalog_tgds)
        .budget(budget)
        .run(&datalog_facts);
    assert!(a.complete && b.complete, "width {universities}: chase cut");
    assert_eq!(
        a.instance.len(),
        b.instance.len(),
        "width {universities}: fixpoint sizes differ"
    );
    assert!(
        instance_isomorphic(&a.instance, &b.instance),
        "width {universities}: fixpoints not isomorphic over named constants"
    );

    for q in QUERIES {
        let prepared = Engine::prepare(&parse_cq(q).unwrap());
        let ans_a = prepared.answers(&a.instance);
        let ans_b = prepared.answers(&b.instance);
        // Null identities depend on trigger-firing order, which differs
        // between the lowered ontology and the mirror; the comparable
        // parts are the total count (preserved by isomorphism) and the
        // null-free (certain) answers, which must match exactly.
        assert_eq!(
            ans_a.len(),
            ans_b.len(),
            "width {universities}: answer counts differ for `{q}`"
        );
        let certain = |ans: &std::collections::HashSet<Vec<gtgd::data::Value>>| {
            let mut v: Vec<Vec<gtgd::data::Value>> = ans
                .iter()
                .filter(|row| row.iter().all(|v| !v.is_null()))
                .cloned()
                .collect();
            v.sort();
            v
        };
        let (cert_a, cert_b) = (certain(&ans_a), certain(&ans_b));
        assert_eq!(
            cert_a, cert_b,
            "width {universities}: certain answers differ for `{q}`"
        );
        if q.contains("Professor") {
            assert!(!cert_a.is_empty(), "width {universities}: `{q}` is empty");
        }
    }
}

#[test]
fn rdf_equals_datalog_width_1() {
    differential_at(1);
}

#[test]
fn rdf_equals_datalog_width_2() {
    differential_at(2);
}

#[test]
fn rdf_equals_datalog_width_4() {
    differential_at(4);
}

/// The ontology the OWL frontend lowers must match the hand-written
/// mirror *as a TGD set*, not just on one workload: same count, and each
/// lowered TGD chases the same on a generic witness database.
#[test]
fn lowered_ontology_matches_handwritten_mirror() {
    let lowered = ingest(&mut OwlSource::from_str("onto", ONTOLOGY_OWL))
        .expect("ontology lowers")
        .tgds;
    let mirror = parse_tgds(ONTOLOGY_TGDS).unwrap();
    assert_eq!(lowered.len(), mirror.len(), "TGD counts diverged");

    // Generic witness: one entity in every class, one edge in every role.
    let mut facts = String::new();
    for c in [
        "University",
        "Department",
        "Professor",
        "Faculty",
        "Employee",
        "Person",
        "Student",
        "Course",
        "Publication",
    ] {
        facts.push_str(&format!("{c}(w_{c}).\n"));
    }
    for r in [
        "worksFor",
        "memberOf",
        "subOrganizationOf",
        "headOf",
        "teacherOf",
        "takesCourse",
        "advisor",
        "publicationAuthor",
    ] {
        facts.push_str(&format!("{r}(w_{r}_s,w_{r}_o).\n"));
    }
    let db = parse_facts(&facts).unwrap();
    let budget = ChaseBudget::atoms(100_000);
    let a = ChaseRunner::new(&lowered).budget(budget).run(&db);
    let b = ChaseRunner::new(&mirror).budget(budget).run(&db);
    assert!(a.complete && b.complete);
    assert!(
        instance_isomorphic(&a.instance, &b.instance),
        "lowered ontology and datalog mirror disagree on the generic witness"
    );
}
