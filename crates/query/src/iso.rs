//! CQ isomorphism: exact structural equality up to variable renaming.
//! Stronger than the structural `dedup_key` (which is atom-order-sensitive
//! only up to the compaction heuristic) and cheaper than full equivalence;
//! used to deduplicate rewriting and approximation outputs.

use crate::cq::{Cq, Term, Var};
use crate::hom::{instance_as_atoms, HomSearch};
use gtgd_data::{Instance, Value};
use std::collections::HashMap;

/// Whether two instances are isomorphic *over the named constants*: equal
/// up to a bijective renaming of nulls, with every named constant mapped to
/// itself. This is the right equivalence for comparing chase results, where
/// null identities are an artifact of trigger-firing order (e.g. sequential
/// vs parallel runs) but database constants are shared.
pub fn instance_isomorphic(a: &Instance, b: &Instance) -> bool {
    if a.len() != b.len() || a.dom().len() != b.dom().len() {
        return false;
    }
    let (atoms, var_of) = instance_as_atoms(a);
    let fixed: Vec<(Var, Value)> = var_of
        .iter()
        .filter(|(v, _)| v.is_named())
        .map(|(&val, &var)| (var, val))
        .collect();
    // An injective hom fixing the constants maps distinct atoms to distinct
    // atoms; with equal atom counts it is onto, hence an isomorphism.
    HomSearch::new(&atoms, b).fix(fixed).injective().exists()
}

/// Whether `q1` and `q2` are isomorphic: a bijection on variables mapping
/// the atom set of one onto the other and the answer tuple pointwise.
pub fn cq_isomorphic(q1: &Cq, q2: &Cq) -> bool {
    if q1.arity() != q2.arity()
        || q1.atom_count() != q2.atom_count()
        || q1.all_vars().len() != q2.all_vars().len()
    {
        return false;
    }
    // Backtracking over an atom matching that induces the bijection.
    let mut var_map: HashMap<Var, Var> = HashMap::new();
    let mut used_vars: HashMap<Var, Var> = HashMap::new(); // inverse
                                                           // Seed: answer variables map pointwise.
    for (&a, &b) in q1.answer_vars.iter().zip(q2.answer_vars.iter()) {
        if let Some(&prev) = var_map.get(&a) {
            if prev != b {
                return false;
            }
        }
        if let Some(&prev) = used_vars.get(&b) {
            if prev != a {
                return false;
            }
        }
        var_map.insert(a, b);
        used_vars.insert(b, a);
    }
    let mut used_atoms = vec![false; q2.atoms.len()];
    match_atoms(q1, q2, 0, &mut var_map, &mut used_vars, &mut used_atoms)
}

fn match_atoms(
    q1: &Cq,
    q2: &Cq,
    i: usize,
    var_map: &mut HashMap<Var, Var>,
    used_vars: &mut HashMap<Var, Var>,
    used_atoms: &mut Vec<bool>,
) -> bool {
    if i == q1.atoms.len() {
        return true;
    }
    let a = &q1.atoms[i];
    for j in 0..q2.atoms.len() {
        if used_atoms[j] {
            continue;
        }
        let b = &q2.atoms[j];
        if a.predicate != b.predicate || a.args.len() != b.args.len() {
            continue;
        }
        // Try to extend the bijection along this atom pair.
        let mut added: Vec<(Var, Var)> = Vec::new();
        let mut ok = true;
        for (ta, tb) in a.args.iter().zip(b.args.iter()) {
            match (*ta, *tb) {
                (Term::Const(ca), Term::Const(cb)) => {
                    if ca != cb {
                        ok = false;
                        break;
                    }
                }
                (Term::Var(va), Term::Var(vb)) => match (var_map.get(&va), used_vars.get(&vb)) {
                    (Some(&img), _) if img != vb => {
                        ok = false;
                        break;
                    }
                    (_, Some(&pre)) if pre != va => {
                        ok = false;
                        break;
                    }
                    (Some(_), Some(_)) => {}
                    _ => {
                        var_map.insert(va, vb);
                        used_vars.insert(vb, va);
                        added.push((va, vb));
                    }
                },
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            used_atoms[j] = true;
            if match_atoms(q1, q2, i + 1, var_map, used_vars, used_atoms) {
                return true;
            }
            used_atoms[j] = false;
        }
        for (va, vb) in added {
            var_map.remove(&va);
            used_vars.remove(&vb);
        }
    }
    false
}

/// Deduplicates a list of CQs up to isomorphism (keeps first occurrences).
pub fn dedup_isomorphic(cqs: Vec<Cq>) -> Vec<Cq> {
    let mut out: Vec<Cq> = Vec::new();
    for q in cqs {
        if !out.iter().any(|kept| cq_isomorphic(kept, &q)) {
            out.push(q);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    #[test]
    fn renamed_queries_are_isomorphic() {
        let q1 = parse_cq("Q(X) :- E(X,Y), E(Y,Z)").unwrap();
        let q2 = parse_cq("Q(A) :- E(B,C), E(A,B)").unwrap();
        assert!(cq_isomorphic(&q1, &q2));
    }

    #[test]
    fn different_shapes_are_not() {
        let path = parse_cq("Q() :- E(X,Y), E(Y,Z)").unwrap();
        let fork = parse_cq("Q() :- E(X,Y), E(X,Z)").unwrap();
        assert!(!cq_isomorphic(&path, &fork));
    }

    #[test]
    fn answer_variables_anchor_the_bijection() {
        let q1 = parse_cq("Q(X) :- E(X,Y)").unwrap();
        let q2 = parse_cq("Q(Y) :- E(X,Y)").unwrap();
        assert!(!cq_isomorphic(&q1, &q2));
        let q3 = parse_cq("Q(A) :- E(A,B)").unwrap();
        assert!(cq_isomorphic(&q1, &q3));
    }

    #[test]
    fn constants_must_match_exactly() {
        let q1 = parse_cq("Q() :- E(a, X)").unwrap();
        let q2 = parse_cq("Q() :- E(b, X)").unwrap();
        assert!(!cq_isomorphic(&q1, &q2));
        let q3 = parse_cq("Q() :- E(a, Y)").unwrap();
        assert!(cq_isomorphic(&q1, &q3));
    }

    #[test]
    fn symmetric_queries_need_backtracking() {
        // Two triangles that differ only in traversal order.
        let t1 = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        let t2 = parse_cq("Q() :- E(C,A), E(A,B), E(B,C)").unwrap();
        assert!(cq_isomorphic(&t1, &t2));
    }

    #[test]
    fn instances_isomorphic_up_to_null_renaming() {
        use gtgd_data::GroundAtom;
        let n1 = Value::fresh_null();
        let n2 = Value::fresh_null();
        let m1 = Value::fresh_null();
        let m2 = Value::fresh_null();
        let a = Instance::from_atoms([
            GroundAtom::new(gtgd_data::Predicate::new("R"), vec![Value::named("c"), n1]),
            GroundAtom::new(gtgd_data::Predicate::new("R"), vec![n1, n2]),
        ]);
        let b = Instance::from_atoms([
            GroundAtom::new(gtgd_data::Predicate::new("R"), vec![Value::named("c"), m1]),
            GroundAtom::new(gtgd_data::Predicate::new("R"), vec![m1, m2]),
        ]);
        assert!(instance_isomorphic(&a, &b));
        // Collapsing the two nulls breaks the bijection.
        let c = Instance::from_atoms([
            GroundAtom::new(gtgd_data::Predicate::new("R"), vec![Value::named("c"), m1]),
            GroundAtom::new(gtgd_data::Predicate::new("R"), vec![m1, m1]),
        ]);
        assert!(!instance_isomorphic(&a, &c));
    }

    #[test]
    fn instance_isomorphism_fixes_named_constants() {
        use gtgd_data::GroundAtom;
        // Same shape but different constants: NOT isomorphic over constants.
        let a = Instance::from_atoms([GroundAtom::named("R", &["a", "b"])]);
        let b = Instance::from_atoms([GroundAtom::named("R", &["b", "a"])]);
        assert!(!instance_isomorphic(&a, &b));
        assert!(instance_isomorphic(&a, &a));
        // Different atom counts short-circuit.
        let mut bigger = a.clone();
        bigger.insert(GroundAtom::named("R", &["b", "b"]));
        assert!(!instance_isomorphic(&a, &bigger));
    }

    #[test]
    fn dedup_keeps_one_per_class() {
        let qs = vec![
            parse_cq("Q() :- E(X,Y)").unwrap(),
            parse_cq("Q() :- E(A,B)").unwrap(),
            parse_cq("Q() :- E(X,X)").unwrap(),
        ];
        assert_eq!(dedup_isomorphic(qs).len(), 2);
    }
}
