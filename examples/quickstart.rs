//! Quickstart: define a database, a guarded ontology, and an
//! ontology-mediated query; get certain answers open-world.
//!
//! Run with: `cargo run --example quickstart`

use gtgd::chase::parse_tgds;
use gtgd::data::{GroundAtom, Instance};
use gtgd::omq::{evaluate_omq, EvalConfig, Omq};
use gtgd::query::parse_ucq;

fn main() {
    // A tiny HR database: two employees, one department fact.
    let db = Instance::from_atoms([
        GroundAtom::named("Emp", &["ann"]),
        GroundAtom::named("Emp", &["bob"]),
        GroundAtom::named("WorksIn", &["ann", "sales"]),
    ]);

    // A guarded ontology: every employee works somewhere; every workplace
    // is a department; departments have managers who are employees.
    let sigma = parse_tgds(
        "Emp(X) -> WorksIn(X,D). \
         WorksIn(X,D) -> Dept(D). \
         Dept(D) -> HasMgr(D,M), Emp(M)",
    )
    .expect("ontology parses");

    // The actual query: who works in a managed department?
    let query = parse_ucq("Q(X) :- WorksIn(X,D), HasMgr(D,M)").expect("query parses");

    let omq = Omq::full_schema(sigma, query);
    let result = evaluate_omq(&omq, &db, &EvalConfig::default());

    println!("certain answers (exact = {}):", result.exact);
    let mut answers: Vec<String> = result
        .answers
        .iter()
        .map(|t| {
            t.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    answers.sort();
    for a in &answers {
        println!("  Q({a})");
    }
    // Both ann and bob are certain answers: the ontology guarantees every
    // employee a department with a manager, even though the database never
    // says so explicitly.
    assert_eq!(answers, vec!["ann", "bob"]);
}
