//! Weak acyclicity of TGD sets (Fagin et al. \[22\]): the standard sufficient
//! condition for chase termination, used to decide when the chase itself can
//! serve as a finite universal model (see `witness`).

use crate::tgd::Tgd;
use gtgd_data::Predicate;
use gtgd_query::Term;
use std::collections::{HashMap, HashSet};

/// A position `(R, i)` in the dependency graph.
type Position = (Predicate, usize);

/// Whether the TGD set is weakly acyclic: its position dependency graph has
/// no cycle through a *special* edge (an edge into a position holding an
/// existentially quantified variable).
pub fn is_weakly_acyclic(tgds: &[Tgd]) -> bool {
    // Collect positions and edges.
    let mut positions: HashSet<Position> = HashSet::new();
    let mut regular: HashSet<(Position, Position)> = HashSet::new();
    let mut special: HashSet<(Position, Position)> = HashSet::new();
    for tgd in tgds {
        let frontier: HashSet<_> = tgd.frontier().into_iter().collect();
        let exist: HashSet<_> = tgd.existential_vars().into_iter().collect();
        for a in tgd.body.iter().chain(tgd.head.iter()) {
            for i in 0..a.args.len() {
                positions.insert((a.predicate, i));
            }
        }
        for body_atom in &tgd.body {
            for (bi, bt) in body_atom.args.iter().enumerate() {
                let Term::Var(x) = *bt else { continue };
                if !frontier.contains(&x) {
                    continue;
                }
                let from = (body_atom.predicate, bi);
                for head_atom in &tgd.head {
                    for (hi, ht) in head_atom.args.iter().enumerate() {
                        let Term::Var(y) = *ht else { continue };
                        let to = (head_atom.predicate, hi);
                        if y == x {
                            regular.insert((from, to));
                        } else if exist.contains(&y) {
                            special.insert((from, to));
                        }
                    }
                }
            }
        }
    }
    if special.is_empty() {
        return true;
    }
    // Weakly acyclic iff no strongly connected component contains a special
    // edge. Compute SCCs (iterative Tarjan) over the combined graph.
    let nodes: Vec<Position> = positions.into_iter().collect();
    let index_of: HashMap<Position, usize> =
        nodes.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for &(a, b) in regular.iter().chain(special.iter()) {
        adj[index_of[&a]].push(index_of[&b]);
    }
    let scc = tarjan_scc(&adj);
    special
        .iter()
        .all(|&(a, b)| scc[index_of[&a]] != scc[index_of[&b]])
}

/// Iterative Tarjan SCC; returns the component id of each node.
fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    // Explicit call stack: (node, child iterator position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("scc stack");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                call.pop();
                if let Some(&mut (u, _)) = call.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tgd::parse_tgds;

    #[test]
    fn full_tgds_are_weakly_acyclic() {
        let t = parse_tgds("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        assert!(is_weakly_acyclic(&t));
    }

    #[test]
    fn self_feeding_existential_is_not() {
        let t = parse_tgds("Person(X) -> Parent(X,Y), Person(Y)").unwrap();
        assert!(!is_weakly_acyclic(&t));
    }

    #[test]
    fn acyclic_existential_chain_is() {
        let t = parse_tgds("A(X) -> R(X,Y). R(X,Y) -> B(Y)").unwrap();
        assert!(is_weakly_acyclic(&t));
    }

    #[test]
    fn two_rule_existential_cycle_detected() {
        let t = parse_tgds("A(X) -> B(X,Y). B(X,Y) -> A(Y)").unwrap();
        assert!(!is_weakly_acyclic(&t));
    }

    #[test]
    fn inclusion_dependencies_without_cycles() {
        let t = parse_tgds("Emp(X,D) -> Dept(D). Dept(D) -> Unit(D)").unwrap();
        assert!(is_weakly_acyclic(&t));
    }

    #[test]
    fn regular_cycle_alone_is_fine() {
        // A(x) → B(x), B(x) → A(x): a regular cycle, no special edges.
        let t = parse_tgds("A(X) -> B(X). B(X) -> A(X)").unwrap();
        assert!(is_weakly_acyclic(&t));
    }

    #[test]
    fn empty_set_is_weakly_acyclic() {
        assert!(is_weakly_acyclic(&[]));
    }
}
