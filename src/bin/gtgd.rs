//! `gtgd` — evaluate a query script open- or closed-world.
//!
//! ```text
//! gtgd script.gtgd         # evaluate a script file
//! gtgd -                   # read the script from stdin
//! gtgd --trace script.gtgd # also print the probe report (JSON, stderr)
//! ```
//!
//! See `gtgd::script` for the script format.

use gtgd::data::obs;
use gtgd::script::{eval_script, Mode};
use std::io::Read;

fn main() {
    let mut trace = false;
    let mut files: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        if a == "--trace" {
            trace = true;
        } else {
            files.push(a);
        }
    }
    let [arg] = files.as_slice() else {
        eprintln!("usage: gtgd [--trace] <script-file | ->");
        std::process::exit(2);
    };
    let src = if arg == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        std::fs::read_to_string(arg).unwrap_or_else(|e| {
            eprintln!("cannot read {arg}: {e}");
            std::process::exit(2);
        })
    };
    let (result, report) = if trace {
        let (r, rep) = obs::trace_run(|| eval_script(&src));
        (r, Some(rep))
    } else {
        (eval_script(&src), None)
    };
    match result {
        Ok(out) => {
            let mode = match out.mode {
                Mode::Open => "open-world (OMQ)",
                Mode::Closed => "closed-world (CQS)",
            };
            println!(
                "{mode}; {} answer(s); exact = {}",
                out.answers.len(),
                out.exact
            );
            for a in &out.answers {
                println!("  ({a})");
            }
            if let Some(rep) = report {
                // The report goes to stderr so piped answer output stays clean.
                eprintln!("{}", rep.to_json());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
