//! The oblivious chase (Section 2), with level tracking and budgets.
//!
//! The oblivious chase fires every trigger `(σ, h)` exactly once, whether or
//! not the head is already satisfied, so every chase sequence yields the same
//! result up to isomorphism and level structure is well defined: the level
//! of an atom is `1 +` the maximum level of the body atoms that produced it
//! (0 for database atoms).
//!
//! Trigger discovery is *semi-naive*: after round `ℓ`, only triggers whose
//! body uses at least one atom created in round `ℓ` are searched, by pinning
//! each body atom in turn to the round-`ℓ` delta.

use crate::plan::TriggerPlan;
use crate::tgd::Tgd;
use gtgd_data::{obs, GroundAtom, Instance, Value};
use std::collections::HashSet;
use std::ops::ControlFlow;
use std::time::Instant;

/// Resource limits for a chase run. The chase of a database under TGDs with
/// existential heads is infinite in general, so callers choose how much of
/// it to materialize.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaseBudget {
    /// Stop after materializing all atoms of this level.
    pub max_level: Option<usize>,
    /// Hard cap on materialized atoms: trigger firing stops as soon as the
    /// instance plus the atoms pending insertion reaches this count, even in
    /// the middle of a round. The final instance may exceed the cap by at
    /// most one head's worth of atoms (the trigger that reached it).
    pub max_atoms: Option<usize>,
}

impl ChaseBudget {
    /// No limits: run to a fixpoint (only safe for terminating chases —
    /// full or weakly acyclic TGD sets).
    pub fn unbounded() -> ChaseBudget {
        ChaseBudget::default()
    }

    /// Limit by level only.
    pub fn levels(max_level: usize) -> ChaseBudget {
        ChaseBudget {
            max_level: Some(max_level),
            max_atoms: None,
        }
    }

    /// Limit by atom count only.
    pub fn atoms(max_atoms: usize) -> ChaseBudget {
        ChaseBudget {
            max_level: None,
            max_atoms: Some(max_atoms),
        }
    }

    /// Whether a projected atom count exhausts the atom budget.
    pub fn atoms_exhausted(&self, projected: usize) -> bool {
        self.max_atoms.is_some_and(|max| projected >= max)
    }
}

/// The materialized prefix of a chase.
#[derive(Debug, Clone)]
pub struct ChaseResult {
    /// The atoms materialized so far (includes the input database).
    pub instance: Instance,
    /// `levels[i]` is the chase level of `instance.atom(i)`.
    pub levels: Vec<usize>,
    /// Whether a fixpoint was reached (the result is the full
    /// `chase(D, Σ)`), as opposed to stopping on a budget.
    pub complete: bool,
    /// The highest level materialized.
    pub max_level: usize,
}

impl ChaseResult {
    /// The atoms up to and including `level` (the instance
    /// `chase^ℓ_s(D, Σ)` of Appendix A).
    pub fn up_to_level(&self, level: usize) -> Instance {
        Instance::from_atoms(
            self.instance
                .iter()
                .enumerate()
                .filter(|&(i, _)| self.levels[i] <= level)
                .map(|(_, a)| a.clone()),
        )
    }
}

/// Runs the oblivious chase of `db` under `tgds` within `budget`.
///
/// Each TGD is compiled into a trigger plan (`plan::TriggerPlan`) once; every round re-probes
/// the cached plan with a delta atom pinned, instead of rebuilding atom
/// lists per firing.
///
/// Compatibility wrapper over [`crate::runner::ChaseRunner`] — prefer the
/// facade in new code.
pub fn chase(db: &Instance, tgds: &[Tgd], budget: &ChaseBudget) -> ChaseResult {
    crate::runner::ChaseRunner::new(tgds)
        .budget(*budget)
        .run(db)
        .into_chase_result()
}

/// The sequential oblivious engine behind [`chase`] and
/// [`crate::runner::ChaseRunner`].
pub(crate) fn chase_impl(db: &Instance, tgds: &[Tgd], budget: &ChaseBudget) -> ChaseResult {
    let _span = obs::span("chase.oblivious");
    let plans = TriggerPlan::compile_all(tgds);
    let mut instance = db.clone();
    let mut levels = vec![0usize; instance.len()];
    let mut fired: HashSet<(usize, Vec<Value>)> = HashSet::new();
    let mut complete = true;
    let mut max_level = 0usize;

    // Round 0: triggers over the database (and empty-body TGDs, which fire
    // exactly once each).
    let mut delta: Vec<GroundAtom> = instance.iter().cloned().collect();
    let mut level = 0usize;
    loop {
        if let Some(max) = budget.max_level {
            if level >= max {
                complete = false;
                break;
            }
        }
        if let Some(max) = budget.max_atoms {
            if instance.len() >= max {
                complete = false;
                break;
            }
        }
        let round_t = obs::enabled().then(Instant::now);
        let mut new_atoms: Vec<GroundAtom> = Vec::new();
        let mut hit_cap = false;
        'round: for (ti, tgd) in tgds.iter().enumerate() {
            let plan = &plans[ti];
            if tgd.body.is_empty() {
                if level == 0 && fired.insert((ti, Vec::new())) {
                    obs::count(obs::Metric::TriggerFirings, 1);
                    plan.fire_row(&[], &mut new_atoms);
                }
                continue;
            }
            // Semi-naive: require some body atom to match a delta atom.
            // At level 0 the delta is the whole database, which covers all
            // initial triggers.
            for pin in 0..tgd.body.len() {
                for d in &delta {
                    let Some(seed) = plan.body.unify_atom(pin, d) else {
                        continue;
                    };
                    plan.body
                        .search(&instance)
                        .fix_slots(seed)
                        .skip_atom(pin)
                        .for_each_row(|row| {
                            if budget.atoms_exhausted(instance.len() + new_atoms.len()) {
                                hit_cap = true;
                                return ControlFlow::Break(());
                            }
                            if fired.insert((ti, plan.trigger_key(row))) {
                                obs::count(obs::Metric::TriggerFirings, 1);
                                plan.fire_row(row, &mut new_atoms);
                            }
                            ControlFlow::Continue(())
                        });
                    if hit_cap {
                        break 'round;
                    }
                }
            }
        }
        obs::count(obs::Metric::ChaseRounds, 1);
        if let Some(t0) = round_t {
            obs::observe(obs::Hist::ChaseRoundNs, t0.elapsed().as_nanos() as u64);
        }
        if new_atoms.is_empty() {
            if hit_cap {
                complete = false;
            }
            break;
        }
        level += 1;
        max_level = level;
        delta = Vec::new();
        instance.reserve_additional(new_atoms.len());
        for a in new_atoms {
            if instance.insert(a.clone()) {
                levels.push(level);
                delta.push(a);
            }
        }
        if delta.is_empty() {
            // All "new" atoms were already present (possible when a full TGD
            // re-derives existing atoms); fixpoint.
            max_level = level - 1;
            if hit_cap {
                complete = false;
            }
            break;
        }
        if hit_cap {
            // The atom budget was exhausted mid-round: stop here rather than
            // searching another round's triggers.
            complete = false;
            break;
        }
    }
    ChaseResult {
        instance,
        levels,
        complete,
        max_level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tgd::{parse_tgds, satisfies_all};
    use gtgd_query::{holds_boolean, parse_cq};

    fn db(atoms: &[(&str, &[&str])]) -> Instance {
        Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
    }

    #[test]
    fn full_tgds_reach_fixpoint() {
        // Transitive closure.
        let tgds = parse_tgds("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let d = db(&[("E", &["a", "b"]), ("E", &["b", "c"]), ("E", &["c", "d"])]);
        let r = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert!(r.complete);
        assert_eq!(r.instance.len(), 6); // all pairs (a,b),(b,c),(c,d),(a,c),(b,d),(a,d)
        assert!(satisfies_all(&r.instance, &tgds));
    }

    #[test]
    fn levels_track_derivation_depth() {
        let tgds = parse_tgds("A(X) -> B(X). B(X) -> C(X).").unwrap();
        let d = db(&[("A", &["a"])]);
        let r = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert!(r.complete);
        assert_eq!(r.max_level, 2);
        let l1 = r.up_to_level(1);
        assert!(l1.contains(&GroundAtom::named("B", &["a"])));
        assert!(!l1.contains(&GroundAtom::named("C", &["a"])));
    }

    #[test]
    fn existential_heads_create_nulls() {
        let tgds = parse_tgds("Person(X) -> HasParent(X,Y), Person(Y)").unwrap();
        let d = db(&[("Person", &["alice"])]);
        let r = chase(&d, &tgds, &ChaseBudget::levels(3));
        assert!(!r.complete); // infinite chase cut off
        assert_eq!(r.max_level, 3);
        // Levels 1..3 each add HasParent + Person.
        assert_eq!(r.instance.len(), 1 + 2 * 3);
        let parents = r
            .instance
            .iter()
            .filter(|a| a.predicate == gtgd_data::Predicate::new("HasParent"))
            .count();
        assert_eq!(parents, 3);
    }

    #[test]
    fn oblivious_fires_even_if_satisfied() {
        // D already satisfies the TGD, but the oblivious chase still fires.
        let tgds = parse_tgds("P(X) -> R(X,Y)").unwrap();
        let d = db(&[("P", &["a"]), ("R", &["a", "b"])]);
        let r = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert!(r.complete);
        // A fresh null was invented despite R(a,b) existing.
        assert_eq!(r.instance.len(), 3);
    }

    #[test]
    fn triggers_fire_once() {
        let tgds = parse_tgds("P(X) -> R(X,Y)").unwrap();
        let d = db(&[("P", &["a"])]);
        let r = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert!(r.complete);
        assert_eq!(r.instance.len(), 2); // P(a), R(a,⊥) — not refired on ⊥
    }

    #[test]
    fn empty_body_tgd_fires_once() {
        let tgds = parse_tgds("-> R(X,X)").unwrap();
        let r = chase(&Instance::new(), &tgds, &ChaseBudget::unbounded());
        assert!(r.complete);
        assert_eq!(r.instance.len(), 1);
    }

    #[test]
    fn atom_budget_stops() {
        let tgds = parse_tgds("P(X) -> Q(X,Y). Q(X,Y) -> P(Y)").unwrap();
        let d = db(&[("P", &["a"])]);
        let r = chase(&d, &tgds, &ChaseBudget::atoms(20));
        assert!(!r.complete);
        // Single-atom heads: the hard cap is hit exactly.
        assert_eq!(r.instance.len(), 20);
    }

    #[test]
    fn atom_budget_is_enforced_within_a_round() {
        // One round would fire 100 triggers; the cap must stop firing
        // mid-round, not after materializing the whole round.
        let tgds = parse_tgds("P(X) -> Q(X)").unwrap();
        let names: Vec<String> = (0..100).map(|i| format!("c{i}")).collect();
        let d = Instance::from_atoms(names.iter().map(|n| GroundAtom::named("P", &[n.as_str()])));
        let r = chase(&d, &tgds, &ChaseBudget::atoms(110));
        assert!(!r.complete);
        assert_eq!(r.instance.len(), 110);
        assert_eq!(r.levels.iter().filter(|&&l| l == 1).count(), 10);
    }

    #[test]
    fn atom_budget_overshoots_by_at_most_one_head() {
        // Three-atom heads: the trigger that reaches the cap still fires
        // whole, so the overshoot is bounded by head size - 1.
        let tgds = parse_tgds("P(X) -> A(X,Y), B(Y), C(Y)").unwrap();
        let names: Vec<String> = (0..10).map(|i| format!("c{i}")).collect();
        let d = Instance::from_atoms(names.iter().map(|n| GroundAtom::named("P", &[n.as_str()])));
        let r = chase(&d, &tgds, &ChaseBudget::atoms(14));
        assert!(!r.complete);
        assert!(r.instance.len() >= 14);
        assert!(r.instance.len() <= 14 + 2);
    }

    #[test]
    fn atom_budget_already_exhausted_keeps_database() {
        let tgds = parse_tgds("P(X) -> Q(X)").unwrap();
        let d = db(&[("P", &["a"]), ("P", &["b"]), ("P", &["c"])]);
        let r = chase(&d, &tgds, &ChaseBudget::atoms(3));
        assert!(!r.complete);
        assert_eq!(r.instance, d);
        assert_eq!(r.max_level, 0);
    }

    #[test]
    fn atom_budget_at_fixpoint_boundary_is_complete() {
        // The fixpoint is reached before the budget: the run is complete
        // even though the final size equals the cap.
        let tgds = parse_tgds("P(X) -> Q(X)").unwrap();
        let d = db(&[("P", &["a"])]);
        let r = chase(&d, &tgds, &ChaseBudget::atoms(3));
        assert!(r.complete);
        assert_eq!(r.instance.len(), 2);
    }

    #[test]
    fn level_budget_zero_keeps_database() {
        let tgds = parse_tgds("A(X) -> B(X)").unwrap();
        let d = db(&[("A", &["a"])]);
        let r = chase(&d, &tgds, &ChaseBudget::levels(0));
        assert!(!r.complete);
        assert_eq!(r.instance, d);
        assert_eq!(r.max_level, 0);
    }

    #[test]
    fn level_budget_edges_around_fixpoint() {
        // The chain needs exactly 2 levels. `levels(2)` stops *at* the cap
        // without searching the (empty) third round, so it cannot certify
        // completeness; `levels(3)` searches it and does.
        let tgds = parse_tgds("A(X) -> B(X). B(X) -> C(X).").unwrap();
        let d = db(&[("A", &["a"])]);
        let at = chase(&d, &tgds, &ChaseBudget::levels(2));
        assert!(!at.complete);
        assert_eq!(at.max_level, 2);
        assert_eq!(at.instance.len(), 3);
        let past = chase(&d, &tgds, &ChaseBudget::levels(3));
        assert!(past.complete);
        assert_eq!(past.instance.len(), 3);
        assert_eq!(past.max_level, 2);
    }

    #[test]
    fn chase_answers_queries_prop_3_1_style() {
        // Σ: every employee works in some department with a manager.
        let tgds =
            parse_tgds("Emp(X) -> WorksIn(X,D), Dept(D). Dept(D) -> HasMgr(D,M), Emp(M)").unwrap();
        let d = db(&[("Emp", &["ann"])]);
        let r = chase(&d, &tgds, &ChaseBudget::levels(4));
        let q = parse_cq("Q() :- WorksIn(X,D), HasMgr(D,M)").unwrap();
        assert!(holds_boolean(&q, &r.instance));
    }

    #[test]
    fn multiway_join_body() {
        let tgds = parse_tgds("R(X,Y), S(Y,Z), T(Z,W) -> U(X,W)").unwrap();
        let d = db(&[
            ("R", &["a", "b"]),
            ("S", &["b", "c"]),
            ("T", &["c", "d"]),
            ("S", &["b", "e"]), // dead end
        ]);
        let r = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert!(r.instance.contains(&GroundAtom::named("U", &["a", "d"])));
        assert_eq!(r.instance.len(), 5);
    }

    #[test]
    fn constants_in_tgd_bodies() {
        let tgds = parse_tgds("Color(X, red) -> Warm(X)").unwrap();
        let d = db(&[("Color", &["car", "red"]), ("Color", &["sky", "blue"])]);
        let r = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert!(r.instance.contains(&GroundAtom::named("Warm", &["car"])));
        assert!(!r.instance.contains(&GroundAtom::named("Warm", &["sky"])));
    }
}
