//! Tree decompositions and their validation (Section 2 of the paper).

use crate::graph::Graph;
use std::collections::BTreeSet;

/// A tree decomposition `(T, χ)` of a graph.
///
/// `bags[i]` is `χ(i)`; `tree_edges` are the edges of `T`. The structure is
/// only a candidate until [`TreeDecomposition::validate`] confirms the three
/// decomposition conditions against a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeDecomposition {
    bags: Vec<BTreeSet<usize>>,
    tree_edges: Vec<(usize, usize)>,
}

/// Why a candidate decomposition is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidDecomposition {
    /// The tree part is not a tree (wrong edge count or disconnected).
    NotATree,
    /// Some graph vertex appears in no bag.
    VertexNotCovered(usize),
    /// Some graph edge has no bag containing both endpoints.
    EdgeNotCovered(usize, usize),
    /// The bags containing some vertex do not induce a connected subtree.
    NotConnected(usize),
    /// A bag mentions a vertex id outside the graph.
    UnknownVertex(usize),
}

impl std::fmt::Display for InvalidDecomposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidDecomposition::NotATree => write!(f, "tree part is not a tree"),
            InvalidDecomposition::VertexNotCovered(v) => {
                write!(f, "vertex {v} appears in no bag")
            }
            InvalidDecomposition::EdgeNotCovered(u, v) => {
                write!(f, "edge {{{u},{v}}} is covered by no bag")
            }
            InvalidDecomposition::NotConnected(v) => {
                write!(f, "bags containing {v} are not connected in the tree")
            }
            InvalidDecomposition::UnknownVertex(v) => {
                write!(f, "bag mentions vertex {v} outside the graph")
            }
        }
    }
}

impl std::error::Error for InvalidDecomposition {}

impl TreeDecomposition {
    /// Builds a decomposition from bags and tree edges.
    pub fn new(bags: Vec<BTreeSet<usize>>, tree_edges: Vec<(usize, usize)>) -> Self {
        TreeDecomposition { bags, tree_edges }
    }

    /// A decomposition with a single bag containing `vs` (always valid for
    /// the graph induced by `vs`).
    pub fn single_bag(vs: impl IntoIterator<Item = usize>) -> Self {
        TreeDecomposition {
            bags: vec![vs.into_iter().collect()],
            tree_edges: Vec::new(),
        }
    }

    /// The bags.
    pub fn bags(&self) -> &[BTreeSet<usize>] {
        &self.bags
    }

    /// The tree edges.
    pub fn tree_edges(&self) -> &[(usize, usize)] {
        &self.tree_edges
    }

    /// Number of bags.
    pub fn bag_count(&self) -> usize {
        self.bags.len()
    }

    /// Width: `max |bag| - 1` (0 for an empty decomposition, matching the
    /// width of a decomposition of the empty graph).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Adds a bag and returns its index.
    pub fn add_bag(&mut self, bag: impl IntoIterator<Item = usize>) -> usize {
        self.bags.push(bag.into_iter().collect());
        self.bags.len() - 1
    }

    /// Connects two bags in the tree.
    pub fn add_tree_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.bags.len() && b < self.bags.len());
        self.tree_edges.push((a, b));
    }

    /// Finds a bag containing all of `vs`, if any. Every clique of the graph
    /// is contained in some bag of any valid decomposition, so this succeeds
    /// for cliques.
    pub fn bag_containing(&self, vs: &[usize]) -> Option<usize> {
        self.bags
            .iter()
            .position(|b| vs.iter().all(|v| b.contains(v)))
    }

    /// Checks the three conditions of Definition "tree decomposition" against
    /// `g` (vertex coverage, edge coverage, connectedness of occurrence sets)
    /// plus well-formedness of the tree.
    pub fn validate(&self, g: &Graph) -> Result<(), InvalidDecomposition> {
        let nb = self.bags.len();
        // Tree well-formedness: nb nodes need nb-1 edges and connectivity.
        if nb > 0 {
            if self.tree_edges.len() != nb - 1 {
                return Err(InvalidDecomposition::NotATree);
            }
            let mut t = Graph::new(nb);
            for &(a, b) in &self.tree_edges {
                if a >= nb || b >= nb || a == b || !t.add_edge(a, b) {
                    return Err(InvalidDecomposition::NotATree);
                }
            }
            if !t.is_connected() {
                return Err(InvalidDecomposition::NotATree);
            }
        }
        let n = g.vertex_count();
        for bag in &self.bags {
            if let Some(&v) = bag.iter().find(|&&v| v >= n) {
                return Err(InvalidDecomposition::UnknownVertex(v));
            }
        }
        // (1) vertex coverage
        let mut covered = vec![false; n];
        for bag in &self.bags {
            for &v in bag {
                covered[v] = true;
            }
        }
        if let Some(v) = covered.iter().position(|c| !c) {
            return Err(InvalidDecomposition::VertexNotCovered(v));
        }
        // (2) edge coverage
        for (u, v) in g.edges() {
            if self.bag_containing(&[u, v]).is_none() {
                return Err(InvalidDecomposition::EdgeNotCovered(u, v));
            }
        }
        // (3) connectedness of occurrence sets
        let mut tree = Graph::new(nb);
        for &(a, b) in &self.tree_edges {
            tree.add_edge(a, b);
        }
        for v in 0..n {
            let occ: Vec<usize> = (0..nb).filter(|&i| self.bags[i].contains(&v)).collect();
            if occ.len() <= 1 {
                continue;
            }
            let (sub, _) = tree.induced_subgraph(&occ);
            if !sub.is_connected() {
                return Err(InvalidDecomposition::NotConnected(v));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(vs: &[usize]) -> BTreeSet<usize> {
        vs.iter().copied().collect()
    }

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    #[test]
    fn path_decomposition_is_valid_width_one() {
        let g = path_graph(4);
        let d = TreeDecomposition::new(
            vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])],
            vec![(0, 1), (1, 2)],
        );
        assert_eq!(d.width(), 1);
        d.validate(&g).unwrap();
    }

    #[test]
    fn missing_edge_coverage_detected() {
        let mut g = path_graph(3);
        g.add_edge(0, 2);
        let d = TreeDecomposition::new(vec![bag(&[0, 1]), bag(&[1, 2])], vec![(0, 1)]);
        assert_eq!(
            d.validate(&g),
            Err(InvalidDecomposition::EdgeNotCovered(0, 2))
        );
    }

    #[test]
    fn missing_vertex_detected() {
        let g = path_graph(3);
        let d = TreeDecomposition::new(vec![bag(&[0, 1])], vec![]);
        assert_eq!(
            d.validate(&g),
            Err(InvalidDecomposition::VertexNotCovered(2))
        );
    }

    #[test]
    fn disconnected_occurrence_detected() {
        let g = path_graph(3);
        // Vertex 0 appears in bags 0 and 2 which are not adjacent.
        let d = TreeDecomposition::new(
            vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[0, 2])],
            vec![(0, 1), (1, 2)],
        );
        assert_eq!(d.validate(&g), Err(InvalidDecomposition::NotConnected(0)));
    }

    #[test]
    fn non_tree_detected() {
        let g = path_graph(2);
        let d = TreeDecomposition::new(vec![bag(&[0, 1]), bag(&[0, 1])], vec![]);
        assert_eq!(d.validate(&g), Err(InvalidDecomposition::NotATree));
    }

    #[test]
    fn single_bag_always_valid() {
        let mut g = path_graph(4);
        g.add_edge(0, 3);
        g.add_edge(0, 2);
        let d = TreeDecomposition::single_bag(0..4);
        d.validate(&g).unwrap();
        assert_eq!(d.width(), 3);
    }

    #[test]
    fn clique_has_bag() {
        let d = TreeDecomposition::new(vec![bag(&[0, 1, 2]), bag(&[2, 3])], vec![(0, 1)]);
        assert_eq!(d.bag_containing(&[0, 2]), Some(0));
        assert_eq!(d.bag_containing(&[1, 3]), None);
    }
}
