//! CQ and UCQ evaluation over instances (the problem of Section 2), plus the
//! injectively-only satisfaction check `|=io` from Appendix D.
//!
//! Evaluation runs directly on the compiled kernel ([`crate::compile`]):
//! answer projection reads slots out of the kernel's flat rows, so no
//! per-witness `HashMap` is ever built.
//!
//! The free functions here predate the [`crate::engine::Engine`] facade and
//! are kept as thin delegating wrappers for compatibility. New code should
//! prefer `Engine::prepare(&q)`, which exposes the same evaluation paths
//! behind one configurable builder.

use crate::compile::CompiledQuery;
use crate::cq::{Cq, Ucq};
use crate::engine::Engine;
use gtgd_data::{Instance, Value};
use std::collections::HashSet;
use std::ops::ControlFlow;

/// Compiles `q` with its answer variables interned (they may be ghost) and
/// resolves the answer slots.
fn compile_for_answers(q: &Cq) -> (CompiledQuery, Vec<usize>) {
    let plan = CompiledQuery::compile_with_extra(&q.atoms, q.answer_vars.iter().copied());
    let slots = q
        .answer_vars
        .iter()
        .map(|&v| plan.slot_of(v).expect("answer vars are interned"))
        .collect();
    (plan, slots)
}

/// `q(I)`: the set of answers to `q` over `I`.
///
/// Compatibility wrapper over [`Engine::prepare`] — prefer the facade in
/// new code.
pub fn evaluate_cq(q: &Cq, i: &Instance) -> HashSet<Vec<Value>> {
    Engine::prepare(q).answers(i)
}

/// `q(I)` evaluated on a `workers`-wide pool (see
/// [`crate::compile::KernelSearch::par_table`]). Returns the same set as
/// [`evaluate_cq`].
///
/// Compatibility wrapper over [`Engine::prepare`]`.parallel(workers)` —
/// prefer the facade in new code.
pub fn evaluate_cq_par(q: &Cq, i: &Instance, workers: usize) -> HashSet<Vec<Value>> {
    Engine::prepare(q).parallel(workers).answers(i)
}

/// Whether `c̄ ∈ q(I)` (the evaluation problem's decision form).
///
/// Compatibility wrapper over [`Engine::prepare`]`.check(..)` — prefer the
/// facade in new code.
pub fn check_answer(q: &Cq, i: &Instance, answer: &[Value]) -> bool {
    Engine::prepare(q).check(i, answer)
}

/// Whether a Boolean CQ holds: `I |= q`.
pub fn holds_boolean(q: &Cq, i: &Instance) -> bool {
    assert!(q.is_boolean(), "holds_boolean requires a Boolean CQ");
    CompiledQuery::compile(&q.atoms).search(i).exists()
}

/// `q(I)` for a UCQ: the union of the disjuncts' answers.
pub fn evaluate_ucq(q: &Ucq, i: &Instance) -> HashSet<Vec<Value>> {
    let mut out = HashSet::new();
    for d in &q.disjuncts {
        out.extend(evaluate_cq(d, i));
    }
    out
}

/// Whether `c̄ ∈ q(I)` for a UCQ.
pub fn check_answer_ucq(q: &Ucq, i: &Instance, answer: &[Value]) -> bool {
    q.disjuncts.iter().any(|d| check_answer(d, i, answer))
}

/// Whether a Boolean UCQ holds.
pub fn ucq_holds_boolean(q: &Ucq, i: &Instance) -> bool {
    q.disjuncts.iter().any(|d| holds_boolean(d, i))
}

/// `I |=io q(c̄)` (Appendix D): `c̄ ∈ q(I)` **and** every witnessing
/// homomorphism is injective. Used by the lower-bound machinery, where
/// candidate answers are tuples of distinct constants.
pub fn holds_injectively_only(q: &Cq, i: &Instance, answer: &[Value]) -> bool {
    assert_eq!(answer.len(), q.arity());
    let (plan, slots) = compile_for_answers(q);
    let mut any = false;
    let mut all_injective = true;
    let mut seen: HashSet<Value> = HashSet::new();
    plan.search(i)
        .fix_slots(slots.into_iter().zip(answer.iter().copied()))
        .for_each_row(|row| {
            any = true;
            // Slots are distinct variables, so a row is injective iff its
            // values are pairwise distinct.
            seen.clear();
            if row.iter().any(|&v| !seen.insert(v)) {
                all_injective = false;
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
    any && all_injective
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_cq, parse_ucq};
    use gtgd_data::GroundAtom;

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    fn cycle_db(n: usize) -> Instance {
        let names: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
        Instance::from_atoms(
            (0..n)
                .map(|i| GroundAtom::named("E", &[names[i].as_str(), names[(i + 1) % n].as_str()])),
        )
    }

    #[test]
    fn unary_answers() {
        let q = parse_cq("Q(X) :- E(X,Y)").unwrap();
        let ans = evaluate_cq(&q, &cycle_db(3));
        assert_eq!(ans.len(), 3);
        assert!(ans.contains(&vec![v("c0")]));
    }

    #[test]
    fn binary_answers_and_check() {
        let q = parse_cq("Q(X,Z) :- E(X,Y), E(Y,Z)").unwrap();
        let db = cycle_db(4);
        let ans = evaluate_cq(&q, &db);
        assert_eq!(ans.len(), 4);
        assert!(check_answer(&q, &db, &[v("c0"), v("c2")]));
        assert!(!check_answer(&q, &db, &[v("c0"), v("c1")]));
    }

    #[test]
    fn boolean_cq() {
        let q = parse_cq("Q() :- E(X,X)").unwrap();
        assert!(!holds_boolean(&q, &cycle_db(3)));
        let loop_db = Instance::from_atoms([GroundAtom::named("E", &["a", "a"])]);
        assert!(holds_boolean(&q, &loop_db));
    }

    #[test]
    fn ucq_union_semantics() {
        let u = parse_ucq("Q(X) :- A(X). Q(X) :- B(X)").unwrap();
        let db = Instance::from_atoms([
            GroundAtom::named("A", &["a"]),
            GroundAtom::named("B", &["b"]),
        ]);
        let ans = evaluate_ucq(&u, &db);
        assert_eq!(ans.len(), 2);
        assert!(ucq_holds_boolean(
            &parse_ucq("Q() :- A(X). Q() :- C(X)").unwrap(),
            &db
        ));
        assert!(!ucq_holds_boolean(
            &parse_ucq("Q() :- C(X). Q() :- D(X)").unwrap(),
            &db
        ));
    }

    #[test]
    fn empty_database_no_answers() {
        let q = parse_cq("Q(X) :- E(X,Y)").unwrap();
        assert!(evaluate_cq(&q, &Instance::new()).is_empty());
    }

    #[test]
    fn injectively_only_detection() {
        // On a 3-cycle, the 2-path query has only injective witnesses from c0.
        let q = parse_cq("Q(X) :- E(X,Y), E(Y,Z)").unwrap();
        let db = cycle_db(3);
        assert!(holds_injectively_only(&q, &db, &[v("c0")]));
        // Add a loop at c0: now E(c0,c0),E(c0,c0) is a non-injective witness.
        let mut db2 = db.clone();
        db2.insert(GroundAtom::named("E", &["c0", "c0"]));
        assert!(!holds_injectively_only(&q, &db2, &[v("c0")]));
        // And a tuple with no witness at all is not |=io.
        let empty = Instance::new();
        assert!(!holds_injectively_only(&q, &empty, &[v("c0")]));
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn arity_mismatch_panics() {
        let q = parse_cq("Q(X) :- E(X,Y)").unwrap();
        check_answer(&q, &Instance::new(), &[]);
    }
}
