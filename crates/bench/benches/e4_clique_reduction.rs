//! E4 — Theorems 5.4/5.13: the p-Clique reduction. Grid-query (unbounded
//! treewidth) evaluation on reduced databases grows sharply with `k`; a
//! bounded-treewidth query over the same data stays flat.

use gtgd_bench::harness;
use gtgd_bench::workloads::{plant_clique, random_graph};
use gtgd_core::{clique_to_cqs_instance, grid_cqs_family};
use gtgd_query::decomp_eval::check_answer_decomposed;
use gtgd_query::parse_cq;

fn main() {
    harness::group("e4_clique_reduction");
    for &k in &[2usize, 3] {
        let fam = grid_cqs_family(k);
        let mut g = random_graph(8, 0.5, 11);
        plant_clique(&mut g, k, 5);
        harness::case(&format!("build_dstar/{k}"), || {
            clique_to_cqs_instance(&g, k, &fam)
        });
        let reduced = clique_to_cqs_instance(&g, k, &fam);
        harness::case(&format!("eval_grid_query/{k}"), || {
            gtgd_query::ucq_holds_boolean(&fam.cqs.query, &reduced.grohe.instance)
        });
        let path = parse_cq("Q() :- H(A,B), H(B,C)").unwrap();
        harness::case(&format!("eval_path_query/{k}"), || {
            check_answer_decomposed(&path, &reduced.grohe.instance, &[])
        });
    }
}
