//! Integration coverage for `finite_witness` (DESIGN.md §3's realization
//! of the paper's `M(D, Σ, n)`): the budget edges — a budget that exactly
//! accommodates the fixpoint versus one atom short — and the
//! `weakly_acyclic` diagnostic carried by the failure, which tells a
//! caller whether enlarging the budget can ever help.

use gtgd::chase::{
    chase, finite_witness, is_weakly_acyclic, parse_tgds, satisfies_all, ChaseBudget, WitnessError,
};
use gtgd::data::{GroundAtom, Instance};
use gtgd::query::{evaluate_cq, parse_cq};

fn db(atoms: &[(&str, &[&str])]) -> Instance {
    Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
}

/// The weakly acyclic chain `A(X) -> R(X,Y). R(X,Y) -> B(Y)` over `A(a)`
/// reaches its fixpoint at exactly 3 atoms: `A(a), R(a,⊥), B(⊥)`.
fn chain() -> (Vec<gtgd::chase::Tgd>, Instance) {
    let tgds = parse_tgds("A(X) -> R(X,Y). R(X,Y) -> B(Y)").unwrap();
    let d = db(&[("A", &["a"])]);
    (tgds, d)
}

#[test]
fn tightest_sufficient_atom_budget_yields_a_witness() {
    let (tgds, d) = chain();
    // Establish the fixpoint size first. Completion is only *observed* by
    // running one further, empty round, and the atom cap is checked
    // strictly before each round — so the tightest sufficient budget is
    // fixpoint + 1, and exactly-fixpoint must fail closed (tested below).
    let full = chase(&d, &tgds, &ChaseBudget::unbounded());
    assert!(full.complete);
    let fixpoint = full.instance.len();
    assert_eq!(fixpoint, 3);

    let m = finite_witness(&d, &tgds, &ChaseBudget::atoms(fixpoint + 1)).unwrap();
    assert_eq!(m.len(), fixpoint);
    assert!(satisfies_all(&m, &tgds), "the witness is a model");
    // Universality, the property the witness exists to provide: UCQ
    // answers over M agree with answers over the chase.
    let q = parse_cq("Q(X) :- A(X), R(X,Y), B(Y)").unwrap();
    assert_eq!(evaluate_cq(&q, &m), evaluate_cq(&q, &full.instance));
}

#[test]
fn budget_at_fixpoint_fails_closed_with_the_acyclicity_flag() {
    let (tgds, d) = chain();
    let fixpoint = chase(&d, &tgds, &ChaseBudget::unbounded()).instance.len();
    // One below the tightest sufficient budget: the chase materializes the
    // whole fixpoint but cannot afford the empty round that proves it, so
    // no witness is returned — fail-closed means no "almost a model".
    let err = finite_witness(&d, &tgds, &ChaseBudget::atoms(fixpoint)).unwrap_err();
    // The error reports both how far the chase got and that the set *is*
    // weakly acyclic — i.e. retrying with a larger budget must succeed.
    let WitnessError::ChaseDidNotTerminate {
        atoms,
        weakly_acyclic,
    } = err;
    assert_eq!(atoms, fixpoint, "the full fixpoint was materialized");
    assert!(weakly_acyclic);
    assert!(is_weakly_acyclic(&tgds), "flag agrees with the analyzer");
}

#[test]
fn level_budget_edges_match_atom_budget_edges() {
    // The chain saturates at level 2; proving that takes an empty round at
    // level 2, so levels(3) witnesses and levels(2) fails closed — the
    // same one-past-the-fixpoint edge as the atom budget.
    let (tgds, d) = chain();
    let m = finite_witness(&d, &tgds, &ChaseBudget::levels(3)).unwrap();
    assert!(satisfies_all(&m, &tgds));
    assert_eq!(m.len(), 3);
    let err = finite_witness(&d, &tgds, &ChaseBudget::levels(2)).unwrap_err();
    let WitnessError::ChaseDidNotTerminate {
        atoms,
        weakly_acyclic,
    } = err;
    assert_eq!(
        atoms, 3,
        "truncation happens after the last productive round"
    );
    assert!(weakly_acyclic);
}

#[test]
fn non_weakly_acyclic_failure_reports_the_flag_false() {
    // Person(X) -> Parent(X,Y), Person(Y): genuinely non-terminating, and
    // the diagnostic must say so — no budget will ever witness this set.
    let tgds = parse_tgds("Person(X) -> Parent(X,Y), Person(Y)").unwrap();
    assert!(!is_weakly_acyclic(&tgds));
    let d = db(&[("Person", &["eve"])]);
    let err = finite_witness(&d, &tgds, &ChaseBudget::atoms(64)).unwrap_err();
    // The error's Display form carries both diagnostics.
    let msg = err.to_string();
    assert!(msg.contains("weakly acyclic: false"), "{msg}");
    let WitnessError::ChaseDidNotTerminate {
        atoms,
        weakly_acyclic,
    } = err;
    assert!(atoms >= 64, "the budget was actually exhausted");
    assert!(!weakly_acyclic);
}

#[test]
fn witness_answers_stay_exact_under_truncation_free_budgets() {
    // A full-TGD set (no existentials) always terminates; the witness is
    // the classical closure and answers are exact whatever the query.
    let tgds = parse_tgds("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
    assert!(is_weakly_acyclic(&tgds));
    let d = db(&[("E", &["a", "b"]), ("E", &["b", "c"]), ("E", &["c", "d"])]);
    let m = finite_witness(&d, &tgds, &ChaseBudget::unbounded()).unwrap();
    assert!(m.contains(&GroundAtom::named("E", &["a", "d"])));
    let q = parse_cq("Q(X,Y) :- E(X,Y)").unwrap();
    assert_eq!(
        evaluate_cq(&q, &m).len(),
        6,
        "the transitive closure of a 4-chain"
    );
}
