//! E11 — Prop D.2: UCQ rewriting for linear TGDs vs chase-based evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtgd_bench::workloads::org_db;
use gtgd_chase::{linear_rewrite, parse_tgds};
use gtgd_core::{evaluate_omq, EvalConfig, Omq};
use gtgd_query::{evaluate_ucq, parse_ucq};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_linear_rewriting");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let sigma =
        parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> Unit(D)").unwrap();
    let q = parse_ucq("Q(X) :- WorksIn(X,D), Unit(D)").unwrap();
    group.bench_function("rewrite_offline", |b| b.iter(|| linear_rewrite(&q, &sigma)));
    let rewritten = linear_rewrite(&q, &sigma);
    let omq = Omq::full_schema(sigma, q);
    let cfg = EvalConfig::default();
    for &n in &[100usize, 400] {
        let db = org_db(n);
        group.bench_with_input(BenchmarkId::new("eval_rewriting", n), &db, |b, db| {
            b.iter(|| evaluate_ucq(&rewritten, db))
        });
        group.bench_with_input(BenchmarkId::new("eval_via_chase", n), &db, |b, db| {
            b.iter(|| evaluate_omq(&omq, db, &cfg))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
