//! An ELHI⊥ description-logic front-end (the paper's Section 1 contrast:
//! the DL-based characterizations of \[7\] concern ELHI⊥, "essentially a
//! fragment of guarded TGDs"). This module makes that fragment concrete:
//! ELHI⊥ TBoxes translate into **guarded** TGDs, so every guarded-OMQ
//! algorithm in this toolkit applies to DL ontologies unchanged.
//!
//! Supported axioms (`C`, `D` concepts; `r`, `s` roles, possibly inverse):
//!
//! * concept inclusions `C ⊑ D`,
//! * role inclusions `r ⊑ s`,
//! * disjointness via `C ⊑ ⊥` (translated to a `__Bot` marker; a consistent
//!   ABox never derives it).
//!
//! Concepts: `⊤`, atomic names, conjunction `C ⊓ D`, and existential
//! restriction `∃r.C` (with `r⁻` allowed). Nested concepts are normalized
//! with fresh names before translation.
//!
//! Text syntax (ASCII): `A & exists r. B < C`, `A < exists inv r. B`,
//! `r < s` (role inclusion when both sides are role names), `A < bot`,
//! `top < A`.

use crate::tgd::Tgd;
use gtgd_data::Predicate;
use gtgd_query::{QAtom, Term, Var};

/// A role: a role name, possibly inverted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Role {
    /// The role name (a binary predicate).
    pub name: String,
    /// Whether the role is inverted (`r⁻`).
    pub inverse: bool,
}

/// An ELHI⊥ concept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Concept {
    /// `⊤`.
    Top,
    /// `⊥` (only meaningful on right-hand sides).
    Bottom,
    /// An atomic concept name (a unary predicate).
    Atomic(String),
    /// Conjunction `C ⊓ D`.
    And(Box<Concept>, Box<Concept>),
    /// Existential restriction `∃r.C`.
    Exists(Role, Box<Concept>),
}

/// A TBox axiom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Axiom {
    /// `C ⊑ D`.
    ConceptInclusion(Concept, Concept),
    /// `r ⊑ s`.
    RoleInclusion(Role, Role),
}

/// The marker predicate standing in for `⊥` (TGDs have no negation; a
/// consistent database never entails it).
pub fn bottom_predicate() -> Predicate {
    Predicate::new("__Bot")
}

/// Parse errors for the DL syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DlParseError(pub String);

impl std::fmt::Display for DlParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DL parse error: {}", self.0)
    }
}

impl std::error::Error for DlParseError {}

/// An axiom that parses but does not land in the guarded-TGD fragment this
/// module targets (e.g. `⊤` on a left-hand side, which would need an
/// unguarded domain rule). Produced by [`try_tbox_to_tgds`]; ingestion
/// frontends surface it as a described rejection instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentError {
    /// A rendering of the offending (sub-)axiom.
    pub axiom: String,
    /// Why the translation cannot stay guarded.
    pub reason: String,
}

impl std::fmt::Display for FragmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "axiom outside the guarded fragment: {} ({})",
            self.axiom, self.reason
        )
    }
}

impl std::error::Error for FragmentError {}

/// Parses one axiom: `lhs < rhs`. Both sides are concepts unless both are
/// bare role names occurring after `exists` nowhere — then it is a role
/// inclusion. To force a role inclusion, write `role r < s`.
pub fn parse_axiom(src: &str) -> Result<Axiom, DlParseError> {
    let src = src.trim();
    if let Some(rest) = src.strip_prefix("role ") {
        let (l, r) = rest
            .split_once('<')
            .ok_or_else(|| DlParseError("expected '<'".into()))?;
        return Ok(Axiom::RoleInclusion(parse_role(l)?, parse_role(r)?));
    }
    let (l, r) = src
        .split_once('<')
        .ok_or_else(|| DlParseError("expected '<'".into()))?;
    Ok(Axiom::ConceptInclusion(
        parse_concept(l)?,
        parse_concept(r)?,
    ))
}

/// Parses a whole TBox: axioms separated by `;` or newlines (`.` belongs
/// to the `exists r. C` syntax).
pub fn parse_tbox(src: &str) -> Result<Vec<Axiom>, DlParseError> {
    src.split([';', '\n'])
        .map(str::trim)
        .filter(|s| !s.is_empty() && !s.starts_with('#'))
        .map(parse_axiom)
        .collect()
}

fn parse_role(src: &str) -> Result<Role, DlParseError> {
    let src = src.trim();
    if let Some(rest) = src.strip_prefix("inv ") {
        Ok(Role {
            name: ident(rest)?,
            inverse: true,
        })
    } else {
        Ok(Role {
            name: ident(src)?,
            inverse: false,
        })
    }
}

fn ident(src: &str) -> Result<String, DlParseError> {
    let s = src.trim();
    if s.is_empty() || !s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(DlParseError(format!("bad identifier {s:?}")));
    }
    Ok(s.to_string())
}

/// Parses a concept: conjunctions of factors, where a factor is `top`,
/// `bot`, an atomic name, or `exists [inv] r. C` (the restriction extends
/// to the end of the factor; parenthesize with `( … )`).
fn parse_concept(src: &str) -> Result<Concept, DlParseError> {
    let parts = split_top_level(src.trim(), '&')?;
    let mut factors = Vec::new();
    for p in parts {
        factors.push(parse_factor(p.trim())?);
    }
    let mut it = factors.into_iter();
    let first = it
        .next()
        .ok_or_else(|| DlParseError("empty concept".into()))?;
    Ok(it.fold(first, |acc, c| Concept::And(Box::new(acc), Box::new(c))))
}

fn parse_factor(src: &str) -> Result<Concept, DlParseError> {
    if src.starts_with('(') && src.ends_with(')') {
        return parse_concept(&src[1..src.len() - 1]);
    }
    match src {
        "top" => return Ok(Concept::Top),
        "bot" => return Ok(Concept::Bottom),
        _ => {}
    }
    if let Some(rest) = src.strip_prefix("exists ") {
        let (role_src, filler_src) = rest
            .split_once('.')
            .ok_or_else(|| DlParseError("exists needs 'r. C'".into()))?;
        return Ok(Concept::Exists(
            parse_role(role_src)?,
            Box::new(parse_concept(filler_src)?),
        ));
    }
    Ok(Concept::Atomic(ident(src)?))
}

/// Splits on a separator at parenthesis depth 0.
fn split_top_level(src: &str, sep: char) -> Result<Vec<&str>, DlParseError> {
    let mut depth = 0i32;
    let mut parts = Vec::new();
    let mut start = 0usize;
    for (i, c) in src.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth < 0 {
                    return Err(DlParseError("unbalanced ')'".into()));
                }
            }
            c if c == sep && depth == 0 => {
                parts.push(&src[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(DlParseError("unbalanced '('".into()));
    }
    parts.push(&src[start..]);
    Ok(parts)
}

/// Translator state: emits TGDs, inventing fresh concept names for nested
/// concepts (standard ELHI normalization).
struct Translator {
    tgds: Vec<Tgd>,
    fresh: usize,
}

impl Translator {
    fn fresh_name(&mut self) -> String {
        self.fresh += 1;
        format!("__C{}", self.fresh)
    }

    /// A role atom `r(x, y)` respecting inversion.
    fn role_atom(role: &Role, x: Var, y: Var) -> QAtom {
        let (a, b) = if role.inverse { (y, x) } else { (x, y) };
        QAtom::new(Predicate::new(&role.name), vec![Term::Var(a), Term::Var(b)])
    }

    /// Whether a concept flattens into a guarded one-hop body: no nested
    /// existential restrictions.
    fn is_flat(c: &Concept) -> bool {
        match c {
            Concept::Top | Concept::Bottom | Concept::Atomic(_) => true,
            Concept::And(l, r) => Self::is_flat(l) && Self::is_flat(r),
            Concept::Exists(..) => false,
        }
    }

    /// Returns body atoms over variable `x` (plus auxiliaries) asserting
    /// membership in `c`. One-hop existentials (`∃r.C` with flat `C`)
    /// flatten into the body, where the role atom guards `{x, y}`; deeper
    /// nesting is named apart (`filler ⊑ F`, recursively translated) so
    /// every produced TGD stays **guarded**, not merely frontier-guarded.
    fn lhs_atoms(
        &mut self,
        c: &Concept,
        x: Var,
        next: &mut u32,
        names: &mut Vec<String>,
    ) -> Result<Vec<QAtom>, FragmentError> {
        Ok(match c {
            Concept::Top => Vec::new(),
            Concept::Bottom => vec![QAtom::new(bottom_predicate(), vec![Term::Var(x)])],
            Concept::Atomic(a) => vec![QAtom::new(Predicate::new(a), vec![Term::Var(x)])],
            Concept::And(l, r) => {
                let mut out = self.lhs_atoms(l, x, next, names)?;
                out.extend(self.lhs_atoms(r, x, next, names)?);
                out
            }
            Concept::Exists(role, filler) => {
                names.push(format!("y{next}"));
                let y = Var(*next);
                *next += 1;
                let mut out = vec![Self::role_atom(role, x, y)];
                let flat_filler = if Self::is_flat(filler) {
                    filler.as_ref().clone()
                } else {
                    // filler ⊑ F, then use F(y): keeps this body one-hop.
                    let name = self.fresh_name();
                    self.emit_inclusion(filler, &Concept::Atomic(name.clone()))?;
                    Concept::Atomic(name)
                };
                out.extend(self.flat_atoms(&flat_filler, y));
                out
            }
        })
    }

    /// Atoms for a flat concept over one variable.
    fn flat_atoms(&self, c: &Concept, v: Var) -> Vec<QAtom> {
        match c {
            Concept::Top => Vec::new(),
            Concept::Bottom => vec![QAtom::new(bottom_predicate(), vec![Term::Var(v)])],
            Concept::Atomic(a) => vec![QAtom::new(Predicate::new(a), vec![Term::Var(v)])],
            Concept::And(l, r) => {
                let mut out = self.flat_atoms(l, v);
                out.extend(self.flat_atoms(r, v));
                out
            }
            Concept::Exists(..) => unreachable!("flat concepts have no existentials"),
        }
    }

    /// Reduces a right-hand-side concept to an atomic name (or Top/Bottom),
    /// emitting definitional TGDs for complex fillers.
    fn rhs_name(&mut self, c: &Concept) -> Result<Concept, FragmentError> {
        match c {
            Concept::Top | Concept::Bottom | Concept::Atomic(_) => Ok(c.clone()),
            _ => {
                let name = self.fresh_name();
                // __Ci ⊑ c, i.e. a TGD __Ci(x) → atoms(c).
                self.emit_inclusion(&Concept::Atomic(name.clone()), c)?;
                Ok(Concept::Atomic(name))
            }
        }
    }

    /// Emits TGDs for `lhs ⊑ rhs`, or reports why the inclusion falls
    /// outside the guarded fragment.
    fn emit_inclusion(&mut self, lhs: &Concept, rhs: &Concept) -> Result<(), FragmentError> {
        // Body: flatten lhs over x.
        let mut names = vec!["x".to_string()];
        let x = Var(0);
        let mut next = 1u32;
        let body = self.lhs_atoms(lhs, x, &mut next, &mut names)?;
        // Head: by rhs shape.
        match rhs {
            Concept::Top => {} // trivial, no TGD
            Concept::Bottom => {
                let head = vec![QAtom::new(bottom_predicate(), vec![Term::Var(x)])];
                self.push_tgd(names, body, head, lhs)?;
            }
            Concept::Atomic(a) => {
                let head = vec![QAtom::new(Predicate::new(a), vec![Term::Var(x)])];
                self.push_tgd(names, body, head, lhs)?;
            }
            Concept::And(l, r) => {
                self.emit_inclusion(lhs, l)?;
                self.emit_inclusion(lhs, r)?;
            }
            Concept::Exists(role, filler) => {
                let filler_name = self.rhs_name(filler)?;
                let mut names2 = names.clone();
                names2.push(format!("y{next}"));
                let y = Var(next);
                let mut head = vec![Self::role_atom(role, x, y)];
                match &filler_name {
                    Concept::Top => {}
                    Concept::Atomic(a) => {
                        head.push(QAtom::new(Predicate::new(a), vec![Term::Var(y)]));
                    }
                    Concept::Bottom => {
                        head.push(QAtom::new(bottom_predicate(), vec![Term::Var(y)]));
                    }
                    _ => unreachable!("rhs_name returns atomic-like concepts"),
                }
                self.push_tgd(names2, body, head, lhs)?;
            }
        }
        Ok(())
    }

    fn push_tgd(
        &mut self,
        names: Vec<String>,
        body: Vec<QAtom>,
        head: Vec<QAtom>,
        lhs: &Concept,
    ) -> Result<(), FragmentError> {
        // An empty body arises from ⊤ ⊑ …, which is not expressible as a
        // safe guarded TGD over unary/binary signatures unless we guard by
        // a domain predicate; require a nonempty lhs instead.
        if body.is_empty() {
            return Err(FragmentError {
                axiom: format!("{lhs:?}"),
                reason: "⊤ on the left-hand side is unsupported; \
                         guard it with an atomic concept"
                    .into(),
            });
        }
        self.tgds.push(Tgd::new(names, body, head));
        Ok(())
    }
}

/// Translates an ELHI⊥ TBox into guarded TGDs.
///
/// Every produced TGD is guarded: bodies are tree-shaped neighborhoods of
/// `x` whose atoms pairwise share variables along the tree, and each rule's
/// frontier is `{x}` — the translation emits one rule per flattening, with
/// the role atom incident to `x` acting as guard for binary rules and the
/// concept atom for unary ones. (Asserted in tests.)
pub fn tbox_to_tgds(axioms: &[Axiom]) -> Vec<Tgd> {
    match try_tbox_to_tgds(axioms) {
        Ok(tgds) => tgds,
        Err(e) => panic!("{e}"),
    }
}

/// Translates an ELHI⊥ TBox into guarded TGDs, reporting (instead of
/// panicking on) axioms that fall outside the guarded fragment. The
/// fallible twin of [`tbox_to_tgds`]; the ingestion frontends route
/// through this so an out-of-fragment ontology is a described error.
pub fn try_tbox_to_tgds(axioms: &[Axiom]) -> Result<Vec<Tgd>, FragmentError> {
    let mut tr = Translator {
        tgds: Vec::new(),
        fresh: 0,
    };
    for ax in axioms {
        match ax {
            Axiom::ConceptInclusion(l, r) => {
                // Normalize deep existentials on the left: ∃r.(∃s.C) bodies
                // flatten directly (lhs_atoms handles nesting), so no fresh
                // names are needed there.
                tr.emit_inclusion(l, r)?;
            }
            Axiom::RoleInclusion(r, s) => {
                let names = vec!["x".to_string(), "y".to_string()];
                let (x, y) = (Var(0), Var(1));
                let body = vec![Translator::role_atom(r, x, y)];
                let head = vec![Translator::role_atom(s, x, y)];
                tr.tgds.push(Tgd::new(names, body, head));
            }
        }
    }
    Ok(tr.tgds)
}

/// Parses a TBox and translates it in one step.
pub fn parse_dl_ontology(src: &str) -> Result<Vec<Tgd>, DlParseError> {
    Ok(tbox_to_tgds(&parse_tbox(src)?))
}

/// ABox consistency: whether the chase of `db` under a translated TBox
/// never derives the `⊥` marker. Returns `None` when the adaptive typed
/// chase hit its hard level cap without saturating (undetermined).
pub fn abox_consistent(tgds: &[Tgd], db: &gtgd_data::Instance) -> Option<bool> {
    let result = crate::typed_chase::typed_chase(
        db,
        tgds,
        crate::typed_chase::DepthPolicy::Adaptive {
            extra_levels: 2,
            max_level: 64,
        },
    );
    if !result.saturated {
        return None;
    }
    let inconsistent = result
        .instance
        .iter()
        .any(|a| a.predicate == bottom_predicate());
    Some(!inconsistent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{chase, ChaseBudget};
    use crate::tgd::TgdClass;
    use gtgd_data::{GroundAtom, Instance};
    use gtgd_query::{holds_boolean, parse_cq};

    #[test]
    fn parses_and_translates_simple_inclusions() {
        let tgds =
            parse_dl_ontology("Cat < Animal; Animal < exists eats. Food; role eats < consumes")
                .unwrap();
        assert_eq!(tgds.len(), 3);
        for t in &tgds {
            assert!(t.is_in(TgdClass::Guarded), "not guarded: {t}");
        }
    }

    #[test]
    fn existential_lhs_flattens_into_guarded_body() {
        // ∃eats.Plant ⊑ Herbivore: eats(x,y), Plant(y) → Herbivore(x).
        let tgds = parse_dl_ontology("exists eats. Plant < Herbivore").unwrap();
        assert_eq!(tgds.len(), 1);
        assert!(tgds[0].is_in(TgdClass::Guarded));
        assert_eq!(tgds[0].body.len(), 2);
        assert_eq!(tgds[0].frontier().len(), 1);
    }

    #[test]
    fn inverse_roles() {
        // ∃inv(hasParent).⊤ ⊑ Parent: hasParent(y, x) → Parent(x).
        let tgds = parse_dl_ontology("exists inv hasParent. top < Parent").unwrap();
        assert_eq!(tgds.len(), 1);
        let db = Instance::from_atoms([GroundAtom::named("hasParent", &["child", "mom"])]);
        let r = chase(&db, &tgds, &ChaseBudget::unbounded());
        assert!(r.instance.contains(&GroundAtom::named("Parent", &["mom"])));
    }

    #[test]
    fn nested_rhs_normalizes_with_fresh_names() {
        // A ⊑ ∃r.(B ⊓ C): needs a fresh name for B ⊓ C.
        let tgds = parse_dl_ontology("A < exists r. (B & C)").unwrap();
        assert!(tgds.len() >= 2);
        for t in &tgds {
            assert!(t.is_in(TgdClass::Guarded));
        }
        let db = Instance::from_atoms([GroundAtom::named("A", &["a"])]);
        let r = chase(&db, &tgds, &ChaseBudget::levels(4));
        let q = parse_cq("Q() :- r(X,Y), B(Y), C(Y)").unwrap();
        assert!(holds_boolean(&q, &r.instance));
    }

    #[test]
    fn bottom_marks_inconsistency() {
        let tgds = parse_dl_ontology("Cat & Dog < bot").unwrap();
        let consistent = Instance::from_atoms([GroundAtom::named("Cat", &["tom"])]);
        let r = chase(&consistent, &tgds, &ChaseBudget::unbounded());
        assert!(!r.instance.contains(&GroundAtom::new(
            bottom_predicate(),
            vec![gtgd_data::Value::named("tom")]
        )));
        let clash = Instance::from_atoms([
            GroundAtom::named("Cat", &["x"]),
            GroundAtom::named("Dog", &["x"]),
        ]);
        let r = chase(&clash, &tgds, &ChaseBudget::unbounded());
        assert!(r.instance.iter().any(|a| a.predicate == bottom_predicate()));
    }

    #[test]
    fn elhi_ontology_through_the_omq_pipeline() {
        // The point of the module: a DL TBox drives the guarded machinery.
        let tgds = parse_dl_ontology(
            "Prof < exists teaches. Course; \
             Course < exists taughtAt. Uni; \
             exists teaches. Course < Teacher",
        )
        .unwrap();
        for t in &tgds {
            assert!(t.is_in(TgdClass::Guarded));
        }
        let db = Instance::from_atoms([GroundAtom::named("Prof", &["ada"])]);
        // Certain answer: ada is a Teacher, via invented course.
        let r = chase(&db, &tgds, &ChaseBudget::levels(4));
        assert!(r.instance.contains(&GroundAtom::named("Teacher", &["ada"])));
    }

    #[test]
    fn nested_lhs_existentials_stay_guarded() {
        // ∃r.(∃s.A) ⊑ B must normalize: flattening would only be
        // frontier-guarded.
        let tgds = parse_dl_ontology("exists r. exists s. A < B").unwrap();
        assert!(tgds.len() >= 2);
        for t in &tgds {
            assert!(t.is_in(TgdClass::Guarded), "not guarded: {t}");
        }
        // Semantics: r(x,y), s(y,z), A(z) entails B(x).
        let db = Instance::from_atoms([
            GroundAtom::named("r", &["x", "y"]),
            GroundAtom::named("s", &["y", "z"]),
            GroundAtom::named("A", &["z"]),
        ]);
        let res = chase(&db, &tgds, &ChaseBudget::unbounded());
        assert!(res.instance.contains(&GroundAtom::named("B", &["x"])));
    }

    #[test]
    fn abox_consistency_decision() {
        let tgds = parse_dl_ontology("Cat < Animal; Cat & Robot < bot; Animal < exists eats. Food")
            .unwrap();
        let ok = Instance::from_atoms([GroundAtom::named("Cat", &["tom"])]);
        assert_eq!(abox_consistent(&tgds, &ok), Some(true));
        let clash = Instance::from_atoms([
            GroundAtom::named("Cat", &["r2"]),
            GroundAtom::named("Robot", &["r2"]),
        ]);
        assert_eq!(abox_consistent(&tgds, &clash), Some(false));
    }

    #[test]
    fn parse_errors_reported() {
        assert!(parse_axiom("A B").is_err());
        assert!(parse_axiom("A < exists r").is_err());
        assert!(parse_axiom("(A < B").is_err());
        assert!(parse_axiom("A-! < B").is_err());
    }

    #[test]
    #[should_panic(expected = "⊤ on the left-hand side")]
    fn top_lhs_rejected() {
        parse_dl_ontology("top < A").unwrap();
    }

    #[test]
    fn fallible_lowering_describes_out_of_fragment_axioms() {
        let axioms = parse_tbox("top < A").unwrap();
        let e = try_tbox_to_tgds(&axioms).unwrap_err();
        assert!(e.to_string().contains("⊤ on the left-hand side"), "{e}");
        // A nested ⊤-lhs inside a definitional expansion is caught too.
        let ok = parse_tbox("A < exists r. (B & C); exists s. top < D").unwrap();
        assert!(try_tbox_to_tgds(&ok).is_ok());
    }
}
