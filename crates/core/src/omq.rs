//! Ontology-mediated queries (Section 3.1): `Q = (S, Σ, q)`.

use gtgd_chase::{Tgd, TgdClass};
use gtgd_data::Schema;
use gtgd_query::Ucq;

/// An ontology-mediated query `Q = (S, Σ, q)`: a data schema `S`, an
/// ontology Σ over an extended schema `T ⊇ S`, and a UCQ `q` over `T`.
#[derive(Debug, Clone)]
pub struct Omq {
    /// The data schema `S` — input databases are `S`-databases.
    pub data_schema: Schema,
    /// The ontology Σ.
    pub sigma: Vec<Tgd>,
    /// The actual query `q`.
    pub query: Ucq,
}

/// Construction errors for OMQs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OmqError {
    /// The data schema uses a predicate at a different arity than Σ or `q`.
    ArityClash(String),
}

impl std::fmt::Display for OmqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OmqError::ArityClash(m) => write!(f, "arity clash: {m}"),
        }
    }
}

impl std::error::Error for OmqError {}

impl Omq {
    /// Builds an OMQ, checking that the data schema is consistent with the
    /// extended schema realized by Σ and `q`.
    pub fn new(data_schema: Schema, sigma: Vec<Tgd>, query: Ucq) -> Result<Omq, OmqError> {
        let mut ontology_schema = query.schema();
        for tgd in &sigma {
            ontology_schema = ontology_schema.union(&tgd.schema());
        }
        for (p, a) in data_schema.iter() {
            if let Some(b) = ontology_schema.arity(p) {
                if a != b {
                    return Err(OmqError::ArityClash(format!(
                        "{p} has arity {a} in the data schema but {b} in Σ/q"
                    )));
                }
            }
        }
        Ok(Omq {
            data_schema,
            sigma,
            query,
        })
    }

    /// Builds an OMQ with **full data schema** (`S = T`): every predicate of
    /// Σ and `q` is part of the data signature (Section 5.1's `omq(S)`
    /// setting).
    pub fn full_schema(sigma: Vec<Tgd>, query: Ucq) -> Omq {
        let mut q = Omq {
            data_schema: Schema::new(),
            sigma,
            query,
        };
        q.data_schema = q.extended_schema();
        q
    }

    /// The extended schema `T`: every predicate of `S`, Σ, and `q`.
    pub fn extended_schema(&self) -> Schema {
        let mut t = self.data_schema.clone();
        for tgd in &self.sigma {
            t = t.union(&tgd.schema());
        }
        t.union(&self.query.schema())
    }

    /// Whether `S = T` (full data schema).
    pub fn has_full_data_schema(&self) -> bool {
        let ext = self.extended_schema();
        ext.is_subschema_of(&self.data_schema)
    }

    /// Arity of the OMQ (= arity of the UCQ).
    pub fn arity(&self) -> usize {
        self.query.arity()
    }

    /// Whether the ontology lies in the given TGD class.
    pub fn sigma_in(&self, class: TgdClass) -> bool {
        self.sigma.iter().all(|t| t.is_in(class))
    }

    /// Validates an input database against the data schema `S`: every
    /// predicate must be declared with matching arity. The evaluation
    /// functions do not enforce this (callers may evaluate over chase
    /// prefixes that use extended-schema atoms); use it at trust
    /// boundaries.
    pub fn validate_database(&self, db: &gtgd_data::Instance) -> Result<(), OmqError> {
        for a in db.iter() {
            match self.data_schema.arity(a.predicate) {
                None => {
                    return Err(OmqError::ArityClash(format!(
                        "database predicate {} is not in the data schema",
                        a.predicate
                    )))
                }
                Some(ar) if ar != a.arity() => {
                    return Err(OmqError::ArityClash(format!(
                        "database atom {} has arity {} but the schema declares {}",
                        a,
                        a.arity(),
                        ar
                    )))
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Whether the OMQ is in the language `(G, UCQ_k)`.
    pub fn in_guarded_ucqk(&self, k: usize) -> bool {
        self.sigma_in(TgdClass::Guarded) && gtgd_query::tw::is_ucq_treewidth_at_most(&self.query, k)
    }
}

impl std::fmt::Display for Omq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "OMQ over data schema with {} predicates",
            self.data_schema.len()
        )?;
        for t in &self.sigma {
            writeln!(f, "  Σ: {t}")?;
        }
        write!(f, "  q: {}", self.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtgd_chase::parse_tgds;
    use gtgd_query::parse_ucq;

    fn sample() -> Omq {
        Omq::full_schema(
            parse_tgds("R2(X) -> R4(X)").unwrap(),
            parse_ucq("Q() :- P(X2,X1), R2(X2), R4(X4)").unwrap(),
        )
    }

    #[test]
    fn full_schema_includes_everything() {
        let q = sample();
        assert!(q.has_full_data_schema());
        let ext = q.extended_schema();
        assert!(ext.contains(gtgd_data::Predicate::new("R2")));
        assert!(ext.contains(gtgd_data::Predicate::new("R4")));
        assert!(ext.contains(gtgd_data::Predicate::new("P")));
        assert_eq!(ext.max_arity(), 2);
    }

    #[test]
    fn restricted_data_schema() {
        let s = Schema::from_pairs([("P", 2), ("R2", 1)]);
        let q = Omq::new(
            s,
            parse_tgds("R2(X) -> R4(X)").unwrap(),
            parse_ucq("Q() :- P(X,Y), R4(Y)").unwrap(),
        )
        .unwrap();
        assert!(!q.has_full_data_schema());
    }

    #[test]
    fn arity_clash_detected() {
        let s = Schema::from_pairs([("R2", 3)]);
        let e = Omq::new(
            s,
            parse_tgds("R2(X) -> R4(X)").unwrap(),
            parse_ucq("Q() :- R4(X)").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(e, OmqError::ArityClash(_)));
    }

    #[test]
    fn database_validation() {
        use gtgd_data::{GroundAtom, Instance};
        let s = Schema::from_pairs([("P", 2), ("R2", 1)]);
        let q = Omq::new(
            s,
            parse_tgds("R2(X) -> R4(X)").unwrap(),
            parse_ucq("Q() :- P(X,Y), R4(Y)").unwrap(),
        )
        .unwrap();
        let good = Instance::from_atoms([GroundAtom::named("P", &["a", "b"])]);
        assert!(q.validate_database(&good).is_ok());
        // R4 is ontology-only: not a legal input predicate.
        let bad = Instance::from_atoms([GroundAtom::named("R4", &["a"])]);
        assert!(q.validate_database(&bad).is_err());
        // Wrong arity.
        let bad2 = Instance::from_atoms([GroundAtom::named("P", &["a"])]);
        assert!(q.validate_database(&bad2).is_err());
    }

    #[test]
    fn class_membership() {
        let q = sample();
        assert!(q.sigma_in(TgdClass::Guarded));
        assert!(q.in_guarded_ucqk(2));
    }
}
