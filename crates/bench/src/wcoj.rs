//! Before/after benchmark for the worst-case-optimal join path
//! (`BENCH_wcoj.json`).
//!
//! Unlike the kernel report, which compares against frozen seed-commit
//! baselines, both sides here are measured *live* on the same build: the
//! same `CompiledQuery` is forced onto `Strategy::Backtrack` and
//! `Strategy::Wcoj` (see `gtgd_query::compile`), so the delta isolates the
//! executor. The workloads are the cyclic shapes the WCOJ gate exists for:
//! the E10 fixed 13-vertex clique series, the E4 clique→CQS reduction, and
//! a triangle-count microbench. Each row also records which strategy the
//! planner would pick on its own (`Strategy::Auto`) and that both
//! executors returned the same answer count.

use crate::experiments::bench_ms;
use crate::json::escape;
use crate::workloads::{clique_cq, graph_db, plant_clique, random_graph};
use gtgd_core::{clique_to_cqs_instance, grid_cqs_family};
use gtgd_data::Instance;
use gtgd_query::{CompiledQuery, Repr, Strategy};

/// Worker widths of the morsel-scaling column.
const SCALING_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// The obs-named index-maintenance counters of `db` after a measurement
/// (`index.cached` / `index.full_builds` / `index.merge_extends`) — the
/// same names [`gtgd_data::obs::RunReport`] uses, so BENCH JSON and trace
/// reports read one source.
fn index_counters(db: &Instance) -> Vec<(&'static str, u64)> {
    db.index_stats().counters().to_vec()
}

/// One live before/after measurement for a single workload.
#[derive(Debug, Clone)]
pub struct WcojMetric {
    /// Workload label (experiment id + parameters).
    pub workload: String,
    /// Answer-enumeration time in ms under the forced backtracker.
    pub backtrack_ms: f64,
    /// Same workload, same plan, forced leapfrog executor over the generic
    /// `Value` representation (the pre-dense executor, for continuity with
    /// earlier BENCH baselines).
    pub wcoj_ms: f64,
    /// Same plan, leapfrog over dense dictionary codes (the default
    /// representation).
    pub dense_ms: f64,
    /// What `Strategy::Auto` picks for this plan (`"wcoj"` / `"backtrack"`).
    pub planner: String,
    /// Answer count (identical under all executors by assertion).
    pub answers: usize,
    /// Whether all executors agreed exactly.
    pub answers_agree: bool,
    /// Index-maintenance counters of the measured instance, under the obs
    /// metric names (`index.cached`, `index.full_builds`,
    /// `index.merge_extends`).
    pub index: Vec<(&'static str, u64)>,
    /// Morsel-parallel dense enumeration per width: `(workers, Some(ms))`
    /// when measured, `(workers, None)` when skipped because the host has
    /// one core (widths > 1 would time-slice a single CPU and report
    /// scheduling overhead as a slowdown). Empty for workloads measured
    /// through an aggregate (E4).
    pub scaling: Vec<(usize, Option<f64>)>,
}

/// Which scaling widths actually measure on a host with `cores` CPUs:
/// `(width, measured)`. Width 1 always runs; wider morsel teams are
/// meaningless on a single core — the numbers would read as parallel
/// slowdowns while measuring nothing but the scheduler — so they are
/// skipped, and [`wcoj_json`] records the reason instead of a bogus time.
pub fn scaling_plan(cores: usize) -> Vec<(usize, bool)> {
    SCALING_WIDTHS
        .iter()
        .map(|&w| (w, w == 1 || cores > 1))
        .collect()
}

impl WcojMetric {
    /// Speedup factor `backtrack / wcoj` (∞-safe: 0 if `wcoj_ms` is 0).
    pub fn speedup(&self) -> f64 {
        if self.wcoj_ms > 0.0 {
            self.backtrack_ms / self.wcoj_ms
        } else {
            0.0
        }
    }

    /// Speedup of the dense representation over the generic leapfrog
    /// executor on the same plan (`wcoj / dense`; 0-safe).
    pub fn dense_speedup(&self) -> f64 {
        if self.dense_ms > 0.0 {
            self.wcoj_ms / self.dense_ms
        } else {
            0.0
        }
    }
}

fn planner_label(plan: &CompiledQuery) -> String {
    if plan.prefers_wcoj() {
        "wcoj"
    } else {
        "backtrack"
    }
    .to_string()
}

/// Measures full answer enumeration of one compiled plan under both forced
/// strategies and both WCOJ key representations, plus the morsel-parallel
/// dense path at each scaling width.
fn measure(workload: String, plan: &CompiledQuery, db: &Instance) -> WcojMetric {
    let count = |s: Strategy, r: Repr| plan.search(db).strategy(s).repr(r).count();
    let backtrack_ms = bench_ms(|| count(Strategy::Backtrack, Repr::Auto));
    let wcoj_ms = bench_ms(|| count(Strategy::Wcoj, Repr::Generic));
    let dense_ms = bench_ms(|| count(Strategy::Wcoj, Repr::Dense));
    let n_bt = count(Strategy::Backtrack, Repr::Auto);
    let n_wc = count(Strategy::Wcoj, Repr::Generic);
    let n_dn = count(Strategy::Wcoj, Repr::Dense);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let scaling = scaling_plan(cores)
        .into_iter()
        .map(|(w, run)| {
            let ms = run.then(|| {
                bench_ms(|| {
                    let t = plan.search(db).strategy(Strategy::Wcoj).par_table(w);
                    assert_eq!(t.len(), n_dn, "parallel row count at width {w}");
                    t.len()
                })
            });
            (w, ms)
        })
        .collect();
    WcojMetric {
        workload,
        backtrack_ms,
        wcoj_ms,
        dense_ms,
        planner: planner_label(plan),
        answers: n_dn,
        answers_agree: n_bt == n_wc && n_wc == n_dn,
        index: index_counters(db),
        scaling,
    }
}

/// The E10 clique series on its fixed workload: `random_graph(13, 0.5, 97)`
/// with a planted 5-clique, enumerating all `k`-clique homomorphisms for
/// `k = 2..5`.
pub fn e10_clique_metrics() -> Vec<WcojMetric> {
    let g = {
        let mut g = random_graph(13, 0.5, 97);
        plant_clique(&mut g, 5, 13);
        g
    };
    let db = graph_db(&g);
    [2usize, 3, 4, 5]
        .iter()
        .map(|&k| {
            let plan = CompiledQuery::compile(&clique_cq(k).atoms);
            measure(format!("E10 clique k={k} (13 vertices)"), &plan, &db)
        })
        .collect()
}

/// The E4 reduction workload: the grid-CQS family evaluated over the
/// reduced database `D*` of a 10-vertex graph with a planted `k`-clique.
/// Boolean UCQ evaluation is a disjunct sweep; the measured quantity is
/// the total answer enumeration over all disjuncts (the work the boolean
/// check bounds).
pub fn e4_reduction_metrics() -> Vec<WcojMetric> {
    let mut out = Vec::new();
    for &k in &[2usize, 3] {
        let fam = grid_cqs_family(k);
        let mut g = random_graph(10, 0.5, 11 + 10u64);
        plant_clique(&mut g, k, 5);
        let reduced = clique_to_cqs_instance(&g, k, &fam);
        let db = &reduced.grohe.instance;
        let plans: Vec<CompiledQuery> = fam
            .cqs
            .query
            .disjuncts
            .iter()
            .map(|cq| CompiledQuery::compile(&cq.atoms))
            .collect();
        let total = |s: Strategy, r: Repr| -> usize {
            plans
                .iter()
                .map(|p| p.search(db).strategy(s).repr(r).count())
                .sum()
        };
        let backtrack_ms = bench_ms(|| total(Strategy::Backtrack, Repr::Auto));
        let wcoj_ms = bench_ms(|| total(Strategy::Wcoj, Repr::Generic));
        let dense_ms = bench_ms(|| total(Strategy::Wcoj, Repr::Dense));
        let n_bt = total(Strategy::Backtrack, Repr::Auto);
        let n_wc = total(Strategy::Wcoj, Repr::Generic);
        let n_dn = total(Strategy::Wcoj, Repr::Dense);
        let planner = if plans.iter().all(|p| p.prefers_wcoj()) {
            "wcoj".to_string()
        } else if plans.iter().all(|p| !p.prefers_wcoj()) {
            "backtrack".to_string()
        } else {
            "mixed".to_string()
        };
        out.push(WcojMetric {
            workload: format!("E4 grid-CQS over D* (k={k}, 10 vertices)"),
            backtrack_ms,
            wcoj_ms,
            dense_ms,
            planner,
            answers: n_dn,
            answers_agree: n_bt == n_wc && n_wc == n_dn,
            index: index_counters(db),
            scaling: Vec::new(),
        });
    }
    out
}

/// Triangle counting on a sparse-ish random graph: the textbook
/// worst-case-optimal-join workload (AGM bound `O(|E|^{3/2})` vs the
/// pairwise-join blowup).
pub fn triangle_count_metric() -> WcojMetric {
    let db = graph_db(&random_graph(96, 0.15, 7));
    let plan = CompiledQuery::compile(&clique_cq(3).atoms);
    measure(
        "triangle count (96 vertices, p=0.15)".to_string(),
        &plan,
        &db,
    )
}

/// Runs every WCOJ workload and collects the report rows.
pub fn wcoj_benchmark() -> Vec<WcojMetric> {
    let mut metrics = e10_clique_metrics();
    metrics.extend(e4_reduction_metrics());
    metrics.push(triangle_count_metric());
    metrics
}

/// Renders the metrics as the `BENCH_wcoj.json` document.
pub fn wcoj_json(metrics: &[WcojMetric]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"description\": \"{}\",\n",
        escape(
            "Worst-case-optimal join path: live before/after timings in ms \
             (min over adaptive repeats: >=3, within a ~30 ms budget) \
             for full answer enumeration of cyclic-shape \
             workloads. 'backtrack' and 'wcoj' force the respective \
             executor on the same compiled plan ('wcoj' = generic Value \
             keys, 'dense' = dictionary-coded u32 keys, the default); \
             'planner' is what Strategy::Auto picks. 'scaling' rows time \
             the morsel-driven parallel dense path per worker width; on a \
             1-core host (see 'available_parallelism') widths > 1 would \
             time-slice one CPU and report scheduling overhead as a \
             slowdown, so those rows carry 'skipped': 'single-core' \
             instead of a time."
        )
    ));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str("  \"metrics\": [\n");
    let items: Vec<String> = metrics
        .iter()
        .map(|m| {
            let index: Vec<String> = m
                .index
                .iter()
                .map(|(name, v)| format!("\"{}\": {v}", escape(name)))
                .collect();
            let scaling: Vec<String> = m
                .scaling
                .iter()
                .map(|&(w, ms)| match ms {
                    Some(ms) => format!("{{\"workers\": {w}, \"ms\": {ms:.3}}}"),
                    None => format!("{{\"workers\": {w}, \"skipped\": \"single-core\"}}"),
                })
                .collect();
            format!(
                "    {{\n      \"workload\": \"{}\",\n      \"backtrack_ms\": {:.3},\n      \
                 \"wcoj_ms\": {:.3},\n      \"dense_ms\": {:.3},\n      \
                 \"speedup\": {:.2},\n      \"dense_speedup\": {:.2},\n      \
                 \"planner\": \"{}\",\n      \
                 \"answers\": {},\n      \"answers_agree\": {},\n      \
                 \"index\": {{{}}},\n      \"scaling\": [{}]\n    }}",
                escape(&m.workload),
                m.backtrack_ms,
                m.wcoj_ms,
                m.dense_ms,
                m.speedup(),
                m.dense_speedup(),
                escape(&m.planner),
                m.answers,
                m.answers_agree,
                index.join(", "),
                scaling.join(", ")
            )
        })
        .collect();
    out.push_str(&items.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_microbench_agrees_and_routes_wcoj() {
        let m = triangle_count_metric();
        assert!(m.answers_agree, "executors disagree: {m:?}");
        assert_eq!(m.planner, "wcoj", "the triangle is cyclic");
        assert!(m.answers > 0, "a 96-vertex p=0.15 graph has triangles");
        // The measured scaling rows follow the host's plan exactly: width
        // 1 always has a time; wider rows have one iff the host does.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let plan = scaling_plan(cores);
        assert_eq!(m.scaling.len(), plan.len());
        for (&(w, ms), &(pw, run)) in m.scaling.iter().zip(&plan) {
            assert_eq!(w, pw);
            assert_eq!(ms.is_some(), run, "width {w} measured-ness");
        }
    }

    #[test]
    fn single_core_skips_wide_scaling_rows() {
        // On one core only width 1 measures; every wider width is skipped
        // rather than reported as a bogus slowdown.
        assert_eq!(
            scaling_plan(1),
            vec![(1, true), (2, false), (4, false), (8, false)]
        );
        // With real parallelism every width measures.
        for cores in [2, 4, 8, 64] {
            assert!(
                scaling_plan(cores).iter().all(|&(_, run)| run),
                "{cores} cores"
            );
        }
    }

    #[test]
    fn speedup_is_ratio_and_zero_safe() {
        let mut m = WcojMetric {
            workload: "x".into(),
            backtrack_ms: 8.0,
            wcoj_ms: 2.0,
            dense_ms: 0.5,
            planner: "wcoj".into(),
            answers: 1,
            answers_agree: true,
            index: Vec::new(),
            scaling: Vec::new(),
        };
        assert!((m.speedup() - 4.0).abs() < 1e-9);
        assert!((m.dense_speedup() - 4.0).abs() < 1e-9);
        m.wcoj_ms = 0.0;
        assert_eq!(m.speedup(), 0.0);
        m.dense_ms = 0.0;
        assert_eq!(m.dense_speedup(), 0.0);
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let metrics = vec![
            WcojMetric {
                workload: "E10 clique k=5".into(),
                backtrack_ms: 10.0,
                wcoj_ms: 1.0,
                dense_ms: 0.25,
                planner: "wcoj".into(),
                answers: 120,
                answers_agree: true,
                index: vec![("index.cached", 2), ("index.full_builds", 2)],
                scaling: vec![(1, Some(0.25)), (2, Some(0.26)), (4, Some(0.27)), (8, None)],
            },
            WcojMetric {
                workload: "triangle".into(),
                backtrack_ms: 3.0,
                wcoj_ms: 1.5,
                dense_ms: 0.5,
                planner: "wcoj".into(),
                answers: 6,
                answers_agree: true,
                index: Vec::new(),
                scaling: Vec::new(),
            },
        ];
        let json = wcoj_json(&metrics);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches("\"workload\"").count(), 2);
        assert!(json.contains("\"speedup\": 10.00"));
        assert!(json.contains("\"dense_ms\": 0.250"));
        assert!(json.contains("\"dense_speedup\": 4.00"));
        assert!(json.contains("{\"workers\": 4, \"ms\": 0.270}"));
        assert!(json.contains("{\"workers\": 8, \"skipped\": \"single-core\"}"));
        assert!(!json.contains("\"workers\": 8, \"ms\""));
        assert!(json.contains("\"scaling\": []"));
        assert!(json.contains("\"available_parallelism\": "));
        assert!(json.contains("\"answers_agree\": true"));
        assert!(json.contains("\"index.cached\": 2"));
    }
}
