//! Σ-types and guarded saturation (the machinery of Appendix A / Lemma A.3).
//!
//! For guarded TGDs, the atoms derivable from a *bag* (a guarded set of
//! constants together with the atoms over them) depend only on the bag's
//! isomorphism type. This module implements:
//!
//! * canonicalization of bags into [`CanonType`]s,
//! * a memoized bag-closure engine ([`Saturator`]): the atoms over a bag's
//!   constants entailed by the chase, computed by recursing into the child
//!   bags created by existential heads and importing back the derived
//!   frontier atoms, with Kleene iteration across recursive type cycles,
//! * [`ground_saturation`]: `chase↓(D, Σ)` — the ground part of the chase,
//!   i.e. every atom over `dom(D)` entailed by `D` and Σ (the paper's
//!   `complete(D, Σ)` and the `D⁺` of Section 6.2),
//! * [`type_of_atom`]: `type_{D,Σ}(α)` (Appendix A.1).
//!
//! This is the ExpTime (for bounded arity) decision machinery that the paper
//! invokes from \[14\]/\[24\]; only *reachable* types are ever materialized.

use crate::tgd::{Tgd, TgdClass};
use gtgd_data::{obs, GroundAtom, Instance, Predicate, Value};
use gtgd_query::{CompiledQuery, Term, Var};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::ops::ControlFlow;
use std::time::Instant;

/// An atom in canonical coordinates: arguments are positions `0..width`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TAtom {
    /// The relation symbol.
    pub pred: Predicate,
    /// Arguments as canonical constant positions.
    pub args: Vec<u8>,
}

/// A canonicalized bag: a set of atoms over `width` anonymous constants.
/// Two bags with the same `CanonType` are isomorphic, so chase-derivable
/// atom sets over them coincide.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonType {
    /// Number of constants in the bag.
    pub width: u8,
    /// The atoms, in canonical coordinates.
    pub atoms: BTreeSet<TAtom>,
}

/// Largest bag width we canonicalize by brute-force permutation search.
/// `8! = 40320` permutations is still fast; the paper's bags have width
/// `≤ ar(T)`, small by the bounded-arity standing assumption.
pub const MAX_CANON_WIDTH: usize = 8;

fn encode(atoms: &Instance, position: &HashMap<Value, u8>) -> BTreeSet<TAtom> {
    atoms
        .iter()
        .map(|a| TAtom {
            pred: a.predicate,
            args: a.args.iter().map(|v| position[v]).collect(),
        })
        .collect()
}

/// Canonicalizes a bag by minimizing over all constant orderings. Returns
/// the canonical type and the ordering that realizes it
/// (`perm[canonical_position] = value`).
pub fn canonicalize(atoms: &Instance, consts: &[Value]) -> (CanonType, Vec<Value>) {
    canonicalize_rigid(atoms, &[], consts)
}

/// Canonicalizes while keeping `rigid` constants pinned at positions
/// `0..rigid.len()` in the given order; only `flexible` constants are
/// permuted. Used for the blocking signatures of the typed chase, where
/// inherited constants must not be anonymized relative to each other.
pub fn canonicalize_rigid(
    atoms: &Instance,
    rigid: &[Value],
    flexible: &[Value],
) -> (CanonType, Vec<Value>) {
    let width = rigid.len() + flexible.len();
    assert!(width <= u8::MAX as usize, "bag too wide");
    // Pre-sort the flexible constants by an isomorphism-invariant signature
    // (occurrence profile across predicates/positions and co-occurrence
    // with the rigid prefix), and only permute within equal-signature
    // groups: isomorphic bags have matching group structures, so the
    // restricted minimum is still a canonical form, at a fraction of the
    // `n!` cost (groups are usually singletons).
    type Occurrence = (u32, usize, usize);
    let signature = |v: Value| -> Vec<Occurrence> {
        let mut sig: Vec<Occurrence> = Vec::new();
        for a in atoms.iter() {
            for (pos, &arg) in a.args.iter().enumerate() {
                if arg == v {
                    let rigid_mask = a
                        .args
                        .iter()
                        .enumerate()
                        .filter(|(_, x)| rigid.contains(x))
                        .fold(0usize, |m, (i, _)| m | (1 << i));
                    sig.push((a.predicate.0.id(), pos, rigid_mask));
                }
            }
        }
        sig.sort_unstable();
        sig
    };
    let mut groups: Vec<(Vec<Occurrence>, Vec<Value>)> = Vec::new();
    {
        let mut sorted: Vec<(Vec<Occurrence>, Value)> =
            flexible.iter().map(|&v| (signature(v), v)).collect();
        sorted.sort();
        for (sig, v) in sorted {
            match groups.last_mut() {
                Some((s, vs)) if *s == sig => vs.push(v),
                _ => groups.push((sig, vec![v])),
            }
        }
    }
    let largest_group = groups.iter().map(|(_, vs)| vs.len()).max().unwrap_or(0);
    assert!(
        largest_group <= MAX_CANON_WIDTH,
        "canonicalization group of {largest_group} indistinguishable constants \
         exceeds the permutation limit"
    );
    let mut best: Option<(BTreeSet<TAtom>, Vec<Value>)> = None;
    let mut group_orders: Vec<Vec<Value>> = groups.iter().map(|(_, vs)| vs.clone()).collect();
    permute_groups(&mut group_orders, 0, &mut |perm| {
        let mut position: HashMap<Value, u8> = HashMap::new();
        for (i, &v) in rigid.iter().enumerate() {
            position.insert(v, i as u8);
        }
        for (i, &v) in perm.iter().enumerate() {
            position.insert(v, (rigid.len() + i) as u8);
        }
        let enc = encode(atoms, &position);
        if best.as_ref().is_none_or(|(b, _)| enc < *b) {
            let mut full: Vec<Value> = rigid.to_vec();
            full.extend_from_slice(perm);
            best = Some((enc, full));
        }
    });
    let (enc, perm) = best.expect("at least one ordering");
    (
        CanonType {
            width: width as u8,
            atoms: enc,
        },
        perm,
    )
}

/// Visits every ordering obtainable by permuting each group internally,
/// concatenated in group order.
fn permute_groups(groups: &mut Vec<Vec<Value>>, gi: usize, f: &mut impl FnMut(&[Value])) {
    if gi == groups.len() {
        let flat: Vec<Value> = groups.iter().flatten().copied().collect();
        f(&flat);
        return;
    }
    fn permute_within(
        groups: &mut Vec<Vec<Value>>,
        gi: usize,
        k: usize,
        f: &mut impl FnMut(&[Value]),
    ) {
        if k == groups[gi].len() {
            permute_groups(groups, gi + 1, f);
            return;
        }
        for i in k..groups[gi].len() {
            groups[gi].swap(k, i);
            permute_within(groups, gi, k + 1, f);
            groups[gi].swap(k, i);
        }
    }
    permute_within(groups, gi, 0, f);
}

/// Decodes a canonical atom set back to concrete constants
/// (`perm[position] = value`).
pub fn decode(atoms: &BTreeSet<TAtom>, perm: &[Value]) -> Instance {
    Instance::from_atoms(
        atoms
            .iter()
            .map(|t| GroundAtom::new(t.pred, t.args.iter().map(|&p| perm[p as usize]).collect())),
    )
}

/// The memoized bag-closure engine for a fixed set of guarded TGDs.
pub struct Saturator<'a> {
    tgds: &'a [Tgd],
    memo: HashMap<CanonType, BTreeSet<TAtom>>,
    in_progress: HashSet<CanonType>,
    /// Keys whose memo value is exact: computed without hitting a recursive
    /// type cycle, hence a true least fixpoint of their downward cone.
    /// Stable keys return immediately, preventing exponential re-descent
    /// along deep acyclic type chains.
    stable: HashSet<CanonType>,
    /// Counts in-progress short-circuits; used to detect whether a closure
    /// computation depended on an unfinished ancestor.
    ip_hits: u64,
    /// Set when any memo entry grew during the last operation; drives the
    /// outer Kleene iteration of [`ground_saturation`].
    changed: bool,
    /// Compiled body plans, one per TGD. Bag closures run the same small
    /// body searches thousands of times over tiny instances, so the
    /// per-search compile cost is paid once here instead.
    plans: Vec<CompiledQuery>,
}

impl<'a> Saturator<'a> {
    /// Creates a saturator. Panics unless every TGD is guarded and
    /// constant-free (the paper's standing assumptions for this machinery).
    pub fn new(tgds: &'a [Tgd]) -> Saturator<'a> {
        for t in tgds {
            assert!(
                t.is_in(TgdClass::Guarded),
                "the type machinery requires guarded TGDs: {t}"
            );
            let constant_free = t
                .body
                .iter()
                .chain(t.head.iter())
                .all(|a| a.args.iter().all(|arg| matches!(arg, Term::Var(_))));
            assert!(
                constant_free,
                "the type machinery requires constant-free TGDs: {t}"
            );
        }
        Saturator {
            tgds,
            memo: HashMap::new(),
            in_progress: HashSet::new(),
            stable: HashSet::new(),
            ip_hits: 0,
            changed: false,
            plans: tgds
                .iter()
                .map(|t| CompiledQuery::compile(&t.body))
                .collect(),
        }
    }

    /// Number of distinct canonical types materialized so far (telemetry for
    /// the experiments).
    pub fn type_count(&self) -> usize {
        self.memo.len()
    }

    /// Reads and clears the memo-growth flag. Outer Kleene loops that drive
    /// their own saturators (e.g. the parallel ground saturation) use this
    /// to decide whether another refinement pass is needed.
    pub fn take_changed(&mut self) -> bool {
        std::mem::take(&mut self.changed)
    }

    /// Closes a bag: returns every atom over `consts` entailed by the chase
    /// of the bag's atoms under the TGDs. `atoms` must only mention
    /// `consts`.
    pub fn close_bag(&mut self, atoms: &Instance, consts: &[Value]) -> Instance {
        debug_assert!(atoms
            .iter()
            .all(|a| a.args.iter().all(|v| consts.contains(v))));
        let (key, perm) = canonicalize(atoms, consts);
        self.close_canonical(&key, &perm)
    }

    /// [`Self::close_bag`] for a bag already in canonical form: `key` is the
    /// bag's type and `perm` an ordering realizing it
    /// (`perm[canonical_position] = value`), as returned by
    /// [`canonicalize`]. Callers that group bags by type pay for one closure
    /// computation per *type*; the canonical-coordinate result is afterwards
    /// available from [`Self::encoded_closure`] and decodes to every
    /// same-type bag through that bag's own ordering.
    pub fn close_canonical(&mut self, key: &CanonType, perm: &[Value]) -> Instance {
        if self.stable.contains(key) {
            obs::count(obs::Metric::BagClosureMemoHits, 1);
            return decode(&self.memo[key], perm);
        }
        if self.in_progress.contains(key) {
            // Recursive type cycle: return the current approximation; the
            // outer Kleene iteration refines it.
            self.ip_hits += 1;
            let current = self.memo.get(key).unwrap_or(&key.atoms);
            return decode(current, perm);
        }
        obs::count(obs::Metric::BagClosures, 1);
        let closure_t = obs::enabled().then(Instant::now);
        let hits_before = self.ip_hits;
        let start = self
            .memo
            .entry(key.clone())
            .or_insert_with(|| key.atoms.clone());
        let mut current = decode(start, perm);
        self.in_progress.insert(key.clone());
        loop {
            let mut grew = false;
            for (ti, tgd) in self.tgds.iter().enumerate() {
                let frontier = tgd.frontier();
                let exist = tgd.existential_vars();
                let homs: Vec<HashMap<Var, Value>> = {
                    let plan = &self.plans[ti];
                    let mut out = Vec::new();
                    plan.search(&current).for_each_row(|row| {
                        out.push(
                            plan.vars()
                                .iter()
                                .copied()
                                .zip(row.iter().copied())
                                .collect(),
                        );
                        ControlFlow::Continue(())
                    });
                    out
                };
                for h in homs {
                    if exist.is_empty() {
                        for head in &tgd.head {
                            grew |= current.insert(head.ground(&h));
                        }
                        continue;
                    }
                    // Existential head: build and close the child bag.
                    let mut assignment = h.clone();
                    let mut child_consts: Vec<Value> = Vec::new();
                    for &v in &frontier {
                        let img = assignment[&v];
                        if !child_consts.contains(&img) {
                            child_consts.push(img);
                        }
                    }
                    for &z in &exist {
                        let n = Value::fresh_null();
                        assignment.insert(z, n);
                        child_consts.push(n);
                    }
                    let mut child = Instance::new();
                    for head in &tgd.head {
                        child.insert(head.ground(&assignment));
                    }
                    let child_set: HashSet<Value> = child_consts.iter().copied().collect();
                    child.extend_from(&current.restrict_to(&child_set));
                    let closed = self.close_bag(&child, &child_consts);
                    // Import what came back over our constants.
                    let ours: HashSet<Value> = perm.iter().copied().collect();
                    for a in closed.restrict_to(&ours).iter() {
                        grew |= current.insert(a.clone());
                    }
                }
            }
            if !grew {
                break;
            }
        }
        self.in_progress.remove(key);
        let position: HashMap<Value, u8> = perm
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u8))
            .collect();
        let final_enc = encode(&current, &position);
        let entry = self.memo.get_mut(key).expect("inserted above");
        if *entry != final_enc {
            debug_assert!(entry.is_subset(&final_enc), "closure must be monotone");
            *entry = final_enc;
            self.changed = true;
        }
        if self.ip_hits == hits_before {
            // No recursive cycle below: this is the exact least fixpoint of
            // the key's downward cone.
            self.stable.insert(key.clone());
        }
        if let Some(t0) = closure_t {
            obs::observe(obs::Hist::BagClosureNs, t0.elapsed().as_nanos() as u64);
        }
        current
    }

    /// The closure of `key` in canonical coordinates, if some earlier close
    /// computed (or, mid-iteration, approximated) it.
    pub fn encoded_closure(&self, key: &CanonType) -> Option<&BTreeSet<TAtom>> {
        self.memo.get(key)
    }

    /// `chase↓(D, Σ)`: all atoms over `dom(D)` entailed by the chase —
    /// Kleene iteration of per-bag closure over the database's guarded sets.
    pub fn ground_saturation(&mut self, db: &Instance) -> Instance {
        let mut ground = db.clone();
        loop {
            self.changed = false;
            let mut added = false;
            // Per-atom bags: every guarded set of D is dom(α) for some α,
            // and every chase derivation over dom(D) is local to one bag.
            let bags: Vec<Vec<Value>> = {
                let mut seen: HashSet<Vec<Value>> = HashSet::new();
                let mut out = Vec::new();
                for a in ground.iter() {
                    let mut d = a.dom();
                    d.sort_unstable();
                    if seen.insert(d.clone()) {
                        out.push(d);
                    }
                }
                out
            };
            for consts in bags {
                let keep: HashSet<Value> = consts.iter().copied().collect();
                let bag = ground.restrict_to(&keep);
                let closed = self.close_bag(&bag, &consts);
                for a in closed.iter() {
                    added |= ground.insert(a.clone());
                }
            }
            // Empty-body TGDs contribute ground atoms only when their heads
            // are variable-free; variable-free heads ground directly.
            if !self.changed && !added {
                return ground;
            }
        }
    }
}

/// `chase↓(D, Σ)` for a set of guarded TGDs: the ground part of the chase,
/// i.e. `D ∪ {R(ā) ∈ chase(D, Σ) | ā ⊆ dom(D)}`.
pub fn ground_saturation(db: &Instance, tgds: &[Tgd]) -> Instance {
    Saturator::new(tgds).ground_saturation(db)
}

/// The paper's `complete(I, Σ)` (Appendix A.1): all atoms over `dom(I)`
/// entailed by the chase. Alias of [`ground_saturation`] — see the module
/// docs for why per-bag closure captures every such atom.
pub fn complete_ground(db: &Instance, tgds: &[Tgd]) -> Instance {
    ground_saturation(db, tgds)
}

/// `type_{D,Σ}(α)`: the atoms of `chase(D, Σ)` over `dom(α)`.
pub fn type_of_atom(db: &Instance, tgds: &[Tgd], atom: &GroundAtom) -> Instance {
    let sat = ground_saturation(db, tgds);
    let keep: HashSet<Value> = atom.dom().into_iter().collect();
    sat.restrict_to(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{chase, ChaseBudget};
    use crate::tgd::parse_tgds;

    fn db(atoms: &[(&str, &[&str])]) -> Instance {
        Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
    }

    #[test]
    fn canonicalization_is_rename_invariant() {
        let b1 = db(&[("R", &["a", "b"]), ("P", &["a"])]);
        let b2 = db(&[("R", &["x", "y"]), ("P", &["x"])]);
        let (k1, _) = canonicalize(&b1, &[Value::named("a"), Value::named("b")]);
        let (k2, _) = canonicalize(&b2, &[Value::named("y"), Value::named("x")]);
        assert_eq!(k1, k2);
        let b3 = db(&[("R", &["a", "b"]), ("P", &["b"])]); // P on the other side
        let (k3, _) = canonicalize(&b3, &[Value::named("a"), Value::named("b")]);
        assert_ne!(k1, k3);
    }

    #[test]
    fn canonicalize_decode_roundtrip() {
        let b = db(&[("R", &["a", "b"]), ("S", &["b", "a"]), ("P", &["a"])]);
        let consts = [Value::named("a"), Value::named("b")];
        let (k, perm) = canonicalize(&b, &consts);
        assert_eq!(decode(&k.atoms, &perm), b);
    }

    #[test]
    fn rigid_canonicalization_pins_prefix() {
        let b = db(&[("R", &["a", "b"])]);
        let (k, perm) = canonicalize_rigid(&b, &[Value::named("a")], &[Value::named("b")]);
        assert_eq!(perm[0], Value::named("a"));
        assert!(k.atoms.contains(&TAtom {
            pred: Predicate::new("R"),
            args: vec![0, 1],
        }));
    }

    #[test]
    fn full_tgds_saturate_like_chase() {
        let tgds = parse_tgds("R(X,Y) -> R(Y,X). R(X,Y) -> P(X)").unwrap();
        let d = db(&[("R", &["a", "b"])]);
        let sat = ground_saturation(&d, &tgds);
        let reference = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert!(reference.complete);
        assert_eq!(sat, reference.instance);
    }

    #[test]
    fn existential_round_trip_derives_ground_atoms() {
        // R(x,y) → ∃z S(y,z); S(y,z) → T(y). T is derivable over dom(D)
        // even though it needs a detour through a null.
        let tgds = parse_tgds("R(X,Y) -> S(Y,Z). S(Y,Z) -> T(Y)").unwrap();
        let d = db(&[("R", &["a", "b"])]);
        let sat = ground_saturation(&d, &tgds);
        assert!(sat.contains(&GroundAtom::named("T", &["b"])));
        // And nothing about nulls leaks into the ground part.
        assert!(sat.dom().iter().all(|v| v.is_named()));
        assert_eq!(sat.len(), 2); // R(a,b) and T(b); S(b,⊥) is not ground
    }

    #[test]
    fn deep_recursion_through_types() {
        // An infinite chase whose ground part is finite: the classic
        // person/parent ontology plus an attribute that flows back.
        let tgds = parse_tgds(
            "Person(X) -> Parent(X,Y), Person(Y). \
             Parent(X,Y), Royal(Y) -> Royal(X)",
        )
        .unwrap();
        let d = db(&[("Person", &["eve"])]);
        let sat = ground_saturation(&d, &tgds);
        // Royal never becomes derivable; Person(eve) is all the ground part.
        assert_eq!(sat.len(), 1);
    }

    #[test]
    fn ground_saturation_agrees_with_deep_chase() {
        // Cross-validate on a guarded ontology with existential heads.
        let tgds = parse_tgds(
            "Emp(X) -> WorksIn(X,D). \
             WorksIn(X,D) -> Dept(D). \
             Dept(D) -> HasMgr(D,M), Emp(M). \
             HasMgr(D,M) -> Reports(M,D). \
             Reports(M,D), HasMgr(D,M) -> Runs(M,D)",
        )
        .unwrap();
        let d = db(&[("Emp", &["ann"]), ("WorksIn", &["ann", "sales"])]);
        let sat = ground_saturation(&d, &tgds);
        let deep = chase(&d, &tgds, &ChaseBudget::levels(8));
        // Every ground atom of the deep chase prefix must be in sat.
        for a in deep.instance.iter() {
            if a.args.iter().all(|v| v.is_named()) {
                assert!(sat.contains(a), "missing ground atom {a}");
            }
        }
        // And sat contains no atom the deep chase prefix lacks.
        for a in sat.iter() {
            assert!(deep.instance.contains(a), "unsound atom {a}");
        }
    }

    #[test]
    fn type_of_atom_restricts_to_guard() {
        let tgds = parse_tgds("R(X,Y) -> P(X). R(X,Y) -> Q(Y)").unwrap();
        let d = db(&[("R", &["a", "b"]), ("R", &["b", "c"])]);
        let t = type_of_atom(&d, &tgds, &GroundAtom::named("R", &["a", "b"]));
        assert!(t.contains(&GroundAtom::named("P", &["a"])));
        assert!(t.contains(&GroundAtom::named("Q", &["b"])));
        assert!(t.contains(&GroundAtom::named("P", &["b"]))); // from R(b,c), over {a,b}
        assert!(!t.contains(&GroundAtom::named("R", &["b", "c"])));
    }

    #[test]
    fn memoization_reuses_types() {
        let tgds = parse_tgds("A(X) -> R(X,Y), A(Y)").unwrap();
        let mut sat = Saturator::new(&tgds);
        let d = db(&[("A", &["a"]), ("A", &["b"]), ("A", &["c"])]);
        sat.ground_saturation(&d);
        // All three start atoms have the same type; the infinite forward
        // chain collapses into a few canonical types.
        assert!(sat.type_count() <= 4, "types: {}", sat.type_count());
    }

    #[test]
    #[should_panic(expected = "requires guarded")]
    fn rejects_unguarded_tgds() {
        let tgds = parse_tgds("R(X,Y), S(Y,Z) -> T(X,Z)").unwrap();
        Saturator::new(&tgds);
    }

    #[test]
    fn linear_tgd_inclusion_dependencies() {
        // Inclusion dependencies (the paper's referential constraints).
        let tgds = parse_tgds("Emp(X, D) -> Dept(D). Dept(D) -> DeptHasEmp(D, E)").unwrap();
        let d = db(&[("Emp", &["ann", "sales"])]);
        let sat = ground_saturation(&d, &tgds);
        assert!(sat.contains(&GroundAtom::named("Dept", &["sales"])));
        assert_eq!(sat.len(), 2);
    }
}
