//! E5 — Prop 5.8 / Lemma 6.8: building the OMQ→CQS reduction database `D*`
//! scales polynomially in `|D|`, and closed-world evaluation over it is
//! cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtgd_bench::workloads::org_db;
use gtgd_chase::{parse_tgds, ChaseBudget};
use gtgd_core::{omq_to_cqs_database, Omq};
use gtgd_query::{evaluate_ucq, parse_ucq};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_omq_to_cqs");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let sigma =
        parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> Audited(D)")
            .unwrap();
    let q = Omq::full_schema(
        sigma,
        parse_ucq("Q(X) :- Emp(X), WorksIn(X,D), Audited(D)").unwrap(),
    );
    for &n in &[25usize, 100, 400] {
        let db = org_db(n);
        group.bench_with_input(BenchmarkId::new("build_dstar", n), &db, |b, db| {
            b.iter(|| omq_to_cqs_database(&q, db, &ChaseBudget::unbounded()).unwrap())
        });
        let d_star = omq_to_cqs_database(&q, &db, &ChaseBudget::unbounded()).unwrap();
        group.bench_with_input(BenchmarkId::new("closed_eval", n), &d_star, |b, db| {
            b.iter(|| evaluate_ucq(&q.query, db))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
