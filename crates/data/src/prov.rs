//! Std-only derivation-provenance capture: an opt-in, gated record of every
//! trigger firing a chase performs.
//!
//! The chase engines answer *what* holds (the materialized instance) but
//! not *why*. This module is the "why" side: when the gate is on, every
//! trigger firing — in all three engines, which all fire through the shared
//! `TriggerPlan::fire_row` of the chase crate — appends one
//! [`FiringRecord`] naming the TGD, the full variable valuation (body
//! variables in ascending order, then the fresh nulls chosen for the
//! existential variables), and the ground head atoms the firing produced.
//! The collected sequence *is* the derivation: replaying it by naive
//! substitution re-derives exactly the chase-added atoms, which is what the
//! independent certificate checker (`gtgd-check`) does fail-closed.
//!
//! The design copies [`crate::obs`] deliberately:
//!
//! * probes are **off by default** — each `record_firing` call compiles to
//!   one relaxed [`AtomicBool`] load and a branch, so an uncertified run
//!   pays nothing but that branch;
//! * state is **process-global** behind a mutex — firings are only recorded
//!   on the engines' single merge/fire thread (parallel chase workers
//!   discover triggers but never fire them), so the lock is uncontended and
//!   the recorded order is the engines' canonical firing order,
//!   deterministic for any worker count;
//! * the intended protocol is enable → [`reset`] → run → [`take`] →
//!   disable, packaged as [`collect_run`]. Two *concurrently* collected
//!   runs interleave their firings — the same documented trade as the obs
//!   layer, acceptable for a std-only layer with branch-only disabled cost.
//!
//! Variables are identified by their dense `u32` index (the chase crate's
//! `Var` index); this crate stays below the query/chase layer on purpose so
//! both can feed it.

use crate::atom::GroundAtom;
use crate::value::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One trigger firing: the `tgd`-th rule fired under `val`, producing
/// `atoms`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiringRecord {
    /// Index of the TGD in the rule set the chase ran.
    pub tgd: usize,
    /// The full valuation: body variables (the trigger's homomorphism, in
    /// ascending variable order) followed by existential variables bound to
    /// the fresh nulls this firing invented. Pairs are `(variable index,
    /// value)`.
    pub val: Vec<(u32, Value)>,
    /// The ground head atoms the firing produced (whether or not the
    /// instance already contained them).
    pub atoms: Vec<GroundAtom>,
}

/// The global provenance gate. Every probe is a branch on this flag.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Firings recorded since the last [`reset`], in firing order.
static FIRINGS: Mutex<Vec<FiringRecord>> = Mutex::new(Vec::new());

/// Whether firings are currently recorded. One relaxed load; inlined into
/// the probe site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns provenance recording on or off. Callers wanting a per-run record
/// follow enable → [`reset`] → run → [`take`] → disable ([`collect_run`]
/// is the one-call form).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Clears the recorded firing list. Does not touch the gate.
pub fn reset() {
    FIRINGS.lock().expect("provenance list").clear();
}

/// Appends a firing record if the gate is on. The disabled path is one
/// relaxed load and a branch; callers on hot paths should pre-check
/// [`enabled`] before materializing the record's vectors.
#[inline]
pub fn record_firing(record: FiringRecord) {
    if enabled() {
        FIRINGS.lock().expect("provenance list").push(record);
    }
}

/// Takes the recorded firings, leaving the list empty (regardless of the
/// gate).
pub fn take() -> Vec<FiringRecord> {
    std::mem::take(&mut *FIRINGS.lock().expect("provenance list"))
}

/// Serializes concurrent [`collect_run`] calls: the recording state is
/// process-global, so two collected runs on different threads would
/// otherwise mix their firings (think parallel test binaries).
static COLLECT: Mutex<()> = Mutex::new(());

/// Runs `f` with provenance recording enabled against a clean slate and
/// returns its result together with the firings it recorded; the gate is
/// switched off again afterwards. Concurrent `collect_run` calls
/// serialize on a process-wide lock, so each gets exactly its own
/// firings. (Raw `set_enabled`/`take` callers bypass that lock — the
/// documented obs-style trade.)
pub fn collect_run<T>(f: impl FnOnce() -> T) -> (T, Vec<FiringRecord>) {
    let _serial = COLLECT.lock().unwrap_or_else(|e| e.into_inner());
    set_enabled(true);
    reset();
    let out = f();
    let firings = take();
    set_enabled(false);
    (out, firings)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Provenance state is process-global and rust test binaries run tests
    // concurrently, so every test here serializes on one lock.
    static GATE: Mutex<()> = Mutex::new(());

    fn rec(tgd: usize) -> FiringRecord {
        FiringRecord {
            tgd,
            val: vec![(0, Value::named("a"))],
            atoms: vec![GroundAtom::named("P", &["a"])],
        }
    }

    #[test]
    fn disabled_gate_records_nothing() {
        let _g = GATE.lock().unwrap();
        set_enabled(false);
        reset();
        record_firing(rec(0));
        assert!(take().is_empty());
    }

    #[test]
    fn collect_run_captures_in_order_and_disarms() {
        let _g = GATE.lock().unwrap();
        let ((), firings) = collect_run(|| {
            record_firing(rec(2));
            record_firing(rec(0));
        });
        assert_eq!(firings.len(), 2);
        assert_eq!(firings[0].tgd, 2);
        assert_eq!(firings[1].tgd, 0);
        assert!(!enabled(), "gate must be off after collect_run");
        assert!(take().is_empty(), "collect_run drains the list");
    }

    #[test]
    fn reset_clears_pending_records() {
        let _g = GATE.lock().unwrap();
        set_enabled(true);
        record_firing(rec(1));
        reset();
        let left = take();
        set_enabled(false);
        assert!(left.is_empty());
    }
}
