//! E9 — ablation: oblivious vs restricted chase on a workload where many
//! triggers are already satisfied by the data.

use gtgd_bench::harness;
use gtgd_bench::workloads::org_db;
use gtgd_chase::{chase, parse_tgds, restricted_chase, ChaseBudget};

fn main() {
    harness::group("e9_chase_ablation");
    let sigma =
        parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> Audited(D)")
            .unwrap();
    for &n in &[50usize, 200] {
        let db = org_db(n);
        harness::case(&format!("oblivious/{n}"), || {
            chase(&db, &sigma, &ChaseBudget::unbounded())
        });
        harness::case(&format!("restricted/{n}"), || {
            restricted_chase(&db, &sigma, &ChaseBudget::unbounded())
        });
    }
}
