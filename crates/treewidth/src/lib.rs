#![warn(missing_docs)]

//! Graph substrate for the guarded-TGD toolkit.
//!
//! Provides undirected graphs, tree decompositions with validation,
//! exact and heuristic treewidth algorithms, grid generators, and
//! minor maps — everything the paper's treewidth-centric machinery
//! (Prop 2.1, the Excluded Grid Theorem applications, and the Grohe
//! construction) needs.
//!
//! The treewidth convention follows the paper (Section 2): a graph with an
//! empty edge set has treewidth **one**, and otherwise treewidth is the
//! minimum width over all tree decompositions.
//!
//! ```
//! use gtgd_treewidth::{grid, treewidth, is_treewidth_at_most};
//!
//! let g = grid(3, 4);
//! assert_eq!(treewidth(&g), 3);
//! assert!(is_treewidth_at_most(&g, 3).is_some());
//! assert!(is_treewidth_at_most(&g, 2).is_none());
//! ```

pub mod decomposition;
pub mod elimination;
pub mod graph;
pub mod grid;
pub mod minor;
pub mod nice;

pub use decomposition::TreeDecomposition;
pub use elimination::{
    degeneracy_lower_bound, is_treewidth_at_most, treewidth_exact, treewidth_upper_bound,
    EliminationOrder, Heuristic,
};
pub use graph::Graph;
pub use grid::grid;
pub use minor::MinorMap;
pub use nice::{make_nice, NiceDecomposition, NiceNode};

/// Treewidth of a graph under the paper's convention: 1 when the edge set is
/// empty, otherwise the minimum width over all tree decompositions.
///
/// Uses the exact branch-and-bound algorithm; intended for the moderate graph
/// sizes that arise from queries (tens of vertices). For large graphs use
/// [`treewidth_upper_bound`] or [`is_treewidth_at_most`].
pub fn treewidth(g: &Graph) -> usize {
    if g.edge_count() == 0 {
        return 1;
    }
    treewidth_exact(g).0
}
