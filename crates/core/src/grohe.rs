//! The Grohe database `D* = D*(G, D, D′, A, µ)` (Theorem 7.1 / Appendix
//! H.1): the engine of every W\[1\]-hardness proof in the paper.
//!
//! Given a graph `G`, a clique size `k`, databases `D ⊆ D′`, a set
//! `A ⊆ dom(D)` whose restricted Gaifman graph contains the `k × K`-grid as
//! a minor (`K = C(k,2)`), and the minor map `µ`, the construction replaces
//! each `A`-constant `z` of each `D′`-fact by tuples
//! `(v, e, i, p, z)` — one per *labelled clique* `η` of `G` covering the
//! fact — so that homomorphisms `D → D*` with `h0 ∘ h` the identity on `A`
//! exist iff `G` has a `k`-clique.

use gtgd_data::{GroundAtom, Instance, Valuation, Value};
use gtgd_treewidth::grid::PairBijection;
use gtgd_treewidth::Graph;
use std::collections::{BTreeSet, HashMap};

/// The output of the construction.
#[derive(Debug, Clone)]
pub struct GroheDatabase {
    /// The database `D*`.
    pub instance: Instance,
    /// The surjective homomorphism `h0 : D* → D′` (identity on
    /// `dom(D′) \ A`, last-component projection on the grid elements).
    pub h0: Valuation,
}

/// All labelled cliques `η : I → V(G)`: assignments of the index set `I`
/// (⊆ `[k]`) to vertices of `G` with pairwise-adjacent (hence distinct)
/// images.
pub fn labelled_cliques(g: &Graph, indices: &[usize]) -> Vec<HashMap<usize, usize>> {
    let mut out = Vec::new();
    let mut current: HashMap<usize, usize> = HashMap::new();
    fn rec(
        g: &Graph,
        indices: &[usize],
        pos: usize,
        current: &mut HashMap<usize, usize>,
        out: &mut Vec<HashMap<usize, usize>>,
    ) {
        if pos == indices.len() {
            out.push(current.clone());
            return;
        }
        let idx = indices[pos];
        for v in 0..g.vertex_count() {
            if current.values().all(|&u| g.has_edge(u, v)) {
                current.insert(idx, v);
                rec(g, indices, pos + 1, current, out);
                current.remove(&idx);
            }
        }
    }
    rec(g, indices, 0, &mut current, &mut out);
    out
}

/// Builds `D*(G, D′, A, µ)` for clique size `k`.
///
/// `mu[(i-1)*K + (p-1)]` is the branch set `µ(i, p) ⊆ A` of grid vertex
/// `(i, p)`; the branch sets must partition `A` (the minor map is onto
/// `G^D|A`). The `D`-part of Theorem 7.1 matters only for the
/// *correctness statement* (homomorphisms from `D`), not for the
/// construction, which reads `D′`.
pub fn build_grohe_database(
    g: &Graph,
    k: usize,
    d_prime: &Instance,
    a: &BTreeSet<Value>,
    mu: &[BTreeSet<Value>],
) -> GroheDatabase {
    let chi = PairBijection::new(k);
    let big_k = chi.len();
    assert_eq!(mu.len(), k * big_k, "µ must cover the k × K grid");
    // grid_vertex_of[z] = (i, p), 1-based.
    let mut grid_vertex_of: HashMap<Value, (usize, usize)> = HashMap::new();
    for i in 1..=k {
        for p in 1..=big_k {
            for &z in &mu[(i - 1) * big_k + (p - 1)] {
                assert!(a.contains(&z), "branch sets must lie inside A");
                let prev = grid_vertex_of.insert(z, (i, p));
                assert!(prev.is_none(), "branch sets must be disjoint");
            }
        }
    }
    for &z in a {
        assert!(
            grid_vertex_of.contains_key(&z),
            "µ must be onto: {z} is uncovered"
        );
    }
    // (v, e, i, p, z) — the paper's grid-element tuples.
    type GridElem = (usize, (usize, usize), usize, usize, Value);
    let mut elements: HashMap<GridElem, Value> = HashMap::new();
    let mut h0 = Valuation::new();
    let mut instance = Instance::new();
    for fact in d_prime.iter() {
        // Indices any covering labelled clique must assign.
        let mut needed: BTreeSet<usize> = BTreeSet::new();
        for &z in &fact.args {
            if let Some(&(i, p)) = grid_vertex_of.get(&z) {
                let (j, l) = chi.pair_of(p);
                needed.extend([i, j, l]);
            }
        }
        let indices: Vec<usize> = needed.into_iter().collect();
        for eta in labelled_cliques(g, &indices) {
            let args: Vec<Value> = fact
                .args
                .iter()
                .map(|&z| match grid_vertex_of.get(&z) {
                    None => z,
                    Some(&(i, p)) => {
                        let (j, l) = chi.pair_of(p);
                        let v = eta[&i];
                        let (e0, e1) = {
                            let (u, w) = (eta[&j], eta[&l]);
                            (u.min(w), u.max(w))
                        };
                        *elements.entry((v, (e0, e1), i, p, z)).or_insert_with(|| {
                            Value::named(&format!("γ⟨{v},{e0}-{e1},{i},{p},{z}⟩"))
                        })
                    }
                })
                .collect();
            instance.insert(GroundAtom::new(fact.predicate, args));
        }
    }
    for ((_, _, _, _, z), &val) in &elements {
        h0.insert(val, *z);
    }
    for &z in d_prime.dom() {
        if !a.contains(&z) {
            h0.insert(z, z);
        }
    }
    GroheDatabase { instance, h0 }
}

/// Pads a graph for the clique-extension precondition of Theorem 7.1(3):
/// joins a `c`-clique adjacent to every original vertex, so every clique
/// extends by `c` vertices, and `G` has a `k`-clique iff the result has a
/// `(k + c)`-clique. Returns the padded graph and the new clique target.
pub fn pad_for_clique_extension(g: &Graph, k: usize, c: usize) -> (Graph, usize) {
    let mut padded = g.clone();
    let start = padded.vertex_count();
    for _ in 0..c {
        padded.add_vertex();
    }
    for u in start..start + c {
        for v in 0..u {
            padded.add_edge(u, v);
        }
    }
    (padded, k + c)
}

/// Brute-force `k`-clique test (the ground truth for reduction tests).
pub fn has_clique(g: &Graph, k: usize) -> bool {
    let mut current: Vec<usize> = Vec::new();
    fn rec(g: &Graph, k: usize, from: usize, current: &mut Vec<usize>) -> bool {
        if current.len() == k {
            return true;
        }
        for v in from..g.vertex_count() {
            if current.iter().all(|&u| g.has_edge(u, v)) {
                current.push(v);
                if rec(g, k, v + 1, current) {
                    return true;
                }
                current.pop();
            }
        }
        false
    }
    k == 0 || rec(g, k, 0, &mut current)
}

/// Builds the identity minor map inputs for a database whose `A`-part
/// Gaifman graph **is** the `k × K` grid: `values[(i-1)*K + (p-1)]` is the
/// constant at grid position `(i, p)`; each becomes a singleton branch set.
pub fn identity_grid_mu(values: &[Value]) -> Vec<BTreeSet<Value>> {
    values.iter().map(|&v| BTreeSet::from([v])).collect()
}

/// Validates `h0` as a homomorphism from `D*` to `D′` (Theorem 7.1(1)).
pub fn validate_h0(db: &GroheDatabase, d_prime: &Instance) -> bool {
    gtgd_data::is_homomorphism(&db.h0, &db.instance, d_prime)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtgd_treewidth::grid::big_k;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    fn complete_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        g.make_clique(&(0..n).collect::<Vec<_>>());
        g
    }

    #[test]
    fn labelled_cliques_enumeration() {
        let tri = complete_graph(3);
        // η over two indices on a triangle: ordered pairs of distinct
        // adjacent vertices: 3 * 2 = 6.
        assert_eq!(labelled_cliques(&tri, &[1, 2]).len(), 6);
        // Over an empty index set: exactly the empty assignment.
        assert_eq!(labelled_cliques(&tri, &[]).len(), 1);
        // A path has no triangle: no 3-index cliques.
        assert_eq!(labelled_cliques(&path_graph(4), &[1, 2, 3]).len(), 0);
    }

    #[test]
    fn has_clique_ground_truth() {
        assert!(has_clique(&complete_graph(4), 4));
        assert!(!has_clique(&complete_graph(4), 5));
        assert!(has_clique(&path_graph(5), 2));
        assert!(!has_clique(&path_graph(5), 3));
    }

    #[test]
    fn padding_preserves_clique_question() {
        let g = path_graph(4); // max clique 2
        let (padded, kp) = pad_for_clique_extension(&g, 3, 5);
        assert_eq!(kp, 8);
        // G has no 3-clique, so padded has no 8-clique...
        assert!(!has_clique(&padded, 8));
        // ...but a graph with a 3-clique does.
        let (padded2, kp2) = pad_for_clique_extension(&complete_graph(3), 3, 5);
        assert!(has_clique(&padded2, kp2));
    }

    /// A tiny end-to-end sanity check of the construction for k = 2:
    /// D = D′ = a path of K = 1 × k = 2 grid shape (a single edge),
    /// A = both endpoints. G has a 2-clique iff G has an edge.
    #[test]
    fn k2_reduction_single_edge() {
        let k = 2;
        assert_eq!(big_k(k), 1);
        let z1 = Value::named("z1");
        let z2 = Value::named("z2");
        // The 2×1 grid over A = {z1, z2}: one vertical edge.
        let d = Instance::from_atoms([GroundAtom::new(
            gtgd_data::Predicate::new("E"),
            vec![z1, z2],
        )]);
        let a: BTreeSet<Value> = [z1, z2].into_iter().collect();
        let mu = identity_grid_mu(&[z1, z2]);
        // Graph with an edge: D* nonempty and h0 valid.
        let g = path_graph(2);
        let out = build_grohe_database(&g, k, &d, &a, &mu);
        assert!(!out.instance.is_empty());
        assert!(validate_h0(&out, &d));
        // Graph with no edge: no labelled clique covers the fact.
        let g0 = Graph::new(3);
        let out0 = build_grohe_database(&g0, k, &d, &a, &mu);
        assert!(out0.instance.is_empty());
    }

    #[test]
    #[should_panic(expected = "onto")]
    fn non_onto_mu_rejected() {
        let z1 = Value::named("w1");
        let z2 = Value::named("w2");
        let d = Instance::from_atoms([GroundAtom::new(
            gtgd_data::Predicate::new("E"),
            vec![z1, z2],
        )]);
        let a: BTreeSet<Value> = [z1, z2].into_iter().collect();
        // µ covers only z1.
        let mut mu = identity_grid_mu(&[z1, z1]);
        mu[1] = BTreeSet::new();
        let _ = build_grohe_database(&path_graph(2), 2, &d, &a, &mu);
    }
}
