//! Tuple-generating dependencies: representation, parsing, syntactic
//! classes (Section 2), and satisfaction checking.

use gtgd_data::{Instance, Schema};
use gtgd_query::{parse_cq, HomSearch, QAtom, Term, Var};
use std::collections::BTreeSet;

/// A TGD `ϕ(x̄, ȳ) → ∃z̄ ψ(x̄, z̄)`.
///
/// The body may be empty (the paper allows it; such a TGD unconditionally
/// asserts its head). Variables shared between body and head form the
/// *frontier*; head variables outside the body are existentially quantified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tgd {
    var_names: Vec<String>,
    /// Body atoms `ϕ` (possibly empty).
    pub body: Vec<QAtom>,
    /// Head atoms `ψ` (nonempty).
    pub head: Vec<QAtom>,
}

/// The syntactic classes of Section 2 that a TGD can belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TgdClass {
    /// `G`: some body atom contains every body variable (or the body is
    /// empty).
    Guarded,
    /// `FG`: some body atom contains every frontier variable (or the body is
    /// empty). `G ⊊ FG`.
    FrontierGuarded,
    /// `L`: at most one body atom. `L ⊊ G`.
    Linear,
    /// `FULL`: no existentially quantified head variables.
    Full,
}

impl Tgd {
    /// Builds a TGD; panics on an empty head.
    pub fn new(var_names: Vec<String>, body: Vec<QAtom>, head: Vec<QAtom>) -> Tgd {
        assert!(!head.is_empty(), "a TGD head is a non-empty conjunction");
        let t = Tgd {
            var_names,
            body,
            head,
        };
        for v in t.all_vars() {
            assert!(v.index() < t.var_names.len(), "variable without a name");
        }
        t
    }

    /// The name of `v`.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// A copy of the variable-name table (for constructing derived TGDs).
    pub fn var_name_table(&self) -> Vec<String> {
        self.var_names.clone()
    }

    /// All variables of the TGD, ascending.
    pub fn all_vars(&self) -> Vec<Var> {
        let mut s: BTreeSet<Var> = BTreeSet::new();
        for a in self.body.iter().chain(self.head.iter()) {
            s.extend(a.vars());
        }
        s.into_iter().collect()
    }

    /// The body variables, ascending.
    pub fn body_vars(&self) -> Vec<Var> {
        let mut s: BTreeSet<Var> = BTreeSet::new();
        for a in &self.body {
            s.extend(a.vars());
        }
        s.into_iter().collect()
    }

    /// The frontier `fr(σ)`: variables occurring in both body and head.
    pub fn frontier(&self) -> Vec<Var> {
        let body: BTreeSet<Var> = self.body_vars().into_iter().collect();
        let mut s: BTreeSet<Var> = BTreeSet::new();
        for a in &self.head {
            for v in a.vars() {
                if body.contains(&v) {
                    s.insert(v);
                }
            }
        }
        s.into_iter().collect()
    }

    /// The existentially quantified head variables `z̄`.
    pub fn existential_vars(&self) -> Vec<Var> {
        let body: BTreeSet<Var> = self.body_vars().into_iter().collect();
        let mut s: BTreeSet<Var> = BTreeSet::new();
        for a in &self.head {
            for v in a.vars() {
                if !body.contains(&v) {
                    s.insert(v);
                }
            }
        }
        s.into_iter().collect()
    }

    /// Whether the TGD is guarded; returns the index of a guard body atom,
    /// or `None` for an empty body (guarded by convention).
    pub fn guard(&self) -> Option<usize> {
        let vars = self.body_vars();
        (0..self.body.len()).find(|&i| vars.iter().all(|&v| self.body[i].mentions(v)))
    }

    /// Whether the TGD is frontier-guarded; returns the index of a body atom
    /// containing all frontier variables.
    pub fn frontier_guard(&self) -> Option<usize> {
        let fr = self.frontier();
        (0..self.body.len()).find(|&i| fr.iter().all(|&v| self.body[i].mentions(v)))
    }

    /// Membership test for a syntactic class.
    pub fn is_in(&self, class: TgdClass) -> bool {
        match class {
            TgdClass::Guarded => self.body.is_empty() || self.guard().is_some(),
            TgdClass::FrontierGuarded => self.body.is_empty() || self.frontier_guard().is_some(),
            TgdClass::Linear => self.body.len() <= 1,
            TgdClass::Full => self.existential_vars().is_empty(),
        }
    }

    /// Number of head atoms (the `m` of `FG_m`).
    pub fn head_atom_count(&self) -> usize {
        self.head.len()
    }

    /// The schema realized by the TGD's atoms.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for a in self.body.iter().chain(self.head.iter()) {
            s.add(a.predicate, a.args.len());
        }
        s
    }
}

impl std::fmt::Display for Tgd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fmt_atom = |f: &mut std::fmt::Formatter<'_>, a: &QAtom| -> std::fmt::Result {
            write!(f, "{}(", a.predicate)?;
            for (j, t) in a.args.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                match t {
                    Term::Var(v) => write!(f, "{}", self.var_name(*v))?,
                    Term::Const(c) => write!(f, "\"{c}\"")?,
                }
            }
            write!(f, ")")
        };
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            fmt_atom(f, a)?;
        }
        write!(f, " -> ")?;
        for (i, a) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            fmt_atom(f, a)?;
        }
        Ok(())
    }
}

/// Parses a TGD written as `body -> head`, with the same term conventions as
/// the CQ parser (uppercase = variable). The body may be empty:
/// `-> R(X)` asserts `∃x R(x)`.
///
/// Example: `R(X,Y), S(Y) -> T(X,Z), U(Z)`.
pub fn parse_tgd(input: &str) -> Result<Tgd, gtgd_query::ParseError> {
    let (body_src, head_src) = input
        .split_once("->")
        .ok_or_else(|| gtgd_query::ParseError {
            message: "expected '->' separating body and head".into(),
            offset: 0,
        })?;
    // Parse body and head as separate rule bodies, then unify variables by
    // name (the CQ parser scopes variables per rule).
    let body_trim = body_src.trim();
    let head_trim = head_src.trim();
    if head_trim.is_empty() {
        return Err(gtgd_query::ParseError {
            message: "a TGD needs a non-empty head".into(),
            offset: input.len(),
        });
    }
    let (mut var_names, body) = if body_trim.is_empty() {
        (Vec::new(), Vec::new())
    } else {
        let cq = parse_cq(&format!("H() :- {body_trim}"))?;
        (cq.var_names().to_vec(), cq.atoms.clone())
    };
    let head_cq = parse_cq(&format!("H() :- {head_trim}"))?;
    // Remap head variables: reuse the body's id when the name matches,
    // otherwise append a fresh variable.
    let mut remap: Vec<Var> = Vec::with_capacity(head_cq.var_names().len());
    for name in head_cq.var_names() {
        let id = match var_names.iter().position(|n| n == name) {
            Some(i) => Var(i as u32),
            None => {
                var_names.push(name.clone());
                Var((var_names.len() - 1) as u32)
            }
        };
        remap.push(id);
    }
    let head: Vec<QAtom> = head_cq
        .atoms
        .iter()
        .map(|a| a.map_vars(|v| remap[v.index()]))
        .collect();
    Ok(Tgd::new(var_names, body, head))
}

/// Parses a set of TGDs separated by `.`, skipping blank segments.
pub fn parse_tgds(input: &str) -> Result<Vec<Tgd>, gtgd_query::ParseError> {
    input
        .split('.')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_tgd)
        .collect()
}

/// Whether `I |= σ`: every homomorphism from the body extends to the head
/// (`q_ϕ(I) ⊆ q_ψ(I)` on the frontier).
pub fn satisfies(i: &Instance, tgd: &Tgd) -> bool {
    let frontier = tgd.frontier();
    let mut ok = true;
    HomSearch::new(&tgd.body, i).for_each(|h| {
        let fixed: Vec<(Var, gtgd_data::Value)> = frontier.iter().map(|&v| (v, h[&v])).collect();
        if HomSearch::new(&tgd.head, i).fix(fixed).exists() {
            std::ops::ControlFlow::Continue(())
        } else {
            ok = false;
            std::ops::ControlFlow::Break(())
        }
    });
    ok
}

/// Whether `I |= Σ`.
pub fn satisfies_all(i: &Instance, tgds: &[Tgd]) -> bool {
    tgds.iter().all(|t| satisfies(i, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtgd_data::GroundAtom;

    #[test]
    fn parse_and_display() {
        let t = parse_tgd("R(X,Y), S(Y) -> T(X,Z)").unwrap();
        assert_eq!(t.body.len(), 2);
        assert_eq!(t.head.len(), 1);
        assert_eq!(t.to_string(), "R(X,Y), S(Y) -> T(X,Z)");
    }

    #[test]
    fn frontier_and_existentials() {
        let t = parse_tgd("R(X,Y) -> T(X,Z), U(Z,W)").unwrap();
        let names: Vec<&str> = t.frontier().iter().map(|&v| t.var_name(v)).collect();
        assert_eq!(names, vec!["X"]);
        let ex: Vec<&str> = t
            .existential_vars()
            .iter()
            .map(|&v| t.var_name(v))
            .collect();
        assert_eq!(ex, vec!["Z", "W"]);
    }

    #[test]
    fn classification() {
        // Guarded: R(X,Y) guards both body vars.
        let g = parse_tgd("R(X,Y) -> T(X)").unwrap();
        assert!(g.is_in(TgdClass::Guarded));
        assert!(g.is_in(TgdClass::FrontierGuarded));
        assert!(g.is_in(TgdClass::Linear));
        assert!(g.is_in(TgdClass::Full));

        // Frontier-guarded but not guarded: body vars X,Y,Z not co-guarded,
        // but frontier {X} is.
        let fg = parse_tgd("R(X,Y), S(Y,Z) -> T(X)").unwrap();
        assert!(!fg.is_in(TgdClass::Guarded));
        assert!(fg.is_in(TgdClass::FrontierGuarded));
        assert!(!fg.is_in(TgdClass::Linear));

        // Neither: frontier {X, Z} spans two atoms.
        let nfg = parse_tgd("R(X,Y), S(Y,Z) -> T(X,Z)").unwrap();
        assert!(!nfg.is_in(TgdClass::FrontierGuarded));

        // Existential head.
        let e = parse_tgd("R(X,Y) -> T(Y,Z)").unwrap();
        assert!(!e.is_in(TgdClass::Full));
        assert!(e.is_in(TgdClass::Guarded));
    }

    #[test]
    fn boolean_cq_as_frontier_guarded_tgd() {
        // Prop 3.3(2)'s observation: ϕ(x̄) → Ans is frontier-guarded because
        // the frontier is empty.
        let t = parse_tgd("E(X,Y), E(Y,Z), E(Z,X) -> Ans()").unwrap();
        assert!(t.frontier().is_empty());
        assert!(t.is_in(TgdClass::FrontierGuarded));
        assert!(!t.is_in(TgdClass::Guarded));
    }

    #[test]
    fn empty_body_tgd() {
        let t = parse_tgd("-> R(X)").unwrap();
        assert!(t.body.is_empty());
        assert!(t.is_in(TgdClass::Guarded));
        assert!(t.is_in(TgdClass::Linear));
        assert!(!t.is_in(TgdClass::Full));
    }

    #[test]
    fn satisfaction() {
        let t = parse_tgd("R(X,Y) -> R(Y,X)").unwrap();
        let sym = Instance::from_atoms([
            GroundAtom::named("R", &["a", "b"]),
            GroundAtom::named("R", &["b", "a"]),
        ]);
        assert!(satisfies(&sym, &t));
        let asym = Instance::from_atoms([GroundAtom::named("R", &["a", "b"])]);
        assert!(!satisfies(&asym, &t));
    }

    #[test]
    fn satisfaction_with_existential_head() {
        let t = parse_tgd("Person(X) -> HasParent(X,Y)").unwrap();
        let good = Instance::from_atoms([
            GroundAtom::named("Person", &["alice"]),
            GroundAtom::named("HasParent", &["alice", "bob"]),
        ]);
        assert!(satisfies(&good, &t));
        let bad = Instance::from_atoms([GroundAtom::named("Person", &["alice"])]);
        assert!(!satisfies(&bad, &t));
        assert!(!satisfies_all(&bad, &[t]));
    }

    #[test]
    fn parse_tgds_multiple() {
        let ts = parse_tgds("R(X) -> S(X). S(X) -> T(X,Y).").unwrap();
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn parse_rejects_missing_head() {
        assert!(parse_tgd("R(X) -> ").is_err());
        assert!(parse_tgd("R(X)").is_err());
    }
}
