//! Differential testing of proof-carrying answers: on randomized guarded
//! TGD sets and databases, every null-free answer reported by every
//! {chase engine} × {join strategy} combination must round-trip through a
//! certificate the *independent* checker (`gtgd-check`, which shares no
//! code with the engines) accepts. This is a strictly stronger oracle
//! than the answer-set comparisons of the other differential suites:
//! equality of two engines' answers cannot catch a shared bug, but a
//! fail-closed replay from the stated facts can.
//!
//! The suite also pins the cross-engine contract: certificates produced
//! by different engines for the same case state the identical fact base
//! (sorted database atoms), so a certificate is evidence about the
//! *database*, not about which engine happened to produce it.

use gtgd::chase::{CertificateStore, ChaseBudget, ChaseRunner, ChaseVariant, Tgd};
use gtgd::data::{GroundAtom, Instance, Rng};
use gtgd::query::{parse_cq, Cq, Strategy};

const WORKER_WIDTHS: [usize; 3] = [1, 2, 4];

/// The guarded rule templates of the parallel differential suite.
fn rule_pool() -> Vec<Tgd> {
    gtgd::chase::parse_tgds(
        "A(X) -> B(X). \
         B(X) -> R(X,Y). \
         R(X,Y) -> S(Y,X). \
         R(X,Y), A(X) -> B(Y). \
         S(X,Y) -> A(X). \
         R(X,Y), B(Y) -> S(X,X). \
         B(X) -> A(X)",
    )
    .unwrap()
}

fn query_pool() -> Vec<Cq> {
    vec![
        parse_cq("Q(X) :- A(X)").unwrap(),
        parse_cq("Q(X) :- B(X)").unwrap(),
        parse_cq("Q(X) :- R(X,Y), S(Y,Z)").unwrap(),
        parse_cq("Q(X,Y) :- S(X,Y), A(X)").unwrap(),
    ]
}

fn arb_db(rng: &mut Rng) -> Instance {
    let k = rng.range(1, 9);
    Instance::from_atoms((0..k).map(|_| {
        let kind = rng.range(0, 3);
        let (a, b) = (rng.range(0, 4), rng.range(0, 4));
        match kind {
            0 => GroundAtom::named("A", &[&format!("c{a}")]),
            1 => GroundAtom::named("R", &[&format!("c{a}"), &format!("c{b}")]),
            _ => GroundAtom::named("S", &[&format!("c{a}"), &format!("c{b}")]),
        }
    }))
}

fn sigma_for_mask(pool: &[Tgd], mask: u8) -> Vec<Tgd> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| mask >> i & 1 == 1)
        .map(|(_, t)| t.clone())
        .collect()
}

/// Every engine configuration the suite certifies under: the sequential
/// oblivious chase, the parallel oblivious chase at three widths, and
/// the restricted chase.
fn engine_configs() -> Vec<(String, ChaseVariant, usize)> {
    let mut configs = vec![("oblivious".to_string(), ChaseVariant::Oblivious, 1)];
    for w in WORKER_WIDTHS {
        configs.push((format!("par w={w}"), ChaseVariant::Oblivious, w));
    }
    configs.push(("restricted".to_string(), ChaseVariant::Restricted, 1));
    configs
}

/// 160 seeded cases × 5 engine configurations × both join strategies:
/// every null-free answer yields a checker-accepted certificate, and all
/// configurations state the same fact base.
#[test]
fn every_answer_round_trips_through_an_accepted_certificate() {
    let pool = rule_pool();
    let queries = query_pool();
    // Some rule subsets diverge; a levels cap bounds every engine — the
    // restricted chase included, which tracks per-atom derivation depth.
    // Certification is sound over any budget-truncated prefix, so stopping
    // early loses nothing.
    let budget = ChaseBudget::levels(4);
    let mut checked = 0usize;
    for case in 0u64..160 {
        let mask = (case % 128) as u8;
        let mut rng = Rng::seed(0xCE47 ^ case);
        let d = arb_db(&mut rng);
        let sigma = sigma_for_mask(&pool, mask);
        let mut fact_sections: Vec<String> = Vec::new();
        for (name, variant, workers) in engine_configs() {
            let outcome = ChaseRunner::new(&sigma)
                .variant(variant)
                .workers(workers)
                .budget(budget)
                .certify(true)
                .run(&d);
            let firings = outcome.firings.expect("certified run records firings");
            let store = CertificateStore::new(&d, &sigma, firings);
            for q in &queries {
                for strategy in [Strategy::Backtrack, Strategy::Wcoj] {
                    let certs = store.certify_answers(q, &outcome.instance, strategy);
                    // The engine's own answer view: certify_answers must
                    // cover exactly the null-free answers.
                    let null_free = gtgd::query::Engine::prepare(q)
                        .strategy(strategy)
                        .answers(&outcome.instance)
                        .into_iter()
                        .filter(|t| t.iter().all(|v| v.is_named()))
                        .count();
                    assert_eq!(
                        certs.len(),
                        null_free,
                        "case {case} {name} {strategy:?} {q}: missing certificates"
                    );
                    for cert in &certs {
                        let json = cert.to_json();
                        let parsed =
                            gtgd_check::Certificate::from_json(&json).unwrap_or_else(|e| {
                                panic!("case {case} {name} {strategy:?}: unparsable: {e}")
                            });
                        if let Err(e) = gtgd_check::check(&parsed) {
                            panic!("case {case} {name} {strategy:?} {q}: rejected: {e}\n{json}");
                        }
                        fact_sections.push(
                            json.split("\"tgds\"")
                                .next()
                                .expect("facts prefix")
                                .to_string(),
                        );
                        checked += 1;
                    }
                }
            }
        }
        // Same case ⇒ same stated fact base, whatever engine or strategy
        // produced the certificate.
        if let Some(first) = fact_sections.first() {
            assert!(
                fact_sections.iter().all(|s| s == first),
                "case {case}: fact bases differ across engines"
            );
        }
    }
    assert!(
        checked > 1000,
        "suite must exercise a meaningful number of certificates, got {checked}"
    );
}

/// The batch forms round-trip too: a whole case's certificates serialized
/// as one array are accepted wholesale by the checker's batch entry point.
#[test]
fn certificate_batches_round_trip() {
    let pool = rule_pool();
    let budget = ChaseBudget {
        max_level: Some(4),
        max_atoms: Some(2_000),
    };
    for case in [3u64, 41, 77, 123] {
        let mask = (case % 128) as u8;
        let mut rng = Rng::seed(0xCE47 ^ case);
        let d = arb_db(&mut rng);
        let sigma = sigma_for_mask(&pool, mask);
        let outcome = ChaseRunner::new(&sigma)
            .budget(budget)
            .certify(true)
            .run(&d);
        let store = CertificateStore::new(&d, &sigma, outcome.firings.unwrap());
        let mut certs = Vec::new();
        for q in query_pool() {
            certs.extend(store.certify_answers(&q, &outcome.instance, Strategy::Backtrack));
        }
        let json = gtgd::chase::certificates_to_json(&certs);
        assert_eq!(gtgd_check::check_all(&json), Ok(certs.len()), "case {case}");
    }
}
