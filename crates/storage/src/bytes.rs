//! Little-endian byte-level framing shared by the snapshot reader and
//! writer: a growable [`Writer`], a fail-closed cursor [`Reader`], and the
//! FNV-1a-64 checksum the snapshot header carries.
//!
//! Everything is length-prefixed (`u64` counts) and fixed-width
//! little-endian, so the format has no alignment, endianness, or
//! delimiter-escaping concerns; the reader refuses to run past the end of
//! its buffer and reports *what* it wanted, which the snapshot layer
//! surfaces as a `Malformed` error.

/// FNV-1a, 64-bit: the offset-basis/prime pair from the reference spec.
/// Not cryptographic — it guards against torn writes and bit rot, not
/// adversaries — but it is simple, dependency-free, and byte-order stable.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The snapshot payload checksum: FNV-1a's offset/prime pair absorbing
/// eight-byte little-endian lanes at a time, with any trailing bytes
/// absorbed individually. One multiply per word keeps checksum time a
/// small fraction of the sequential read even on multi-megabyte
/// payloads, which matters because the whole payload is hashed on every
/// load. The xor/odd-multiply round is bijective in the lane, so any
/// single-lane corruption (in particular any single bit flip) is always
/// detected. Distinct from plain [`fnv1a64`] — the lane width is part of
/// the format.
pub fn fnv1a64x8(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut lanes = bytes.chunks_exact(8);
    for lane in &mut lanes {
        h ^= u64::from_le_bytes(lane.try_into().expect("8-byte lane"));
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &b in lanes.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An append-only byte buffer with fixed-width little-endian primitives.
#[derive(Debug, Default)]
pub struct Writer {
    /// The accumulated bytes.
    pub buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length/count as a `u64`.
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A cursor over a byte slice whose every read is bounds-checked; an
/// overrun or a malformed primitive returns a description instead of
/// panicking or yielding garbage.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

// `len` here is "read a length prefix", not a collection length, so the
// usual `is_empty` pairing does not apply.
#[allow(clippy::len_without_is_empty)]
impl<'a> Reader<'a> {
    /// A reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "payload overrun: wanted {n} byte(s), {} left",
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length/count. Rejects counts that could not possibly fit in
    /// the remaining payload (one byte per element minimum), so a
    /// corrupted count cannot drive a giant allocation.
    pub fn len(&mut self) -> Result<usize, String> {
        let v = self.u64()?;
        let v = usize::try_from(v).map_err(|_| format!("count {v} exceeds address space"))?;
        if v > self.remaining() {
            return Err(format!(
                "count {v} exceeds the {} remaining payload byte(s)",
                self.remaining()
            ));
        }
        Ok(v)
    }

    /// Reads a one-byte bool; anything other than 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("bad bool byte {b}")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, String> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 in string".to_string())
    }

    /// Consumes and returns every byte not yet read. Used to carve a
    /// trailing section out of the payload without decoding it.
    pub fn rest(self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Succeeds only if every byte was consumed: trailing garbage after a
    /// well-formed payload is a malformed snapshot, not padding.
    pub fn finish(self) -> Result<(), String> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(format!(
                "{} trailing byte(s) after payload",
                self.remaining()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv1a64x8_lane_behavior() {
        // Sub-lane inputs fall through to the byte-wise rounds and agree
        // with plain FNV-1a.
        assert_eq!(fnv1a64x8(b""), fnv1a64(b""));
        assert_eq!(fnv1a64x8(b"foobar"), fnv1a64(b"foobar"));
        // At and beyond one lane the functions intentionally diverge.
        assert_ne!(fnv1a64x8(b"12345678"), fnv1a64(b"12345678"));
        // One full lane equals one absorb round: (basis ^ lane) * prime.
        let lane = u64::from_le_bytes(*b"12345678");
        assert_eq!(
            fnv1a64x8(b"12345678"),
            (0xcbf2_9ce4_8422_2325u64 ^ lane).wrapping_mul(0x0000_0100_0000_01b3)
        );
        // Any single bit flip changes the checksum.
        let mut buf = b"guarded tgd snapshot payload!".to_vec();
        let h = fnv1a64x8(&buf);
        for i in 0..buf.len() {
            buf[i] ^= 0x10;
            assert_ne!(fnv1a64x8(&buf), h, "flip at byte {i} undetected");
            buf[i] ^= 0x10;
        }
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(65534);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.bool(true);
        w.str("chase ⊥ fixpoint");
        w.len(3);
        let mut r = Reader::new(&w.buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65534);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "chase ⊥ fixpoint");
        assert_eq!(r.u64().unwrap(), 3);
        r.finish().unwrap();
    }

    #[test]
    fn reads_fail_closed() {
        let mut r = Reader::new(&[1, 0]);
        assert!(r.u32().unwrap_err().contains("overrun"));
        // The failed read consumed nothing; smaller reads still work.
        assert_eq!(r.u16().unwrap(), 1);
        let mut r = Reader::new(&[2]);
        assert!(r.bool().unwrap_err().contains("bad bool"));
        // A count larger than the remaining payload is rejected before any
        // allocation happens.
        let mut w = Writer::new();
        w.u64(1 << 40);
        let mut r = Reader::new(&w.buf);
        assert!(r.len().unwrap_err().contains("exceeds"));
        // Non-UTF-8 string bytes are malformed, not lossily decoded.
        let mut w = Writer::new();
        w.len(2);
        w.u8(0xff);
        w.u8(0xfe);
        assert!(Reader::new(&w.buf).str().unwrap_err().contains("UTF-8"));
        // Trailing bytes are an error.
        assert!(Reader::new(&[0]).finish().unwrap_err().contains("trailing"));
    }
}
