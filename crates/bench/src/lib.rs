//! Workload generators and the experiment harness that reproduces the
//! paper's complexity shapes (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured).

pub mod experiments;
pub mod harness;
pub mod ingest;
pub mod json;
pub mod kernel;
pub mod serve;
pub mod trace;
pub mod wcoj;
pub mod workloads;

pub use experiments::{all_experiments, run_experiment, ExperimentTable};
pub use ingest::{ingest_benchmark, ingest_json, ingest_smoke, IngestMetric};
pub use json::tables_to_json;
pub use kernel::{kernel_benchmark, kernel_json, KernelMetric};
pub use serve::{serve_benchmark, serve_json, ServeMetric};
pub use trace::{trace_all, trace_json, TracedExperiment};
pub use wcoj::{wcoj_benchmark, wcoj_json, WcojMetric};
