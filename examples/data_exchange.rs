//! Data exchange with the chase: source-to-target TGDs materialize a
//! target instance; certain answers over the target are computed exactly
//! as OMQ answers (Fagin et al.'s classic setting [22], which the paper's
//! chase machinery generalizes).
//!
//! Run with: `cargo run --example data_exchange`

use gtgd::chase::{parse_tgds, satisfies_all, ChaseRunner};
use gtgd::data::{GroundAtom, Instance};
use gtgd::omq::{evaluate_omq, EvalConfig, Omq};
use gtgd::query::parse_ucq;

fn main() {
    // Source schema: Flight(src, dst, airline); Airline(name, country).
    let source = Instance::from_atoms([
        GroundAtom::named("Flight", &["scl", "lhr", "latam"]),
        GroundAtom::named("Flight", &["lhr", "edi", "loganair"]),
        GroundAtom::named("Airline", &["latam", "chile"]),
        GroundAtom::named("Airline", &["loganair", "uk"]),
    ]);

    // Source-to-target TGDs (all weakly acyclic, so the chase terminates):
    //  * every flight becomes a Route with an invented price record;
    //  * airlines become Carriers with an invented alliance membership.
    let st_tgds = parse_tgds(
        "Flight(S, D, A) -> Route(S, D, A), Priced(S, D, P). \
         Airline(A, C) -> Carrier(A), BasedIn(A, C), MemberOf(A, G), Alliance(G)",
    )
    .expect("source-to-target TGDs parse");

    // Materialize the target: one terminating chase (the canonical
    // universal solution of data exchange), via the `ChaseRunner` facade.
    let result = ChaseRunner::new(&st_tgds).run(&source);
    assert!(result.complete, "weakly acyclic ⇒ chase terminates");
    assert!(satisfies_all(&result.instance, &st_tgds));
    println!(
        "universal solution: {} atoms ({} invented nulls)",
        result.instance.len(),
        result.instance.dom().iter().filter(|v| v.is_null()).count()
    );

    // Certain answers over the target = OMQ answers over the source.
    let q = parse_ucq("Q(S, D) :- Route(S, D, A), MemberOf(A, G), Alliance(G)").unwrap();
    let omq = Omq::full_schema(st_tgds, q);
    let answers = evaluate_omq(&omq, &source, &EvalConfig::default());
    assert!(answers.exact);
    println!("certain alliance routes:");
    let mut rows: Vec<String> = answers
        .answers
        .iter()
        .map(|t| format!("  {} → {}", t[0], t[1]))
        .collect();
    rows.sort();
    for r in &rows {
        println!("{r}");
    }
    // Both flights are certain answers: every airline is certainly in
    // *some* alliance per the TGDs, even though no alliance is named.
    assert_eq!(rows.len(), 2);

    // Nulls are not certain answers: asking *which* alliance returns none.
    let q2 = parse_ucq("Q(G) :- Alliance(G)").unwrap();
    let omq2 = Omq::full_schema(omq.sigma.clone(), q2);
    let a2 = evaluate_omq(&omq2, &source, &EvalConfig::default());
    println!("named alliances certain: {}", a2.answers.len());
    assert!(a2.answers.is_empty());
}
