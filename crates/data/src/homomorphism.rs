//! Instance-level homomorphisms.
//!
//! Per Section 2 of the paper, a homomorphism from instance `I` to instance
//! `J` is **any** function `h : dom(I) → dom(J)` with `R(h(t̄)) ∈ J` for every
//! `R(t̄) ∈ I` — constants are *not* required to map to themselves. Searching
//! for homomorphisms lives in `gtgd-query` (it is the same engine as CQ
//! evaluation); this module provides the valuation type and the checker.

use crate::instance::Instance;
use crate::value::Value;
use std::collections::HashMap;

/// A (partial) mapping of constants to constants.
pub type Valuation = HashMap<Value, Value>;

/// Checks that `h` is a homomorphism from `from` to `to`: it must be defined
/// on all of `dom(from)` and preserve every atom.
pub fn is_homomorphism(h: &Valuation, from: &Instance, to: &Instance) -> bool {
    for &v in from.dom() {
        if !h.contains_key(&v) {
            return false;
        }
    }
    from.iter().all(|a| to.contains(&a.map(|v| h[&v])))
}

/// Composes two valuations: `(g ∘ h)(x) = g(h(x))`. Values outside `g`'s
/// domain pass through unchanged, matching the paper's habit of implicitly
/// extending homomorphisms by the identity.
pub fn compose(g: &Valuation, h: &Valuation) -> Valuation {
    h.iter()
        .map(|(&x, &hx)| (x, g.get(&hx).copied().unwrap_or(hx)))
        .collect()
}

/// The identity valuation on the domain of `i`.
pub fn identity_on(i: &Instance) -> Valuation {
    i.dom().iter().map(|&v| (v, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::GroundAtom;

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    #[test]
    fn identity_is_homomorphism() {
        let i = Instance::from_atoms([GroundAtom::named("R", &["a", "b"])]);
        let h = identity_on(&i);
        assert!(is_homomorphism(&h, &i, &i));
    }

    #[test]
    fn collapsing_hom_into_loop() {
        // R(a,b) maps into R(c,c) by a ↦ c, b ↦ c.
        let from = Instance::from_atoms([GroundAtom::named("R", &["a", "b"])]);
        let to = Instance::from_atoms([GroundAtom::named("R", &["c", "c"])]);
        let h: Valuation = [(v("a"), v("c")), (v("b"), v("c"))].into_iter().collect();
        assert!(is_homomorphism(&h, &from, &to));
        // But not the other way around: R(c,c) needs a reflexive image.
        let g: Valuation = [(v("c"), v("a"))].into_iter().collect();
        assert!(!is_homomorphism(&g, &to, &from));
    }

    #[test]
    fn partial_valuation_rejected() {
        let from = Instance::from_atoms([GroundAtom::named("R", &["a", "b"])]);
        let h: Valuation = [(v("a"), v("a"))].into_iter().collect();
        assert!(!is_homomorphism(&h, &from, &from));
    }

    #[test]
    fn composition() {
        let h: Valuation = [(v("x"), v("y"))].into_iter().collect();
        let g: Valuation = [(v("y"), v("z"))].into_iter().collect();
        let gh = compose(&g, &h);
        assert_eq!(gh[&v("x")], v("z"));
    }

    #[test]
    fn composition_passes_through_unmapped() {
        let h: Valuation = [(v("x"), v("w"))].into_iter().collect();
        let g: Valuation = Valuation::new();
        assert_eq!(compose(&g, &h)[&v("x")], v("w"));
    }
}
