//! Classical (constraint-free) containment and equivalence of CQs and UCQs
//! via the Chandra–Merlin canonical-database test \[17\].

use crate::cq::{Cq, Ucq};
use crate::eval::{check_answer, check_answer_ucq};
use gtgd_data::Value;

/// Whether `q1 ⊆ q2`: every answer of `q1` is an answer of `q2` on every
/// database. Decided by evaluating `q2` over the canonical database of `q1`.
pub fn cq_contained(q1: &Cq, q2: &Cq) -> bool {
    assert_eq!(q1.arity(), q2.arity(), "containment needs equal arities");
    let (db, frozen) = q1.canonical_database();
    let answer: Vec<Value> = q1.answer_vars.iter().map(|v| frozen[v]).collect();
    check_answer(q2, &db, &answer)
}

/// Whether `q1 ≡ q2`.
pub fn cq_equivalent(q1: &Cq, q2: &Cq) -> bool {
    cq_contained(q1, q2) && cq_contained(q2, q1)
}

/// Whether `u1 ⊆ u2` for UCQs: each disjunct of `u1` must be contained in
/// the union `u2` (checked on its canonical database).
pub fn ucq_contained(u1: &Ucq, u2: &Ucq) -> bool {
    assert_eq!(u1.arity(), u2.arity(), "containment needs equal arities");
    u1.disjuncts.iter().all(|p| {
        let (db, frozen) = p.canonical_database();
        let answer: Vec<Value> = p.answer_vars.iter().map(|v| frozen[v]).collect();
        check_answer_ucq(u2, &db, &answer)
    })
}

/// Whether `u1 ≡ u2`.
pub fn ucq_equivalent(u1: &Ucq, u2: &Ucq) -> bool {
    ucq_contained(u1, u2) && ucq_contained(u2, u1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_cq, parse_ucq};

    #[test]
    fn longer_path_contained_in_shorter() {
        let p3 = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,W)").unwrap();
        let p1 = parse_cq("Q() :- E(X,Y)").unwrap();
        // p3 asks for more, so p3 ⊆ p1.
        assert!(cq_contained(&p3, &p1));
        assert!(!cq_contained(&p1, &p3));
        assert!(!cq_equivalent(&p1, &p3));
    }

    #[test]
    fn redundant_atoms_equivalent() {
        let q1 = parse_cq("Q(X) :- E(X,Y), E(X,Z)").unwrap();
        let q2 = parse_cq("Q(X) :- E(X,Y)").unwrap();
        assert!(cq_equivalent(&q1, &q2));
    }

    #[test]
    fn answer_vars_matter() {
        let q1 = parse_cq("Q(X) :- E(X,Y)").unwrap();
        let q2 = parse_cq("Q(Y) :- E(X,Y)").unwrap();
        assert!(!cq_contained(&q1, &q2));
    }

    #[test]
    fn ucq_containment_uses_the_union() {
        // A single CQ with a "don't know which" shape is contained in the
        // union but in neither disjunct alone.
        let u1 = parse_ucq("Q() :- A(X), B(X)").unwrap();
        let u2 = parse_ucq("Q() :- A(X). Q() :- B(X)").unwrap();
        assert!(ucq_contained(&u1, &u2));
        assert!(!ucq_contained(&u2, &u1));
    }

    #[test]
    fn ucq_equivalence_after_dropping_subsumed_disjunct() {
        let u1 = parse_ucq("Q() :- E(X,Y). Q() :- E(X,Y), E(Y,Z)").unwrap();
        let u2 = parse_ucq("Q() :- E(X,Y)").unwrap();
        assert!(ucq_equivalent(&u1, &u2));
    }

    #[test]
    fn triangle_vs_three_path() {
        let tri = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        let path = parse_cq("Q() :- E(X,Y), E(Y,Z)").unwrap();
        assert!(cq_contained(&tri, &path)); // triangle contains a 2-path image
        assert!(!cq_contained(&path, &tri));
    }

    #[test]
    fn constants_in_containment() {
        let q1 = parse_cq("Q() :- E(a,Y)").unwrap();
        let q2 = parse_cq("Q() :- E(X,Y)").unwrap();
        assert!(cq_contained(&q1, &q2));
        assert!(!cq_contained(&q2, &q1));
    }
}
