//! `gtgd` — evaluate a query script open- or closed-world.
//!
//! ```text
//! gtgd script.gtgd         # evaluate a script file
//! gtgd -                   # read the script from stdin
//! ```
//!
//! See `gtgd::script` for the script format.

use gtgd::script::{eval_script, Mode};
use std::io::Read;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: gtgd <script-file | ->");
        std::process::exit(2);
    });
    let src = if arg == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        std::fs::read_to_string(&arg).unwrap_or_else(|e| {
            eprintln!("cannot read {arg}: {e}");
            std::process::exit(2);
        })
    };
    match eval_script(&src) {
        Ok(out) => {
            let mode = match out.mode {
                Mode::Open => "open-world (OMQ)",
                Mode::Closed => "closed-world (CQS)",
            };
            println!(
                "{mode}; {} answer(s); exact = {}",
                out.answers.len(),
                out.exact
            );
            for a in &out.answers {
                println!("  ({a})");
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
