//! The paper's worked examples, verified end to end.

use gtgd::chase::parse_tgds;
use gtgd::data::{GroundAtom, Instance, Schema};
use gtgd::omq::approx::{omq_ucqk_equivalent, GroundingPolicy};
use gtgd::omq::{evaluate_omq, EvalConfig, Omq};
use gtgd::query::{
    core_of, eval::holds_injectively_only, holds_boolean, parse_cq, parse_ucq, tw::cq_treewidth,
};

fn cfg() -> EvalConfig {
    EvalConfig::default()
}

/// Example 4.4, first part: the ontology Σ = {R2(x) → R4(x)} makes the
/// treewidth-2 core q equivalent to a treewidth-1 OMQ.
#[test]
fn example_4_4_ontology_impact() {
    let q =
        parse_ucq("Q() :- P(X2,X1), P(X4,X1), P(X2,X3), P(X4,X3), R1(X1), R2(X2), R3(X3), R4(X4)")
            .unwrap();
    // q is a core from CQ_2 (as stated in the paper).
    let cq = &q.disjuncts[0];
    assert_eq!(core_of(cq).atom_count(), cq.atom_count());
    assert_eq!(cq_treewidth(cq), 2);

    let sigma = parse_tgds("R2(X) -> R4(X)").unwrap();
    let q1 = Omq::full_schema(sigma, q.clone());
    let (verdict, witness) = omq_ucqk_equivalent(&q1, 1, &GroundingPolicy::default(), &cfg());
    assert!(verdict.holds, "Q1 ∈ (G, UCQ)≡1");
    // The paper's explicit witness q′:
    let q_prime = parse_ucq("Q() :- P(X2,X1), P(X2,X3), R1(X1), R2(X2), R3(X3)").unwrap();
    let explicit = Omq::full_schema(q1.sigma.clone(), q_prime);
    let c1 = gtgd::omq::containment::omq_contained_same_sigma(&q1, &explicit, &cfg());
    let c2 = gtgd::omq::containment::omq_contained_same_sigma(&explicit, &q1, &cfg());
    assert!(c1.holds && c2.holds, "Q1 ≡ (S, Σ, q′)");
    let _ = witness;
}

/// Example 4.4, second part: the data schema matters. With full data schema
/// and Σ′ = {S(x) → R1(x), S(x) → R3(x)}, Q2 is *not* UCQ_1-equivalent; and
/// the paper's q″ behaves like Q2 on databases without R1.
#[test]
fn example_4_4_data_schema_impact() {
    let q =
        parse_ucq("Q() :- P(X2,X1), P(X4,X1), P(X2,X3), P(X4,X3), R1(X1), R2(X2), R3(X3), R4(X4)")
            .unwrap();
    let sigma = parse_tgds("S(X) -> R1(X). S(X) -> R3(X)").unwrap();
    let q2_full = Omq::full_schema(sigma.clone(), q.clone());
    let (verdict, _) = omq_ucqk_equivalent(&q2_full, 1, &GroundingPolicy::default(), &cfg());
    assert!(verdict.exact);
    assert!(
        !verdict.holds,
        "Q2 with full data schema is not in (G,UCQ)≡1"
    );

    // With R1 omitted from the data signature, the paper's q″ agrees with
    // Q2 on S-databases. (Our containment test is conservative on
    // restricted schemas, so we verify behavioral agreement directly.)
    let s = Schema::from_pairs([("S", 1), ("P", 2), ("R2", 1), ("R3", 1), ("R4", 1)]);
    let q2 = Omq::new(s.clone(), sigma.clone(), q).unwrap();
    let q_pp = parse_ucq("Q() :- P(X2,X1), P(X4,X1), R1(X1), R2(X2), R3(X1), R4(X4)").unwrap();
    let q2_pp = Omq::new(s, sigma, q_pp).unwrap();
    // Behavioral agreement on a family of S-databases.
    for variant in 0..4u32 {
        let mut atoms = vec![
            GroundAtom::named("P", &["b", "a"]),
            GroundAtom::named("P", &["d", "a"]),
            GroundAtom::named("R2", &["b"]),
            GroundAtom::named("R4", &["d"]),
        ];
        if variant & 1 == 1 {
            atoms.push(GroundAtom::named("S", &["a"]));
        }
        if variant & 2 == 2 {
            atoms.push(GroundAtom::named("P", &["b", "c"]));
            atoms.push(GroundAtom::named("R3", &["c"]));
            atoms.push(GroundAtom::named("S", &["c"]));
        }
        let db = Instance::from_atoms(atoms);
        let a1 = evaluate_omq(&q2, &db, &cfg());
        let a2 = evaluate_omq(&q2_pp, &db, &cfg());
        assert!(a1.exact && a2.exact);
        assert_eq!(
            a1.answers, a2.answers,
            "Q2 and (S, Σ′, q″) agree on S-databases (variant {variant})"
        );
    }
}

/// Example 6.2: the 3×3 grid with reflexive loops in the rightmost column
/// satisfies the 3×4-grid query, but only through non-injective matches.
#[test]
fn example_6_2_loops_satisfy_grid() {
    // q: the 3x4 grid with X (horizontal, i-direction) and Y (vertical).
    let mut atoms = Vec::new();
    for i in 1..=3 {
        for j in 1..=3 {
            atoms.push(format!("X(V{i}_{j}, V{}_{j})", i + 1));
        }
    }
    for i in 1..=4 {
        for j in 1..=2 {
            atoms.push(format!("Y(V{i}_{j}, V{i}_{})", j + 1));
        }
    }
    let q = parse_cq(&format!("Q() :- {}", atoms.join(", "))).unwrap();
    // D0: 3x3 grid + X-loops in the rightmost column (paper's a_{3,j}).
    let mut d0_atoms = Vec::new();
    for i in 1..=2 {
        for j in 1..=3 {
            d0_atoms.push(GroundAtom::named(
                "X",
                &[&format!("a{i}_{j}"), &format!("a{}_{j}", i + 1)],
            ));
        }
    }
    for i in 1..=3 {
        for j in 1..=2 {
            d0_atoms.push(GroundAtom::named(
                "Y",
                &[&format!("a{i}_{j}"), &format!("a{i}_{}", j + 1)],
            ));
        }
    }
    for j in 1..=3 {
        d0_atoms.push(GroundAtom::named(
            "X",
            &[&format!("a3_{j}"), &format!("a3_{j}")],
        ));
    }
    let d0 = Instance::from_atoms(d0_atoms);
    assert!(holds_boolean(&q, &d0), "D0 |= Q via the loops");
    assert!(
        !holds_injectively_only(&q, &d0, &[]),
        "every witnessing match collapses x3,j with x4,j"
    );
}

/// Appendix C.5's regime guard: for k < ar(T) − 1 the approximation is
/// rejected rather than silently wrong.
#[test]
fn appendix_c5_low_k_regime_rejected() {
    let sigma = parse_tgds("T1(X,Y,Z) -> G(X,Y,Z,U,V,W)").unwrap();
    let q = Omq::full_schema(sigma, parse_ucq("Q() :- T1(X,Y,Z)").unwrap());
    let r = std::panic::catch_unwind(|| {
        omq_ucqk_equivalent(&q, 1, &GroundingPolicy::default(), &cfg())
    });
    assert!(r.is_err(), "k = 1 < ar(T) − 1 = 5 must be rejected");
}

/// Closing the loop with the paper's DL discussion: Example 4.4's ontology
/// `R2 ⊑ R4` is an ELHI⊥ axiom, and the DL front-end feeds the same
/// semantic-treewidth machinery.
#[test]
fn dl_ontology_drives_semantic_treewidth() {
    use gtgd::chase::parse_dl_ontology;
    use gtgd::omq::approx::{omq_ucqk_equivalent, GroundingPolicy};
    let sigma = parse_dl_ontology("R2 < R4").unwrap();
    let q =
        parse_ucq("Q() :- P(X2,X1), P(X4,X1), P(X2,X3), P(X4,X3), R1(X1), R2(X2), R3(X3), R4(X4)")
            .unwrap();
    let omq = Omq::full_schema(sigma, q);
    let (verdict, witness) = omq_ucqk_equivalent(&omq, 1, &GroundingPolicy::default(), &cfg());
    assert!(verdict.holds, "the DL axiom lowers the semantic treewidth");
    assert!(gtgd::query::tw::ucq_treewidth(&witness.unwrap().query) <= 1);
}

/// Example 6.3 / D.9: diversification untangles a grid encoded through
/// ternary atoms sharing one constant.
#[test]
fn example_6_3_diversification() {
    let sigma = parse_tgds("Xp(X,Y,Z) -> X2(X,Y). Yp(X,Y,Z) -> Y2(X,Y)").unwrap();
    // D0: a 2×2 grid in ternary encoding, all third positions = b.
    let d0 = Instance::from_atoms([
        GroundAtom::named("Xp", &["a11", "a12", "b"]),
        GroundAtom::named("Xp", &["a21", "a22", "b"]),
        GroundAtom::named("Yp", &["a11", "a21", "b"]),
        GroundAtom::named("Yp", &["a12", "a22", "b"]),
    ]);
    let q = Omq::full_schema(
        sigma,
        parse_ucq("Q() :- X2(A,B), X2(C,D), Y2(A,C), Y2(B,D)").unwrap(),
    );
    let test = |cand: &Instance| {
        let (holds, exact) = gtgd::omq::check_omq(&q, cand, &[], &cfg());
        holds && exact
    };
    let result = gtgd::omq::diversify_maximally(&d0, &[], test);
    assert!(result.fresh_constants_isolated());
    // The third positions all became fresh isolated constants (the paper's
    // preferable D1), while the query still holds.
    let b = gtgd::data::Value::named("b");
    assert!(
        result.instance.iter().filter(|a| a.mentions(b)).count() <= 1,
        "the tangle constant was untangled"
    );
    assert!(test(&result.instance));
}
