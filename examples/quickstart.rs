//! Quickstart: define a database, a guarded ontology, and an
//! ontology-mediated query; get certain answers open-world.
//!
//! Direct query evaluation goes through the [`Engine`] facade; chase
//! materialization goes through the [`ChaseRunner`] facade. The OMQ
//! pipeline (`evaluate_omq`) composes both internally.
//!
//! Run with: `cargo run --example quickstart`

use gtgd::chase::{parse_tgds, ChaseBudget, ChaseRunner};
use gtgd::data::{GroundAtom, Instance};
use gtgd::omq::{evaluate_omq, EvalConfig, Omq};
use gtgd::query::{parse_cq, parse_ucq, Engine};

fn main() {
    // A tiny HR database: two employees, one department fact.
    let db = Instance::from_atoms([
        GroundAtom::named("Emp", &["ann"]),
        GroundAtom::named("Emp", &["bob"]),
        GroundAtom::named("WorksIn", &["ann", "sales"]),
    ]);

    // A guarded ontology: every employee works somewhere; every workplace
    // is a department; departments have managers who are employees.
    let sigma = parse_tgds(
        "Emp(X) -> WorksIn(X,D). \
         WorksIn(X,D) -> Dept(D). \
         Dept(D) -> HasMgr(D,M), Emp(M)",
    )
    .expect("ontology parses");

    // The actual query: who works in a managed department?
    let cq = parse_cq("Q(X) :- WorksIn(X,D), HasMgr(D,M)").expect("query parses");

    // Closed-world, the database alone answers nothing: no HasMgr fact
    // exists. `Engine::prepare` is the evaluation entry point.
    let closed = Engine::prepare(&cq).answers(&db);
    println!("closed-world answers: {}", closed.len());
    assert!(closed.is_empty());

    // Open-world, the ontology fills the gaps: certain answers of the OMQ.
    let omq = Omq::full_schema(
        sigma.clone(),
        parse_ucq("Q(X) :- WorksIn(X,D), HasMgr(D,M)").unwrap(),
    );
    let result = evaluate_omq(&omq, &db, &EvalConfig::default());

    println!("certain answers (exact = {}):", result.exact);
    let mut answers: Vec<String> = result
        .answers
        .iter()
        .map(|t| {
            t.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    answers.sort();
    for a in &answers {
        println!("  Q({a})");
    }
    // Both ann and bob are certain answers: the ontology guarantees every
    // employee a department with a manager, even though the database never
    // says so explicitly.
    assert_eq!(answers, vec!["ann", "bob"]);

    // Under the hood those answers come from the chase. `ChaseRunner` is
    // the facade over the chase engines — this ontology's oblivious chase
    // is infinite, so materialize a bounded prefix and query it directly.
    let prefix = ChaseRunner::new(&sigma)
        .budget(ChaseBudget::levels(3))
        .run(&db);
    let over_prefix = Engine::prepare(&cq).answers(&prefix.instance);
    println!(
        "chase prefix to level 3: {} atoms, {} answers over it",
        prefix.instance.len(),
        over_prefix.len()
    );
    assert!(over_prefix.len() >= 2);
}
