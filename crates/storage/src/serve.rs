//! `gtgd serve` — a long-lived daemon over one snapshot: load once, then
//! answer queries with the chase, the index builds, and the plan
//! compilation all amortized to zero on the hot path.
//!
//! # Protocol
//!
//! Line-delimited JSON over TCP; every request and response is one flat
//! JSON object with string values (hand-rolled, like every other JSON
//! surface in this workspace — no dependencies). Requests carry an
//! `"op"`:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"query","q":"Q(X) :- Emp(X)"}
//! {"op":"insert","atom":"Emp(carol)"}
//! {"op":"retract","atom":"Emp(ann)"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"` (`"true"`/`"false"`); failures carry
//! `"error"`. Query answers are the **certain** (null-free) rows, sorted,
//! rendered with values tab-separated and rows newline-separated inside
//! one JSON string — the same open-world semantics as a `--maintain`
//! script run.
//!
//! # Consistency
//!
//! The daemon keeps the published fixpoint behind `RwLock<Arc<_>>`: the
//! snapshot as loaded (fired set frozen) until the first write, the
//! thawed [`MaintainedInstance`] afterwards. Readers clone the `Arc` and
//! evaluate entirely lock-free on their private handle; a query never
//! blocks a write and never observes a half-applied one. Writers
//! serialize on a gate mutex, thaw or clone the current state, apply the
//! delta chase / DRed retraction to the clone, persist
//! the new snapshot (temp file + atomic rename), and only then swap the
//! `Arc` — so the on-disk snapshot is never *ahead* of what readers can
//! see by more than the in-flight write, and a crash leaves a snapshot
//! equal to some prefix of the acknowledged writes. Prepared plans are
//! instance-independent, so the [`PlanCache`] survives writes untouched.

use crate::snapshot::{load_snapshot, save_snapshot, LoadedSnapshot, SnapshotError};
use gtgd_chase::{MaintainedInstance, Tgd};
use gtgd_data::{parse_fact, Instance, Value};
use gtgd_query::PlanCache;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

// ---------------------------------------------------------------------------
// Flat JSON (the workspace convention: hand-rolled, no dependencies)
// ---------------------------------------------------------------------------

/// Escapes `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `fields` as one flat JSON object with string values.
pub fn flat_object(fields: &[(&str, &str)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(k));
        out.push_str("\":\"");
        out.push_str(&json_escape(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Parses one flat JSON object whose values are all strings — the only
/// shape the protocol uses. Fail-closed: anything else is an error.
pub fn parse_flat_object(src: &str) -> Result<HashMap<String, String>, String> {
    let mut chars = src.trim().chars().peekable();
    let mut out = HashMap::new();
    let expect = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>, want: char| {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        match chars.next() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(format!("expected '{want}', found '{c}'")),
            None => Err(format!("expected '{want}', found end of input")),
        }
    };
    let string = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>| -> Result<String, String> {
        expect(chars, '"')?;
        let mut s = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated string".to_owned()),
                Some('"') => return Ok(s),
                Some('\\') => match chars.next() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('u') => {
                        let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                        if hex.len() != 4 {
                            return Err("short \\u escape".to_owned());
                        }
                        let cp = u32::from_str_radix(&hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        s.push(char::from_u32(cp).ok_or("\\u escape is not a scalar value")?);
                    }
                    Some(c) => return Err(format!("bad escape '\\{c}'")),
                    None => return Err("unterminated escape".to_owned()),
                },
                Some(c) => s.push(c),
            }
        }
    };
    expect(&mut chars, '{')?;
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            let key = string(&mut chars)?;
            expect(&mut chars, ':')?;
            let value = string(&mut chars)?;
            out.insert(key, value);
            while chars.peek().is_some_and(|c| c.is_whitespace()) {
                chars.next();
            }
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                Some(c) => return Err(format!("expected ',' or '}}', found '{c}'")),
                None => return Err("unterminated object".to_owned()),
            }
        }
    }
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
    if let Some(c) = chars.next() {
        return Err(format!("trailing input after object: '{c}'"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// What the daemon publishes: the snapshot exactly as loaded until the
/// first write (queries only need the instance, so the fired set stays
/// frozen and startup is pure sequential load), and the thawed maintained
/// fixpoint from the first write on. Cloning clones an `Arc` either way.
#[derive(Clone)]
enum ServedState {
    /// As loaded; no write has happened yet.
    Frozen(Arc<LoadedSnapshot>),
    /// Thawed by a write; successors are built by cloning.
    Live(Arc<MaintainedInstance>),
}

impl ServedState {
    fn instance(&self) -> &Instance {
        match self {
            ServedState::Frozen(s) => s.instance(),
            ServedState::Live(m) => m.instance(),
        }
    }

    fn complete(&self) -> bool {
        match self {
            ServedState::Frozen(s) => s.complete(),
            ServedState::Live(m) => m.complete(),
        }
    }
}

struct Shared {
    /// The published fixpoint. Readers clone the state (one brief
    /// read-lock hold, an `Arc` bump) and evaluate lock-free; writers
    /// build a successor and swap it in.
    state: RwLock<ServedState>,
    /// Serializes writers so each successor is built from the latest
    /// published state.
    write_gate: Mutex<()>,
    /// Warm compiled plans, keyed by normalized query text. Never
    /// invalidated: preparation is instance-independent.
    plans: PlanCache,
    tgds: Vec<Tgd>,
    snapshot_path: PathBuf,
    addr: SocketAddr,
    shutdown: AtomicBool,
}

/// The serve daemon: one snapshot, one listener, thread-per-connection.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Loads the snapshot at `snapshot_path` and binds `addr` (use port 0
    /// for an OS-assigned port). The daemon does not serve until
    /// [`run`](Server::run).
    pub fn start(snapshot_path: PathBuf, addr: &str) -> Result<Server, SnapshotError> {
        let loaded = load_snapshot(&snapshot_path)?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let tgds = loaded.tgds.clone();
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                state: RwLock::new(ServedState::Frozen(Arc::new(loaded))),
                write_gate: Mutex::new(()),
                plans: PlanCache::new(),
                tgds,
                snapshot_path,
                addr,
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Accepts connections until a client sends `{"op":"shutdown"}`. Each
    /// connection gets its own thread and may pipeline any number of
    /// requests.
    pub fn run(self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            // Every exchange is one small line each way; without nodelay,
            // Nagle + delayed ACK turn the round trip into tens of ms.
            let _ = stream.set_nodelay(true);
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handle_connection(stream, &shared));
        }
        Ok(())
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = handle_request(shared, &line);
        if writeln!(writer, "{response}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if stop {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop so `run` observes the flag.
            let _ = TcpStream::connect(shared.addr);
            break;
        }
    }
}

fn err_response(msg: &str) -> String {
    flat_object(&[("ok", "false"), ("error", msg)])
}

/// Dispatches one request line; returns the response line and whether the
/// daemon should stop accepting.
fn handle_request(shared: &Shared, line: &str) -> (String, bool) {
    let fields = match parse_flat_object(line) {
        Ok(f) => f,
        Err(e) => return (err_response(&format!("bad request: {e}")), false),
    };
    match fields.get("op").map(String::as_str) {
        Some("ping") => (flat_object(&[("ok", "true"), ("pong", "true")]), false),
        Some("query") => {
            let Some(q) = fields.get("q") else {
                return (err_response("query needs a \"q\" field"), false);
            };
            let prepared = match shared.plans.get_or_prepare(q) {
                Ok(p) => p,
                Err(e) => return (err_response(&format!("parse error: {e}")), false),
            };
            // Lock-free evaluation on a private handle to the published
            // fixpoint: the read lock is held only for the Arc clone.
            let state = shared.state.read().expect("state lock").clone();
            let mut rows: Vec<Vec<Value>> = prepared
                .answers(state.instance())
                .into_iter()
                .filter(|row| row.iter().all(|v| v.is_named()))
                .collect();
            rows.sort();
            let rendered = rows
                .iter()
                .map(|row| {
                    row.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("\t")
                })
                .collect::<Vec<_>>()
                .join("\n");
            let count = rows.len().to_string();
            let arity = prepared.arity().to_string();
            let exact = state.complete().to_string();
            (
                flat_object(&[
                    ("ok", "true"),
                    ("answers", &rendered),
                    ("count", &count),
                    ("arity", &arity),
                    ("exact", &exact),
                ]),
                false,
            )
        }
        Some(op @ ("insert" | "retract")) => {
            let Some(text) = fields.get("atom") else {
                return (
                    err_response(&format!("{op} needs an \"atom\" field")),
                    false,
                );
            };
            let atom = match parse_fact(text) {
                Ok(a) => a,
                Err(e) => return (err_response(&format!("bad atom: {e}")), false),
            };
            // Writers serialize here; readers are never blocked — they
            // keep evaluating against the previous Arc until the swap.
            // The first write thaws the frozen snapshot's fired set (the
            // one-time dependency-index rebuild deferred off the load and
            // query paths).
            let _gate = shared.write_gate.lock().expect("write gate");
            let current = shared.state.read().expect("state lock").clone();
            let mut next = match &current {
                ServedState::Frozen(snap) => match snap.to_maintained() {
                    Ok(m) => m,
                    Err(e) => return (err_response(&format!("snapshot thaw failed: {e}")), false),
                },
                ServedState::Live(m) => (**m).clone(),
            };
            let report = if op == "insert" {
                next.insert([atom])
            } else {
                next.retract([atom])
            };
            // Persist before publishing: an acknowledged write is on disk.
            if let Err(e) = save_snapshot(&shared.snapshot_path, &shared.tgds, &next) {
                return (err_response(&format!("snapshot write failed: {e}")), false);
            }
            let atoms = next.instance().len().to_string();
            *shared.state.write().expect("state lock") = ServedState::Live(Arc::new(next));
            (
                flat_object(&[
                    ("ok", "true"),
                    ("triggers_fired", &report.triggers_fired.to_string()),
                    ("atoms_added", &report.atoms_added.to_string()),
                    ("atoms_removed", &report.atoms_removed.to_string()),
                    ("atoms", &atoms),
                ]),
                false,
            )
        }
        Some("stats") => {
            let state = shared.state.read().expect("state lock").clone();
            let (hits, misses) = shared.plans.stats();
            (
                flat_object(&[
                    ("ok", "true"),
                    ("atoms", &state.instance().len().to_string()),
                    ("complete", &state.complete().to_string()),
                    ("plans", &shared.plans.len().to_string()),
                    ("plan_hits", &hits.to_string()),
                    ("plan_misses", &misses.to_string()),
                ]),
                false,
            )
        }
        Some("shutdown") => (flat_object(&[("ok", "true"), ("stopping", "true")]), true),
        Some(op) => (err_response(&format!("unknown op \"{op}\"")), false),
        None => (err_response("missing \"op\" field"), false),
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A blocking client for the serve protocol; one request in flight at a
/// time per client, any number of clients per daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        // One small line each way per request: without nodelay, Nagle +
        // delayed ACK add tens of ms to every round trip.
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// One request/response round trip.
    pub fn request(&mut self, fields: &[(&str, &str)]) -> io::Result<HashMap<String, String>> {
        writeln!(self.writer, "{}", flat_object(fields))?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        parse_flat_object(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    fn checked(&mut self, fields: &[(&str, &str)]) -> io::Result<HashMap<String, String>> {
        let resp = self.request(fields)?;
        if resp.get("ok").map(String::as_str) == Some("true") {
            Ok(resp)
        } else {
            let msg = resp
                .get("error")
                .cloned()
                .unwrap_or_else(|| "unknown daemon error".to_owned());
            Err(io::Error::other(msg))
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        self.checked(&[("op", "ping")]).map(|_| ())
    }

    /// Evaluates a query; rows of rendered constants, sorted.
    pub fn query(&mut self, q: &str) -> io::Result<Vec<Vec<String>>> {
        let resp = self.checked(&[("op", "query"), ("q", q)])?;
        let answers = resp.get("answers").map(String::as_str).unwrap_or("");
        if answers.is_empty() {
            return Ok(Vec::new());
        }
        Ok(answers
            .split('\n')
            .map(|row| row.split('\t').map(str::to_owned).collect())
            .collect())
    }

    /// Asserts one fact (delta chase + snapshot rewrite).
    pub fn insert(&mut self, fact: &str) -> io::Result<HashMap<String, String>> {
        self.checked(&[("op", "insert"), ("atom", fact)])
    }

    /// Retracts one fact (DRed + snapshot rewrite).
    pub fn retract(&mut self, fact: &str) -> io::Result<HashMap<String, String>> {
        self.checked(&[("op", "retract"), ("atom", fact)])
    }

    /// Daemon statistics (atom count, plan-cache hits/misses, ...).
    pub fn stats(&mut self) -> io::Result<HashMap<String, String>> {
        self.checked(&[("op", "stats")])
    }

    /// Asks the daemon to stop accepting connections.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.checked(&[("op", "shutdown")]).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::save_snapshot;
    use gtgd_chase::{parse_tgds, ChaseBudget, ChaseRunner};
    use gtgd_data::{GroundAtom, Instance};
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "gtgd-serve-test-{}-{}-{tag}.gsnap",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn json_escape_and_parse_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let line = flat_object(&[("k", nasty), ("op", "ping")]);
        let parsed = parse_flat_object(&line).unwrap();
        assert_eq!(parsed["k"], nasty);
        assert_eq!(parsed["op"], "ping");
        assert_eq!(parse_flat_object("{}").unwrap().len(), 0);
        assert!(parse_flat_object("{\"a\":\"b\"").is_err());
        assert!(parse_flat_object("{\"a\":\"b\"} x").is_err());
        assert!(parse_flat_object("[\"a\"]").is_err());
        assert!(parse_flat_object("{\"a\":1}").is_err());
    }

    #[test]
    fn daemon_serves_queries_writes_and_survives_restart() {
        let tgds = parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D)").unwrap();
        let db = Instance::from_atoms([
            GroundAtom::named("Emp", &["srv_ann"]),
            GroundAtom::named("Emp", &["srv_bob"]),
        ]);
        let m = ChaseRunner::new(&tgds)
            .budget(ChaseBudget::atoms(1_000_000))
            .maintain(&db);
        let path = temp_path("daemon");
        save_snapshot(&path, &tgds, &m).unwrap();

        let server = Server::start(path.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());

        let mut c = Client::connect(addr).unwrap();
        c.ping().unwrap();
        let rows = c.query("Q(X) :- Emp(X)").unwrap();
        assert_eq!(
            rows,
            vec![vec!["srv_ann".to_owned()], vec!["srv_bob".to_owned()]]
        );
        // Second arrival of the same query (modulo whitespace) hits the
        // plan cache.
        c.query("Q(X)   :-   Emp(X)").unwrap();
        let stats = c.stats().unwrap();
        assert_eq!(stats["plan_misses"], "1");
        assert_eq!(stats["plan_hits"], "1");
        // Nulls never leak: every WorksIn department is chase-invented.
        assert!(c.query("Q(D) :- WorksIn(X, D)").unwrap().is_empty());

        // Writes run the delta chase / DRed and rewrite the snapshot.
        let rep = c.insert("Emp(srv_carol)").unwrap();
        assert!(rep["atoms_added"].parse::<usize>().unwrap() >= 1);
        c.retract("Emp(srv_ann)").unwrap();
        let rows = c.query("Q(X) :- Emp(X)").unwrap();
        assert_eq!(
            rows,
            vec![vec!["srv_bob".to_owned()], vec!["srv_carol".to_owned()]]
        );

        // Malformed traffic gets an error response, not a hangup.
        let resp = c.request(&[("op", "query")]).unwrap();
        assert_eq!(resp["ok"], "false");
        let resp = c.request(&[("op", "nope")]).unwrap();
        assert_eq!(resp["ok"], "false");
        let resp = c
            .request(&[("op", "insert"), ("atom", "not an atom")])
            .unwrap();
        assert_eq!(resp["ok"], "false");

        c.shutdown().unwrap();
        handle.join().unwrap().unwrap();

        // The rewritten snapshot restarts with the mutations intact.
        let server = Server::start(path.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        let mut c = Client::connect(addr).unwrap();
        let rows = c.query("Q(X) :- Emp(X)").unwrap();
        assert_eq!(
            rows,
            vec![vec!["srv_bob".to_owned()], vec!["srv_carol".to_owned()]]
        );
        c.shutdown().unwrap();
        handle.join().unwrap().unwrap();
        std::fs::remove_file(&path).ok();
    }
}
