//! Differential testing of the typed chase (the Lemma A.3 engine with
//! adaptive blocking) against the plain oblivious chase: on randomized
//! guarded ontologies and databases, ground atoms and query answers must
//! agree wherever both engines are authoritative.
//!
//! Randomization is a seeded loop over [`Rng`] (the build is offline, so no
//! proptest); every TGD subset mask 0..128 is exercised with a database
//! derived from it, which covers strictly more rule combinations than the
//! sampled proptest run did.

use gtgd::chase::{chase, ground_saturation, typed_chase, ChaseBudget, DepthPolicy, Tgd};
use gtgd::data::{GroundAtom, Instance, Rng};
use gtgd::query::{evaluate_cq, parse_cq, Cq};

/// A pool of guarded rule templates over predicates A/B (unary), R/S
/// (binary). Each subset of the pool is a guarded, constant-free Σ.
fn rule_pool() -> Vec<Tgd> {
    gtgd::chase::parse_tgds(
        "A(X) -> B(X). \
         B(X) -> R(X,Y). \
         R(X,Y) -> S(Y,X). \
         R(X,Y), A(X) -> B(Y). \
         S(X,Y) -> A(X). \
         R(X,Y), B(Y) -> S(X,X). \
         B(X) -> A(X)",
    )
    .unwrap()
}

fn query_pool() -> Vec<Cq> {
    vec![
        parse_cq("Q(X) :- A(X)").unwrap(),
        parse_cq("Q(X) :- B(X)").unwrap(),
        parse_cq("Q(X) :- R(X,Y), S(Y,Z)").unwrap(),
        parse_cq("Q() :- R(X,Y), B(Y)").unwrap(),
        parse_cq("Q(X,Y) :- S(X,Y), A(X)").unwrap(),
    ]
}

/// A random database over A/R/S with a 4-element domain.
fn arb_db(rng: &mut Rng) -> Instance {
    let k = rng.range(1, 8);
    Instance::from_atoms((0..k).map(|_| {
        let kind = rng.range(0, 3);
        let (a, b) = (rng.range(0, 4), rng.range(0, 4));
        match kind {
            0 => GroundAtom::named("A", &[&format!("c{a}")]),
            1 => GroundAtom::named("R", &[&format!("c{a}"), &format!("c{b}")]),
            _ => GroundAtom::named("S", &[&format!("c{a}"), &format!("c{b}")]),
        }
    }))
}

fn sigma_for_mask(pool: &[Tgd], mask: u8) -> Vec<Tgd> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| mask >> i & 1 == 1)
        .map(|(_, t)| t.clone())
        .collect()
}

/// Ground saturation equals the ground part of a deep plain chase.
#[test]
fn ground_saturation_matches_deep_chase() {
    let pool = rule_pool();
    for mask in 0u8..128 {
        let mut rng = Rng::seed(0xD1FF ^ u64::from(mask));
        let d = arb_db(&mut rng);
        let sigma = sigma_for_mask(&pool, mask);
        let sat = ground_saturation(&d, &sigma);
        let deep = chase(&d, &sigma, &ChaseBudget::levels(7));
        // Every ground atom of the deep prefix appears in the saturation…
        for a in deep.instance.iter() {
            if a.args.iter().all(|v| d.dom_contains(*v)) {
                assert!(sat.contains(a), "missing {a} (mask {mask:#b})");
            }
        }
        // …and the saturation is sound w.r.t. the deep prefix when the
        // prefix is complete.
        if deep.complete {
            for a in sat.iter() {
                assert!(deep.instance.contains(a), "unsound {a} (mask {mask:#b})");
            }
        }
    }
}

/// Typed-chase query answers over dom(D) match a deep plain chase whenever
/// the typed chase reports saturation.
#[test]
fn typed_chase_answers_match_plain_chase() {
    let pool = rule_pool();
    for mask in 0u8..128 {
        let mut rng = Rng::seed(0x7E57 ^ u64::from(mask));
        let d = arb_db(&mut rng);
        let sigma = sigma_for_mask(&pool, mask);
        let typed = typed_chase(
            &d,
            &sigma,
            DepthPolicy::Adaptive {
                extra_levels: 4,
                max_level: 24,
            },
        );
        let deep = chase(&d, &sigma, &ChaseBudget::levels(8));
        for q in query_pool() {
            let filter = |ans: std::collections::HashSet<Vec<gtgd::data::Value>>| {
                ans.into_iter()
                    .filter(|t| t.iter().all(|v| d.dom_contains(*v)))
                    .collect::<std::collections::HashSet<_>>()
            };
            let from_typed = filter(evaluate_cq(&q, &typed.instance));
            let from_deep = filter(evaluate_cq(&q, &deep.instance));
            if typed.saturated {
                // The typed chase is authoritative: it must cover everything
                // the deep prefix finds.
                assert!(
                    from_deep.is_subset(&from_typed),
                    "typed chase missed answers for {q} (mask {mask:#b}): \
                     deep {from_deep:?} vs typed {from_typed:?}"
                );
            }
            // Soundness both ways: typed answers must come from real chase
            // atoms, so when the plain chase is complete they must appear.
            if deep.complete {
                assert!(
                    from_typed.is_subset(&from_deep),
                    "typed chase invented answers for {q} (mask {mask:#b})"
                );
            }
        }
    }
}
