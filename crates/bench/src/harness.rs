//! A minimal wall-clock bench harness (criterion replacement).
//!
//! The offline build cannot depend on criterion, and the experiment claims
//! under test are *shapes* (polynomial vs FPT vs exponential growth), not
//! microsecond-accurate point estimates. Each case warms up once, then runs
//! repeatedly inside a fixed time budget and reports the median and
//! minimum. Bench targets stay `harness = false` binaries, so
//! `cargo bench --bench e2_chase` works as before.

use std::time::{Duration, Instant};

/// Per-case time budget. Override with `GTGD_BENCH_MS` (milliseconds).
fn budget() -> Duration {
    let ms = std::env::var("GTGD_BENCH_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// Runs one bench case: warm up, measure until the budget is exhausted
/// (at least 5 and at most 200 runs), print `label  median  min  runs`.
pub fn case<T>(label: &str, mut f: impl FnMut() -> T) {
    f(); // warmup
    let mut times_ms: Vec<f64> = Vec::new();
    let start = Instant::now();
    let budget = budget();
    while (start.elapsed() < budget || times_ms.len() < 5) && times_ms.len() < 200 {
        let t = Instant::now();
        std::hint::black_box(f());
        times_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    times_ms.sort_by(f64::total_cmp);
    let median = times_ms[times_ms.len() / 2];
    let min = times_ms[0];
    println!(
        "{label:<44} median {median:10.3} ms   min {min:10.3} ms   ({} runs)",
        times_ms.len()
    );
}

/// Prints a group header, mirroring criterion's group naming in output.
pub fn group(name: &str) {
    println!("== bench group: {name} ==");
}
