//! Columnar tuple storage and sorted permutation indexes.
//!
//! The row-oriented [`crate::Instance`] indexes (`by_pred`,
//! `by_pred_pos_val`) serve point probes: "which atoms have value `v` at
//! position `pos`?". Worst-case-optimal join execution needs a different
//! access path — *ordered* iteration over a predicate's tuples under an
//! arbitrary attribute order, with logarithmic `seek`. This module provides
//! it:
//!
//! * [`PredColumns`] mirrors one predicate's tuples column-by-column, in
//!   insertion (row) order. It is maintained eagerly by
//!   [`crate::Instance::insert`] — appending a tuple is `arity` pushes.
//! * [`SortedPermutation`] is a permutation of row ids sorted
//!   lexicographically by a chosen column order (ties broken by row id, so
//!   the order is total and deterministic). It is what a trie iterator
//!   walks.
//! * [`SortedIndexCache`] builds permutations lazily on first demand and
//!   maintains them **incrementally**: when a predicate grows by an insert
//!   delta, the delta rows are sorted on their own (`O(d log d)`) and
//!   merged with the existing permutation (`O(n + d)`) — a chase that
//!   inserts a few atoms per round never pays a full `O(n log n)` re-sort.
//!   The `full_builds` / `merge_extends` counters make that contract
//!   observable (and testable).
//!
//! The cache lives behind a `RwLock` so concurrent readers (the parallel
//! chase probes one shared instance from many workers) can build or reuse
//! indexes through a shared `&Instance`.

use crate::obs;
use crate::schema::Predicate;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Columnar mirror of one predicate's tuples (at one arity): `cols[j][r]`
/// is argument `j` of the `r`-th inserted tuple. Row order is insertion
/// order, which makes row ids stable — an index built over rows `0..n`
/// stays valid when rows `n..m` are appended.
#[derive(Debug, Clone, Default)]
pub struct PredColumns {
    cols: Vec<Vec<Value>>,
    rows: usize,
}

impl PredColumns {
    /// Number of rows (tuples).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The values of column `j` (argument position `j`), in row order.
    pub fn col(&self, j: usize) -> &[Value] {
        &self.cols[j]
    }

    /// Reserves capacity for `n` further rows in every column, so a bulk
    /// load ([`crate::Instance::insert_batch`]) grows each column vector
    /// once instead of once per appended tuple.
    pub(crate) fn reserve(&mut self, n: usize) {
        for c in &mut self.cols {
            c.reserve(n);
        }
    }

    /// Appends one tuple. All tuples must share one arity (the caller keys
    /// arenas by `(predicate, arity)`).
    pub(crate) fn push(&mut self, args: &[Value]) {
        if self.cols.is_empty() && !args.is_empty() {
            self.cols = vec![Vec::new(); args.len()];
        }
        debug_assert_eq!(self.cols.len(), args.len());
        for (c, &v) in self.cols.iter_mut().zip(args) {
            c.push(v);
        }
        self.rows += 1;
    }
}

/// Row ids of one predicate sorted lexicographically by a column order,
/// ties broken by row id. `perm()[i]` is the row id of the `i`-th tuple in
/// sorted order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedPermutation {
    order: Vec<u16>,
    perm: Vec<u32>,
}

impl SortedPermutation {
    /// The column order the permutation is sorted by.
    pub fn order(&self) -> &[u16] {
        &self.order
    }

    /// The sorted row ids.
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether no rows are covered.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }
}

/// Counters and size of a [`SortedIndexCache`], for asserting the
/// incremental-maintenance contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Distinct sorted indexes currently cached.
    pub indexes: usize,
    /// How many times an index was built by a full sort (once per distinct
    /// `(predicate, arity, column order)` key, ever).
    pub full_builds: usize,
    /// How many times an index was extended by sorting only the insert
    /// delta and merging.
    pub merge_extends: usize,
}

impl IndexStats {
    /// The stats as `(metric name, value)` pairs, using the same metric
    /// vocabulary as [`crate::obs::RunReport`] — BENCH JSON, experiment
    /// tables, and run reports all read these names from one source
    /// instead of inventing ad-hoc tuple layouts.
    pub fn counters(&self) -> [(&'static str, u64); 3] {
        [
            ("index.cached", self.indexes as u64),
            (obs::Metric::IndexFullBuilds.name(), self.full_builds as u64),
            (
                obs::Metric::IndexMergeExtends.name(),
                self.merge_extends as u64,
            ),
        ]
    }
}

/// One cached sorted index in portable form, as exported for (and
/// re-installed from) a persistent snapshot: the cache key plus the sorted
/// row-id permutation. Produced by [`crate::Instance::export_sorted_indexes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexExport {
    /// The indexed predicate.
    pub predicate: Predicate,
    /// The indexed arity.
    pub arity: u16,
    /// The column order the permutation is sorted by.
    pub order: Vec<u16>,
    /// Row ids sorted lexicographically by `order`, ties by id.
    pub perm: Vec<u32>,
}

/// Cache key: `(predicate, arity, column order)`.
type IndexKey = (Predicate, u16, Vec<u16>);

/// Lazily built, incrementally maintained sorted permutation indexes, keyed
/// by `(predicate, arity, column order)`.
#[derive(Debug, Default)]
pub struct SortedIndexCache {
    map: RwLock<HashMap<IndexKey, Arc<SortedPermutation>>>,
    full_builds: AtomicUsize,
    merge_extends: AtomicUsize,
}

impl Clone for SortedIndexCache {
    fn clone(&self) -> SortedIndexCache {
        SortedIndexCache {
            map: RwLock::new(self.map.read().expect("cache lock").clone()),
            full_builds: AtomicUsize::new(self.full_builds.load(AtomicOrdering::Relaxed)),
            merge_extends: AtomicUsize::new(self.merge_extends.load(AtomicOrdering::Relaxed)),
        }
    }
}

impl SortedIndexCache {
    /// Rewrites cached permutations after rows were removed from the
    /// arenas. `row_maps` gives, per touched `(predicate, arity)`, the
    /// old→new row-id mapping (`None` = the row was deleted); indexes of
    /// untouched relations are kept as-is.
    ///
    /// Deleting rows from a sorted permutation is a *filter*: the
    /// surviving subsequence is still sorted by `(key, old id)`, and
    /// because survivors keep their relative order the old→new remap is
    /// monotone — `(key, new id)` order is identical. So no re-sort is
    /// ever needed; each touched index is rewritten in one `O(n)` pass.
    /// An index whose filtered permutation comes out empty is dropped
    /// entirely (empty permutations are deliberately uncached, so the
    /// eventual rebuild is a `full_build`, not a bogus "merge").
    ///
    /// A cached permutation may be *stale* (cover only a prefix of the
    /// pre-retraction rows). Filtering the covered prefix maps it exactly
    /// onto the new-id prefix `0..k` — the monotone remap sends survivors
    /// of old rows `0..len` to new ids `0..k` — so the later delta
    /// merge-extend contract is untouched.
    pub(crate) fn retract_remap(&self, row_maps: &HashMap<(Predicate, u16), Vec<Option<u32>>>) {
        let mut map = self.map.write().expect("cache lock");
        map.retain(|&(p, arity, _), cached| {
            let Some(row_map) = row_maps.get(&(p, arity)) else {
                return true; // untouched relation: index still valid
            };
            let filtered: Vec<u32> = cached
                .perm()
                .iter()
                .filter_map(|&r| row_map[r as usize])
                .collect();
            if filtered.is_empty() {
                return false;
            }
            *cached = Arc::new(SortedPermutation {
                order: cached.order.clone(),
                perm: filtered,
            });
            true
        });
    }

    /// Exports every cached index in portable form, deterministically
    /// ordered by `(predicate name, arity, column order)` so snapshot bytes
    /// are stable across runs (the cache map itself has hash order).
    pub(crate) fn export_entries(&self) -> Vec<IndexExport> {
        let map = self.map.read().expect("cache lock");
        let mut out: Vec<IndexExport> = map
            .iter()
            .map(|(&(p, arity, ref order), sp)| IndexExport {
                predicate: p,
                arity,
                order: order.clone(),
                perm: sp.perm().to_vec(),
            })
            .collect();
        out.sort_by(|a, b| {
            (a.predicate.name(), a.arity, &a.order).cmp(&(b.predicate.name(), b.arity, &b.order))
        });
        out
    }

    /// Re-installs exported indexes, validating each against the live
    /// arenas. An entry is installed only if it covers exactly the arena's
    /// rows, is a permutation of them, and is actually sorted under *this
    /// process's* value order — a snapshot written by a process with a
    /// different symbol-interning order can carry permutations that are no
    /// longer sorted here, and those are silently skipped (the cache just
    /// rebuilds them lazily on first demand, which is the normal cold
    /// path). Returns how many entries were installed.
    ///
    /// Installed entries count as `full_builds`: after a round trip the
    /// cache behaves — observably, via [`IndexStats`] — exactly like the
    /// cache that was saved, whose entries were each built once.
    pub(crate) fn install_entries(
        &self,
        entries: &[IndexExport],
        columns: &HashMap<(Predicate, u16), PredColumns>,
    ) -> usize {
        let mut installed = 0usize;
        let mut map = self.map.write().expect("cache lock");
        for e in entries {
            let Some(cols) = columns.get(&(e.predicate, e.arity)) else {
                continue;
            };
            let rows = cols.rows();
            if e.perm.len() != rows || rows == 0 {
                continue; // stale or empty (empty perms are never cached)
            }
            if e.order.iter().any(|&j| j as usize >= cols.cols.len()) {
                continue;
            }
            let mut seen = vec![false; rows];
            if !e.perm.iter().all(|&r| {
                let ok = (r as usize) < rows && !seen[r as usize];
                if ok {
                    seen[r as usize] = true;
                }
                ok
            }) {
                continue; // not a permutation of the arena's rows
            }
            let key_of = |r: u32| -> (Vec<Value>, u32) {
                let key = e
                    .order
                    .iter()
                    .map(|&j| cols.col(j as usize)[r as usize])
                    .collect();
                (key, r)
            };
            if !e.perm.windows(2).all(|w| key_of(w[0]) <= key_of(w[1])) {
                continue; // sorted under the writer's order, not ours
            }
            map.insert(
                (e.predicate, e.arity, e.order.clone()),
                Arc::new(SortedPermutation {
                    order: e.order.clone(),
                    perm: e.perm.clone(),
                }),
            );
            self.full_builds.fetch_add(1, AtomicOrdering::Relaxed);
            installed += 1;
        }
        installed
    }

    /// Current counters.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            indexes: self.map.read().expect("cache lock").len(),
            full_builds: self.full_builds.load(AtomicOrdering::Relaxed),
            merge_extends: self.merge_extends.load(AtomicOrdering::Relaxed),
        }
    }

    /// The permutation of `columns`' rows sorted by `order`, building it on
    /// first demand and extending it by sorted-merge when `columns` has
    /// grown since the cached build. `columns = None` (predicate absent)
    /// yields an empty, uncached permutation.
    pub fn get_or_build(
        &self,
        p: Predicate,
        arity: usize,
        order: &[u16],
        columns: Option<&PredColumns>,
    ) -> Arc<SortedPermutation> {
        let arity16 = u16::try_from(arity).expect("arity fits u16");
        let rows = columns.map_or(0, |c| c.rows());
        if rows == 0 {
            // Not cached: an empty permutation has nothing to amortize, and
            // caching it would turn the eventual first build into a "merge".
            return Arc::new(SortedPermutation {
                order: order.to_vec(),
                perm: Vec::new(),
            });
        }
        let key = (p, arity16, order.to_vec());
        let cols = columns.expect("rows > 0 implies columns");
        debug_assert!(order.iter().all(|&j| (j as usize) < arity));
        let cmp = |a: u32, b: u32| -> Ordering {
            for &j in order {
                let col = cols.col(j as usize);
                match col[a as usize].cmp(&col[b as usize]) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            a.cmp(&b)
        };
        // Build outside any lock, from a snapshot of the cached state, and
        // double-check-insert under a short write hold: concurrent readers
        // of *other* indexes never stall behind this sort, and two racing
        // builders converge on one winner (losers retry against whatever
        // the winner installed — usually a fresh cache hit).
        loop {
            let prev = self.map.read().expect("cache lock").get(&key).cloned();
            if let Some(ref c) = prev {
                if c.len() == rows {
                    return Arc::clone(c);
                }
            }
            let timer = obs::enabled().then(Instant::now);
            let (perm, extended) = match &prev {
                Some(c) => {
                    // Incremental extend: sort only the delta, then one
                    // merge pass. Delta row ids are all larger than cached
                    // ids, so the id tie-break keeps the merge
                    // deterministic.
                    let mut delta: Vec<u32> = (c.len() as u32..rows as u32).collect();
                    delta.sort_unstable_by(|&a, &b| cmp(a, b));
                    let old = c.perm();
                    let mut out: Vec<u32> = Vec::with_capacity(rows);
                    let (mut i, mut j) = (0usize, 0usize);
                    while i < old.len() && j < delta.len() {
                        if cmp(old[i], delta[j]) != Ordering::Greater {
                            out.push(old[i]);
                            i += 1;
                        } else {
                            out.push(delta[j]);
                            j += 1;
                        }
                    }
                    out.extend_from_slice(&old[i..]);
                    out.extend_from_slice(&delta[j..]);
                    (out, true)
                }
                None => {
                    let mut all: Vec<u32> = (0..rows as u32).collect();
                    all.sort_unstable_by(|&a, &b| cmp(a, b));
                    (all, false)
                }
            };
            if let Some(t0) = timer {
                obs::observe(obs::Hist::IndexBuildNs, t0.elapsed().as_nanos() as u64);
            }
            let mut map = self.map.write().expect("cache lock");
            // Double-check: another thread may have built or extended the
            // index while we sorted. Our build is valid only if the cached
            // state still matches the snapshot we built from.
            let current = map.get(&key);
            let current_len = current.map_or(0, |c| c.len());
            if current_len == rows {
                return Arc::clone(current.expect("len matched"));
            }
            if current_len != prev.as_ref().map_or(0, |c| c.len()) {
                continue; // the snapshot went stale mid-build: retry
            }
            if extended {
                self.merge_extends.fetch_add(1, AtomicOrdering::Relaxed);
                obs::count(obs::Metric::IndexMergeExtends, 1);
            } else {
                self.full_builds.fetch_add(1, AtomicOrdering::Relaxed);
                obs::count(obs::Metric::IndexFullBuilds, 1);
            }
            let built = Arc::new(SortedPermutation {
                order: order.to_vec(),
                perm,
            });
            map.insert(key, Arc::clone(&built));
            return built;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    fn columns(rows: &[&[&str]]) -> PredColumns {
        let mut pc = PredColumns::default();
        for r in rows {
            let args: Vec<Value> = r.iter().map(|s| v(s)).collect();
            pc.push(&args);
        }
        pc
    }

    fn sorted_rows(pc: &PredColumns, sp: &SortedPermutation) -> Vec<Vec<Value>> {
        sp.perm()
            .iter()
            .map(|&r| {
                sp.order()
                    .iter()
                    .map(|&j| pc.col(j as usize)[r as usize])
                    .collect()
            })
            .collect()
    }

    #[test]
    fn full_build_sorts_lexicographically() {
        let pc = columns(&[&["b", "x"], &["a", "z"], &["a", "y"], &["c", "w"]]);
        let cache = SortedIndexCache::default();
        let p = Predicate::new("R");
        let sp = cache.get_or_build(p, 2, &[0, 1], Some(&pc));
        let rows = sorted_rows(&pc, &sp);
        let mut expect = rows.clone();
        expect.sort();
        assert_eq!(rows, expect);
        assert_eq!(sp.len(), 4);
        assert_eq!(cache.stats().full_builds, 1);
        assert_eq!(cache.stats().merge_extends, 0);
        // Second demand is a cache hit: no new builds.
        let again = cache.get_or_build(p, 2, &[0, 1], Some(&pc));
        assert_eq!(again.perm(), sp.perm());
        assert_eq!(cache.stats().full_builds, 1);
    }

    #[test]
    fn reverse_order_is_a_distinct_index() {
        let pc = columns(&[&["b", "x"], &["a", "z"]]);
        let cache = SortedIndexCache::default();
        let p = Predicate::new("R");
        cache.get_or_build(p, 2, &[0, 1], Some(&pc));
        cache.get_or_build(p, 2, &[1, 0], Some(&pc));
        let s = cache.stats();
        assert_eq!(s.indexes, 2);
        assert_eq!(s.full_builds, 2);
    }

    /// Reference argsort: by key tuple, ties broken by row id. (`Value`'s
    /// `Ord` follows symbol-interning order, not string order, so tests
    /// compute expectations instead of hard-coding permutations.)
    fn naive_perm(pc: &PredColumns, order: &[u16]) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..pc.rows() as u32).collect();
        ids.sort_by_key(|&r| {
            let key: Vec<Value> = order
                .iter()
                .map(|&j| pc.col(j as usize)[r as usize])
                .collect();
            (key, r)
        });
        ids
    }

    #[test]
    fn delta_extension_merges_without_full_rebuild() {
        let mut pc = columns(&[&["d"], &["b"]]);
        let cache = SortedIndexCache::default();
        let p = Predicate::new("U");
        let first = cache.get_or_build(p, 1, &[0], Some(&pc));
        assert_eq!(first.perm(), naive_perm(&pc, &[0]));
        pc.push(&[v("a")]);
        pc.push(&[v("c")]);
        let second = cache.get_or_build(p, 1, &[0], Some(&pc));
        assert_eq!(second.perm(), naive_perm(&pc, &[0]));
        let s = cache.stats();
        assert_eq!(s.full_builds, 1);
        assert_eq!(s.merge_extends, 1);
    }

    #[test]
    fn ties_break_by_row_id() {
        let pc = columns(&[&["a", "x"], &["a", "x"], &["a", "w"]]);
        let cache = SortedIndexCache::default();
        let sp = cache.get_or_build(Predicate::new("R"), 2, &[0], Some(&pc));
        // Sorting only by column 0 leaves all keys equal: ids decide.
        assert_eq!(sp.perm(), &[0, 1, 2]);
    }

    /// Removes the given row ids from a `PredColumns`, producing the
    /// shrunk arena plus the old→new row map (test-side analogue of the
    /// rebuild `Instance::retract_atoms` performs).
    fn drop_rows(pc: &PredColumns, dead: &[u32]) -> (PredColumns, Vec<Option<u32>>) {
        let mut out = PredColumns::default();
        let mut map = Vec::with_capacity(pc.rows());
        let mut next = 0u32;
        for r in 0..pc.rows() as u32 {
            if dead.contains(&r) {
                map.push(None);
            } else {
                let args: Vec<Value> = (0..pc.cols.len()).map(|j| pc.col(j)[r as usize]).collect();
                out.push(&args);
                map.push(Some(next));
                next += 1;
            }
        }
        (out, map)
    }

    #[test]
    fn retract_remap_filters_in_place_without_resort() {
        let pc = columns(&[&["d"], &["b"], &["c"], &["a"], &["b"]]);
        let cache = SortedIndexCache::default();
        let p = Predicate::new("U");
        cache.get_or_build(p, 1, &[0], Some(&pc));
        let (shrunk, map) = drop_rows(&pc, &[1, 3]);
        let maps: HashMap<(Predicate, u16), Vec<Option<u32>>> =
            [((p, 1u16), map)].into_iter().collect();
        cache.retract_remap(&maps);
        let sp = cache.get_or_build(p, 1, &[0], Some(&shrunk));
        assert_eq!(sp.perm(), naive_perm(&shrunk, &[0]));
        // The remapped index is served as-is: still exactly one full build
        // and zero merges.
        let s = cache.stats();
        assert_eq!(s.full_builds, 1);
        assert_eq!(s.merge_extends, 0);
    }

    #[test]
    fn retract_remap_drops_emptied_indexes_and_keeps_untouched_ones() {
        let pc_u = columns(&[&["a"], &["b"]]);
        let pc_w = columns(&[&["x"]]);
        let cache = SortedIndexCache::default();
        let (u, w) = (Predicate::new("U"), Predicate::new("W"));
        cache.get_or_build(u, 1, &[0], Some(&pc_u));
        cache.get_or_build(w, 1, &[0], Some(&pc_w));
        let maps: HashMap<(Predicate, u16), Vec<Option<u32>>> =
            [((u, 1u16), vec![None, None])].into_iter().collect();
        cache.retract_remap(&maps);
        // U's index is gone (empty permutations are uncached); W's
        // survives untouched.
        assert_eq!(cache.stats().indexes, 1);
        let sp = cache.get_or_build(w, 1, &[0], Some(&pc_w));
        assert_eq!(sp.len(), 1);
        assert_eq!(cache.stats().full_builds, 2);
    }

    #[test]
    fn retract_remap_of_stale_index_keeps_merge_contract() {
        // Build over 2 rows, grow to 4, retract row 0 *without* refreshing
        // the index: the stale cached perm must filter onto the new-id
        // prefix so the later demand merges only the real delta.
        let mut pc = columns(&[&["d"], &["b"]]);
        let cache = SortedIndexCache::default();
        let p = Predicate::new("U");
        cache.get_or_build(p, 1, &[0], Some(&pc));
        pc.push(&[v("c")]);
        pc.push(&[v("a")]);
        let (shrunk, map) = drop_rows(&pc, &[0]);
        let maps: HashMap<(Predicate, u16), Vec<Option<u32>>> =
            [((p, 1u16), map)].into_iter().collect();
        cache.retract_remap(&maps);
        let sp = cache.get_or_build(p, 1, &[0], Some(&shrunk));
        assert_eq!(sp.perm(), naive_perm(&shrunk, &[0]));
        let s = cache.stats();
        assert_eq!(s.full_builds, 1);
        assert_eq!(s.merge_extends, 1);
    }

    #[test]
    fn export_install_round_trips_and_rejects_unsorted() {
        let pc = columns(&[&["d"], &["b"], &["c"]]);
        let p = Predicate::new("U");
        let cache = SortedIndexCache::default();
        cache.get_or_build(p, 1, &[0], Some(&pc));
        let exported = cache.export_entries();
        assert_eq!(exported.len(), 1);
        let arenas: HashMap<(Predicate, u16), PredColumns> =
            [((p, 1u16), pc.clone())].into_iter().collect();

        // A fresh cache accepts the valid export and serves it as a hit.
        let fresh = SortedIndexCache::default();
        assert_eq!(fresh.install_entries(&exported, &arenas), 1);
        let sp = fresh.get_or_build(p, 1, &[0], Some(&pc));
        assert_eq!(sp.perm(), naive_perm(&pc, &[0]));
        let s = fresh.stats();
        assert_eq!((s.indexes, s.full_builds, s.merge_extends), (1, 1, 0));

        // Tampered permutations (wrong sort order, wrong length, not a
        // permutation) are skipped, never installed.
        let mut unsorted = exported.clone();
        unsorted[0].perm.reverse();
        let mut short = exported.clone();
        short[0].perm.pop();
        let mut dup = exported.clone();
        dup[0].perm[1] = dup[0].perm[0];
        let reject = SortedIndexCache::default();
        assert_eq!(reject.install_entries(&unsorted, &arenas), 0);
        assert_eq!(reject.install_entries(&short, &arenas), 0);
        assert_eq!(reject.install_entries(&dup, &arenas), 0);
        assert_eq!(reject.stats().indexes, 0);
    }

    #[test]
    fn empty_predicate_is_uncached() {
        let cache = SortedIndexCache::default();
        let sp = cache.get_or_build(Predicate::new("Z"), 2, &[0, 1], None);
        assert!(sp.is_empty());
        assert_eq!(cache.stats().indexes, 0);
        assert_eq!(cache.stats().full_builds, 0);
    }
}
