//! Ground atoms: `R(c₁, …, cₙ)` over constants.

use crate::schema::Predicate;
use crate::value::Value;

/// A ground atom `R(t̄)` where `t̄` contains only constants (named or null).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroundAtom {
    /// The relation symbol.
    pub predicate: Predicate,
    /// The argument tuple.
    pub args: Vec<Value>,
}

impl GroundAtom {
    /// Builds an atom.
    pub fn new(predicate: Predicate, args: Vec<Value>) -> GroundAtom {
        GroundAtom { predicate, args }
    }

    /// Convenience constructor from names: `GroundAtom::parse("R", &["a", "b"])`.
    pub fn named(predicate: &str, args: &[&str]) -> GroundAtom {
        GroundAtom {
            predicate: Predicate::new(predicate),
            args: args.iter().map(|a| Value::named(a)).collect(),
        }
    }

    /// Arity of this atom.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The set of distinct constants mentioned (`dom(α)`), in first-occurrence
    /// order.
    pub fn dom(&self) -> Vec<Value> {
        let mut seen = Vec::new();
        for &v in &self.args {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// Whether the atom mentions `v`.
    pub fn mentions(&self, v: Value) -> bool {
        self.args.contains(&v)
    }

    /// Applies a value substitution, leaving unmapped values unchanged.
    pub fn map(&self, f: impl Fn(Value) -> Value) -> GroundAtom {
        GroundAtom {
            predicate: self.predicate,
            args: self.args.iter().map(|&v| f(v)).collect(),
        }
    }
}

impl std::fmt::Display for GroundAtom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let a = GroundAtom::named("R", &["x", "y"]);
        assert_eq!(a.arity(), 2);
        assert_eq!(a.to_string(), "R(x,y)");
    }

    #[test]
    fn dom_deduplicates_in_order() {
        let a = GroundAtom::named("T", &["b", "a", "b", "c"]);
        assert_eq!(
            a.dom(),
            vec![Value::named("b"), Value::named("a"), Value::named("c")]
        );
    }

    #[test]
    fn mentions_and_map() {
        let a = GroundAtom::named("R", &["x", "y"]);
        assert!(a.mentions(Value::named("x")));
        assert!(!a.mentions(Value::named("z")));
        let b = a.map(|v| {
            if v == Value::named("x") {
                Value::named("z")
            } else {
                v
            }
        });
        assert_eq!(b, GroundAtom::named("R", &["z", "y"]));
    }

    #[test]
    fn zero_ary_atoms() {
        let a = GroundAtom::named("Ans", &[]);
        assert_eq!(a.arity(), 0);
        assert_eq!(a.to_string(), "Ans()");
        assert!(a.dom().is_empty());
    }
}
