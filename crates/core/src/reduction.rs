//! End-to-end p-Clique fpt-reductions (Theorem 5.13, and the machinery
//! shared with Theorem 5.4): concrete CQS families whose Lemma 7.2 objects
//! `(p, X, p′)` are constructed explicitly, plus the reduction
//! `(G, k) ↦ D*` and the decision wrapper used by the experiments.
//!
//! The families are grid-shaped, mirroring the paper's proofs: `G^p_{|X}`
//! is literally the `k × K` grid, so the minor map is the identity
//! embedding and the Excluded Grid Theorem step is constructive.

use crate::cqs::Cqs;
use crate::grohe::{build_grohe_database, identity_grid_mu, GroheDatabase};
use gtgd_chase::parse_tgds;
use gtgd_data::{Predicate, Value};
use gtgd_query::{Cq, QAtom, Term, Ucq, Var};
use gtgd_treewidth::grid::big_k;
use gtgd_treewidth::Graph;
use std::collections::{BTreeSet, HashMap};

/// A CQS together with the Lemma 7.2 objects used by the reduction.
#[derive(Debug, Clone)]
pub struct CqsCliqueFamily {
    /// The CQS `S = (Σ, q)`.
    pub cqs: Cqs,
    /// The CQ `p` with `q ≡_Σ p`.
    pub p: Cq,
    /// The variable set `X` (grid-major order: row 1 columns `1..=K`, then
    /// row 2, …), with `G^p_{|X}` the `rows × cols` grid.
    pub x_vars: Vec<Var>,
    /// The CQ `p′` with `D[p] ⊆ D[p′]` and `D[p′] |= Σ`.
    pub p_prime: Cq,
    /// Grid rows (`k`).
    pub rows: usize,
    /// Grid columns (`K`).
    pub cols: usize,
}

/// Builds the Boolean grid CQ over predicates `H` (horizontal) and `V`
/// (vertical), with extra atoms appended; variable `(i, j)` (1-based) is
/// `Var((i-1)*cols + (j-1))`, grid-major.
fn grid_cq(rows: usize, cols: usize, extra: impl Fn(&[Var]) -> Vec<QAtom>) -> Cq {
    let mut names = Vec::new();
    for i in 1..=rows {
        for j in 1..=cols {
            names.push(format!("X{i}_{j}"));
        }
    }
    let vars: Vec<Var> = (0..(rows * cols) as u32).map(Var).collect();
    let at = |i: usize, j: usize| vars[(i - 1) * cols + (j - 1)];
    let h = Predicate::new("H");
    let vp = Predicate::new("V");
    let mut atoms = Vec::new();
    for i in 1..=rows {
        for j in 1..=cols {
            if j < cols {
                atoms.push(QAtom::new(
                    h,
                    vec![Term::Var(at(i, j)), Term::Var(at(i, j + 1))],
                ));
            }
            if i < rows {
                atoms.push(QAtom::new(
                    vp,
                    vec![Term::Var(at(i, j)), Term::Var(at(i + 1, j))],
                ));
            }
        }
    }
    atoms.extend(extra(&vars));
    Cq::new(names, atoms, vec![])
}

/// The unconstrained grid family (`Σ = ∅`): `q = p = p′` is the
/// `k × K` grid CQ. This is exactly Grohe's Theorem 4.1 setting, exercised
/// through the paper's Theorem 7.1 database.
pub fn grid_cqs_family(k: usize) -> CqsCliqueFamily {
    let (rows, cols) = (k, big_k(k).max(1));
    let p = grid_cq(rows, cols, |_| Vec::new());
    CqsCliqueFamily {
        cqs: Cqs::new(vec![], Ucq::single(p.clone())),
        x_vars: p.all_vars(),
        p_prime: p.clone(),
        p,
        rows,
        cols,
    }
}

/// The constrained grid family: Σ marks every endpoint of an edge with `N`
/// (guarded full TGDs, two head atoms — `FG_2`), `q` is the grid CQ, and
/// `p = p′` is the grid CQ completed with the `N`-atoms so that
/// `D[p′] |= Σ`. Exercises Theorem 5.13's "the constructed database must
/// satisfy Σ" constraint.
pub fn marked_grid_cqs_family(k: usize) -> CqsCliqueFamily {
    let (rows, cols) = (k, big_k(k).max(1));
    let sigma = parse_tgds("H(X,Y) -> N(X), N(Y). V(X,Y) -> N(X), N(Y)").unwrap();
    let q = grid_cq(rows, cols, |_| Vec::new());
    let n = Predicate::new("N");
    let p = grid_cq(rows, cols, |vars| {
        vars.iter()
            .map(|&v| QAtom::new(n, vec![Term::Var(v)]))
            .collect()
    });
    CqsCliqueFamily {
        cqs: Cqs::new(sigma, Ucq::single(q)),
        x_vars: p.all_vars().into_iter().take(rows * cols).collect(),
        p_prime: p.clone(),
        p,
        rows,
        cols,
    }
}

/// The reduced instance: `D* = D*(G, D[p], D[p′], X, µ)` with the identity
/// grid minor map.
#[derive(Debug, Clone)]
pub struct ReducedInstance {
    /// The Grohe database and projection.
    pub grohe: GroheDatabase,
    /// The frozen values of `X`, grid-major (the set `A`).
    pub a_values: Vec<Value>,
    /// Frozen value of every variable of `p′`.
    pub frozen: HashMap<Var, Value>,
}

/// Runs the fpt-reduction `(G, k) ↦ D*` for a family with `rows = k`.
pub fn clique_to_cqs_instance(g: &Graph, k: usize, fam: &CqsCliqueFamily) -> ReducedInstance {
    assert_eq!(fam.rows, k, "family must be built for clique size k");
    assert_eq!(fam.cols, big_k(k).max(1));
    // Freeze p′ once; D[p] is its restriction to p's atoms (shared ids).
    let (d_prime, frozen) = fam.p_prime.canonical_database();
    let a_values: Vec<Value> = fam.x_vars.iter().map(|v| frozen[v]).collect();
    let a: BTreeSet<Value> = a_values.iter().copied().collect();
    let mu = identity_grid_mu(&a_values);
    let grohe = build_grohe_database(g, k, &d_prime, &a, &mu);
    ReducedInstance {
        grohe,
        a_values,
        frozen,
    }
}

/// Decides `k`-clique through the CQS reduction: builds `D*` and evaluates
/// the CQS query closed-world. By Theorem 5.13's correctness lemma
/// (Lemma 7.3 / H.10), the answer equals "G has a k-clique".
pub fn decide_clique_via_cqs(g: &Graph, k: usize, fam: &CqsCliqueFamily) -> bool {
    let reduced = clique_to_cqs_instance(g, k, fam);
    gtgd_query::ucq_holds_boolean(&fam.cqs.query, &reduced.grohe.instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grohe::has_clique;
    use gtgd_chase::satisfies_all;
    use gtgd_data::Instance;

    fn random_ish_graphs() -> Vec<Graph> {
        // A deterministic zoo of small graphs.
        let mut graphs = Vec::new();
        // Triangle plus pendant.
        let mut g = Graph::new(4);
        g.make_clique(&[0, 1, 2]);
        g.add_edge(2, 3);
        graphs.push(g);
        // C5 (no triangle).
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
        }
        graphs.push(g);
        // K4.
        let mut g = Graph::new(4);
        g.make_clique(&[0, 1, 2, 3]);
        graphs.push(g);
        // Two triangles sharing a vertex.
        let mut g = Graph::new(5);
        g.make_clique(&[0, 1, 2]);
        g.make_clique(&[2, 3, 4]);
        graphs.push(g);
        // Bipartite K23 (no triangle).
        let mut g = Graph::new(5);
        for u in 0..2 {
            for v in 2..5 {
                g.add_edge(u, v);
            }
        }
        graphs.push(g);
        graphs
    }

    #[test]
    fn family_shapes() {
        let fam = grid_cqs_family(3);
        assert_eq!(fam.rows, 3);
        assert_eq!(fam.cols, 3);
        assert_eq!(fam.x_vars.len(), 9);
        assert_eq!(fam.p.atom_count(), 3 * 2 + 2 * 3);
        // X's induced graph is the 3×3 grid: treewidth 3.
        assert_eq!(gtgd_query::tw::cq_treewidth(&fam.p), 3);
    }

    #[test]
    fn grid_family_reduction_is_correct_k2() {
        let fam = grid_cqs_family(2);
        for (i, g) in random_ish_graphs().into_iter().enumerate() {
            assert_eq!(
                decide_clique_via_cqs(&g, 2, &fam),
                has_clique(&g, 2),
                "graph {i}, k=2"
            );
        }
        // Edgeless graph has no 2-clique.
        assert!(!decide_clique_via_cqs(&Graph::new(4), 2, &fam));
    }

    #[test]
    fn grid_family_reduction_is_correct_k3() {
        let fam = grid_cqs_family(3);
        for (i, g) in random_ish_graphs().into_iter().enumerate() {
            assert_eq!(
                decide_clique_via_cqs(&g, 3, &fam),
                has_clique(&g, 3),
                "graph {i}, k=3"
            );
        }
    }

    #[test]
    fn marked_family_database_satisfies_sigma() {
        let fam = marked_grid_cqs_family(2);
        for g in random_ish_graphs() {
            let reduced = clique_to_cqs_instance(&g, 2, &fam);
            assert!(
                satisfies_all(&reduced.grohe.instance, &fam.cqs.sigma),
                "Theorem 7.1(3): D* |= Σ"
            );
        }
    }

    #[test]
    fn marked_family_reduction_is_correct() {
        let fam = marked_grid_cqs_family(3);
        for (i, g) in random_ish_graphs().into_iter().enumerate() {
            let reduced = clique_to_cqs_instance(&g, 3, &fam);
            assert!(satisfies_all(&reduced.grohe.instance, &fam.cqs.sigma));
            assert_eq!(
                gtgd_query::ucq_holds_boolean(&fam.cqs.query, &reduced.grohe.instance),
                has_clique(&g, 3),
                "graph {i}"
            );
        }
    }

    #[test]
    fn h0_is_a_homomorphism_onto_d_prime() {
        let fam = grid_cqs_family(2);
        let mut g = Graph::new(3);
        g.make_clique(&[0, 1, 2]);
        let reduced = clique_to_cqs_instance(&g, 2, &fam);
        let (d_prime, _) = fam.p_prime.canonical_database();
        // h0 maps D* into a database isomorphic to D[p′]; check atom-wise
        // via the recorded frozen values instead (canonical_database
        // refreezes). Rebuild D′ from the reduction's own frozen map:
        let d_prime2: Instance = fam
            .p_prime
            .atoms
            .iter()
            .map(|a| a.ground(&reduced.frozen))
            .collect();
        let _ = d_prime;
        let mapped = reduced
            .grohe
            .instance
            .map_values(|v| *reduced.grohe.h0.get(&v).unwrap_or(&v));
        for atom in mapped.iter() {
            assert!(d_prime2.contains(atom), "{atom} outside D′");
        }
    }

    #[test]
    fn reduction_scales_with_graph_size() {
        let fam = grid_cqs_family(2);
        let mut small = Graph::new(3);
        small.make_clique(&[0, 1, 2]);
        let mut large = Graph::new(6);
        large.make_clique(&[0, 1, 2, 3, 4, 5]);
        let rs = clique_to_cqs_instance(&small, 2, &fam);
        let rl = clique_to_cqs_instance(&large, 2, &fam);
        assert!(rl.grohe.instance.len() > rs.grohe.instance.len());
    }
}
