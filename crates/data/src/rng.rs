//! A small, deterministic, dependency-free pseudo-random number generator.
//!
//! The workload generators and the randomized/differential test suites need
//! reproducible randomness, but the build is fully offline, so we cannot
//! pull in `rand`. This is SplitMix64 (Steele, Lea & Flood 2014): a 64-bit
//! state advanced by a Weyl sequence and finalized with a mix function.
//! It passes BigCrush for the amounts of randomness we draw and — more
//! importantly here — the stream for a given seed is fixed forever, so
//! every workload and test case is reproducible across runs and platforms.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator with the given seed. Equal seeds yield equal streams.
    pub fn seed(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution is
    /// exactly uniform (no modulo bias).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }

    /// A uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        // 53 random bits give a uniform double in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A fresh generator split off this one; the parent stream advances by
    /// one draw. Splits are independent for practical purposes.
    pub fn split(&mut self) -> Rng {
        Rng::seed(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng::seed(42);
        let mut b = Rng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed(43);
        assert_ne!(Rng::seed(42).next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::seed(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let x = r.below(5);
            assert!(x < 5);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_endpoints() {
        let mut r = Rng::seed(1);
        for _ in 0..50 {
            let x = r.range(3, 5);
            assert!((3..5).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed(9);
        assert!((0..64).all(|_| !r.chance(0.0)));
        assert!((0..64).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed(5);
        let mut v: Vec<usize> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
