//! Diversification of databases (Appendix D.2): replacing constants in
//! atoms by fresh *isolated* constants, used in the OMQ lower-bound proof to
//! untangle a database before applying the Grohe construction
//! (Example 6.3 / D.9 is the canonical picture).

use gtgd_data::{GroundAtom, Instance, Valuation, Value};

/// A diversification of a database `D₀`: a database whose atoms are copies
/// of `D₀`-atoms with some constants replaced by fresh ones, together with
/// the `·↑` map sending fresh constants to the originals they replace.
#[derive(Debug, Clone)]
pub struct Diversification {
    /// The diversified database.
    pub instance: Instance,
    /// `·↑`: fresh constant → original constant (old constants map to
    /// themselves).
    pub up: Valuation,
}

impl Diversification {
    /// The trivial diversification (`D = D₀`).
    pub fn trivial(d0: &Instance) -> Diversification {
        Diversification {
            instance: d0.clone(),
            up: d0.dom().iter().map(|&v| (v, v)).collect(),
        }
    }

    /// Whether every fresh constant is isolated (a structural invariant of
    /// diversifications: fresh constants occur in exactly one atom).
    pub fn fresh_constants_isolated(&self) -> bool {
        self.up
            .iter()
            .filter(|&(&c, &o)| c != o)
            .all(|(&c, _)| self.instance.is_isolated(c))
    }
}

/// All single-step refinements of one atom: for each occurrence of a
/// non-protected constant, the variant where that occurrence becomes a
/// fresh constant.
pub fn diversifications_of_atom(
    atom: &GroundAtom,
    protect: &[Value],
) -> Vec<(GroundAtom, Value, Value)> {
    let mut out = Vec::new();
    for (pos, &c) in atom.args.iter().enumerate() {
        if protect.contains(&c) {
            continue;
        }
        let fresh = Value::fresh_null();
        let mut args = atom.args.clone();
        args[pos] = fresh;
        out.push((GroundAtom::new(atom.predicate, args), fresh, c));
    }
    out
}

/// Greedily computes a ⪯-minimal diversification of `d0` (with constants of
/// `protect` — the paper's `ā₀` — never replaced) among those satisfying
/// `test`. Starting from `D₀` itself, each step replaces one constant
/// occurrence by a fresh isolated constant if `test` still accepts; this
/// terminates at a diversification where no further untangling is possible.
///
/// `test` receives the candidate diversified database (the caller wires in
/// `D⁺ |= Q`, attaching guarded unravelings as needed).
pub fn diversify_maximally(
    d0: &Instance,
    protect: &[Value],
    mut test: impl FnMut(&Instance) -> bool,
) -> Diversification {
    let mut current = Diversification::trivial(d0);
    assert!(test(&current.instance), "D₀ itself must pass the test");
    loop {
        let mut improved = false;
        let atoms: Vec<GroundAtom> = current.instance.iter().cloned().collect();
        // Never re-diversify constants that are already fresh — they are
        // isolated by construction, so splitting them again only renames.
        let mut skip: Vec<Value> = protect.to_vec();
        skip.extend(
            current
                .up
                .iter()
                .filter(|&(&c, &o)| c != o)
                .map(|(&c, _)| c),
        );
        'outer: for atom in &atoms {
            for (variant, fresh, orig) in diversifications_of_atom(atom, &skip) {
                // Replace `atom` by `variant`.
                let candidate: Instance = current
                    .instance
                    .iter()
                    .map(|a| {
                        if a == atom {
                            variant.clone()
                        } else {
                            a.clone()
                        }
                    })
                    .collect();
                if test(&candidate) {
                    let orig_up = *current.up.get(&orig).unwrap_or(&orig);
                    current.instance = candidate;
                    current.up.insert(fresh, orig_up);
                    improved = true;
                    break 'outer;
                }
            }
        }
        if !improved {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtgd_query::{holds_boolean, parse_cq};

    fn db(atoms: &[(&str, &[&str])]) -> Instance {
        Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
    }

    #[test]
    fn example_d9_untangling() {
        // Example D.9 in miniature: a 2×2 grid encoded with ternary atoms
        // sharing a single tangle constant b. The query only needs the first
        // two positions, so diversification frees every third position.
        let d0 = db(&[
            ("Xp", &["a11", "a12", "b"]),
            ("Xp", &["a21", "a22", "b"]),
            ("Yp", &["a11", "a21", "b"]),
            ("Yp", &["a12", "a22", "b"]),
        ]);
        let q = parse_cq("Q() :- Xp(A,B,U1), Xp(C,D,U2), Yp(A,C,U3), Yp(B,D,U4)").unwrap();
        let result = diversify_maximally(&d0, &[], |cand| holds_boolean(&q, cand));
        assert!(result.fresh_constants_isolated());
        // b must have been freed from at least three of the four atoms
        // (the query never joins on the third position).
        let b = Value::named("b");
        let occurrences = result.instance.iter().filter(|a| a.mentions(b)).count();
        assert!(occurrences <= 1, "b still occurs {occurrences} times");
        assert!(holds_boolean(&q, &result.instance));
    }

    #[test]
    fn joins_are_preserved() {
        // The query joins on the shared constant; diversification must not
        // break it.
        let d0 = db(&[("E", &["a", "b"]), ("E", &["b", "c"])]);
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z)").unwrap();
        let result = diversify_maximally(&d0, &[], |cand| holds_boolean(&q, cand));
        assert!(holds_boolean(&q, &result.instance));
        // The join constant b survives in both atoms; only the endpoints
        // may diversify (and they can, harmlessly, since the query pattern
        // is a path with free endpoints... but a and c occur once each, so
        // replacing them changes nothing structurally).
        let b = Value::named("b");
        assert_eq!(result.instance.iter().filter(|a| a.mentions(b)).count(), 2);
    }

    #[test]
    fn protected_constants_never_replaced() {
        let d0 = db(&[("P", &["a"]), ("R", &["a", "b"])]);
        let q = parse_cq("Q() :- P(X)").unwrap();
        let a = Value::named("a");
        let result = diversify_maximally(&d0, &[a], |cand| holds_boolean(&q, cand));
        // `a` still occurs in both atoms.
        assert_eq!(result.instance.iter().filter(|x| x.mentions(a)).count(), 2);
    }

    #[test]
    fn up_maps_back_to_originals() {
        let d0 = db(&[("R", &["a", "b"]), ("S", &["b", "c"])]);
        let q = parse_cq("Q() :- R(X,Y)").unwrap();
        let result = diversify_maximally(&d0, &[], |cand| holds_boolean(&q, cand));
        // Applying ·↑ recovers a database mapping onto D₀.
        let recovered = result
            .instance
            .map_values(|v| *result.up.get(&v).unwrap_or(&v));
        for atom in recovered.iter() {
            assert!(d0.contains(atom), "{atom} not in D0");
        }
    }
}
