//! Answer certificates: self-contained, re-checkable evidence that a tuple
//! is a certain answer.
//!
//! A [`Certificate`] bundles everything an independent verifier needs to
//! re-derive one answer by naive substitution alone:
//!
//! * the database facts (the axioms of the derivation),
//! * the TGDs, with variables as dense indices,
//! * a chain of trigger firings — each names a TGD and a full valuation
//!   (body variables to their images, existential variables to the fresh
//!   nulls the chase invented) — pruned backward from the answer so only
//!   firings the answer actually depends on remain,
//! * the query, the witnessing homomorphism, and the answer tuple.
//!
//! The [`CertificateStore`] builds certificates from a certified chase run
//! ([`crate::runner::ChaseRunner::certify`]) plus per-answer witnesses
//! ([`gtgd_query::PreparedQuery::answer_witnesses`]). Soundness does not
//! depend on the chase having terminated: every firing chain derives atoms
//! that hold in *every* model of the database and the TGDs (existential
//! bindings are checked fresh, so they behave as the universally valid
//! Skolem witnesses of the paper's chase, Section 2), hence a null-free
//! answer backed by a chain is a certain answer even over a budget-stopped
//! prefix. Completeness — that every certain answer is certified — is
//! exactly the chase-termination question and is *not* claimed here.
//!
//! Serialization is the hand-rolled std-only JSON of the workspace (see
//! `gtgd-bench::json`): values are encoded as `"c:<name>"` (named
//! constant) / `"n:<id>"` (labelled null), variables as `"v:<index>"`,
//! atoms as `["Pred", term...]` arrays. The schema is what the standalone
//! `gtgd-check` crate parses; the two ends share nothing but this format.

use crate::tgd::Tgd;
use gtgd_data::{FiringRecord, GroundAtom, Instance, Value};
use gtgd_query::{Cq, Engine, QAtom, Strategy, Term, Var};
use std::collections::HashSet;

/// Proof-carrying evidence for one answer tuple. Build with
/// [`CertificateStore::certificate`]; serialize with
/// [`Certificate::to_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The database facts, sorted (identical across engines for the same
    /// database, whatever order each engine fired in).
    pub facts: Vec<GroundAtom>,
    /// The TGDs of the run (all of them — firing records index into this
    /// list).
    pub tgds: Vec<Tgd>,
    /// The firing chain the answer depends on, in chase order.
    pub firings: Vec<FiringRecord>,
    /// The query atoms.
    pub query: Vec<QAtom>,
    /// The query's answer variables.
    pub answer_vars: Vec<Var>,
    /// The witnessing homomorphism: every query variable to its image.
    pub hom: Vec<(Var, Value)>,
    /// The certified answer tuple (null-free).
    pub answer: Vec<Value>,
}

/// Builds certificates for the answers of one certified chase run.
#[derive(Debug, Clone)]
pub struct CertificateStore<'a> {
    tgds: &'a [Tgd],
    firings: Vec<FiringRecord>,
    facts: Vec<GroundAtom>,
    fact_set: HashSet<GroundAtom>,
}

impl<'a> CertificateStore<'a> {
    /// A store over the original database `db` (not the chased instance),
    /// the rule set, and the firing log of a certified run
    /// ([`crate::runner::ChaseOutcome::firings`]).
    pub fn new(db: &Instance, tgds: &'a [Tgd], firings: Vec<FiringRecord>) -> CertificateStore<'a> {
        let mut facts: Vec<GroundAtom> = db.iter().cloned().collect();
        facts.sort();
        let fact_set = facts.iter().cloned().collect();
        CertificateStore {
            tgds,
            firings,
            facts,
            fact_set,
        }
    }

    /// The certificate for one answer of `q`, witnessed by `hom` (a total
    /// map on the query's variables, as produced by
    /// [`gtgd_query::PreparedQuery::answer_witnesses`]). The firing chain
    /// is pruned backward from the answer: a firing is kept only if it
    /// produces an atom the witness (or a kept later firing's body) needs
    /// beyond the database facts.
    ///
    /// Panics if `hom` leaves a query variable unbound — certificates for
    /// partial witnesses would be vacuous.
    pub fn certificate(&self, q: &Cq, hom: &[(Var, Value)], answer: &[Value]) -> Certificate {
        let mut needed: HashSet<GroundAtom> = q
            .atoms
            .iter()
            .map(|a| ground(a, |v| image(hom, v)))
            .filter(|a| !self.fact_set.contains(a))
            .collect();
        let mut kept: Vec<FiringRecord> = Vec::new();
        for f in self.firings.iter().rev() {
            if !f.atoms.iter().any(|a| needed.contains(a)) {
                continue;
            }
            for a in &f.atoms {
                needed.remove(a);
            }
            for a in &self.tgds[f.tgd].body {
                let g = ground(a, |v| image_idx(&f.val, v));
                if !self.fact_set.contains(&g) {
                    needed.insert(g);
                }
            }
            kept.push(f.clone());
        }
        kept.reverse();
        Certificate {
            facts: self.facts.clone(),
            tgds: self.tgds.to_vec(),
            firings: kept,
            query: q.atoms.clone(),
            answer_vars: q.answer_vars.clone(),
            hom: hom.to_vec(),
            answer: answer.to_vec(),
        }
    }

    /// Certificates for every *null-free* answer of `q` over `instance`
    /// (the chased instance), evaluated with `strategy`. Null-containing
    /// tuples are witnesses about invented values, not certain answers,
    /// so they carry no certificate and are skipped.
    pub fn certify_answers(
        &self,
        q: &Cq,
        instance: &Instance,
        strategy: Strategy,
    ) -> Vec<Certificate> {
        Engine::prepare(q)
            .strategy(strategy)
            .answer_witnesses(instance)
            .into_iter()
            .filter(|(answer, _)| answer.iter().all(|v| v.is_named()))
            .map(|(answer, hom)| self.certificate(q, &hom, &answer))
            .collect()
    }
}

fn image(hom: &[(Var, Value)], v: Var) -> Value {
    hom.iter()
        .find(|(u, _)| *u == v)
        .expect("witness binds every query variable")
        .1
}

fn image_idx(val: &[(u32, Value)], v: Var) -> Value {
    val.iter()
        .find(|(u, _)| *u as usize == v.index())
        .expect("firing valuation binds every rule variable")
        .1
}

fn ground(a: &QAtom, f: impl Fn(Var) -> Value) -> GroundAtom {
    GroundAtom::new(
        a.predicate,
        a.args
            .iter()
            .map(|t| match *t {
                Term::Const(c) => c,
                Term::Var(v) => f(v),
            })
            .collect(),
    )
}

// --- JSON emission (the `gtgd-check` wire format) ---

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn enc_value(v: Value) -> String {
    match v {
        Value::Named(s) => format!("\"c:{}\"", esc(&s.name())),
        Value::Null(n) => format!("\"n:{n}\""),
    }
}

fn enc_var(v: usize) -> String {
    format!("\"v:{v}\"")
}

fn enc_term(t: &Term) -> String {
    match *t {
        Term::Var(v) => enc_var(v.index()),
        Term::Const(c) => enc_value(c),
    }
}

fn enc_qatom(a: &QAtom) -> String {
    let mut parts = vec![format!("\"{}\"", esc(&a.predicate.name()))];
    parts.extend(a.args.iter().map(enc_term));
    format!("[{}]", parts.join(","))
}

fn enc_ground_atom(a: &GroundAtom) -> String {
    let mut parts = vec![format!("\"{}\"", esc(&a.predicate.name()))];
    parts.extend(a.args.iter().map(|&v| enc_value(v)));
    format!("[{}]", parts.join(","))
}

fn enc_atoms(atoms: &[QAtom]) -> String {
    let items: Vec<String> = atoms.iter().map(enc_qatom).collect();
    format!("[{}]", items.join(","))
}

impl Certificate {
    /// One compact JSON object per certificate — the format `gtgd-check`
    /// parses. Single-line so a stream of certificates pipes as JSON
    /// lines or wraps in a plain array.
    pub fn to_json(&self) -> String {
        let facts: Vec<String> = self.facts.iter().map(enc_ground_atom).collect();
        let tgds: Vec<String> = self
            .tgds
            .iter()
            .map(|t| {
                format!(
                    "{{\"body\":{},\"head\":{}}}",
                    enc_atoms(&t.body),
                    enc_atoms(&t.head)
                )
            })
            .collect();
        let firings: Vec<String> = self
            .firings
            .iter()
            .map(|f| {
                let val: Vec<String> = f
                    .val
                    .iter()
                    .map(|&(v, x)| format!("[{},{}]", enc_var(v as usize), enc_value(x)))
                    .collect();
                format!("{{\"tgd\":{},\"val\":[{}]}}", f.tgd, val.join(","))
            })
            .collect();
        let hom: Vec<String> = self
            .hom
            .iter()
            .map(|&(v, x)| format!("[{},{}]", enc_var(v.index()), enc_value(x)))
            .collect();
        let answer_vars: Vec<String> = self
            .answer_vars
            .iter()
            .map(|v| enc_var(v.index()))
            .collect();
        let answer: Vec<String> = self.answer.iter().map(|&v| enc_value(v)).collect();
        format!(
            "{{\"version\":1,\"facts\":[{}],\"tgds\":[{}],\"firings\":[{}],\"query\":{},\"answer_vars\":[{}],\"hom\":[{}],\"answer\":[{}]}}",
            facts.join(","),
            tgds.join(","),
            firings.join(","),
            enc_atoms(&self.query),
            answer_vars.join(","),
            hom.join(","),
            answer.join(","),
        )
    }
}

/// Renders a batch of certificates as one JSON array (the `gtgd --certify`
/// stdout format).
pub fn certificates_to_json(certs: &[Certificate]) -> String {
    let items: Vec<String> = certs.iter().map(|c| c.to_json()).collect();
    format!("[{}]", items.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ChaseRunner;
    use crate::tgd::parse_tgds;
    use gtgd_query::parse_cq;

    fn setup() -> (Vec<Tgd>, Instance) {
        let tgds = parse_tgds("A(X) -> B(X). B(X) -> R(X,Y). R(X,Y), A(X) -> B(Y).").unwrap();
        let db = Instance::from_atoms([
            GroundAtom::named("A", &["a"]),
            GroundAtom::named("A", &["b"]),
        ]);
        (tgds, db)
    }

    #[test]
    fn pruning_keeps_only_the_needed_chain() {
        let (tgds, db) = setup();
        let outcome = ChaseRunner::new(&tgds)
            .budget(crate::engine::ChaseBudget::levels(3))
            .certify(true)
            .run(&db);
        let store = CertificateStore::new(&db, &tgds, outcome.firings.unwrap());
        // B(a) needs exactly one firing (rule 0 on a), not b's derivations.
        let q = parse_cq("Q(X) :- B(X)").unwrap();
        let certs = store.certify_answers(&q, &outcome.instance, Strategy::Backtrack);
        let a = Value::named("a");
        let cert = certs.iter().find(|c| c.answer == [a]).expect("B(a) holds");
        assert_eq!(cert.firings.len(), 1);
        assert_eq!(cert.firings[0].tgd, 0);
        assert_eq!(cert.firings[0].val, vec![(0, a)]);
    }

    #[test]
    fn database_only_answers_have_empty_chains() {
        let (tgds, db) = setup();
        let outcome = ChaseRunner::new(&tgds)
            .budget(crate::engine::ChaseBudget::levels(2))
            .certify(true)
            .run(&db);
        let store = CertificateStore::new(&db, &tgds, outcome.firings.unwrap());
        let q = parse_cq("Q(X) :- A(X)").unwrap();
        let certs = store.certify_answers(&q, &outcome.instance, Strategy::Backtrack);
        assert_eq!(certs.len(), 2);
        assert!(certs.iter().all(|c| c.firings.is_empty()));
    }

    #[test]
    fn null_answers_are_not_certified() {
        let (tgds, db) = setup();
        let outcome = ChaseRunner::new(&tgds)
            .budget(crate::engine::ChaseBudget::levels(2))
            .certify(true)
            .run(&db);
        let store = CertificateStore::new(&db, &tgds, outcome.firings.unwrap());
        // R's second column is always a fresh null here.
        let q = parse_cq("Q(X,Y) :- R(X,Y)").unwrap();
        let certs = store.certify_answers(&q, &outcome.instance, Strategy::Backtrack);
        assert!(certs.is_empty());
    }

    #[test]
    fn json_shape_is_stable() {
        let (tgds, db) = setup();
        let outcome = ChaseRunner::new(&tgds)
            .budget(crate::engine::ChaseBudget::levels(2))
            .certify(true)
            .run(&db);
        let store = CertificateStore::new(&db, &tgds, outcome.firings.unwrap());
        let q = parse_cq("Q(X) :- B(X)").unwrap();
        let certs = store.certify_answers(&q, &outcome.instance, Strategy::Backtrack);
        let json = certs[0].to_json();
        assert!(json.starts_with("{\"version\":1,\"facts\":[[\"A\",\"c:a\"]"));
        assert!(json.contains("\"tgds\":[{\"body\":[[\"A\",\"v:0\"]],\"head\":[[\"B\",\"v:0\"]]}"));
        assert!(json.contains("\"answer_vars\":[\"v:0\"]"));
        let wrapped = certificates_to_json(&certs);
        assert!(wrapped.starts_with('[') && wrapped.ends_with(']'));
    }
}
