//! The experiment harness: one function per experiment row of DESIGN.md §4.
//!
//! Each experiment returns an [`ExperimentTable`] — the series the paper's
//! (absent) evaluation section would have reported — and is also exercised
//! by a Criterion bench target. Absolute times are machine-specific; the
//! claims under test are *shapes*: polynomial vs FPT vs W\[1\]-hard growth,
//! and who wins where.

use crate::workloads::*;
use gtgd_chase::{chase, ground_saturation, par_chase, par_ground_saturation, ChaseBudget};
use gtgd_core::{
    check_omq, check_omq_fpt, clique_to_cqs_instance, cqs_uniformly_ucqk_equivalent, evaluate_omq,
    grid_cqs_family, grohe::has_clique, marked_grid_cqs_family, omq_to_cqs_database,
    omq_ucqk_equivalent, Cqs, EvalConfig, GroundingPolicy, Omq,
};
use gtgd_data::Instance;
use gtgd_query::{
    core_of, decomp_eval::check_answer_decomposed, holds_boolean, parse_cq, parse_ucq,
    tw::cq_treewidth, Ucq,
};
use std::time::Instant;

/// One regenerated table/figure.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    /// Experiment id (E1…E15).
    pub id: String,
    /// Short title.
    pub title: String,
    /// The paper claim under test.
    pub claim: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Interpretation notes.
    pub notes: String,
}

impl ExperimentTable {
    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        out.push_str(&format!("claim: {}\n", self.claim));
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str(&format!("note: {}\n", self.notes));
        }
        out
    }
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn fmt_ms(x: f64) -> String {
    format!("{x:.3}")
}

/// What the kernel's join planner picks for a CQ body under
/// `Strategy::Auto`: the leapfrog executor for cyclic / high-degree
/// multiway bodies, the backtracker otherwise (see `gtgd_query::compile`).
fn planner_of(atoms: &[gtgd_query::QAtom]) -> &'static str {
    if gtgd_query::CompiledQuery::compile(atoms).prefers_wcoj() {
        "wcoj"
    } else {
        "backtrack"
    }
}

/// Times `f` with one warmup, then reports the minimum over an adaptive
/// number of repeats: always at least 3, stopping once ~30 ms of
/// measurement have accumulated (capped at 1000 repeats). Sub-millisecond
/// workloads get enough samples for the minimum to converge on the true
/// cost (best-of-3 is noise-dominated on a time-sliced container), while
/// multi-millisecond workloads still finish after the mandatory 3 repeats.
pub(crate) fn bench_ms<T>(mut f: impl FnMut() -> T) -> f64 {
    f();
    let budget = std::time::Duration::from_millis(30);
    let start = Instant::now();
    let mut best = f64::INFINITY;
    for done in 1..=1000u32 {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(ms(t));
        if done >= 3 && start.elapsed() >= budget {
            break;
        }
    }
    best
}

/// E1 — Prop 2.1: bounded-treewidth CQ evaluation is polynomial; the
/// generic backtracking baseline blows up on high-treewidth (clique)
/// queries.
pub fn e1_bounded_tw_eval() -> ExperimentTable {
    let mut rows = Vec::new();
    for &n in &[20usize, 60, 120, 240] {
        let db = grid_db(4, n);
        for (qname, q) in [
            ("path-4 (tw 1)", path_cq_h(4)),
            ("ladder-3 (tw 2)", grid_query(2, 3)),
            ("grid-3x3 (tw 3)", grid_query(3, 3)),
        ] {
            let dp = bench_ms(|| check_answer_decomposed(&q, &db, &[]));
            let bt = bench_ms(|| holds_boolean(&q, &db));
            rows.push(vec![
                n.to_string(),
                db.len().to_string(),
                qname.to_string(),
                fmt_ms(dp),
                fmt_ms(bt),
            ]);
        }
    }
    ExperimentTable {
        id: "E1".into(),
        title: "Bounded-treewidth CQ evaluation (join-tree DP vs backtracking)".into(),
        claim: "Prop 2.1: CQ_k evaluation in O(|D|^{k+1}·|q|)".into(),
        columns: vec![
            "grid cols".into(),
            "|D|".into(),
            "query".into(),
            "DP ms".into(),
            "backtrack ms".into(),
        ],
        rows,
        notes: "Both engines scale polynomially in |D| for fixed tw; \
                the DP bound degree tracks k+1."
            .into(),
    }
}

/// A horizontal path CQ over `H` for grid databases.
fn path_cq_h(len: usize) -> gtgd_query::Cq {
    let atoms: Vec<String> = (0..len).map(|i| format!("H(P{i},P{})", i + 1)).collect();
    parse_cq(&format!("Q() :- {}", atoms.join(", "))).unwrap()
}

/// E2 — chase growth: oblivious chase size/time across TGD classes; the
/// guarded ground part stays linear in |D| (bounded arity).
pub fn e2_chase() -> ExperimentTable {
    let mut rows = Vec::new();
    for &n in &[50usize, 100, 200, 400] {
        // Linear chain ontology on a unary database.
        let chain = chain_ontology(8);
        let db: Instance = (0..n)
            .map(|i| gtgd_data::GroundAtom::named("A0", &[&format!("x{i}")]))
            .collect();
        let t_chain = bench_ms(|| chase(&db, &chain, &ChaseBudget::unbounded()));
        let sz_chain = chase(&db, &chain, &ChaseBudget::unbounded()).instance.len();
        // Full transitive closure on a path.
        let tc = tc_ontology();
        let pdb = path_db(n.min(120));
        let t_tc = bench_ms(|| chase(&pdb, &tc, &ChaseBudget::unbounded()));
        let sz_tc = chase(&pdb, &tc, &ChaseBudget::unbounded()).instance.len();
        // Guarded org ontology: infinite chase; measure ground saturation,
        // sequential and on the 4-worker parallel path.
        let org = org_ontology();
        let odb = org_db(n);
        let t_sat = bench_ms(|| ground_saturation(&odb, &org));
        let t_psat = bench_ms(|| par_ground_saturation(&odb, &org, 4));
        let sz_sat = ground_saturation(&odb, &org).len();
        rows.push(vec![
            n.to_string(),
            sz_chain.to_string(),
            fmt_ms(t_chain),
            sz_tc.to_string(),
            fmt_ms(t_tc),
            sz_sat.to_string(),
            fmt_ms(t_sat),
            fmt_ms(t_psat),
            format!("{:.2}", t_sat / t_psat),
        ]);
    }
    ExperimentTable {
        id: "E2".into(),
        title: "Chase growth across TGD classes".into(),
        claim: "Oblivious chase (Section 2); guarded ground part linear in |D|".into(),
        columns: vec![
            "n".into(),
            "chain atoms".into(),
            "chain ms".into(),
            "tc atoms".into(),
            "tc ms".into(),
            "guarded chase↓ atoms".into(),
            "chase↓ ms".into(),
            "chase↓ par@4 ms".into(),
            "speedup@4".into(),
        ],
        rows,
        notes: "chain grows n·(rules+1); tc is quadratic in the path length; \
                guarded chase↓ stays linear in |D|. The parallel column uses \
                per-round type dedup + dirty-bag tracking (par_ground_saturation), \
                so its lead over the sequential engine is algorithmic, not \
                core-count dependent."
            .into(),
    }
}

/// E3 — Prop 3.3(3): (G, UCQ_k) OMQ evaluation is FPT: polynomial in ‖D‖
/// for fixed Q; the query-dependent factor is confined to f(‖Q‖).
pub fn e3_omq_fpt() -> ExperimentTable {
    let org = org_ontology();
    let q = Omq::full_schema(
        org.clone(),
        parse_ucq("Q(X) :- Emp(X), WorksIn(X,D), HasMgr(D,M)").unwrap(),
    );
    let cfg = EvalConfig::default();
    let mut rows = Vec::new();
    for &n in &[20usize, 50, 100, 200, 400] {
        let db = org_db(n);
        let t_fpt = bench_ms(|| check_omq_fpt(&q, &db, &[val("e0")], &cfg));
        let t_gen = bench_ms(|| check_omq(&q, &db, &[val("e0")], &cfg));
        let (holds, exact) = check_omq_fpt(&q, &db, &[val("e0")], &cfg);
        rows.push(vec![
            n.to_string(),
            db.len().to_string(),
            fmt_ms(t_fpt),
            fmt_ms(t_gen),
            holds.to_string(),
            exact.to_string(),
        ]);
    }
    ExperimentTable {
        id: "E3".into(),
        title: "FPT OMQ evaluation in (G, UCQ_1)".into(),
        claim: "Prop 3.3(3): evaluation in |D|^{O(1)} · f(|Q|)".into(),
        columns: vec![
            "n".into(),
            "|D|".into(),
            "FPT pipeline ms".into(),
            "generic ms".into(),
            "holds".into(),
            "exact".into(),
        ],
        rows,
        notes: "Time grows polynomially (near-linearly) in |D| for the \
                fixed OMQ; both pipelines agree."
            .into(),
    }
}

/// E4 — Theorems 5.3/5.4 & 5.13: the clique reduction. Evaluation time on
/// reduced databases grows sharply with k for the unbounded-treewidth grid
/// family, while a bounded-treewidth (path) query over the same databases
/// stays flat: the dichotomy's two sides.
pub fn e4_clique_reduction() -> ExperimentTable {
    let mut rows = Vec::new();
    for &k in &[2usize, 3] {
        let fam = grid_cqs_family(k);
        let grid_planner = {
            let mut labels: Vec<&'static str> = fam
                .cqs
                .query
                .disjuncts
                .iter()
                .map(|cq| planner_of(&cq.atoms))
                .collect();
            labels.dedup();
            if labels.len() == 1 {
                labels[0]
            } else {
                "mixed"
            }
        };
        for &n in &[6usize, 8, 10] {
            let mut g = random_graph(n, 0.5, 11 + n as u64);
            plant_clique(&mut g, k, 5);
            let t_build = bench_ms(|| clique_to_cqs_instance(&g, k, &fam));
            let reduced = clique_to_cqs_instance(&g, k, &fam);
            let t_eval =
                bench_ms(|| gtgd_query::ucq_holds_boolean(&fam.cqs.query, &reduced.grohe.instance));
            let verdict = gtgd_query::ucq_holds_boolean(&fam.cqs.query, &reduced.grohe.instance);
            let truth = has_clique(&g, k);
            // Bounded-treewidth side: a path query over the same database.
            let t_path =
                bench_ms(|| check_answer_decomposed(&path_cq_h(3), &reduced.grohe.instance, &[]));
            rows.push(vec![
                k.to_string(),
                n.to_string(),
                reduced.grohe.instance.len().to_string(),
                fmt_ms(t_build),
                fmt_ms(t_eval),
                fmt_ms(t_path),
                verdict.to_string(),
                truth.to_string(),
                grid_planner.to_string(),
            ]);
        }
    }
    ExperimentTable {
        id: "E4".into(),
        title: "p-Clique reduction: unbounded vs bounded treewidth".into(),
        claim: "Thm 5.13 / 5.4: unbounded semantic treewidth ⇒ W[1]-hard; \
                bounded ⇒ FPT"
            .into(),
        columns: vec![
            "k".into(),
            "|V(G)|".into(),
            "|D*|".into(),
            "build ms".into(),
            "grid-eval ms".into(),
            "path-eval ms".into(),
            "reduction verdict".into(),
            "brute-force clique".into(),
            "grid planner".into(),
        ],
        rows,
        notes: "Verdicts always match brute force. Grid-query evaluation \
                time explodes with k; the treewidth-1 path query stays flat."
            .into(),
    }
}

/// E5 — Theorem 5.7 / Prop 5.8 / Lemma 6.8: the OMQ→CQS reduction database
/// D* is computable in |D|^{O(1)}·f(|Q|) and preserves answers.
pub fn e5_omq_to_cqs() -> ExperimentTable {
    let sigma = gtgd_chase::parse_tgds(
        "Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> Audited(D)",
    )
    .unwrap();
    let q = Omq::full_schema(
        sigma,
        parse_ucq("Q(X) :- Emp(X), WorksIn(X,D), Audited(D)").unwrap(),
    );
    let cfg = EvalConfig::default();
    let mut rows = Vec::new();
    for &n in &[20usize, 50, 100, 200] {
        let db = org_db(n);
        let t_build = bench_ms(|| omq_to_cqs_database(&q, &db, &ChaseBudget::unbounded()));
        let d_star = omq_to_cqs_database(&q, &db, &ChaseBudget::unbounded()).unwrap();
        let open = evaluate_omq(&q, &db, &cfg);
        let closed: std::collections::HashSet<Vec<gtgd_data::Value>> =
            gtgd_query::evaluate_ucq(&q.query, &d_star)
                .into_iter()
                .filter(|t| t.iter().all(|x| db.dom_contains(*x)))
                .collect();
        let t_closed = bench_ms(|| gtgd_query::evaluate_ucq(&q.query, &d_star));
        rows.push(vec![
            n.to_string(),
            db.len().to_string(),
            d_star.len().to_string(),
            fmt_ms(t_build),
            fmt_ms(t_closed),
            (open.answers == closed).to_string(),
        ]);
    }
    ExperimentTable {
        id: "E5".into(),
        title: "OMQ→CQS reduction (open-world answered closed-world)".into(),
        claim: "Prop 5.8 / Lemma 6.8: D* |= Σ, answers preserved, \
                |D|^{O(1)}·f(|Q|) construction"
            .into(),
        columns: vec![
            "n".into(),
            "|D|".into(),
            "|D*|".into(),
            "build ms".into(),
            "closed-eval ms".into(),
            "answers agree".into(),
        ],
        rows,
        notes: "|D*| grows linearly in |D|; open- and closed-world answers \
                coincide on every size."
            .into(),
    }
}

/// The Example 4.4 OMQ/CQS family, with `extra` additional diamond atoms to
/// scale the query size without exceeding the contraction cap.
fn example_4_4_scaled(extra: usize) -> (Vec<gtgd_chase::Tgd>, Ucq) {
    let sigma = gtgd_chase::parse_tgds("R2(X) -> R4(X)").unwrap();
    let mut atoms = vec![
        "P(X2,X1)".to_string(),
        "P(X4,X1)".to_string(),
        "P(X2,X3)".to_string(),
        "P(X4,X3)".to_string(),
        "R1(X1)".to_string(),
        "R2(X2)".to_string(),
        "R3(X3)".to_string(),
        "R4(X4)".to_string(),
    ];
    for i in 0..extra {
        atoms.push(format!("S{i}(X1)"));
    }
    let q = parse_ucq(&format!("Q() :- {}", atoms.join(", "))).unwrap();
    (sigma, q)
}

/// E6 — Theorem 5.1: deciding UCQ_k-equivalence of guarded OMQs.
pub fn e6_meta_omq() -> ExperimentTable {
    let cfg = EvalConfig::default();
    let policy = GroundingPolicy::default();
    let mut rows = Vec::new();
    for &extra in &[0usize, 2, 4] {
        let (sigma, q) = example_4_4_scaled(extra);
        let omq = Omq::full_schema(sigma, q);
        let t = bench_ms(|| omq_ucqk_equivalent(&omq, 1, &policy, &cfg));
        let (verdict, witness) = omq_ucqk_equivalent(&omq, 1, &policy, &cfg);
        rows.push(vec![
            format!("Ex4.4+{extra}"),
            omq.query.disjuncts[0].atom_count().to_string(),
            "1".into(),
            fmt_ms(t),
            verdict.holds.to_string(),
            witness
                .map(|w| gtgd_query::tw::ucq_treewidth(&w.query).to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
        // Without the ontology: not equivalent.
        let (_, q2) = example_4_4_scaled(extra);
        let omq0 = Omq::full_schema(vec![], q2);
        let t0 = bench_ms(|| omq_ucqk_equivalent(&omq0, 1, &policy, &cfg));
        let (v0, _) = omq_ucqk_equivalent(&omq0, 1, &policy, &cfg);
        rows.push(vec![
            format!("Ex4.4+{extra} (Σ=∅)"),
            omq0.query.disjuncts[0].atom_count().to_string(),
            "1".into(),
            fmt_ms(t0),
            v0.holds.to_string(),
            "-".into(),
        ]);
    }
    ExperimentTable {
        id: "E6".into(),
        title: "Meta problem: UCQ_k-equivalence of guarded OMQs".into(),
        claim: "Thm 5.1: 2ExpTime-complete; Example 4.4 is UCQ_1-equivalent \
                exactly because of Σ"
            .into(),
        columns: vec![
            "OMQ".into(),
            "atoms".into(),
            "k".into(),
            "decide ms".into(),
            "equivalent".into(),
            "witness tw".into(),
        ],
        rows,
        notes: "The ontology flips the verdict; decision time grows steeply \
                with query size (the meta problem's exponential shape)."
            .into(),
    }
}

/// E7 — Theorem 5.10 / Prop 5.11: the contraction-based approximation for
/// FG_m CQSs.
pub fn e7_meta_cqs() -> ExperimentTable {
    let cfg = EvalConfig::default();
    let mut rows = Vec::new();
    for &extra in &[0usize, 2, 4] {
        let (sigma, q) = example_4_4_scaled(extra);
        let s = Cqs::new(sigma, q);
        let t = bench_ms(|| cqs_uniformly_ucqk_equivalent(&s, 1, &cfg));
        let (verdict, witness) = cqs_uniformly_ucqk_equivalent(&s, 1, &cfg);
        rows.push(vec![
            format!("Ex4.4+{extra}"),
            s.query.disjuncts[0].atom_count().to_string(),
            fmt_ms(t),
            verdict.holds.to_string(),
            witness
                .map(|w| w.query.disjuncts.len().to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    // A genuinely non-equivalent family: grid CQSs with marking constraints.
    for &k in &[2usize, 3] {
        let fam = marked_grid_cqs_family(k);
        let t = bench_ms(|| cqs_uniformly_ucqk_equivalent(&fam.cqs, 1, &cfg));
        let (verdict, _) = cqs_uniformly_ucqk_equivalent(&fam.cqs, 1, &cfg);
        rows.push(vec![
            format!("grid k={k}"),
            fam.cqs.query.disjuncts[0].atom_count().to_string(),
            fmt_ms(t),
            verdict.holds.to_string(),
            "-".into(),
        ]);
    }
    ExperimentTable {
        id: "E7".into(),
        title: "Meta problem: uniform UCQ_k-equivalence of CQSs".into(),
        claim: "Thm 5.10 / Prop 5.11: decided via contraction approximations".into(),
        columns: vec![
            "CQS".into(),
            "atoms".into(),
            "decide ms".into(),
            "equivalent (k=1)".into(),
            "approx disjuncts".into(),
        ],
        rows,
        notes: "Constraint-aware rewritings found for the diamond family; \
                grid families stay unbounded, as the dichotomy requires."
            .into(),
    }
}

/// E8 — Grohe's baseline (Theorem 4.1): semantic treewidth of plain CQs via
/// cores.
pub fn e8_cq_core() -> ExperimentTable {
    let mut rows = Vec::new();
    for &n in &[4usize, 6, 8, 10] {
        // A triangle with a pendant path of length n (core = triangle).
        let mut atoms = vec![
            "E(Y0,Y1)".to_string(),
            "E(Y1,Y2)".to_string(),
            "E(Y2,Y0)".to_string(),
        ];
        for i in 0..n {
            atoms.push(format!("E(Z{i},Z{})", i + 1));
        }
        let q = parse_cq(&format!("Q() :- {}", atoms.join(", "))).unwrap();
        let t = bench_ms(|| core_of(&q));
        let core = core_of(&q);
        rows.push(vec![
            (n + 3).to_string(),
            q.atom_count().to_string(),
            core.atom_count().to_string(),
            cq_treewidth(&core).to_string(),
            fmt_ms(t),
        ]);
    }
    ExperimentTable {
        id: "E8".into(),
        title: "CQ cores and semantic treewidth (Grohe's criterion)".into(),
        claim: "Thm 4.1 footnote: q ∈ CQ_k^≡ iff core(q) ∈ CQ_k".into(),
        columns: vec![
            "atoms in".into(),
            "|q|".into(),
            "|core|".into(),
            "core tw".into(),
            "core ms".into(),
        ],
        rows,
        notes: "Pendant paths fold into the triangle; semantic treewidth is \
                2 regardless of syntactic size."
            .into(),
    }
}

/// E9 — ablation: the oblivious chase (the paper's semantics) vs the
/// restricted chase (skip satisfied triggers) on a workload where the data
/// already witnesses many heads.
pub fn e9_chase_ablation() -> ExperimentTable {
    use gtgd_chase::restricted_chase;
    let sigma = gtgd_chase::parse_tgds(
        "Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> Audited(D)",
    )
    .unwrap();
    let mut rows = Vec::new();
    for &n in &[50usize, 100, 200, 400] {
        // Half the employees already have a workplace: the restricted chase
        // skips those triggers, the oblivious chase fires them anyway.
        let db = org_db(n);
        let budget = ChaseBudget::unbounded();
        let t_obl = bench_ms(|| chase(&db, &sigma, &budget));
        let obl = chase(&db, &sigma, &budget);
        let t_res = bench_ms(|| restricted_chase(&db, &sigma, &budget));
        let res = restricted_chase(&db, &sigma, &budget);
        rows.push(vec![
            n.to_string(),
            db.len().to_string(),
            obl.instance.len().to_string(),
            fmt_ms(t_obl),
            res.instance.len().to_string(),
            fmt_ms(t_res),
        ]);
    }
    ExperimentTable {
        id: "E9".into(),
        title: "Ablation: oblivious vs restricted chase".into(),
        claim: "Section 2's oblivious chase is canonical but larger; both \
                are universal models"
            .into(),
        columns: vec![
            "n".into(),
            "|D|".into(),
            "oblivious atoms".into(),
            "oblivious ms".into(),
            "restricted atoms".into(),
            "restricted ms".into(),
        ],
        rows,
        notes: "The restricted chase materializes fewer atoms by skipping \
                satisfied triggers; certain answers coincide."
            .into(),
    }
}

/// E10 — Prop 3.2/3.3 hardness side: evaluation time of clique queries
/// (unbounded treewidth) vs path queries (tw 1) under a guarded ontology.
pub fn e10_hardness_shape() -> ExperimentTable {
    let sigma = gtgd_chase::parse_tgds("E(X,Y) -> Node(X), Node(Y)").unwrap();
    let g = {
        let mut g = random_graph(13, 0.5, 97);
        plant_clique(&mut g, 5, 13);
        g
    };
    let db = graph_db(&g);
    let cfg = EvalConfig::default();
    let mut rows = Vec::new();
    for &k in &[2usize, 3, 4, 5] {
        let qc = Omq::full_schema(sigma.clone(), Ucq::single(clique_cq(k)));
        let qp = Omq::full_schema(sigma.clone(), Ucq::single(path_cq(k)));
        let t_clique = bench_ms(|| check_omq(&qc, &db, &[], &cfg));
        let t_path = bench_ms(|| check_omq_fpt(&qp, &db, &[], &cfg));
        let (holds, _) = check_omq(&qc, &db, &[], &cfg);
        rows.push(vec![
            k.to_string(),
            fmt_ms(t_clique),
            fmt_ms(t_path),
            holds.to_string(),
            format!(
                "{}/{}",
                planner_of(&clique_cq(k).atoms),
                planner_of(&path_cq(k).atoms)
            ),
        ]);
    }
    ExperimentTable {
        id: "E10".into(),
        title: "Hardness shape: clique vs path OMQs under guarded Σ".into(),
        claim: "Prop 3.3(1): W[1]-hard in general; FPT for UCQ_k".into(),
        columns: vec![
            "k".into(),
            "clique-query ms".into(),
            "path-query ms".into(),
            "clique found".into(),
            "planner (clique/path)".into(),
        ],
        rows,
        notes: "Under the backtracker, clique-query time grows \
                superpolynomially in k while path-query time is flat — the \
                dichotomy in one table. The planner column shows the \
                leapfrog executor taking over the cyclic clique bodies \
                (k ≥ 3), which absorbs the growth at this scale; the \
                forced-backtracker series in BENCH_wcoj.json preserves the \
                hardness shape."
            .into(),
    }
}

/// E11 — Prop D.2: UCQ rewriting for linear TGDs. The rewriting answers
/// open-world queries by a single closed-world UCQ evaluation, with no
/// chase at query time.
pub fn e11_linear_rewriting() -> ExperimentTable {
    use gtgd_chase::linear_rewrite;
    let sigma = gtgd_chase::parse_tgds(
        "Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> Unit(D)",
    )
    .unwrap();
    let q = parse_ucq("Q(X) :- WorksIn(X,D), Unit(D)").unwrap();
    let rewritten = linear_rewrite(&q, &sigma);
    let omq = Omq::full_schema(sigma.clone(), q.clone());
    let cfg = EvalConfig::default();
    let mut rows = Vec::new();
    for &n in &[50usize, 150, 400, 800] {
        let db = org_db(n);
        let t_rewrite = bench_ms(|| gtgd_query::evaluate_ucq(&rewritten, &db));
        let t_chase = bench_ms(|| evaluate_omq(&omq, &db, &cfg));
        let via_rewrite: std::collections::HashSet<Vec<gtgd_data::Value>> =
            gtgd_query::evaluate_ucq(&rewritten, &db)
                .into_iter()
                .filter(|t| t.iter().all(|v| db.dom_contains(*v)))
                .collect();
        let via_chase = evaluate_omq(&omq, &db, &cfg);
        rows.push(vec![
            n.to_string(),
            db.len().to_string(),
            rewritten.disjuncts.len().to_string(),
            fmt_ms(t_rewrite),
            fmt_ms(t_chase),
            (via_rewrite == via_chase.answers).to_string(),
        ]);
    }
    ExperimentTable {
        id: "E11".into(),
        title: "UCQ rewriting for linear TGDs vs chase-based evaluation".into(),
        claim: "Prop D.2: for Σ ∈ L, q(chase(D,Σ)) = q′(D) for a computable UCQ q′".into(),
        columns: vec![
            "n".into(),
            "|D|".into(),
            "rewriting disjuncts".into(),
            "rewrite-eval ms".into(),
            "chase-eval ms".into(),
            "answers agree".into(),
        ],
        rows,
        notes: "The rewriting pays its cost once offline; per-database \
                evaluation avoids the chase entirely."
            .into(),
    }
}

/// E12 — evaluation-engine shootout on acyclic queries: Yannakakis
/// semijoins vs the Prop 2.1 tree-decomposition DP vs backtracking.
pub fn e12_engine_shootout() -> ExperimentTable {
    use gtgd_query::{check_answer_yannakakis, HomSearch};
    let mut rows = Vec::new();
    for &n in &[50usize, 150, 400] {
        let db = grid_db(4, n);
        let q = path_cq_h(5);
        let t_yan = bench_ms(|| check_answer_yannakakis(&q, &db, &[]));
        let t_dp = bench_ms(|| check_answer_decomposed(&q, &db, &[]));
        let t_bt = bench_ms(|| holds_boolean(&q, &db));
        let agree = check_answer_yannakakis(&q, &db, &[]) == Some(holds_boolean(&q, &db))
            && check_answer_decomposed(&q, &db, &[]) == holds_boolean(&q, &db);
        // Full answer enumeration: every homomorphism of the query body,
        // sequential vs split across 4 workers on the most selective atom.
        let t_enum = bench_ms(|| HomSearch::new(&q.atoms, &db).all());
        let t_penum = bench_ms(|| HomSearch::new(&q.atoms, &db).par_all(4));
        let enum_agree = {
            let norm = |homs: Vec<std::collections::HashMap<gtgd_query::Var, gtgd_data::Value>>| {
                let mut v: Vec<Vec<_>> = homs
                    .into_iter()
                    .map(|h| {
                        let mut kv: Vec<_> = h.into_iter().collect();
                        kv.sort();
                        kv
                    })
                    .collect();
                v.sort();
                v
            };
            norm(HomSearch::new(&q.atoms, &db).all())
                == norm(HomSearch::new(&q.atoms, &db).par_all(4))
        };
        rows.push(vec![
            n.to_string(),
            db.len().to_string(),
            fmt_ms(t_yan),
            fmt_ms(t_dp),
            fmt_ms(t_bt),
            agree.to_string(),
            fmt_ms(t_enum),
            fmt_ms(t_penum),
            enum_agree.to_string(),
            planner_of(&q.atoms).to_string(),
        ]);
    }
    ExperimentTable {
        id: "E12".into(),
        title: "Engine shootout on acyclic queries".into(),
        claim: "Yannakakis (α-acyclic), Prop 2.1 DP, and backtracking agree; \
                all are polynomial here"
            .into(),
        columns: vec![
            "grid cols".into(),
            "|D|".into(),
            "Yannakakis ms".into(),
            "DP ms".into(),
            "backtrack ms".into(),
            "agree".into(),
            "enum ms".into(),
            "enum par@4 ms".into(),
            "enum agree".into(),
            "planner".into(),
        ],
        rows,
        notes: "Acyclic queries admit all three engines; the shapes coincide \
                because the query is fixed. The enum columns compare full \
                answer enumeration sequentially vs par_all at 4 workers \
                (identical answer sets by construction)."
            .into(),
    }
}

/// E13 — typed-chase telemetry: the number of distinct canonical Σ-types is
/// a function of Σ alone (the ExpTime bound's practical face); bag counts
/// grow with the data, the type memo does not.
pub fn e13_type_telemetry() -> ExperimentTable {
    use gtgd_chase::{typed_chase_with, DepthPolicy, Saturator};
    let org = org_ontology();
    let mut rows = Vec::new();
    for &n in &[10usize, 50, 200] {
        let db = org_db(n);
        let mut sat = Saturator::new(&org);
        let t = typed_chase_with(
            &db,
            &org,
            DepthPolicy::Adaptive {
                extra_levels: 3,
                max_level: 32,
            },
            &mut sat,
        );
        rows.push(vec![
            n.to_string(),
            db.len().to_string(),
            t.bag_count.to_string(),
            t.max_level.to_string(),
            sat.type_count().to_string(),
            t.instance.len().to_string(),
            t.saturated.to_string(),
        ]);
    }
    ExperimentTable {
        id: "E13".into(),
        title: "Typed-chase telemetry: bags grow with data, types do not".into(),
        claim: "DESIGN §2 / Lemma A.3: reachable canonical types depend only \
                on Σ (the bounded-arity ExpTime bound)"
            .into(),
        columns: vec![
            "n".into(),
            "|D|".into(),
            "bags".into(),
            "max level".into(),
            "canonical types".into(),
            "chase atoms".into(),
            "saturated".into(),
        ],
        rows,
        notes: "The type-memo column is flat across a 20× data sweep — the \
                data-independence that makes the FPT algorithm work."
            .into(),
    }
}

/// E14 — the constraint-aware planner (Section 1's optimization
/// motivation): a Σ-rewriting lowers the evaluation exponent, and the
/// planned execution matches direct evaluation.
pub fn e14_planner() -> ExperimentTable {
    use gtgd_core::plan_cqs;
    let cfg = EvalConfig::default();
    let sigma = gtgd_chase::parse_tgds("R2(X) -> R4(X)").unwrap();
    let q = parse_ucq(
        "Q() :- P(X2,X1), P(X4,X1), P(X2,X3), P(X4,X3), \
         R1(X1), R2(X2), R3(X3), R4(X4)",
    )
    .unwrap();
    let s = Cqs::new(sigma, q);
    let t_plan = bench_ms(|| plan_cqs(&s, 2, &cfg));
    let plan = plan_cqs(&s, 2, &cfg);
    let mut rows = Vec::new();
    for &n in &[40usize, 120, 360] {
        let db = diamond_db(n);
        let t_direct = bench_ms(|| s.check(&db, &[]).unwrap());
        let t_planned = bench_ms(|| plan.check(&db, &[]).unwrap());
        let agree = s.check(&db, &[]).unwrap() == plan.check(&db, &[]).unwrap();
        rows.push(vec![
            n.to_string(),
            db.len().to_string(),
            fmt_ms(t_plan),
            fmt_ms(t_direct),
            fmt_ms(t_planned),
            plan.planned_treewidth.to_string(),
            agree.to_string(),
        ]);
    }
    ExperimentTable {
        id: "E14".into(),
        title: "Constraint-aware planning (Example 4.4 as an optimizer)".into(),
        claim: "Section 1 / Thm 5.10: constraints lower semantic treewidth; \
                the planner exploits it"
            .into(),
        columns: vec![
            "n".into(),
            "|D|".into(),
            "plan ms (offline)".into(),
            "direct ms".into(),
            "planned ms".into(),
            "planned tw".into(),
            "agree".into(),
        ],
        rows,
        notes: "Planning cost is paid once; the treewidth-1 plan answers the \
                treewidth-2 question on every constraint-satisfying database."
            .into(),
    }
}

/// A Σ-satisfying diamond workload for E14.
fn diamond_db(n: usize) -> Instance {
    let mut atoms = Vec::new();
    for i in 0..n {
        let l = format!("l{i}");
        let r0 = format!("r{i}");
        let r1 = format!("r{}", (i + 1) % n);
        atoms.push(gtgd_data::GroundAtom::named("P", &[&l, &r0]));
        atoms.push(gtgd_data::GroundAtom::named("P", &[&l, &r1]));
        atoms.push(gtgd_data::GroundAtom::named("R2", &[&l]));
        atoms.push(gtgd_data::GroundAtom::named("R4", &[&l]));
        atoms.push(gtgd_data::GroundAtom::named("R1", &[&r0]));
        atoms.push(gtgd_data::GroundAtom::named("R3", &[&r1]));
    }
    Instance::from_atoms(atoms)
}

/// E15 — sequential vs parallel engine shootout: the same chase and
/// saturation workloads through the std-only worker-pool paths
/// (`par_chase`, `par_ground_saturation`), with agreement checked in-row.
/// The saturation speedup is dominated by the parallel path's per-round
/// type dedup and dirty-bag tracking, so it holds even on a single core;
/// extra workers compound it on multicore machines.
pub fn e15_parallel_shootout() -> ExperimentTable {
    let tc = tc_ontology();
    let org = org_ontology();
    let budget = ChaseBudget::unbounded();
    let mut rows = Vec::new();
    for &n in &[100usize, 200, 400] {
        // Full-TGD chase (transitive closure of a path): null-free, so the
        // parallel instance must be *equal*, not just isomorphic.
        let pdb = path_db(n.min(120));
        let t_chase = bench_ms(|| chase(&pdb, &tc, &budget));
        let t_pchase2 = bench_ms(|| par_chase(&pdb, &tc, &budget, 2));
        let t_pchase4 = bench_ms(|| par_chase(&pdb, &tc, &budget, 4));
        // Guarded ground saturation on the org workload.
        let odb = org_db(n);
        let t_sat = bench_ms(|| ground_saturation(&odb, &org));
        let t_psat1 = bench_ms(|| par_ground_saturation(&odb, &org, 1));
        let t_psat4 = bench_ms(|| par_ground_saturation(&odb, &org, 4));
        // Morsel-driven WCOJ enumeration (DESIGN §12): full triangle
        // enumeration over a random graph through `par_table` at widths
        // 1/2/4/8 — the whole-trie-search parallel path, not just the
        // depth-0 split. Every width must reproduce the width-1 rows in
        // the same order.
        let g = crate::workloads::random_graph(n, 0.08, 7);
        let gdb = crate::workloads::graph_db(&g);
        let plan = gtgd_query::CompiledQuery::compile(&crate::workloads::clique_cq(3).atoms);
        let wcoj_ws: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&w| {
                bench_ms(|| {
                    plan.search(&gdb)
                        .strategy(gtgd_query::Strategy::Wcoj)
                        .par_table(w)
                        .len()
                })
            })
            .collect();
        let enum_ref = plan
            .search(&gdb)
            .strategy(gtgd_query::Strategy::Wcoj)
            .par_table(1);
        let enum_agree = [2usize, 4, 8].iter().all(|&w| {
            plan.search(&gdb)
                .strategy(gtgd_query::Strategy::Wcoj)
                .par_table(w)
                == enum_ref
        });
        let agree = par_chase(&pdb, &tc, &budget, 4).instance == chase(&pdb, &tc, &budget).instance
            && par_ground_saturation(&odb, &org, 4) == ground_saturation(&odb, &org)
            && enum_agree;
        rows.push(vec![
            n.to_string(),
            fmt_ms(t_chase),
            fmt_ms(t_pchase2),
            fmt_ms(t_pchase4),
            fmt_ms(t_sat),
            fmt_ms(t_psat1),
            fmt_ms(t_psat4),
            format!("{:.2}", t_sat / t_psat4),
            fmt_ms(wcoj_ws[0]),
            fmt_ms(wcoj_ws[1]),
            fmt_ms(wcoj_ws[2]),
            fmt_ms(wcoj_ws[3]),
            agree.to_string(),
        ]);
    }
    ExperimentTable {
        id: "E15".into(),
        title: "Sequential vs parallel engines".into(),
        claim: "DESIGN §Parallel execution: the parallel paths agree with the \
                sequential engines and the saturation path wins by an \
                algorithmic margin"
            .into(),
        columns: vec![
            "n".into(),
            "chase seq ms".into(),
            "chase par@2 ms".into(),
            "chase par@4 ms".into(),
            "chase↓ seq ms".into(),
            "chase↓ par@1 ms".into(),
            "chase↓ par@4 ms".into(),
            "sat speedup@4".into(),
            "wcoj enum w=1 ms".into(),
            "wcoj enum w=2 ms".into(),
            "wcoj enum w=4 ms".into(),
            "wcoj enum w=8 ms".into(),
            "agree".into(),
        ],
        rows,
        notes: "par_chase pays a collect-then-fire merge to keep null naming \
                deterministic, so on one core it roughly ties the sequential \
                chase; par_ground_saturation restructures the Kleene round \
                (type dedup + dirty bags + value index) and wins outright. \
                The wcoj enum columns time morsel-driven triangle \
                enumeration per worker width; read them against \
                available_parallelism — on a 1-core container every width \
                time-slices one CPU and w>1 only adds scheduling overhead."
            .into(),
    }
}

/// E16 — incremental materialization (DESIGN §13): single-fact insert /
/// retract latency on a [`gtgd_chase::MaintainedInstance`] vs re-chasing
/// the updated base from scratch, on the E9 org workload (existential
/// chain ontology) and the E15 transitive-closure workload. Each repeat
/// inserts one fresh fact into the warm maintained instance and then
/// retracts it (DRed), so the state — and therefore the cost — is
/// identical across repeats; the from-scratch column chases the grown
/// base with the same engine the maintained path would otherwise call.
pub fn e16_incremental_maintenance() -> ExperimentTable {
    use gtgd_chase::ChaseRunner;
    use gtgd_query::instance_isomorphic;
    let org_sigma = gtgd_chase::parse_tgds(
        "Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> Audited(D)",
    )
    .unwrap();
    let tc = tc_ontology();
    let budget = ChaseBudget::unbounded();
    // (row key, ontology, base, the fact to insert/retract)
    let cases: Vec<(String, &[gtgd_chase::Tgd], Instance, gtgd_data::GroundAtom)> =
        [100usize, 200, 400]
            .iter()
            .map(|&n| {
                (
                    format!("org/{n}"),
                    org_sigma.as_slice(),
                    org_db(n),
                    gtgd_data::GroundAtom::named("Emp", &["e_new"]),
                )
            })
            .chain([60usize, 120].iter().map(|&n| {
                (
                    format!("tc/{n}"),
                    tc.as_slice(),
                    path_db(n),
                    gtgd_data::GroundAtom::named("E", &["n_new", "n0"]),
                )
            }))
            .collect();
    let mut rows = Vec::new();
    for (key, sigma, db, fact) in cases {
        let mut grown = db.clone();
        grown.insert(fact.clone());
        let t_full = bench_ms(|| chase(&grown, sigma, &budget));
        let mut m = ChaseRunner::new(sigma).budget(budget).maintain(&db);
        // Warmup pair, then best-of over an adaptive repeat budget, timing
        // insert and retract separately (the pair restores the pre-state:
        // DRed purges the fired triggers, so the re-insert re-fires them).
        m.insert([fact.clone()]);
        m.retract([fact.clone()]);
        let (mut t_ins, mut t_ret) = (f64::INFINITY, f64::INFINITY);
        let start = Instant::now();
        for done in 1..=1000u32 {
            let t = Instant::now();
            std::hint::black_box(m.insert([fact.clone()]));
            t_ins = t_ins.min(ms(t));
            let t = Instant::now();
            std::hint::black_box(m.retract([fact.clone()]));
            t_ret = t_ret.min(ms(t));
            if done >= 3 && start.elapsed() >= std::time::Duration::from_millis(30) {
                break;
            }
        }
        // Equivalence spot-check: maintained post-insert fixpoint vs the
        // re-chase of the grown base.
        m.insert([fact.clone()]);
        let agree = instance_isomorphic(m.instance(), &chase(&grown, sigma, &budget).instance);
        rows.push(vec![
            key,
            grown.len().to_string(),
            m.instance().len().to_string(),
            fmt_ms(t_full),
            fmt_ms(t_ins),
            format!("{:.0}", t_full / t_ins),
            fmt_ms(t_ret),
            format!("{:.0}", t_full / t_ret),
            agree.to_string(),
        ]);
    }
    ExperimentTable {
        id: "E16".into(),
        title: "Incremental maintenance vs from-scratch re-chase".into(),
        claim: "DESIGN §13: a single-fact update costs the delta, not the \
                instance"
            .into(),
        columns: vec![
            "workload/n".into(),
            "|D|".into(),
            "chase atoms".into(),
            "full re-chase ms".into(),
            "insert 1 fact ms".into(),
            "insert speedup".into(),
            "retract 1 fact ms".into(),
            "retract speedup".into(),
            "agree".into(),
        ],
        rows,
        notes: "insert fires only the triggers the new fact enables \
                (frontier seeding from the delta), so its speedup grows \
                with n. retract runs DRed over recorded firings but then \
                rebuilds the survivor indexes (DESIGN §13), so its win \
                comes from skipping re-derivation — largest where the \
                chase does real work (tc)."
            .into(),
    }
}

/// E17 — snapshot + serve amortization (see `crate::serve` for the full
/// measurement and `BENCH_serve.json` for the published numbers): warm
/// daemon query round-trips vs a full cold `gtgd` process run, and
/// snapshot load vs re-chase, on the org and transitive-closure
/// workloads.
pub fn e17_serve_amortization() -> ExperimentTable {
    let rows = crate::serve::serve_benchmark()
        .iter()
        .map(|m| {
            vec![
                m.workload.clone(),
                m.atoms.to_string(),
                m.answers.to_string(),
                fmt_ms(m.cold_ms),
                fmt_ms(m.warm_query_ms),
                format!("{:.0}", m.cold_over_warm()),
                fmt_ms(m.rechase_ms),
                fmt_ms(m.load_ms),
                format!("{:.0}", m.load_speedup()),
                m.answers_agree.to_string(),
            ]
        })
        .collect();
    ExperimentTable {
        id: "E17".into(),
        title: "Snapshot + serve amortization".into(),
        claim: "DESIGN §14: persisting the fixpoint moves chase, index \
                build, and plan compilation off the query hot path"
            .into(),
        columns: vec![
            "workload/n".into(),
            "atoms".into(),
            "answers".into(),
            "cold run ms".into(),
            "warm query ms".into(),
            "cold/warm".into(),
            "re-chase ms".into(),
            "load ms".into(),
            "load speedup".into(),
            "agree".into(),
        ],
        rows,
        notes: "cold spawns the real gtgd binary when one is built next \
                to this executable (the published BENCH_serve.json always \
                does) and otherwise re-chases in-process; warm is one \
                line-delimited-JSON round-trip against the daemon with a \
                hot plan cache. load re-reads the snapshot to query-ready: \
                sequential decode + validated index install — no joins, \
                no re-sorting; the fired-set rebuild (hashing) is \
                deferred to the first write (thaw_ms in the JSON)."
            .into(),
    }
}

/// All experiments in order.
pub fn all_experiments() -> Vec<fn() -> ExperimentTable> {
    vec![
        e1_bounded_tw_eval,
        e2_chase,
        e3_omq_fpt,
        e4_clique_reduction,
        e5_omq_to_cqs,
        e6_meta_omq,
        e7_meta_cqs,
        e8_cq_core,
        e9_chase_ablation,
        e10_hardness_shape,
        e11_linear_rewriting,
        e12_engine_shootout,
        e13_type_telemetry,
        e14_planner,
        e15_parallel_shootout,
        e16_incremental_maintenance,
        e17_serve_amortization,
    ]
}

/// Runs one experiment by id (`"E1"`…`"E17"`).
pub fn run_experiment(id: &str) -> Option<ExperimentTable> {
    let table = match id {
        "E1" => e1_bounded_tw_eval(),
        "E2" => e2_chase(),
        "E3" => e3_omq_fpt(),
        "E4" => e4_clique_reduction(),
        "E5" => e5_omq_to_cqs(),
        "E6" => e6_meta_omq(),
        "E7" => e7_meta_cqs(),
        "E8" => e8_cq_core(),
        "E9" => e9_chase_ablation(),
        "E10" => e10_hardness_shape(),
        "E11" => e11_linear_rewriting(),
        "E12" => e12_engine_shootout(),
        "E13" => e13_type_telemetry(),
        "E14" => e14_planner(),
        "E15" => e15_parallel_shootout(),
        "E16" => e16_incremental_maintenance(),
        "E17" => e17_serve_amortization(),
        _ => return None,
    };
    Some(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The correctness columns of the fast experiments must be all-true:
    /// reduction verdicts match brute force, open/closed answers agree,
    /// rewriting agrees with the chase, engines agree.
    #[test]
    fn experiment_correctness_columns() {
        let t4 = e4_clique_reduction();
        for row in &t4.rows {
            assert_eq!(row[6], row[7], "E4 verdict vs brute force: {row:?}");
        }
        let t5 = e5_omq_to_cqs();
        for row in &t5.rows {
            assert_eq!(row[5], "true", "E5 answers agree: {row:?}");
        }
        let t11 = e11_linear_rewriting();
        for row in &t11.rows {
            assert_eq!(row[5], "true", "E11 answers agree: {row:?}");
        }
        let t12 = e12_engine_shootout();
        for row in &t12.rows {
            assert_eq!(row[5], "true", "E12 engines agree: {row:?}");
            assert_eq!(row[8], "true", "E12 par enumeration agrees: {row:?}");
        }
        let t15 = e15_parallel_shootout();
        for row in &t15.rows {
            let agree = row.last().expect("E15 rows end with the agree flag");
            assert_eq!(agree, "true", "E15 parallel engines agree: {row:?}");
        }
        let t14 = e14_planner();
        for row in &t14.rows {
            assert_eq!(row[6], "true", "E14 plan agrees: {row:?}");
        }
        let t16 = e16_incremental_maintenance();
        for row in &t16.rows {
            assert_eq!(row[8], "true", "E16 maintained ≡ re-chased: {row:?}");
        }
    }

    /// E13's type-count column must be constant across the data sweep —
    /// the data-independence of the type memo.
    #[test]
    fn type_memo_is_data_independent() {
        let t = e13_type_telemetry();
        let counts: Vec<&String> = t.rows.iter().map(|r| &r[4]).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn tables_render() {
        let t = ExperimentTable {
            id: "E0".into(),
            title: "t".into(),
            claim: "c".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![vec!["1".into(), "2".into()]],
            notes: "n".into(),
        };
        let r = t.render();
        assert!(r.contains("E0") && r.contains('1'));
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("E99").is_none());
    }
}
