//! End-to-end checks of the `gtgd ingest` / `gtgd gen` CLI surfaces and
//! the stable exit-code contract (src/error.rs): generated workloads run
//! through the real binary, and every failure class exits with its
//! documented code and a described message on stderr — never a panic.

use std::path::PathBuf;
use std::process::{Command, Output};

fn gtgd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gtgd"))
        .args(args)
        .output()
        .expect("spawn gtgd")
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gtgd-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

#[test]
fn gen_then_ingest_roundtrip_through_files() {
    let dir = temp_dir("roundtrip");
    let out = gtgd(&[
        "gen",
        "lubm",
        "--univ",
        "1",
        "--seed",
        "9",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let nt = dir.join("data.nt");
    let ofn = dir.join("ontology.ofn");
    assert!(nt.exists() && ofn.exists());

    let out = gtgd(&[
        "ingest",
        "--rdf",
        nt.to_str().unwrap(),
        "--owl",
        ofn.to_str().unwrap(),
        "--query",
        "Ans(X) :- Professor(X), worksFor(X,D)",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.lines().count() > 5, "expected answers, got: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gen_is_deterministic_at_the_cli() {
    let a = gtgd(&["gen", "lubm", "--univ", "1", "--seed", "4"]);
    let b = gtgd(&["gen", "lubm", "--univ", "1", "--seed", "4"]);
    let c = gtgd(&["gen", "lubm", "--univ", "1", "--seed", "5"]);
    assert!(a.status.success() && b.status.success() && c.status.success());
    assert_eq!(a.stdout, b.stdout, "same seed must be byte-identical");
    assert_ne!(a.stdout, c.stdout, "different seed must differ");
}

#[test]
fn ingest_lubm_query_answers_are_sorted_and_stable() {
    let run = || {
        let out = gtgd(&[
            "ingest",
            "--lubm",
            "1",
            "--seed",
            "2",
            "--query",
            "Ans(X,U) :- Professor(X), worksFor(X,D), subOrganizationOf(D,U)",
        ]);
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "two runs over the same seed must print identically");
    // Answer rows (indented tuples) follow the summary lines, sorted.
    let rows: Vec<&str> = a.lines().filter(|l| l.starts_with("  (")).collect();
    assert!(rows.len() > 3, "{a}");
    let mut sorted = rows.clone();
    sorted.sort();
    assert_eq!(rows, sorted, "answers must print sorted");
}

#[test]
fn usage_errors_exit_2_with_description() {
    for args in [
        &["ingest", "--nope"][..],
        &["ingest"][..],                       // no source selected
        &["gen", "lubm", "--univ", "zero"][..],
        &["gen", "pubmed"][..],                // unknown generator
        &["ingest", "--lubm", "1", "--full-iris"][..], // flag needs --rdf
    ] {
        let out = gtgd(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "{args:?}: {err}");
    }
}

#[test]
fn malformed_input_files_exit_4_with_location() {
    let dir = temp_dir("malformed");
    let bad = dir.join("bad.nt");
    std::fs::write(&bad, "<a> <b> <c> .\n<d> <e>").unwrap();
    let out = gtgd(&["ingest", "--rdf", bad.to_str().unwrap(), "--chase"]);
    assert_eq!(out.status.code(), Some(4));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("ingest:") && err.contains("line 2"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_input_file_is_described_not_panicked() {
    let out = gtgd(&["ingest", "--rdf", "/nonexistent/nope.nt", "--chase"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:") && err.contains("nope.nt"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
}

#[test]
fn per_subcommand_help_lists_flags_and_exits_0() {
    for (args, needle) in [
        (&["ingest", "--help"][..], "--lubm"),
        (&["gen", "--help"][..], "--univ"),
        (&["serve", "--help"][..], "--ingest"),
        (&["snapshot", "--help"][..], "usage: gtgd snapshot"),
        (&["maintain", "--help"][..], "usage: gtgd maintain"),
        (&["--help"][..], "gtgd ingest"),
    ] {
        let out = gtgd(args);
        assert!(out.status.success(), "{args:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(needle), "{args:?}: {stdout}");
    }
}

#[test]
fn ingest_snapshot_then_serve_snapshot_agree() {
    let dir = temp_dir("snap");
    let snap = dir.join("lubm.gsnap");
    let out = gtgd(&[
        "ingest",
        "--lubm",
        "1",
        "--seed",
        "6",
        "--snapshot",
        snap.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(snap.exists());
    // The snapshot must reload as a queryable maintained instance.
    let loaded = gtgd::storage::load_snapshot(&snap).expect("snapshot loads");
    assert!(loaded.instance().len() > 1000);
    let _ = std::fs::remove_dir_all(&dir);
}
