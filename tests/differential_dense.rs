//! Differential testing of the dense-dictionary WCOJ representation: the
//! *same* `CompiledQuery` forced onto `Strategy::Wcoj` under
//! `Repr::Dense` and `Repr::Generic` must agree with each other and with
//! `Strategy::Backtrack` on seeded random CQs × random instances × modes
//! (plain / injective / fixed bindings / restrict_images), with `exists` /
//! `count` / `first_row` agreeing and `par_table` matching at widths 1, 2,
//! and 4.
//!
//! Two properties are *stronger* than set-equality and specific to this
//! suite:
//!
//! * **order identity across representations** — dense codes are
//!   order-preserving, so the dense and generic executors must enumerate
//!   rows in exactly the same sequence;
//! * **order identity across widths** — the morsel scheduler's sorted-path
//!   merge must reproduce the sequential enumeration order exactly, for
//!   every worker count and either representation (this is what keeps
//!   differential transcripts and proof certificates bit-identical).
//!
//! The random sweep is complemented by the named shapes most likely to
//! trip a dictionary-coded trie: cliques, triangles, self-joins `E(X,X)`,
//! constants inside the body (encodable and not), repeated variables —
//! and by a growth test that forces a dictionary *remap* (a fresh value
//! sorting before every existing code) between two evaluations of the
//! same plan.

use gtgd::data::{GroundAtom, Instance, Predicate, Rng, Value};
use gtgd::query::{CompiledQuery, QAtom, Repr, Strategy, Term, Var};
use std::collections::HashSet;

const WORKER_WIDTHS: [usize; 3] = [1, 2, 4];

/// 4-value domain shared by all random instances.
fn dom() -> Vec<Value> {
    ["a", "b", "c", "d"]
        .iter()
        .map(|s| Value::named(s))
        .collect()
}

/// Random instance over unary `U`, binary `E`/`R`, ternary `T`.
fn arb_db(rng: &mut Rng) -> Instance {
    let d = dom();
    let mut i = Instance::new();
    let n_atoms = 3 + rng.below(18) as usize;
    for _ in 0..n_atoms {
        match rng.below(4) {
            0 => {
                i.insert(GroundAtom::new(
                    Predicate::new("U"),
                    vec![d[rng.below(4) as usize]],
                ));
            }
            1 => {
                i.insert(GroundAtom::new(
                    Predicate::new("E"),
                    vec![d[rng.below(4) as usize], d[rng.below(4) as usize]],
                ));
            }
            2 => {
                i.insert(GroundAtom::new(
                    Predicate::new("R"),
                    vec![d[rng.below(4) as usize], d[rng.below(4) as usize]],
                ));
            }
            _ => {
                i.insert(GroundAtom::new(
                    Predicate::new("T"),
                    vec![
                        d[rng.below(4) as usize],
                        d[rng.below(4) as usize],
                        d[rng.below(4) as usize],
                    ],
                ));
            }
        }
    }
    i
}

/// Random CQ body biased toward *joins*: 2–5 atoms over few variables
/// (X0..X3) so cyclic shapes come up often; occasional constants and
/// repeated variables.
fn arb_atoms(rng: &mut Rng) -> Vec<QAtom> {
    let d = dom();
    let term = |rng: &mut Rng| -> Term {
        if rng.chance(0.15) {
            Term::Const(d[rng.below(4) as usize])
        } else {
            Term::Var(Var(rng.below(4) as u32))
        }
    };
    let n = 2 + rng.below(4) as usize;
    (0..n)
        .map(|_| match rng.below(5) {
            0 => QAtom::new(Predicate::new("U"), vec![term(rng)]),
            1 | 2 => QAtom::new(Predicate::new("E"), vec![term(rng), term(rng)]),
            3 => QAtom::new(Predicate::new("R"), vec![term(rng), term(rng)]),
            _ => QAtom::new(Predicate::new("T"), vec![term(rng), term(rng), term(rng)]),
        })
        .collect()
}

fn canon_rows(rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    let mut rows = rows;
    rows.sort();
    rows
}

/// One differential case: the same compiled plan forced onto the
/// backtracker (the oracle) and onto WCOJ under both representations.
fn check_case(
    atoms: &[QAtom],
    db: &Instance,
    fixed: &[(Var, Value)],
    injective: bool,
    allowed: Option<&HashSet<Value>>,
    ctx: &str,
) {
    let plan = CompiledQuery::compile_with_extra(atoms, fixed.iter().map(|&(v, _)| v));
    let search = |s: Strategy, r: Repr| {
        let mut k = plan
            .search(db)
            .strategy(s)
            .repr(r)
            .fix_slots(fixed.iter().map(|&(v, x)| (plan.slot_of(v).unwrap(), x)));
        if injective {
            k = k.injective();
        }
        if let Some(a) = allowed {
            k = k.restrict_images(a);
        }
        k
    };
    let oracle = canon_rows(
        search(Strategy::Backtrack, Repr::Auto)
            .table()
            .rows()
            .map(|r| r.to_vec())
            .collect(),
    );
    let mut sequential: Vec<Vec<Vec<Value>>> = Vec::new();
    for repr in [Repr::Dense, Repr::Generic] {
        let seq: Vec<Vec<Value>> = search(Strategy::Wcoj, repr)
            .table()
            .rows()
            .map(|r| r.to_vec())
            .collect();
        assert_eq!(canon_rows(seq.clone()), oracle, "table() {repr:?} {ctx}");
        assert_eq!(
            search(Strategy::Wcoj, repr).count(),
            oracle.len(),
            "count() {repr:?} {ctx}"
        );
        assert_eq!(
            search(Strategy::Wcoj, repr).exists(),
            !oracle.is_empty(),
            "exists() {repr:?} {ctx}"
        );
        match search(Strategy::Wcoj, repr).first_row() {
            Some(r) => assert!(
                oracle.contains(&r),
                "first_row() not an answer {repr:?} {ctx}"
            ),
            None => assert!(
                oracle.is_empty(),
                "first_row() missed an answer {repr:?} {ctx}"
            ),
        }
        // Morsel-parallel enumeration must reproduce the sequential order
        // *exactly* (not merely the same set), at every width.
        for w in WORKER_WIDTHS {
            let par: Vec<Vec<Value>> = search(Strategy::Wcoj, repr)
                .par_table(w)
                .rows()
                .map(|r| r.to_vec())
                .collect();
            assert_eq!(par, seq, "par_table({w}) order {repr:?} {ctx}");
        }
        sequential.push(seq);
    }
    // Dense codes are order-preserving: both representations enumerate in
    // exactly the same sequence.
    assert_eq!(
        sequential[0], sequential[1],
        "dense vs generic enumeration order {ctx}"
    );
}

#[test]
fn dense_matches_generic_and_backtracker_on_random_cases() {
    let mut rng = Rng::seed(0x5eed_dea1);
    let d = dom();
    for case in 0..160u32 {
        let db = arb_db(&mut rng);
        let atoms = arb_atoms(&mut rng);
        let injective = rng.chance(0.34);
        let restrict = rng.chance(0.34);
        let allowed: Option<HashSet<Value>> = restrict.then(|| {
            d.iter()
                .copied()
                .filter(|_| rng.chance(0.67))
                .collect::<HashSet<Value>>()
        });
        let mut fixed: Vec<(Var, Value)> = Vec::new();
        if rng.chance(0.5) {
            // Fix 1–2 variables, sometimes a ghost var absent from atoms.
            for _ in 0..=rng.below(2) {
                let v = if rng.chance(0.17) {
                    Var(40 + rng.below(2) as u32)
                } else {
                    Var(rng.below(4) as u32)
                };
                let x = d[rng.below(4) as usize];
                if fixed.iter().all(|&(u, _)| u != v) {
                    fixed.push((v, x));
                }
            }
        }
        check_case(
            &atoms,
            &db,
            &fixed,
            injective,
            allowed.as_ref(),
            &format!("case {case}: atoms={atoms:?} fixed={fixed:?} inj={injective}"),
        );
    }
}

/// A dense-ish binary instance so multiway shapes actually have answers.
fn dense_db() -> Instance {
    let d = dom();
    let mut i = Instance::new();
    for (x, y) in [
        (0, 1),
        (1, 0),
        (1, 2),
        (2, 1),
        (0, 2),
        (2, 0),
        (2, 3),
        (3, 3),
        (0, 0),
    ] {
        i.insert(GroundAtom::new(Predicate::new("E"), vec![d[x], d[y]]));
    }
    for &x in d.iter().take(3) {
        i.insert(GroundAtom::new(Predicate::new("U"), vec![x]));
    }
    i
}

fn e(x: Term, y: Term) -> QAtom {
    QAtom::new(Predicate::new("E"), vec![x, y])
}

fn v(i: u32) -> Term {
    Term::Var(Var(i))
}

/// The named shapes, each under every mode combination — including a
/// fixed value and a body constant that are *absent* from the instance
/// (and hence from the dense dictionary): the dense path must reject
/// them without panicking, exactly like the generic path.
#[test]
fn dense_matches_on_named_shapes() {
    let d = dom();
    let mut clique4 = Vec::new();
    for i in 0..4u32 {
        for j in 0..4u32 {
            if i != j {
                clique4.push(e(v(i), v(j)));
            }
        }
    }
    let ghost = Value::named("zz-not-in-any-db");
    let shapes: Vec<(&str, Vec<QAtom>)> = vec![
        (
            "triangle",
            vec![e(v(0), v(1)), e(v(1), v(2)), e(v(2), v(0))],
        ),
        ("clique4", clique4),
        ("self-join", vec![e(v(0), v(0)), e(v(0), v(1))]),
        (
            "constant-in-body",
            vec![
                e(v(0), Term::Const(d[1])),
                e(Term::Const(d[1]), v(1)),
                e(v(0), v(1)),
            ],
        ),
        (
            "unencodable-constant",
            vec![e(v(0), Term::Const(ghost)), e(v(0), v(1)), e(v(1), v(0))],
        ),
        (
            "repeated-variable",
            vec![
                QAtom::new(Predicate::new("T"), vec![v(0), v(0), v(1)]),
                e(v(1), v(0)),
                e(v(0), v(1)),
            ],
        ),
        (
            "star-multiway",
            vec![e(v(0), v(1)), e(v(0), v(2)), e(v(0), v(3)), e(v(0), v(0))],
        ),
    ];
    let mut rng = Rng::seed(0xdea1_5eed);
    let dbs = [dense_db(), arb_db(&mut rng), arb_db(&mut rng)];
    for (name, atoms) in &shapes {
        for (di, db) in dbs.iter().enumerate() {
            for injective in [false, true] {
                for fixed in [vec![], vec![(Var(0), d[1])], vec![(Var(0), ghost)]] {
                    check_case(
                        atoms,
                        db,
                        &fixed,
                        injective,
                        None,
                        &format!("shape {name} db {di} inj {injective} fixed {fixed:?}"),
                    );
                }
            }
            let allowed: HashSet<Value> = [d[0], d[1], d[2]].into_iter().collect();
            check_case(
                atoms,
                db,
                &[],
                false,
                Some(&allowed),
                &format!("shape {name} db {di} restricted"),
            );
        }
    }
}

/// A fully symmetric instance: every edge is stored in both directions,
/// so the CSR tries for column orders (0,1) and (1,0) hold identical
/// level arrays and the store hands out one shared trie for both. A
/// clique query over such an instance lists every atom in both
/// directions too, so the executor's duplicate-atom elision and the
/// shared-source frame mirroring both fire — this is the configuration
/// the aliasing machinery exists for, and it must stay answer- and
/// order-identical to the oracles.
#[test]
fn dense_matches_on_fully_symmetric_instance() {
    let d = dom();
    let mut db = Instance::new();
    for (x, y) in [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3), (0, 0)] {
        db.insert(GroundAtom::new(Predicate::new("E"), vec![d[x], d[y]]));
        db.insert(GroundAtom::new(Predicate::new("E"), vec![d[y], d[x]]));
    }
    let triangle_both: Vec<QAtom> = vec![
        e(v(0), v(1)),
        e(v(1), v(0)),
        e(v(1), v(2)),
        e(v(2), v(1)),
        e(v(2), v(0)),
        e(v(0), v(2)),
    ];
    let mut clique4_both = Vec::new();
    for i in 0..4u32 {
        for j in 0..4u32 {
            if i != j {
                clique4_both.push(e(v(i), v(j)));
            }
        }
    }
    for (name, atoms) in [
        ("symmetric triangle", &triangle_both),
        ("symmetric clique4", &clique4_both),
    ] {
        for injective in [false, true] {
            check_case(
                atoms,
                &db,
                &[],
                injective,
                None,
                &format!("{name} inj {injective}"),
            );
        }
        let allowed: HashSet<Value> = [d[0], d[1], d[2]].into_iter().collect();
        check_case(
            atoms,
            &db,
            &[],
            false,
            Some(&allowed),
            &format!("{name} restricted"),
        );
        check_case(
            atoms,
            &db,
            &[(Var(0), d[1])],
            false,
            None,
            &format!("{name} fixed"),
        );
    }
}

/// Growth between evaluations of the *same* plan: first a batch whose
/// values extend the dictionary by appends, then a value sorting before
/// every existing code (forcing a remap). After each step the dense path
/// must still agree with both oracles — on answers *and* enumeration
/// order.
#[test]
fn dense_stays_correct_across_dictionary_growth_and_remap() {
    let triangle = vec![e(v(0), v(1)), e(v(1), v(2)), e(v(2), v(0))];
    let ep = Predicate::new("E");
    let named = |s: &str| Value::named(s);
    let mut db = Instance::new();
    for (x, y) in [("m", "n"), ("n", "p"), ("p", "m")] {
        db.insert(GroundAtom::new(ep, vec![named(x), named(y)]));
    }
    check_case(&triangle, &db, &[], false, None, "initial triangle");
    assert_eq!(db.dense_stats().remaps, 0, "initial build never remaps");

    // Append-only growth: "q"/"r" sort after every existing value.
    for (x, y) in [("p", "q"), ("q", "r"), ("r", "p")] {
        db.insert(GroundAtom::new(ep, vec![named(x), named(y)]));
    }
    check_case(&triangle, &db, &[], false, None, "after append growth");
    assert_eq!(
        db.dense_stats().remaps,
        0,
        "suffix values extend the dictionary without remapping"
    );

    // "a" sorts before everything: the next dense evaluation must remap
    // every stored code — and still agree with the oracles.
    for (x, y) in [("a", "m"), ("n", "a"), ("a", "a")] {
        db.insert(GroundAtom::new(ep, vec![named(x), named(y)]));
    }
    check_case(&triangle, &db, &[], false, None, "after remap growth");
    let stats = db.dense_stats();
    assert!(stats.remaps >= 1, "prefix value must force a remap");
    // And once more with modes, post-remap.
    let allowed: HashSet<Value> = ["a", "m", "n", "p"].iter().map(|s| named(s)).collect();
    check_case(
        &triangle,
        &db,
        &[],
        true,
        Some(&allowed),
        "post-remap with modes",
    );
}
