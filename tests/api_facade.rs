//! Contract test for the two facades: on 64 seeded CQ × instance × TGD-set
//! cases, [`Engine::prepare`] must agree with the legacy query entry points
//! (and with the independent `HomSearch` valuation path), and
//! [`ChaseRunner`] must agree with the legacy chase free functions —
//! answers as sets, chase instances up to isomorphism, budget-stop
//! behaviour included — at worker widths 1, 2, and 4.

use gtgd::chase::{
    chase, parse_tgds, restricted_chase, ChaseBudget, ChaseRunner, ChaseVariant, Tgd,
};
use gtgd::data::{GroundAtom, Instance, Rng, Value};
use gtgd::query::{
    evaluate_cq, evaluate_cq_par, instance_isomorphic, parse_cq, Cq, Engine, HomSearch,
};
use std::collections::HashSet;

const WIDTHS: [usize; 3] = [1, 2, 4];
const CASES: u64 = 64;

fn rule_pool() -> Vec<Tgd> {
    parse_tgds(
        "A(X) -> B(X). \
         B(X) -> R(X,Y). \
         R(X,Y) -> S(Y,X). \
         R(X,Y), A(X) -> B(Y). \
         S(X,Y) -> A(X). \
         B(X) -> A(X)",
    )
    .unwrap()
}

fn query_pool() -> Vec<Cq> {
    vec![
        parse_cq("Q(X) :- A(X)").unwrap(),
        parse_cq("Q(X) :- R(X,Y), S(Y,Z)").unwrap(),
        parse_cq("Q(X,Y) :- S(X,Y), A(X)").unwrap(),
        parse_cq("Q(X,Y) :- R(X,Y), B(Y)").unwrap(),
        parse_cq("Q() :- R(X,Y), S(Y,X)").unwrap(),
    ]
}

fn arb_db(rng: &mut Rng) -> Instance {
    let k = rng.range(2, 10);
    Instance::from_atoms((0..k).map(|_| {
        let kind = rng.range(0, 4);
        let (a, b) = (rng.range(0, 5), rng.range(0, 5));
        match kind {
            0 => GroundAtom::named("A", &[&format!("c{a}")]),
            1 => GroundAtom::named("B", &[&format!("c{a}")]),
            2 => GroundAtom::named("R", &[&format!("c{a}"), &format!("c{b}")]),
            _ => GroundAtom::named("S", &[&format!("c{a}"), &format!("c{b}")]),
        }
    }))
}

fn sigma_for(pool: &[Tgd], case: u64) -> Vec<Tgd> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| case >> i & 1 == 1)
        .map(|(_, t)| t.clone())
        .collect()
}

/// The `HomSearch` answer set: an evaluation path independent of the
/// compiled-kernel machinery the facade builds on.
fn hom_answers(q: &Cq, i: &Instance) -> HashSet<Vec<Value>> {
    HomSearch::new(&q.atoms, i)
        .all()
        .into_iter()
        .map(|val| q.answer_vars.iter().map(|v| val[v]).collect())
        .collect()
}

/// Engine::prepare agrees with the legacy evaluators and the raw
/// valuation search on every seeded case, at every width.
#[test]
fn engine_facade_matches_legacy_answers() {
    let pool = rule_pool();
    let queries = query_pool();
    for case in 0..CASES {
        let mut rng = Rng::seed(0xFACADE ^ case);
        let d = arb_db(&mut rng);
        let sigma = sigma_for(&pool, case);
        let chased = chase(&d, &sigma, &ChaseBudget::levels(3)).instance;
        let q = &queries[(case % queries.len() as u64) as usize];
        for target in [&d, &chased] {
            let legacy = evaluate_cq(q, target);
            assert_eq!(legacy, hom_answers(q, target), "case {case}");
            let facade = Engine::prepare(q).answers(target);
            assert_eq!(facade, legacy, "case {case} (sequential)");
            for w in WIDTHS {
                assert_eq!(
                    Engine::prepare(q).parallel(w).answers(target),
                    legacy,
                    "case {case} (width {w})"
                );
                assert_eq!(evaluate_cq_par(q, target, w), legacy, "case {case}");
            }
            // check/holds/count agree with the answer set.
            for t in legacy.iter().take(2) {
                assert!(Engine::prepare(q).check(target, t), "case {case}");
            }
            assert_eq!(
                Engine::prepare(q).count(target) > 0,
                HomSearch::new(&q.atoms, target).exists(),
                "case {case}"
            );
        }
    }
}

/// ChaseRunner agrees with the legacy chase free functions on every seeded
/// case: identical oblivious results, isomorphic parallel results at each
/// width, identical restricted results, and identical budget-stop points.
#[test]
fn chase_runner_matches_legacy_engines() {
    let pool = rule_pool();
    for case in 0..CASES {
        let mut rng = Rng::seed(0xC0FFEE ^ case);
        let d = arb_db(&mut rng);
        let sigma = sigma_for(&pool, case);
        // Alternate between an ample budget and a tight one that stops
        // mid-run, so budget-stop behaviour is part of the contract.
        let budget = if case % 2 == 0 {
            ChaseBudget::levels(4)
        } else {
            ChaseBudget::atoms((d.len() + 3).min(12))
        };
        let seq = chase(&d, &sigma, &budget);
        for w in WIDTHS {
            let outcome = ChaseRunner::new(&sigma).budget(budget).workers(w).run(&d);
            assert_eq!(outcome.complete, seq.complete, "case {case} width {w}");
            assert_eq!(
                outcome.instance.len(),
                seq.instance.len(),
                "case {case} width {w}"
            );
            assert_eq!(
                outcome.levels.as_deref(),
                Some(seq.levels.as_slice()),
                "case {case} width {w}"
            );
            assert_eq!(outcome.max_level, Some(seq.max_level), "case {case}");
            assert!(
                instance_isomorphic(&outcome.instance, &seq.instance),
                "case {case} width {w}"
            );
            assert!(outcome.report.is_none(), "untraced run carries no report");
        }
        // The restricted chase bounds derivation depth per-atom, so the
        // same levels-or-atoms budget alternation bounds even the
        // non-terminating rule subsets.
        let r_budget = budget;
        let legacy_r = restricted_chase(&d, &sigma, &r_budget);
        let restricted = ChaseRunner::new(&sigma)
            .variant(ChaseVariant::Restricted)
            .budget(r_budget)
            .run(&d);
        // Null labels come from a global counter, so two runs agree only up
        // to isomorphism.
        assert_eq!(
            restricted.instance.len(),
            legacy_r.instance.len(),
            "case {case}"
        );
        assert!(
            instance_isomorphic(&restricted.instance, &legacy_r.instance),
            "case {case}"
        );
        assert_eq!(restricted.complete, legacy_r.complete, "case {case}");
        assert_eq!(restricted.fired, Some(legacy_r.fired), "case {case}");
    }
}
