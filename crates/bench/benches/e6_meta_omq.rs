//! E6 — Theorem 5.1: deciding UCQ_k-equivalence of guarded OMQs
//! (the 2ExpTime meta problem, exercised on the Example 4.4 family).

use gtgd_bench::harness;
use gtgd_chase::parse_tgds;
use gtgd_core::{omq_ucqk_equivalent, EvalConfig, GroundingPolicy, Omq};
use gtgd_query::parse_ucq;

fn example_4_4(extra: usize) -> Omq {
    let mut atoms = vec![
        "P(X2,X1)".to_string(),
        "P(X4,X1)".to_string(),
        "P(X2,X3)".to_string(),
        "P(X4,X3)".to_string(),
        "R1(X1)".to_string(),
        "R2(X2)".to_string(),
        "R3(X3)".to_string(),
        "R4(X4)".to_string(),
    ];
    for i in 0..extra {
        atoms.push(format!("S{i}(X1)"));
    }
    Omq::full_schema(
        parse_tgds("R2(X) -> R4(X)").unwrap(),
        parse_ucq(&format!("Q() :- {}", atoms.join(", "))).unwrap(),
    )
}

fn main() {
    harness::group("e6_meta_omq");
    let cfg = EvalConfig::default();
    let policy = GroundingPolicy::default();
    for &extra in &[0usize, 2, 4] {
        let q = example_4_4(extra);
        harness::case(&format!("decide_ucq1_equiv/{extra}"), || {
            omq_ucqk_equivalent(&q, 1, &policy, &cfg)
        });
    }
}
