//! Differential testing of the worst-case-optimal (leapfrog triejoin)
//! executor against the backtracking kernel: the *same* `CompiledQuery`,
//! forced onto `Strategy::Wcoj` and `Strategy::Backtrack`, must produce
//! identical answer sets on seeded random CQs × random instances × modes
//! (plain / injective / fixed bindings / restrict_images), with `exists` /
//! `count` / `first_row` agreeing and the parallel split (`par_table`)
//! matching at widths 1, 2, and 4.
//!
//! The random sweep is complemented by the shapes the WCOJ path exists
//! for — cliques and triangles — plus the shapes most likely to trip a
//! trie executor: self-joins `E(X,X)`, constants inside the body, and
//! repeated variables across atoms.

use gtgd::data::{GroundAtom, Instance, Predicate, Rng, Value};
use gtgd::query::{CompiledQuery, QAtom, Strategy, Term, Var};
use std::collections::HashSet;

const WORKER_WIDTHS: [usize; 3] = [1, 2, 4];

/// 4-value domain shared by all random instances.
fn dom() -> Vec<Value> {
    ["a", "b", "c", "d"]
        .iter()
        .map(|s| Value::named(s))
        .collect()
}

/// Random instance over unary `U`, binary `E`/`R`, ternary `T`.
fn arb_db(rng: &mut Rng) -> Instance {
    let d = dom();
    let mut i = Instance::new();
    let n_atoms = 3 + rng.below(18) as usize;
    for _ in 0..n_atoms {
        match rng.below(4) {
            0 => {
                i.insert(GroundAtom::new(
                    Predicate::new("U"),
                    vec![d[rng.below(4) as usize]],
                ));
            }
            1 => {
                i.insert(GroundAtom::new(
                    Predicate::new("E"),
                    vec![d[rng.below(4) as usize], d[rng.below(4) as usize]],
                ));
            }
            2 => {
                i.insert(GroundAtom::new(
                    Predicate::new("R"),
                    vec![d[rng.below(4) as usize], d[rng.below(4) as usize]],
                ));
            }
            _ => {
                i.insert(GroundAtom::new(
                    Predicate::new("T"),
                    vec![
                        d[rng.below(4) as usize],
                        d[rng.below(4) as usize],
                        d[rng.below(4) as usize],
                    ],
                ));
            }
        }
    }
    i
}

/// Random CQ body biased toward *joins*: 2–5 atoms over few variables
/// (X0..X3), so cyclic shapes — the ones the WCOJ gate actually routes —
/// come up often; occasional constants and repeated variables.
fn arb_atoms(rng: &mut Rng) -> Vec<QAtom> {
    let d = dom();
    let term = |rng: &mut Rng| -> Term {
        if rng.chance(0.15) {
            Term::Const(d[rng.below(4) as usize])
        } else {
            Term::Var(Var(rng.below(4) as u32))
        }
    };
    let n = 2 + rng.below(4) as usize;
    (0..n)
        .map(|_| match rng.below(5) {
            0 => QAtom::new(Predicate::new("U"), vec![term(rng)]),
            1 | 2 => QAtom::new(Predicate::new("E"), vec![term(rng), term(rng)]),
            3 => QAtom::new(Predicate::new("R"), vec![term(rng), term(rng)]),
            _ => QAtom::new(Predicate::new("T"), vec![term(rng), term(rng), term(rng)]),
        })
        .collect()
}

/// Canonical form of an answer table: sorted rows (slot order is shared by
/// both strategies, so rows compare positionally).
fn canon_rows(rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    let mut rows = rows;
    rows.sort();
    rows
}

/// One differential case: the same compiled plan forced onto each strategy.
fn check_case(
    atoms: &[QAtom],
    db: &Instance,
    fixed: &[(Var, Value)],
    injective: bool,
    allowed: Option<&HashSet<Value>>,
    ctx: &str,
) {
    let plan = CompiledQuery::compile_with_extra(atoms, fixed.iter().map(|&(v, _)| v));
    let search = |s: Strategy| {
        let mut k = plan
            .search(db)
            .strategy(s)
            .fix_slots(fixed.iter().map(|&(v, x)| (plan.slot_of(v).unwrap(), x)));
        if injective {
            k = k.injective();
        }
        if let Some(a) = allowed {
            k = k.restrict_images(a);
        }
        k
    };
    let expected = canon_rows(
        search(Strategy::Backtrack)
            .table()
            .rows()
            .map(|r| r.to_vec())
            .collect(),
    );
    let got = canon_rows(
        search(Strategy::Wcoj)
            .table()
            .rows()
            .map(|r| r.to_vec())
            .collect(),
    );
    assert_eq!(got, expected, "table() {ctx}");
    assert_eq!(
        search(Strategy::Wcoj).count(),
        expected.len(),
        "count() {ctx}"
    );
    assert_eq!(
        search(Strategy::Wcoj).exists(),
        !expected.is_empty(),
        "exists() {ctx}"
    );
    match search(Strategy::Wcoj).first_row() {
        Some(r) => assert!(expected.contains(&r), "first_row() not an answer {ctx}"),
        None => assert!(expected.is_empty(), "first_row() missed an answer {ctx}"),
    }
    for w in WORKER_WIDTHS {
        let par = canon_rows(
            search(Strategy::Wcoj)
                .par_table(w)
                .rows()
                .map(|r| r.to_vec())
                .collect(),
        );
        assert_eq!(par, expected, "par_table({w}) {ctx}");
    }
}

#[test]
fn wcoj_matches_backtracker_on_random_cases() {
    let mut rng = Rng::seed(0x5eed_cafe);
    let d = dom();
    for case in 0..160u32 {
        let db = arb_db(&mut rng);
        let atoms = arb_atoms(&mut rng);
        let injective = rng.chance(0.34);
        let restrict = rng.chance(0.34);
        let allowed: Option<HashSet<Value>> = restrict.then(|| {
            d.iter()
                .copied()
                .filter(|_| rng.chance(0.67))
                .collect::<HashSet<Value>>()
        });
        let mut fixed: Vec<(Var, Value)> = Vec::new();
        if rng.chance(0.5) {
            // Fix 1–2 variables, sometimes a ghost var absent from atoms.
            for _ in 0..=rng.below(2) {
                let v = if rng.chance(0.17) {
                    Var(40 + rng.below(2) as u32)
                } else {
                    Var(rng.below(4) as u32)
                };
                let x = d[rng.below(4) as usize];
                if fixed.iter().all(|&(u, _)| u != v) {
                    fixed.push((v, x));
                }
            }
        }
        check_case(
            &atoms,
            &db,
            &fixed,
            injective,
            allowed.as_ref(),
            &format!("case {case}: atoms={atoms:?} fixed={fixed:?} inj={injective}"),
        );
    }
}

/// A dense-ish binary instance so multiway shapes actually have answers.
fn dense_db() -> Instance {
    let d = dom();
    let mut i = Instance::new();
    for (x, y) in [
        (0, 1),
        (1, 0),
        (1, 2),
        (2, 1),
        (0, 2),
        (2, 0),
        (2, 3),
        (3, 3),
        (0, 0),
    ] {
        i.insert(GroundAtom::new(Predicate::new("E"), vec![d[x], d[y]]));
    }
    for &x in d.iter().take(3) {
        i.insert(GroundAtom::new(Predicate::new("U"), vec![x]));
    }
    i
}

fn e(x: Term, y: Term) -> QAtom {
    QAtom::new(Predicate::new("E"), vec![x, y])
}

fn v(i: u32) -> Term {
    Term::Var(Var(i))
}

/// The shapes the ISSUE names: clique, triangle, self-join,
/// constant-in-body, repeated-variable — each checked with every mode
/// combination on both a dense and a random instance.
#[test]
fn wcoj_matches_backtracker_on_named_shapes() {
    let d = dom();
    // 4-clique (directed both ways, i != j handled by injective mode too).
    let mut clique4 = Vec::new();
    for i in 0..4u32 {
        for j in 0..4u32 {
            if i != j {
                clique4.push(e(v(i), v(j)));
            }
        }
    }
    let shapes: Vec<(&str, Vec<QAtom>)> = vec![
        (
            "triangle",
            vec![e(v(0), v(1)), e(v(1), v(2)), e(v(2), v(0))],
        ),
        ("clique4", clique4),
        ("self-join", vec![e(v(0), v(0)), e(v(0), v(1))]),
        (
            "constant-in-body",
            vec![
                e(v(0), Term::Const(d[1])),
                e(Term::Const(d[1]), v(1)),
                e(v(0), v(1)),
            ],
        ),
        (
            "repeated-variable",
            vec![
                QAtom::new(Predicate::new("T"), vec![v(0), v(0), v(1)]),
                e(v(1), v(0)),
                e(v(0), v(1)),
            ],
        ),
        (
            "star-multiway",
            vec![e(v(0), v(1)), e(v(0), v(2)), e(v(0), v(3)), e(v(0), v(0))],
        ),
    ];
    let mut rng = Rng::seed(0xd1ff_5eed);
    let dbs = [dense_db(), arb_db(&mut rng), arb_db(&mut rng)];
    for (name, atoms) in &shapes {
        for (di, db) in dbs.iter().enumerate() {
            for injective in [false, true] {
                for fixed in [vec![], vec![(Var(0), d[1])]] {
                    check_case(
                        atoms,
                        db,
                        &fixed,
                        injective,
                        None,
                        &format!("shape {name} db {di} inj {injective} fixed {fixed:?}"),
                    );
                }
            }
            let allowed: HashSet<Value> = [d[0], d[1], d[2]].into_iter().collect();
            check_case(
                atoms,
                db,
                &[],
                false,
                Some(&allowed),
                &format!("shape {name} db {di} restricted"),
            );
        }
    }
}

/// The planner gate routes the shapes it should: cyclic and high-degree
/// multiway bodies take the WCOJ path, acyclic chains stay on the
/// backtracker (the E12 guard), and explicit overrides win either way.
#[test]
fn planner_gate_routes_named_shapes() {
    let db = dense_db();
    let triangle = vec![e(v(0), v(1)), e(v(1), v(2)), e(v(2), v(0))];
    let path = vec![e(v(0), v(1)), e(v(1), v(2)), e(v(2), v(3))];
    let tri_plan = CompiledQuery::compile(&triangle);
    let path_plan = CompiledQuery::compile(&path);
    assert!(tri_plan.prefers_wcoj(), "triangle is cyclic");
    assert!(!path_plan.prefers_wcoj(), "a path is acyclic");
    assert!(tri_plan.search(&db).uses_wcoj());
    assert!(!path_plan.search(&db).uses_wcoj());
    assert!(!tri_plan
        .search(&db)
        .strategy(Strategy::Backtrack)
        .uses_wcoj());
    assert!(path_plan.search(&db).strategy(Strategy::Wcoj).uses_wcoj());
    // Both overridden routes still agree with each other.
    check_case(&path, &db, &[], false, None, "overridden path");
}
